"""Complex-cell coverage: OAI21, AOI22 and custom topologies end-to-end."""

import itertools

import pytest

from repro.charlib.library import cached_thresholds
from repro.charlib.simulate import single_input_response
from repro.gates import Gate, Leaf, Parallel, Series
from repro.spice import solve_dc
from repro.tech import default_process


@pytest.fixture(scope="module")
def process():
    return default_process()


class TestAoi22(object):
    def test_truth_table(self, process):
        gate = Gate.aoi22(process)
        for bits in itertools.product((True, False), repeat=4):
            a, b, c, d = bits
            expected = not ((a and b) or (c and d))
            assignment = dict(zip("abcd", bits))
            assert gate.logic_output(assignment) == expected

    def test_dc_spot_checks(self, process):
        gate = Gate.aoi22(process, load=60e-15)
        cases = [
            ((5.0, 5.0, 0.0, 0.0), 0.0),   # ab branch conducts -> low
            ((0.0, 5.0, 0.0, 5.0), 5.0),   # neither branch -> high
            ((0.0, 0.0, 5.0, 5.0), 0.0),   # cd branch -> low
        ]
        for levels, expected in cases:
            stim = dict(zip("abcd", levels))
            op = solve_dc(gate.build(stim, switching=list("abcd")))
            assert op["z"] == pytest.approx(expected, abs=0.05), levels


class TestCustomTopology:
    def test_three_level_tree(self, process):
        """A deliberately gnarly pull-down: ((a.b)|(c.d)).e"""
        pd = Series(
            Parallel(Series(Leaf("a"), Leaf("b")), Series(Leaf("c"), Leaf("d"))),
            Leaf("e"),
        )
        gate = Gate("gnarly", pd, process, load=60e-15)
        assert gate.n_inputs == 5
        # Logic: z = not(((a&b)|(c&d)) & e)
        assert gate.logic_output(dict(a=1, b=1, c=0, d=0, e=1)) is False
        assert gate.logic_output(dict(a=1, b=1, c=0, d=0, e=0)) is True
        # Depths: a/b sit on a 2-series path nested in a 2-series outer.
        assert gate.nmos_width("e") > process.sizing.wn

    def test_custom_gate_simulates(self, process):
        pd = Series(Parallel(Leaf("a"), Leaf("b")), Leaf("c"))  # OAI21
        gate = Gate("my_oai", pd, process, load=60e-15)
        thr = cached_thresholds(gate)
        shot = single_input_response(gate, "c", "rise", 300e-12, thr)
        assert shot.delay > 0.0
        assert shot.output.final_value() == pytest.approx(0.0, abs=0.1)

    def test_oai21_vs_factory(self, process):
        factory = Gate.oai21(process)
        manual = Gate("oai21", Series(Parallel(Leaf("a"), Leaf("b")),
                                      Leaf("c")), process)
        assert factory.cache_key()["topology"] == \
            manual.cache_key()["topology"]


class TestDualNetworkComplementarity:
    @pytest.mark.parametrize("builder", [
        lambda p: Gate.nand(4, p),
        lambda p: Gate.nor(4, p),
        lambda p: Gate.aoi21(p),
        lambda p: Gate.oai21(p),
        lambda p: Gate.aoi22(p),
    ])
    def test_rail_connectivity_everywhere(self, process, builder):
        """For every input assignment the output sits at a rail in DC --
        i.e. exactly one of the two networks conducts (no floating, no
        crowbar state)."""
        gate = builder(process)
        for bits in itertools.product((0.0, 5.0), repeat=gate.n_inputs):
            stim = dict(zip(gate.inputs, bits))
            op = solve_dc(gate.build(stim, switching=list(gate.inputs)))
            z = op["z"]
            assert min(abs(z - 0.0), abs(z - 5.0)) < 0.06, (bits, z)
