"""Gate cells: logic, sensitization, sizing, circuit emission."""

import itertools

import pytest

from repro.errors import NetlistError
from repro.gates import Gate, Leaf
from repro.spice import solve_dc
from repro.tech import Sizing, default_process


@pytest.fixture(scope="module")
def process():
    return default_process()


class TestLogic:
    def test_nand3_truth_table(self, process):
        gate = Gate.nand(3, process)
        for bits in itertools.product((True, False), repeat=3):
            assignment = dict(zip("abc", bits))
            assert gate.logic_output(assignment) == (not all(bits))

    def test_nor2_truth_table(self, process):
        gate = Gate.nor(2, process)
        for bits in itertools.product((True, False), repeat=2):
            assignment = dict(zip("ab", bits))
            assert gate.logic_output(assignment) == (not any(bits))

    def test_aoi21_truth_table(self, process):
        gate = Gate.aoi21(process)
        for a, b, c in itertools.product((True, False), repeat=3):
            expected = not ((a and b) or c)
            assert gate.logic_output({"a": a, "b": b, "c": c}) == expected

    def test_oai21_truth_table(self, process):
        gate = Gate.oai21(process)
        for a, b, c in itertools.product((True, False), repeat=3):
            expected = not ((a or b) and c)
            assert gate.logic_output({"a": a, "b": b, "c": c}) == expected

    def test_output_direction_inverting(self, process):
        gate = Gate.nand(2, process)
        assert gate.output_direction("rise") == "fall"
        assert gate.output_direction("fall") == "rise"


class TestSensitization:
    def test_nand_side_inputs_high(self, process):
        gate = Gate.nand(3, process)
        assert gate.sensitizing_levels(["a"]) == {"b": True, "c": True}

    def test_nor_side_inputs_low(self, process):
        gate = Gate.nor(3, process)
        assert gate.sensitizing_levels(["b"]) == {"a": False, "c": False}

    def test_aoi21_single_input(self, process):
        gate = Gate.aoi21(process)
        levels = gate.sensitizing_levels(["a"])
        # a controls only when b=1 and c=0.
        assert levels == {"b": True, "c": False}

    def test_unknown_input_rejected(self, process):
        gate = Gate.nand(2, process)
        with pytest.raises(NetlistError):
            gate.sensitizing_levels(["z"])

    def test_empty_set_rejected(self, process):
        with pytest.raises(NetlistError):
            Gate.nand(2, process).sensitizing_levels([])


class TestSizing:
    def test_stack_scaling_widens_series(self, process):
        gate = Gate.nand(3, process)
        assert gate.nmos_width("a") == pytest.approx(3 * process.sizing.wn)
        assert gate.pmos_width("a") == pytest.approx(process.sizing.wp)

    def test_nor_scales_pmos(self, process):
        gate = Gate.nor(2, process)
        assert gate.pmos_width("a") == pytest.approx(2 * process.sizing.wp)
        assert gate.nmos_width("a") == pytest.approx(process.sizing.wn)

    def test_stack_scaling_off(self, process):
        gate = Gate.nand(3, process, stack_scaling=False)
        assert gate.nmos_width("a") == pytest.approx(process.sizing.wn)

    def test_custom_sizing(self, process):
        sizing = Sizing(wn=1e-6, wp=2e-6, length=1e-6)
        gate = Gate.inverter(process, sizing=sizing)
        assert gate.nmos_width("a") == pytest.approx(1e-6)

    def test_strengths(self, process):
        gate = Gate.inverter(process)
        assert gate.strength_n() == pytest.approx(
            process.nmos.strength(process.sizing.wn, process.sizing.length))


class TestBuild:
    def test_nand2_dc_levels(self, process):
        gate = Gate.nand(2, process)
        for a, b in itertools.product((0.0, 5.0), repeat=2):
            circuit = gate.build({"a": a, "b": b}, switching=["a", "b"])
            op = solve_dc(circuit)
            expected = 0.0 if (a > 2.5 and b > 2.5) else 5.0
            assert op["z"] == pytest.approx(expected, abs=0.02), (a, b)

    def test_default_levels_sensitize(self, process):
        gate = Gate.nand(3, process)
        circuit = gate.build({"a": 5.0})
        op = solve_dc(circuit)
        # b and c default high; a high -> output low.
        assert op["z"] == pytest.approx(0.0, abs=0.02)

    def test_aoi21_dc_levels(self, process):
        gate = Gate.aoi21(process)
        for a, b, c in itertools.product((0.0, 5.0), repeat=3):
            circuit = gate.build({"a": a, "b": b, "c": c},
                                 switching=["a", "b", "c"])
            op = solve_dc(circuit)
            logic = not ((a > 2.5 and b > 2.5) or c > 2.5)
            assert op["z"] == pytest.approx(5.0 if logic else 0.0, abs=0.05)

    def test_load_override(self, process):
        gate = Gate.nand(2, process, load=100e-15)
        circuit = gate.build({"a": 0.0}, load=55e-15)
        compiled = circuit.compile()
        loads = [c for a, b, c in compiled.capacitors]
        assert any(abs(c - 55e-15) < 1e-20 for c in loads)

    def test_instantiate_into_shared_circuit(self, process):
        from repro.spice import Circuit
        gate = Gate.inverter(process)
        circuit = Circuit("two-inv")
        circuit.add_vsource("vvdd", "vdd", process.vdd)
        circuit.add_vsource("vin", "nin", 0.0)
        gate.instantiate_into(circuit, "u1", {"a": "nin", "z": "mid"})
        gate.instantiate_into(circuit, "u2", {"a": "mid", "z": "nout"})
        circuit.add_capacitor("c1", "mid", "0", 1e-13)
        circuit.add_capacitor("c2", "nout", "0", 1e-13)
        op = solve_dc(circuit)
        assert op["mid"] == pytest.approx(5.0, abs=0.02)
        assert op["nout"] == pytest.approx(0.0, abs=0.02)

    def test_instantiate_into_missing_net(self, process):
        from repro.spice import Circuit
        gate = Gate.inverter(process)
        circuit = Circuit()
        circuit.add_vsource("vvdd", "vdd", process.vdd)
        with pytest.raises(NetlistError):
            gate.instantiate_into(circuit, "u1", {"a": "nin"})


class TestValidation:
    def test_reserved_input_names(self, process):
        with pytest.raises(NetlistError):
            Gate("bad", Leaf("vdd"), process)

    def test_output_collision(self, process):
        with pytest.raises(NetlistError):
            Gate("bad", Leaf("z"), process)

    def test_negative_load(self, process):
        with pytest.raises(NetlistError):
            Gate.nand(2, process, load=-1e-15)

    def test_input_count_bounds(self, process):
        with pytest.raises(NetlistError):
            Gate.nand(0, process)

    def test_cache_key_distinguishes_topologies(self, process):
        nand = Gate.nand(2, process)
        nor = Gate.nor(2, process)
        assert nand.cache_key()["topology"] != nor.cache_key()["topology"]

    def test_cache_key_includes_load(self, process):
        g1 = Gate.nand(2, process, load=50e-15)
        g2 = Gate.nand(2, process, load=100e-15)
        assert g1.cache_key() != g2.cache_key()
