"""Series/parallel network expressions: duality, logic, depths."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.gates import Leaf, Parallel, Series, conducts, dual, leaves, series_depths
from repro.gates.topology import describe


def random_network(draw_names, depth=0):
    """Hypothesis strategy for random series/parallel trees."""
    leaf = st.builds(Leaf, st.sampled_from(draw_names))
    if depth >= 3:
        return leaf
    sub = st.deferred(lambda: random_network(draw_names, depth + 1))
    return st.one_of(
        leaf,
        st.builds(lambda cs: Series(*cs), st.lists(sub, min_size=1, max_size=3)),
        st.builds(lambda cs: Parallel(*cs), st.lists(sub, min_size=1, max_size=3)),
    )


class TestConstruction:
    def test_leaf_requires_name(self):
        with pytest.raises(NetlistError):
            Leaf("")

    def test_composites_require_children(self):
        with pytest.raises(NetlistError):
            Series()

    def test_rejects_non_network_children(self):
        with pytest.raises(NetlistError):
            Series("a")  # type: ignore[arg-type]

    def test_flattening(self):
        assert Series(Series(Leaf("a"), Leaf("b")), Leaf("c")) == \
            Series(Leaf("a"), Leaf("b"), Leaf("c"))
        assert Parallel(Parallel(Leaf("a")), Leaf("b")) == \
            Parallel(Leaf("a"), Leaf("b"))

    def test_no_cross_flattening(self):
        nested = Series(Parallel(Leaf("a"), Leaf("b")), Leaf("c"))
        assert len(nested.children) == 2

    def test_equality_and_hash(self):
        a = Series(Leaf("a"), Leaf("b"))
        b = Series(Leaf("a"), Leaf("b"))
        assert a == b and hash(a) == hash(b)
        assert a != Parallel(Leaf("a"), Leaf("b"))


class TestDual:
    def test_nand_to_parallel(self):
        pd = Series(Leaf("a"), Leaf("b"), Leaf("c"))
        assert dual(pd) == Parallel(Leaf("a"), Leaf("b"), Leaf("c"))

    def test_aoi(self):
        pd = Parallel(Series(Leaf("a"), Leaf("b")), Leaf("c"))
        assert dual(pd) == Series(Parallel(Leaf("a"), Leaf("b")), Leaf("c"))

    def test_involution(self):
        pd = Series(Parallel(Leaf("a"), Leaf("b")), Leaf("c"))
        assert dual(dual(pd)) == pd

    @given(random_network(["a", "b", "c", "d"]))
    def test_de_morgan_complementarity(self, tree):
        """The fundamental CMOS property: for every input assignment,
        dual(T) with inverted inputs conducts iff T does not."""
        names = sorted(set(leaves(tree)))
        pu = dual(tree)
        for bits in itertools.product((True, False), repeat=len(names)):
            assignment = dict(zip(names, bits))
            inverted = {k: not v for k, v in assignment.items()}
            assert conducts(pu, inverted) == (not conducts(tree, assignment))


class TestLogic:
    def test_series_is_and(self):
        tree = Series(Leaf("a"), Leaf("b"))
        assert conducts(tree, {"a": True, "b": True})
        assert not conducts(tree, {"a": True, "b": False})

    def test_parallel_is_or(self):
        tree = Parallel(Leaf("a"), Leaf("b"))
        assert conducts(tree, {"a": False, "b": True})
        assert not conducts(tree, {"a": False, "b": False})

    def test_missing_assignment_raises(self):
        with pytest.raises(NetlistError):
            conducts(Leaf("a"), {})


class TestDepthsAndNames:
    def test_leaves_order(self):
        tree = Series(Leaf("a"), Parallel(Leaf("b"), Leaf("c")), Leaf("a"))
        assert leaves(tree) == ["a", "b", "c", "a"]

    def test_series_depths_nand3(self):
        tree = Series(Leaf("a"), Leaf("b"), Leaf("c"))
        assert series_depths(tree) == {"a": 3, "b": 3, "c": 3}

    def test_series_depths_parallel(self):
        tree = Parallel(Leaf("a"), Leaf("b"))
        assert series_depths(tree) == {"a": 1, "b": 1}

    def test_series_depths_aoi21(self):
        tree = Parallel(Series(Leaf("a"), Leaf("b")), Leaf("c"))
        assert series_depths(tree) == {"a": 2, "b": 2, "c": 1}

    def test_describe_canonical(self):
        tree = Parallel(Series(Leaf("a"), Leaf("b")), Leaf("c"))
        assert describe(tree) == "((a.b)|c)"
        assert describe(Leaf("x")) == "x"
