"""Request validation, signatures and the shared CLI/serve language."""

import pytest

from repro.errors import ReproError
from repro.serve.protocol import (
    BadRequest,
    build_gate,
    parse_characterize_request,
    parse_delay_request,
    parse_edge_spec,
)

GOOD = {"gate": "nand3", "process": "default", "load": "100f",
        "mode": "oracle", "correction": "paper",
        "edges": ["a:fall:500ps", "b:fall:700ps:50ps"]}


def query(**overrides):
    obj = dict(GOOD)
    obj.update(overrides)
    return obj


class TestDelayParsing:
    def test_good_request_parses(self):
        q = parse_delay_request(GOOD)
        assert q.gate == "nand3"
        assert q.mode == "oracle"
        assert [pin for pin, _ in q.edges] == ["a", "b"]
        a = dict(q.edges)["a"]
        assert a.direction == "fall"
        assert a.tau == pytest.approx(500e-12)

    def test_defaults_match_the_cli(self):
        q = parse_delay_request({"edges": ["a:fall:500ps"]})
        assert (q.gate, q.process, q.mode, q.correction) == (
            "nand3", "default", "oracle", "paper")
        assert q.load == pytest.approx(100e-15)

    def test_edge_objects_equal_edge_specs(self):
        via_obj = parse_delay_request(query(edges=[
            {"input": "a", "direction": "fall", "tau": "500ps"},
            {"input": "b", "direction": "fall", "tau": "700ps", "at": "50ps"},
        ]))
        via_spec = parse_delay_request(GOOD)
        assert via_obj == via_spec
        assert via_obj.signature() == via_spec.signature()

    def test_signature_hashes_parsed_values(self):
        """``0.5ns`` and ``500ps`` are one cache entry."""
        a = parse_delay_request(query(edges=["a:fall:500ps"]))
        b = parse_delay_request(query(edges=["a:fall:0.5ns"]))
        assert a.signature() == b.signature()

    def test_signature_separates_correction(self):
        a = parse_delay_request(query(correction="paper"))
        b = parse_delay_request(query(correction="off"))
        assert a.signature() != b.signature()

    def test_signature_keeps_edge_order(self):
        """Edge order is the CLI's ``--edge`` order; two orders are two
        requests, never silently merged."""
        a = parse_delay_request(query(edges=["a:fall:500ps", "b:fall:500ps"]))
        b = parse_delay_request(query(edges=["b:fall:500ps", "a:fall:500ps"]))
        assert a.signature() != b.signature()


class TestDelayRejections:
    @pytest.mark.parametrize("bad", [
        None, 42, "delay please", ["a:fall:500ps"],
    ])
    def test_non_object_request(self, bad):
        with pytest.raises(BadRequest):
            parse_delay_request(bad)

    @pytest.mark.parametrize("field,value", [
        ("gate", "xor9"),
        ("process", "tsmc7"),
        ("mode", "psychic"),
        ("correction", "maybe"),
        ("load", "100 parsecs"),
        ("load", True),
        ("edges", []),
        ("edges", "a:fall:500ps"),
        ("edges", ["a:fall"]),
        ("edges", ["a:sideways:500ps"]),
        ("edges", ["z:fall:500ps"]),
        ("edges", ["a:fall:500ps", "a:rise:200ps"]),
        ("edges", [{"input": "a", "direction": "fall"}]),
        ("edges", [7]),
    ])
    def test_invalid_field_raises_bad_request(self, field, value):
        with pytest.raises(BadRequest):
            parse_delay_request(query(**{field: value}))

    def test_message_names_the_unknown_pin(self):
        with pytest.raises(BadRequest, match="'z' is not an input"):
            parse_delay_request(query(edges=["z:fall:500ps"]))


class TestCharacterizeParsing:
    def test_good_request(self):
        q = parse_characterize_request(
            {"gate": "inv", "load": "50f", "fast": True})
        assert q.gate == "inv"
        assert q.fast is True
        assert q.load == pytest.approx(50e-15)

    def test_fast_must_be_boolean(self):
        with pytest.raises(BadRequest):
            parse_characterize_request({"gate": "inv", "fast": "yes"})

    def test_signatures_separate_grids(self):
        fast = parse_characterize_request({"gate": "inv", "fast": True})
        full = parse_characterize_request({"gate": "inv", "fast": False})
        assert fast.signature() != full.signature()


class TestSharedLanguage:
    @pytest.mark.parametrize("kind,n_inputs", [
        ("nand2", 2), ("nand3", 3), ("nor2", 2), ("inv", 1),
        ("inverter", 1), ("aoi21", 3), ("oai21", 3), ("aoi22", 4),
    ])
    def test_build_gate_kinds(self, kind, n_inputs):
        gate = build_gate(kind, "default", "100f")
        assert gate.n_inputs == n_inputs

    def test_build_gate_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown gate"):
            build_gate("xor9", "default", "100f")

    def test_parse_edge_spec_roundtrip(self):
        pin, edge = parse_edge_spec("b:rise:700ps:50ps")
        assert pin == "b"
        assert edge.direction == "rise"
        assert edge.tau == pytest.approx(700e-12)
        assert edge.t_cross == pytest.approx(50e-12)

    def test_parse_edge_spec_rejects_wrong_arity(self):
        with pytest.raises(ReproError, match="must be PIN:DIR:TAU"):
            parse_edge_spec("a:fall")
