"""The shot broker: lane-fill correctness and scalar bit-identity."""

import threading

import numpy as np
import pytest

import repro.serve.coalesce as coalesce_mod
from repro.charlib.library import cached_thresholds
from repro.charlib.simulate import (
    get_shot_router,
    multi_input_response,
    set_shot_router,
)
from repro.errors import MeasurementError
from repro.serve.coalesce import ShotBroker
from repro.waveform import Edge

TAUS = (310e-12, 540e-12, 870e-12)


@pytest.fixture
def inv_thresholds(inverter):
    return cached_thresholds(inverter)


@pytest.fixture
def batch_spy(monkeypatch):
    """Record every batch-kernel call the broker makes (lane sizes)."""
    real = coalesce_mod.multi_input_response_batch
    lanes = []

    def spy(gate, requests, thresholds, **kwargs):
        lanes.append(len(requests))
        return real(gate, requests, thresholds, **kwargs)

    monkeypatch.setattr(coalesce_mod, "multi_input_response_batch", spy)
    return lanes


@pytest.fixture
def broker():
    # A long gather window makes the flush trigger deterministic: only
    # the all-waiting condition (every active request blocked, arrivals
    # quiet for the short dwell) fires.
    broker = ShotBroker(gather=5.0, dwell=0.05)
    broker.install()
    yield broker
    broker.remove()
    assert get_shot_router() is None


def test_concurrent_requests_fill_one_lane_group(inverter, inv_thresholds,
                                                 batch_spy):
    """Three blocked requests coalesce into exactly one 3-lane batch,
    and every lane's result is bit-identical to the scalar path."""
    scalar = {}  # references computed before any broker is hooked in
    for tau in TAUS:
        scalar[tau] = multi_input_response(
            inverter, {"a": Edge("rise", 0.0, tau)}, inv_thresholds)
    assert batch_spy == []

    broker = ShotBroker(gather=5.0, dwell=0.05)
    broker.install()
    results = {}
    # Pre-registering three active requests makes the flush trigger
    # deterministic: the all-waiting rule fires only once all three
    # submissions are blocked, so they land in one 3-lane batch.
    for _ in range(3):
        broker.enter_active()
    try:
        threads = [
            threading.Thread(
                target=lambda t=tau: results.__setitem__(
                    t, multi_input_response(
                        inverter, {"a": Edge("rise", 0.0, t)},
                        inv_thresholds)))
            for tau in TAUS
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    finally:
        for _ in range(3):
            broker.exit_active()
        broker.remove()

    assert batch_spy == [3], f"expected one 3-lane flush, saw {batch_spy}"
    for tau in TAUS:
        assert results[tau].delay == scalar[tau].delay
        assert results[tau].out_ttime == scalar[tau].out_ttime
        assert results[tau].vmin == scalar[tau].vmin
        assert results[tau].vmax == scalar[tau].vmax
        assert np.array_equal(results[tau].output.values,
                              scalar[tau].output.values)


def test_lone_request_flushes_immediately(inverter, inv_thresholds, broker,
                                          batch_spy):
    """With nobody to coalesce with, a request must not wait out the
    gather window (5 s here) -- the all-waiting rule flushes it alone."""
    shot = multi_input_response(
        inverter, {"a": Edge("fall", 0.0, 450e-12)}, inv_thresholds)
    assert shot.delay > 0
    assert batch_spy == [1]


def test_brokered_errors_match_scalar_semantics(inverter, inv_thresholds,
                                                broker):
    """A bad request re-raises through the broker exactly as scalar."""
    with pytest.raises(MeasurementError, match="not an input"):
        multi_input_response(
            inverter, {"zz": Edge("rise", 0.0, 300e-12)}, inv_thresholds)


def test_stopped_broker_declines_and_scalar_path_runs(inverter,
                                                      inv_thresholds,
                                                      batch_spy):
    broker = ShotBroker(gather=5.0)
    broker.install()
    broker.stop()  # router still hooked, but stopped -> declines
    try:
        shot = multi_input_response(
            inverter, {"a": Edge("rise", 0.0, 520e-12)}, inv_thresholds)
        assert shot.delay > 0
        assert batch_spy == []  # went scalar, no batch call
    finally:
        set_shot_router(None)


def test_remove_only_unhooks_own_router():
    sentinel = object()
    previous = set_shot_router(sentinel)
    try:
        broker = ShotBroker(gather=0.01)
        broker.start()
        broker.remove()  # not the installed router: must leave sentinel
        assert get_shot_router() is sentinel
    finally:
        set_shot_router(previous)
