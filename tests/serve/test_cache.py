"""TTL expiry and LRU eviction semantics of the serve response cache."""

import pytest

from repro.serve.cache import (
    CACHE_MAX_ENV_VAR,
    DEFAULT_CACHE_MAX,
    DEFAULT_TTL,
    TTL_ENV_VAR,
    TtlLruCache,
    serve_cache_max,
    serve_ttl,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


class TestTtl:
    def test_entry_expires_after_ttl(self, clock):
        cache = TtlLruCache(max_entries=8, ttl=10.0, clock=clock)
        cache.put("k", b"v")
        assert cache.get("k") == b"v"
        clock.advance(10.0)
        assert cache.get("k") is None
        assert cache.expirations == 1

    def test_hit_does_not_refresh_ttl(self, clock):
        """A hot key still expires ``ttl`` after it was *stored* --
        recency refreshes LRU order, never lifetime."""
        cache = TtlLruCache(max_entries=8, ttl=10.0, clock=clock)
        cache.put("k", b"v")
        for _ in range(5):
            clock.advance(1.9)
            assert cache.get("k") == b"v"
        clock.advance(1.0)  # 10.5s after the put
        assert cache.get("k") is None

    def test_zero_ttl_never_expires(self, clock):
        cache = TtlLruCache(max_entries=8, ttl=0.0, clock=clock)
        cache.put("k", b"v")
        clock.advance(1e9)
        assert cache.get("k") == b"v"

    def test_purge_expired_sweeps_everything_dead(self, clock):
        cache = TtlLruCache(max_entries=8, ttl=10.0, clock=clock)
        cache.put("old", b"1")
        clock.advance(6.0)
        cache.put("new", b"2")
        clock.advance(5.0)
        assert cache.purge_expired() == 1
        assert len(cache) == 1
        assert cache.get("new") == b"2"


class TestLru:
    def test_eviction_drops_least_recently_used(self, clock):
        cache = TtlLruCache(max_entries=2, ttl=0.0, clock=clock)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # refresh a's recency
        cache.put("c", b"3")           # evicts b, the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        assert cache.evictions == 1

    def test_overwrite_does_not_evict(self, clock):
        cache = TtlLruCache(max_entries=2, ttl=0.0, clock=clock)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("a", b"updated")
        assert len(cache) == 2
        assert cache.get("a") == b"updated"
        assert cache.evictions == 0

    def test_zero_cap_disables_caching(self, clock):
        cache = TtlLruCache(max_entries=0, ttl=0.0, clock=clock)
        cache.put("a", b"1")
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_stats_account_every_outcome(self, clock):
        cache = TtlLruCache(max_entries=1, ttl=5.0, clock=clock)
        cache.put("a", b"1")
        assert cache.get("a") == b"1"
        assert cache.get("missing") is None
        cache.put("b", b"2")  # evicts a
        clock.advance(5.0)
        assert cache.get("b") is None  # expired
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["evictions"] == 1
        assert stats["expirations"] == 1


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(TTL_ENV_VAR, raising=False)
        monkeypatch.delenv(CACHE_MAX_ENV_VAR, raising=False)
        assert serve_ttl() == DEFAULT_TTL
        assert serve_cache_max() == DEFAULT_CACHE_MAX

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(TTL_ENV_VAR, "12.5")
        monkeypatch.setenv(CACHE_MAX_ENV_VAR, "7")
        assert serve_ttl() == 12.5
        assert serve_cache_max() == 7
        cache = TtlLruCache()
        assert cache.ttl == 12.5
        assert cache.max_entries == 7

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(TTL_ENV_VAR, "soon")
        monkeypatch.setenv(CACHE_MAX_ENV_VAR, "many")
        assert serve_ttl() == DEFAULT_TTL
        assert serve_cache_max() == DEFAULT_CACHE_MAX

    def test_negative_clamps(self, monkeypatch):
        monkeypatch.setenv(TTL_ENV_VAR, "-1")
        monkeypatch.setenv(CACHE_MAX_ENV_VAR, "-4")
        assert serve_ttl() == 0.0
        assert serve_cache_max() == 0
