"""The daemon end to end: caching, bit-identity, transports, shutdown."""

import http.client
import json
import threading
import time

import pytest

from repro.cli import main
from repro.obs.recorder import Recorder, reset_recorder, set_recorder
from repro.serve.cache import TtlLruCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer
from repro.serve.state import ServeState

QUERY = {"gate": "inv", "load": "100f", "edges": ["a:fall:500ps"]}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One warm daemon (HTTP + unix listener) shared by the module."""
    recorder = Recorder()
    set_recorder(recorder)
    sock = str(tmp_path_factory.mktemp("serve") / "repro.sock")
    server = ReproServer(port=0, socket_path=sock,
                         state=ServeState(ttl=300.0, cache_max=128))
    server.start()
    yield server
    server.stop()
    reset_recorder()


@pytest.fixture
def client(server):
    with ServeClient(server.http_endpoint) as client:
        yield client


def test_healthz_reports_warm_state(client):
    health = client.healthz()
    assert health["ok"] is True
    assert health["status"] == "serving"
    assert health["coalescing"] is True
    assert health["in_flight"] >= 1  # this very request
    assert set(health["cache"]) >= {"entries", "hits", "misses"}


def test_repeat_queries_replay_identical_bytes(client):
    s1, h1, b1 = client.delay_raw(QUERY)
    s2, h2, b2 = client.delay_raw(QUERY)
    assert s1 == s2 == 200
    assert h2["x-repro-cache"] == "hit"
    assert b1 == b2  # byte-for-byte, not just equal documents
    document = json.loads(b1)
    assert document["ok"] is True
    assert document["result"]["delay"] > 0
    assert document["result"]["reference"] == "a"


def test_served_report_bit_matches_the_cli(client, capsys):
    """The ``report`` field is exactly what ``repro delay`` prints."""
    document = client.delay(QUERY)
    assert main(["delay", "--gate", "inv", "--load", "100f",
                 "--edge", "a:fall:500ps"]) == 0
    assert document["report"] + "\n" == capsys.readouterr().out


def test_unix_socket_serves_identical_bytes(server, client):
    _, _, via_http = client.delay_raw(QUERY)
    with ServeClient(server.unix_endpoint) as unix_client:
        _, headers, via_unix = unix_client.delay_raw(QUERY)
    assert headers["x-repro-cache"] == "hit"
    assert via_unix == via_http


def test_concurrent_clients_get_identical_bytes(server):
    """Many clients, same query, all in flight together: every response
    is the same bytes (single-flight context build + cached encoding)."""
    query = {"gate": "inv", "load": "100f", "edges": ["a:rise:640ps"]}
    bodies = {}

    def fetch(i):
        with ServeClient(server.http_endpoint) as c:
            bodies[i] = c.delay_raw(query)[2]

    threads = [threading.Thread(target=fetch, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert len(bodies) == 6
    assert len(set(bodies.values())) == 1


def test_multi_query_batch_fans_out(client):
    taus = ["410ps", "520ps", "630ps"]
    batch = {"queries": [
        {"gate": "inv", "load": "100f", "edges": [f"a:fall:{tau}"]}
        for tau in taus
    ]}
    status, headers, body = client.request("POST", "/delay", batch)
    assert status == 200
    document = json.loads(body)
    assert len(document["results"]) == 3
    delays = [r["result"]["delay"] for r in document["results"]]
    assert delays == sorted(delays)  # slower ramps arrive later
    # A second round trip is all cache hits with identical per-query docs.
    status, headers, body2 = client.request("POST", "/delay", batch)
    assert headers["x-repro-cache"] == "hit"
    assert body2 == body


class TestMalformedRequests:
    def test_invalid_json_body_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request("POST", "/delay", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
        finally:
            conn.close()

    def test_missing_content_length_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.putrequest("POST", "/delay")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            conn.close()

    @pytest.mark.parametrize("query,fragment", [
        ({"gate": "xor9", "edges": ["a:fall:500ps"]}, "unknown gate"),
        ({"gate": "inv", "edges": ["z:fall:500ps"]}, "not an input"),
        ({"gate": "inv", "edges": []}, "edges"),
        ({"queries": []}, "non-empty"),
    ])
    def test_bad_schema_is_400(self, client, query, fragment):
        with pytest.raises(ServeError) as excinfo:
            client.delay(query)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)

    def test_unknown_endpoint_is_404(self, client):
        status, _, _ = client.request("GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, client):
        status, _, _ = client.request("GET", "/delay")
        assert status == 405


def test_metrics_scrape_is_openmetrics(client):
    client.delay(QUERY)  # ensure at least one request is on the books
    text = client.metrics()
    assert text.endswith("# EOF\n")
    assert "# TYPE repro_serve_requests counter" in text
    assert "# TYPE repro_serve_request_latency histogram" in text
    assert 'endpoint="delay"' in text
    assert "repro_serve_cache_hits" in text
    assert "repro_serve_coalesce_lane_fill" in text


def test_ttl_expiry_recomputes_identical_bytes():
    """At the state layer: an expired entry recomputes, and because the
    solver is deterministic the recomputed bytes match the originals."""
    state = ServeState()
    clock_now = [1000.0]
    state.responses = TtlLruCache(max_entries=4, ttl=10.0,
                                  clock=lambda: clock_now[0])
    calls = []

    def compute():
        calls.append(1)
        return {"ok": True, "n": "stable"}

    body1, hit1 = state.cached_or_compute("sig", compute)
    body2, hit2 = state.cached_or_compute("sig", compute)
    assert (hit1, hit2) == (False, True)
    clock_now[0] += 11.0
    body3, hit3 = state.cached_or_compute("sig", compute)
    assert hit3 is False
    assert len(calls) == 2
    assert body1 == body2 == body3


def test_drain_completes_inflight_requests(tmp_path):
    """stop() during an in-flight request finishes it (drained=True) and
    then refuses new connections -- the SIGTERM contract."""
    server = ReproServer(port=0, state=ServeState(), coalesce=False)
    server.start()
    outcome = {}

    def slow_query():
        with ServeClient(server.http_endpoint) as c:
            outcome["document"] = c.delay(
                {"gate": "inv", "load": "100f", "edges": ["a:fall:777ps"]})

    thread = threading.Thread(target=slow_query)
    thread.start()
    # Let the request reach the handler before pulling the plug.
    deadline = time.monotonic() + 10.0
    while server.app.in_flight == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    assert server.app.in_flight > 0
    drained = server.stop()
    thread.join(timeout=60)
    assert drained is True
    assert outcome["document"]["ok"] is True
    with pytest.raises(OSError):
        http.client.HTTPConnection(
            server.host, server.port, timeout=2).request("GET", "/healthz")
