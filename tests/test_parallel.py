"""The parallel execution layer: worker resolution and deterministic map."""

import os

import pytest

from repro.errors import ReproError
from repro.parallel import (
    BATCH_ENV_VAR,
    WORKERS_ENV_VAR,
    parallel_map,
    resolve_batch,
    resolve_workers,
)


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers() == 0

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers() == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_negative_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ReproError):
            resolve_workers()

    def test_blank_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "  ")
        assert resolve_workers() == 0


class TestResolveBatch:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV_VAR, raising=False)
        assert resolve_batch() == 0

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV_VAR, "32")
        assert resolve_batch() == 32

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV_VAR, "32")
        assert resolve_batch(8) == 8
        assert resolve_batch(0) == 0

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV_VAR, "lots")
        with pytest.raises(ReproError):
            resolve_batch()

    def test_negative_raises(self):
        with pytest.raises(ReproError):
            resolve_batch(-4)

    def test_blank_env_is_scalar(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV_VAR, "  ")
        assert resolve_batch() == 0


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, range(7), workers=0) == [
            x * x for x in range(7)
        ]

    def test_parallel_matches_serial(self):
        items = list(range(11))
        assert (parallel_map(_square, items, workers=2)
                == parallel_map(_square, items, workers=0))

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [5], workers=4) == [25]

    def test_env_var_controls_fanout(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        assert parallel_map(_square, range(5)) == [x * x for x in range(5)]

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError):
            parallel_map(_raise_on_three, range(5), workers=0)

    def test_parallel_exception_propagates(self):
        with pytest.raises(ValueError):
            parallel_map(_raise_on_three, range(5), workers=2)

    def test_chunksize(self):
        items = list(range(10))
        assert parallel_map(_square, items, workers=2, chunksize=4) == [
            x * x for x in items
        ]
