"""Unit parsing and formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    amps,
    farads,
    format_quantity,
    parse_quantity,
    seconds,
    volts,
)


class TestParseQuantity:
    @pytest.mark.parametrize("text,expected", [
        ("500ps", 5e-10),
        ("1.2ns", 1.2e-9),
        ("100f", 1e-13),
        ("100fF", 1e-13),
        ("50pF", 5e-11),
        ("3.3V", 3.3),
        ("3.3v", 3.3),
        ("0.8um", 0.8e-6),
        ("2MEG", 2e6),
        ("2MEGohm", 2e6),
        ("4.7k", 4.7e3),
        ("1m", 1e-3),
        ("10uA", 1e-5),
        ("1x", 1e6),
        ("7", 7.0),
        ("-2.5e-3", -2.5e-3),
        ("+3p", 3e-12),
        (".5n", 0.5e-9),
        ("1e3", 1000.0),
        ("2GHz", 2e9),
        ("100a", 1e-16),
        ("1T", 1e12),
    ])
    def test_values(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected, rel=1e-12)

    def test_numbers_pass_through(self):
        assert parse_quantity(3.5) == 3.5
        assert parse_quantity(2) == 2.0

    def test_spice_prefix_beats_unit_letter(self):
        # "100f" must be femto even when farads are expected -- the bug
        # class that motivated this rule produced a 100 F load.
        assert parse_quantity("100f", unit="F") == pytest.approx(1e-13)
        assert parse_quantity("1m", unit="s") == pytest.approx(1e-3)

    def test_unit_validation_accepts_matching(self):
        assert parse_quantity("5ns", unit="s") == pytest.approx(5e-9)

    def test_unit_validation_rejects_mismatch(self):
        with pytest.raises(UnitError):
            parse_quantity("5V", unit="s")

    @pytest.mark.parametrize("bad", ["", "abc", "1.2.3", "5 5", "1q", "nan"])
    def test_malformed(self, bad):
        with pytest.raises(UnitError):
            parse_quantity(bad)

    def test_whitespace_tolerated(self):
        assert parse_quantity("  500 ps ".replace(" ps", "ps")) == pytest.approx(5e-10)

    def test_none_rejected(self):
        with pytest.raises(UnitError):
            parse_quantity(None)  # type: ignore[arg-type]

    def test_bool_rejected_as_number(self):
        # bools are ints in Python; we refuse them to catch bugs.
        with pytest.raises(UnitError):
            parse_quantity(True)  # type: ignore[arg-type]


class TestConvenienceParsers:
    def test_seconds(self):
        assert seconds("2ns") == pytest.approx(2e-9)

    def test_volts(self):
        assert volts("1.8V") == pytest.approx(1.8)

    def test_farads(self):
        assert farads("100f") == pytest.approx(1e-13)

    def test_amps(self):
        assert amps("3mA") == pytest.approx(3e-3)


class TestFormatQuantity:
    @pytest.mark.parametrize("value,unit,expected", [
        (5e-10, "s", "500ps"),
        (1e-13, "F", "100fF"),
        (0.0, "s", "0s"),
        (1.0, "V", "1V"),
        (2.5e3, "Ohm", "2.5kOhm"),
        (-3e-9, "s", "-3ns"),
    ])
    def test_values(self, value, unit, expected):
        assert format_quantity(value, unit) == expected

    def test_non_finite(self):
        assert "inf" in format_quantity(math.inf, "s")
        assert "nan" in format_quantity(math.nan, "s")

    def test_digits(self):
        assert format_quantity(123.456e-12, "s", digits=2) == "120ps"

    @given(st.floats(min_value=1e-17, max_value=1e13))
    def test_roundtrip_positive(self, value):
        text = format_quantity(value, "s", digits=12)
        assert parse_quantity(text, unit="s") == pytest.approx(value, rel=1e-9)

    @given(st.floats(min_value=-1e12, max_value=-1e-15))
    def test_roundtrip_negative(self, value):
        text = format_quantity(value, "s", digits=12)
        assert parse_quantity(text, unit="s") == pytest.approx(value, rel=1e-9)
