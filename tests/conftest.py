"""Shared fixtures.

Heavy artifacts (thresholds, characterized libraries) are session-scoped
and go through the on-disk characterization cache (``.repro_cache/`` by
default), so the first run pays for the simulations and later runs are
fast.
"""

from __future__ import annotations

import pytest

from repro import Gate, default_process
from repro.charlib import GateLibrary
from repro.charlib.library import cached_thresholds
from repro.core import DelayCalculator
from repro.obs.flight import FLIGHT_DIR_ENV_VAR


@pytest.fixture(autouse=True)
def _flight_dumps_to_tmp(tmp_path, monkeypatch):
    """Route flight-recorder dumps into the test's tmp dir.

    ``REPRO_FLIGHT_DIR`` defaults to the working directory, so chaos and
    solver-failure tests used to litter the repo root with
    ``flight_*.json`` postmortems.  Tests that care about dump placement
    still can (and do) override the variable themselves.
    """
    monkeypatch.setenv(FLIGHT_DIR_ENV_VAR, str(tmp_path / "flight"))


@pytest.fixture(scope="session")
def process():
    return default_process()


@pytest.fixture(scope="session")
def nand3(process):
    return Gate.nand(3, process, load=100e-15)


@pytest.fixture(scope="session")
def nand2(process):
    return Gate.nand(2, process, load=100e-15)


@pytest.fixture(scope="session")
def nor2(process):
    return Gate.nor(2, process, load=100e-15)


@pytest.fixture(scope="session")
def inverter(process):
    return Gate.inverter(process, load=100e-15)


@pytest.fixture(scope="session")
def thresholds(nand3):
    return cached_thresholds(nand3)


@pytest.fixture(scope="session")
def oracle_library(nand3):
    return GateLibrary.characterize(nand3, mode="oracle")


@pytest.fixture(scope="session")
def calculator(oracle_library):
    return DelayCalculator(oracle_library)
