"""Shared fixtures.

Heavy artifacts (thresholds, characterized libraries) are session-scoped
and go through the on-disk characterization cache (``.repro_cache/`` by
default), so the first run pays for the simulations and later runs are
fast.
"""

from __future__ import annotations

import pytest

from repro import Gate, default_process
from repro.charlib import GateLibrary
from repro.charlib.library import cached_thresholds
from repro.core import DelayCalculator


@pytest.fixture(scope="session")
def process():
    return default_process()


@pytest.fixture(scope="session")
def nand3(process):
    return Gate.nand(3, process, load=100e-15)


@pytest.fixture(scope="session")
def nand2(process):
    return Gate.nand(2, process, load=100e-15)


@pytest.fixture(scope="session")
def nor2(process):
    return Gate.nor(2, process, load=100e-15)


@pytest.fixture(scope="session")
def inverter(process):
    return Gate.inverter(process, load=100e-15)


@pytest.fixture(scope="session")
def thresholds(nand3):
    return cached_thresholds(nand3)


@pytest.fixture(scope="session")
def oracle_library(nand3):
    return GateLibrary.characterize(nand3, mode="oracle")


@pytest.fixture(scope="session")
def calculator(oracle_library):
    return DelayCalculator(oracle_library)
