"""Public-API surface: everything advertised imports and is documented."""

import importlib
import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", [
        n for n in dir(repro)
        if not n.startswith("_") and n in getattr(repro, "__all__", [])
    ])
    def test_public_objects_documented(self, name):
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


class TestSubpackages:
    PACKAGES = [
        "repro.tech", "repro.spice", "repro.waveform", "repro.gates",
        "repro.vtc", "repro.charlib", "repro.models", "repro.core",
        "repro.inertial", "repro.baselines", "repro.timing",
        "repro.interconnect", "repro.experiments", "repro.resilience",
        "repro.obs",
    ]

    @pytest.mark.parametrize("package", PACKAGES)
    def test_importable_with_docstring_and_all(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 40
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_exported_callables_documented(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"


class TestCliEntryPoint:
    def test_module_runnable(self):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "experiment" in proc.stdout
