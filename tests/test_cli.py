"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["vtc"],
            ["delay", "--edge", "a:fall:1ns"],
            ["characterize", "--output", "x.json"],
            ["validate"],
            ["experiment", "e5"],
            ["glitch"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]


class TestCommands:
    def test_vtc_inverter(self, capsys):
        assert main(["vtc", "--gate", "inv"]) == 0
        out = capsys.readouterr().out
        assert "vil" in out and "selected" in out

    def test_delay_two_edges(self, capsys):
        code = main([
            "delay", "--gate", "nand2",
            "--edge", "a:fall:400ps",
            "--edge", "b:fall:150ps:100ps",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dominant" in out
        assert "delay:" in out

    def test_delay_bad_edge_spec(self, capsys):
        assert main(["delay", "--edge", "a-fall-1ns"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_gate(self, capsys):
        assert main(["vtc", "--gate", "xor9"]) == 1

    def test_experiment_e5(self, capsys):
        assert main(["experiment", "e5"]) == 0
        assert "storage" in capsys.readouterr().out

    def test_characterize_fast(self, tmp_path, capsys):
        out_file = tmp_path / "inv.json"
        code = main([
            "characterize", "--gate", "inv", "--fast",
            "--output", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["singles"]

    def test_validate_small(self, capsys, monkeypatch):
        # Shrink the run via argv; 3 configs keeps it quick.
        assert main(["validate", "--configs", "3", "--seed", "5"]) == 0
        assert "Table 5-1" in capsys.readouterr().out

    def test_glitch_command(self, capsys):
        assert main(["glitch", "--gate", "nand2"]) == 0
        assert "inertial" in capsys.readouterr().out


class TestExperimentCommand:
    def test_a4_quick(self, capsys):
        assert main(["experiment", "a4", "--quick"]) == 0
        assert "Cross-gate" in capsys.readouterr().out

    def test_e3(self, capsys):
        assert main(["experiment", "e3"]) == 0
        out = capsys.readouterr().out
        assert "abc" in out


class TestProcessOption:
    def test_submicron_vtc(self, capsys):
        assert main(["vtc", "--gate", "inv", "--process", "submicron"]) == 0
        assert "selected" in capsys.readouterr().out
