"""Pwl waveform construction, evaluation, transforms and crossings."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MeasurementError
from repro.waveform import Pwl, ramp, ramp_crossing_at, step


class TestConstruction:
    def test_basic(self):
        wf = Pwl([0.0, 1.0, 2.0], [0.0, 5.0, 5.0])
        assert len(wf) == 3
        assert wf.t_start == 0.0
        assert wf.t_end == 2.0

    def test_single_point(self):
        wf = Pwl([1.0], [3.0])
        assert wf(0.0) == 3.0
        assert wf(99.0) == 3.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(MeasurementError):
            Pwl([0.0, 1.0], [1.0])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(MeasurementError):
            Pwl([0.0, 1.0, 1.0], [0.0, 1.0, 2.0])
        with pytest.raises(MeasurementError):
            Pwl([0.0, 2.0, 1.0], [0.0, 1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(MeasurementError):
            Pwl([], [])

    def test_rejects_nonfinite(self):
        with pytest.raises(MeasurementError):
            Pwl([0.0, np.inf], [0.0, 1.0])
        with pytest.raises(MeasurementError):
            Pwl([0.0, 1.0], [0.0, np.nan])

    def test_immutable_arrays(self):
        wf = Pwl([0.0, 1.0], [0.0, 5.0])
        with pytest.raises(ValueError):
            wf.times[0] = -1.0

    def test_equality_and_hash(self):
        a = Pwl([0.0, 1.0], [0.0, 5.0])
        b = Pwl([0.0, 1.0], [0.0, 5.0])
        c = Pwl([0.0, 1.0], [0.0, 4.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestEvaluation:
    def test_interpolation(self):
        wf = Pwl([0.0, 2.0], [0.0, 10.0])
        assert wf(1.0) == pytest.approx(5.0)

    def test_clamped_extrapolation(self):
        wf = Pwl([1.0, 2.0], [3.0, 7.0])
        assert wf(0.0) == 3.0
        assert wf(10.0) == 7.0

    def test_vectorized(self):
        wf = Pwl([0.0, 1.0], [0.0, 10.0])
        out = wf(np.array([0.0, 0.5, 1.0, 2.0]))
        assert np.allclose(out, [0.0, 5.0, 10.0, 10.0])

    def test_min_max(self):
        wf = Pwl([0.0, 1.0, 2.0], [1.0, -2.0, 3.0])
        assert wf.min() == -2.0
        assert wf.max() == 3.0

    def test_initial_final(self):
        wf = Pwl([0.0, 1.0], [2.0, 9.0])
        assert wf.initial_value() == 2.0
        assert wf.final_value() == 9.0

    def test_derivative_between(self):
        wf = Pwl([0.0, 2.0], [0.0, 10.0])
        assert wf.derivative_between(0.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(MeasurementError):
            wf.derivative_between(1.0, 1.0)


class TestTransforms:
    def test_shifted(self):
        wf = Pwl([0.0, 1.0], [0.0, 5.0]).shifted(2.0)
        assert wf.t_start == 2.0
        assert wf(2.5) == pytest.approx(2.5)

    def test_shifted_quantity_string(self):
        wf = Pwl([0.0, 1e-9], [0.0, 5.0]).shifted("1ns")
        assert wf.t_start == pytest.approx(1e-9)

    def test_scaled(self):
        wf = Pwl([0.0, 1.0], [1.0, 2.0]).scaled(2.0, offset=1.0)
        assert wf(0.0) == pytest.approx(3.0)
        assert wf(1.0) == pytest.approx(5.0)

    def test_clipped(self):
        wf = Pwl([0.0, 1.0, 2.0], [-1.0, 6.0, 2.0]).clipped(0.0, 5.0)
        assert wf.min() == 0.0
        assert wf.max() == 5.0
        with pytest.raises(MeasurementError):
            wf.clipped(1.0, 0.0)

    def test_windowed(self):
        wf = Pwl([0.0, 2.0], [0.0, 10.0]).windowed(0.5, 1.5)
        assert wf.t_start == pytest.approx(0.5)
        assert wf.t_end == pytest.approx(1.5)
        assert wf(0.5) == pytest.approx(2.5)
        with pytest.raises(MeasurementError):
            wf.windowed(1.0, 1.0)

    def test_resampled(self):
        wf = Pwl([0.0, 1.0], [0.0, 10.0]).resampled([0.0, 0.25, 0.5, 1.0])
        assert len(wf) == 4
        assert wf(0.25) == pytest.approx(2.5)


class TestCrossings:
    def test_rising(self):
        wf = Pwl([0.0, 1.0], [0.0, 10.0])
        assert wf.crossings(5.0, "rise") == [pytest.approx(0.5)]
        assert wf.crossings(5.0, "fall") == []

    def test_falling(self):
        wf = Pwl([0.0, 1.0], [10.0, 0.0])
        assert wf.crossings(2.5, "fall") == [pytest.approx(0.75)]

    def test_both_directions(self):
        wf = Pwl([0.0, 1.0, 2.0], [0.0, 10.0, 0.0])
        hits = wf.crossings(5.0)
        assert len(hits) == 2
        assert hits[0] == pytest.approx(0.5)
        assert hits[1] == pytest.approx(1.5)

    def test_first_and_last(self):
        wf = Pwl([0.0, 1.0, 2.0, 3.0], [0.0, 10.0, 0.0, 10.0])
        assert wf.first_crossing(5.0, "rise") == pytest.approx(0.5)
        assert wf.last_crossing(5.0, "rise") == pytest.approx(2.5)

    def test_missing_raises(self):
        wf = Pwl([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(MeasurementError):
            wf.first_crossing(5.0)
        with pytest.raises(MeasurementError):
            wf.last_crossing(5.0, "fall")

    def test_flat_waveform_never_crosses_its_level(self):
        wf = Pwl([0.0, 1.0], [5.0, 5.0])
        assert wf.crossings(5.0) == []

    @given(level=st.floats(min_value=0.05, max_value=4.95))
    def test_ramp_crossing_matches_analytic(self, level):
        wf = ramp(1e-9, 0.0, 5.0, 2e-9)
        t = wf.first_crossing(level, "rise")
        assert t == pytest.approx(1e-9 + level / 5.0 * 2e-9, rel=1e-9)


class TestBuilders:
    def test_ramp_shape(self):
        wf = ramp("1ns", 0.0, 5.0, "500ps")
        assert wf(0.0) == 0.0
        assert wf(1e-9) == 0.0
        assert wf(1.5e-9) == pytest.approx(5.0)
        assert wf(1.25e-9) == pytest.approx(2.5)

    def test_ramp_falling(self):
        wf = ramp(0.0, 5.0, 0.0, 1e-9)
        assert wf(0.5e-9) == pytest.approx(2.5)

    def test_ramp_rejects_nonpositive_tau(self):
        with pytest.raises(MeasurementError):
            ramp(0.0, 0.0, 5.0, 0.0)

    def test_ramp_t_end_extends(self):
        wf = ramp(0.0, 0.0, 5.0, 1e-9, t_end=5e-9)
        assert wf.t_end == pytest.approx(5e-9)

    def test_step_is_sharp(self):
        wf = step(1e-9, 0.0, 5.0)
        assert wf(1e-9 - 1e-12) == 0.0
        assert wf(1e-9 + 1e-12) == pytest.approx(5.0)

    def test_ramp_crossing_at_places_crossing(self):
        wf = ramp_crossing_at(2e-9, 1.3, v0=0.0, v1=5.0, tau=800e-12)
        assert wf.first_crossing(1.3, "rise") == pytest.approx(2e-9, rel=1e-9)

    def test_ramp_crossing_at_falling(self):
        wf = ramp_crossing_at(2e-9, 3.5, v0=5.0, v1=0.0, tau=800e-12)
        assert wf.first_crossing(3.5, "fall") == pytest.approx(2e-9, rel=1e-9)

    def test_ramp_crossing_at_level_outside_range(self):
        with pytest.raises(MeasurementError):
            ramp_crossing_at(0.0, 6.0, v0=0.0, v1=5.0, tau=1e-9)

    def test_ramp_crossing_at_flat_rejected(self):
        with pytest.raises(MeasurementError):
            ramp_crossing_at(0.0, 1.0, v0=2.0, v1=2.0, tau=1e-9)


@given(
    # Integer picoseconds keep segment lengths sanely scaled -- crossing
    # interpolation is not meaningful across denormal-length segments.
    times=st.lists(st.integers(min_value=-10_000, max_value=10_000),
                   min_size=2, max_size=12, unique=True),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_crossing_values_lie_on_waveform(times, seed):
    """Property: at every reported crossing time, the waveform evaluates
    to (approximately) the crossing level."""
    rng = np.random.default_rng(seed)
    t = np.sort(np.asarray(times, dtype=float)) * 1e-12
    v = rng.uniform(-5.0, 5.0, size=len(t))
    wf = Pwl(t, v)
    level = float(rng.uniform(-4.0, 4.0))
    for crossing in wf.crossings(level):
        assert wf(crossing) == pytest.approx(level, abs=1e-6)
