"""Edge descriptors and direction vocabulary."""

import pytest

from repro.errors import MeasurementError
from repro.waveform import Edge, FALL, RISE, Thresholds, opposite
from repro.waveform.edges import normalize_direction


class TestDirections:
    @pytest.mark.parametrize("alias,expected", [
        ("rise", RISE), ("RISING", RISE), ("r", RISE), ("up", RISE),
        ("fall", FALL), ("Falling", FALL), ("f", FALL), ("down", FALL),
    ])
    def test_aliases(self, alias, expected):
        assert normalize_direction(alias) == expected

    def test_unknown_rejected(self):
        with pytest.raises(MeasurementError):
            normalize_direction("sideways")
        with pytest.raises(MeasurementError):
            normalize_direction(None)  # type: ignore[arg-type]

    def test_opposite(self):
        assert opposite(RISE) == FALL
        assert opposite("falling") == RISE


class TestEdge:
    def test_construction_normalizes(self):
        edge = Edge("rising", "1ns", "500ps")
        assert edge.direction == RISE
        assert edge.t_cross == pytest.approx(1e-9)
        assert edge.tau == pytest.approx(5e-10)
        assert edge.is_rising

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(MeasurementError):
            Edge(RISE, 0.0, 0.0)
        with pytest.raises(MeasurementError):
            Edge(RISE, 0.0, -1e-12)

    def test_shifted(self):
        edge = Edge(FALL, 1e-9, 1e-10).shifted(5e-10)
        assert edge.t_cross == pytest.approx(1.5e-9)
        assert edge.tau == pytest.approx(1e-10)

    def test_separation_sign_convention(self):
        early = Edge(FALL, 0.0, 1e-10)
        late = Edge(FALL, 2e-10, 1e-10)
        # s_ij measured from i: positive when j switches later.
        assert early.separation_from(late) == pytest.approx(2e-10)
        assert late.separation_from(early) == pytest.approx(-2e-10)

    def test_describe_mentions_direction(self):
        text = Edge(RISE, 1e-9, 2e-10).describe()
        assert "rise" in text


class TestEdgeToPwl:
    @pytest.fixture
    def thresholds(self):
        return Thresholds(vil=1.3, vih=3.5, vdd=5.0)

    def test_rising_edge_crosses_vil_at_t_cross(self, thresholds):
        edge = Edge(RISE, 2e-9, 400e-12)
        wf = edge.to_pwl(thresholds)
        assert wf.first_crossing(thresholds.vil, RISE) == pytest.approx(2e-9, rel=1e-9)
        assert wf.initial_value() == 0.0
        assert wf.final_value() == pytest.approx(5.0)

    def test_falling_edge_crosses_vih_at_t_cross(self, thresholds):
        edge = Edge(FALL, 2e-9, 400e-12)
        wf = edge.to_pwl(thresholds)
        assert wf.first_crossing(thresholds.vih, FALL) == pytest.approx(2e-9, rel=1e-9)
        assert wf.initial_value() == pytest.approx(5.0)
        assert wf.final_value() == 0.0

    def test_full_swing_duration_is_tau(self, thresholds):
        edge = Edge(RISE, 1e-9, 600e-12)
        wf = edge.to_pwl(thresholds)
        span = wf.first_crossing(4.999, RISE) - wf.first_crossing(0.001, RISE)
        assert span == pytest.approx(600e-12, rel=1e-2)
