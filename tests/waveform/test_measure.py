"""Measurement conventions: thresholds, delays, transition times."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MeasurementError
from repro.waveform import (
    FALL,
    RISE,
    Pwl,
    Thresholds,
    extremum_voltage,
    gate_delay,
    ramp,
    ramp_crossing_at,
    separation,
    timing_threshold,
    transition_time,
)


@pytest.fixture
def thr():
    return Thresholds(vil=1.3, vih=3.5, vdd=5.0, vm=2.5)


class TestThresholds:
    def test_valid(self, thr):
        assert thr.swing == pytest.approx(2.2)
        assert thr.full_swing_factor() == pytest.approx(5.0 / 2.2)

    @pytest.mark.parametrize("vil,vih,vdd", [
        (3.5, 1.3, 5.0),   # inverted
        (0.0, 3.5, 5.0),   # vil at rail
        (1.3, 5.0, 5.0),   # vih at rail
        (1.3, 3.5, 3.0),   # vih above vdd
    ])
    def test_invalid_ordering(self, vil, vih, vdd):
        with pytest.raises(MeasurementError):
            Thresholds(vil=vil, vih=vih, vdd=vdd)

    def test_vm_outside_band_rejected(self):
        with pytest.raises(MeasurementError):
            Thresholds(vil=1.3, vih=3.5, vdd=5.0, vm=0.5)

    def test_describe(self, thr):
        assert "1.3" in thr.describe()

    def test_onset_threshold_rule(self, thr):
        # One rule covers inputs, outputs and separations (Section 2).
        assert timing_threshold(RISE, thr) == thr.vil
        assert timing_threshold(FALL, thr) == thr.vih


class TestTransitionTime:
    def test_rising_full_swing_scaling(self, thr):
        wf = ramp(0.0, 0.0, 5.0, 1e-9)
        # vil->vih takes (3.5-1.3)/5 ns; scaled back to full swing = 1ns.
        assert transition_time(wf, RISE, thr) == pytest.approx(1e-9, rel=1e-9)

    def test_rising_unscaled(self, thr):
        wf = ramp(0.0, 0.0, 5.0, 1e-9)
        expected = (3.5 - 1.3) / 5.0 * 1e-9
        assert transition_time(wf, RISE, thr, scale_to_full_swing=False) == \
            pytest.approx(expected, rel=1e-9)

    def test_falling(self, thr):
        wf = ramp(0.0, 5.0, 0.0, 2e-9)
        assert transition_time(wf, FALL, thr) == pytest.approx(2e-9, rel=1e-9)

    def test_incomplete_transition_raises(self, thr):
        wf = Pwl([0.0, 1e-9], [0.0, 2.0])  # never reaches vih
        with pytest.raises(MeasurementError):
            transition_time(wf, RISE, thr)

    def test_never_started_raises(self, thr):
        wf = Pwl([0.0, 1e-9], [0.0, 0.5])
        with pytest.raises(MeasurementError):
            transition_time(wf, RISE, thr)

    def test_glitch_then_final_transition_uses_last(self, thr):
        # Dip below vih and recover, then a real falling transition.
        wf = Pwl(
            [0.0, 1.0e-9, 1.2e-9, 1.4e-9, 3.0e-9, 4.0e-9],
            [5.0, 3.0, 5.0, 5.0, 5.0, 0.0],
        )
        measured = transition_time(wf, FALL, thr)
        slope_time = (3.5 - 1.3) / 5.0 * 1e-9  # final 5->0 ramp is 1ns
        assert measured == pytest.approx(slope_time * thr.full_swing_factor(),
                                         rel=1e-6)


class TestGateDelay:
    def test_inverting_rising_input(self, thr):
        vin = ramp_crossing_at(1e-9, thr.vil, v0=0.0, v1=5.0, tau=200e-12)
        vout = ramp_crossing_at(1.4e-9, thr.vih, v0=5.0, v1=0.0, tau=300e-12)
        delay = gate_delay(vin, RISE, vout, FALL, thr)
        assert delay == pytest.approx(0.4e-9, rel=1e-9)

    def test_inverting_falling_input(self, thr):
        vin = ramp_crossing_at(2e-9, thr.vih, v0=5.0, v1=0.0, tau=200e-12)
        vout = ramp_crossing_at(2.25e-9, thr.vil, v0=0.0, v1=5.0, tau=300e-12)
        delay = gate_delay(vin, FALL, vout, RISE, thr)
        assert delay == pytest.approx(0.25e-9, rel=1e-9)

    @given(tau=st.floats(min_value=50e-12, max_value=5e-9))
    def test_positive_for_any_input_slew_when_output_fixed(self, tau):
        """The Section-2 property: with onset thresholds, delay stays
        positive no matter how slow the input, as long as the output
        transition begins after the input crosses its onset threshold."""
        thr = Thresholds(vil=1.3, vih=3.5, vdd=5.0)
        vin = ramp_crossing_at(1e-9, thr.vil, v0=0.0, v1=5.0, tau=tau)
        # Output starts falling only once the input reaches Vm > vil.
        t_vm = vin.first_crossing(2.5, RISE)
        vout = ramp(t_vm, 5.0, 0.0, 100e-12)
        assert gate_delay(vin, RISE, vout, FALL, thr) > 0.0


class TestSeparation:
    def test_same_direction(self, thr):
        a = ramp_crossing_at(1e-9, thr.vih, v0=5.0, v1=0.0, tau=200e-12)
        b = ramp_crossing_at(1.3e-9, thr.vih, v0=5.0, v1=0.0, tau=500e-12)
        assert separation(a, FALL, b, FALL, thr) == pytest.approx(0.3e-9, rel=1e-9)

    def test_opposite_direction_uses_each_onset(self, thr):
        a = ramp_crossing_at(1e-9, thr.vih, v0=5.0, v1=0.0, tau=200e-12)
        b = ramp_crossing_at(0.6e-9, thr.vil, v0=0.0, v1=5.0, tau=200e-12)
        assert separation(a, FALL, b, RISE, thr) == pytest.approx(-0.4e-9, rel=1e-9)


class TestExtremumVoltage:
    def test_min_and_max(self):
        wf = Pwl([0.0, 1.0, 2.0], [5.0, 1.0, 4.0])
        assert extremum_voltage(wf, kind="min") == 1.0
        assert extremum_voltage(wf, kind="max") == 5.0

    def test_windowed(self):
        wf = Pwl([0.0, 1.0, 2.0], [5.0, 1.0, 4.0])
        assert extremum_voltage(wf, kind="max", t0=0.9, t1=2.0) == pytest.approx(4.0)

    def test_bad_kind(self):
        wf = Pwl([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(MeasurementError):
            extremum_voltage(wf, kind="median")
