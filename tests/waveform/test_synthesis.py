"""Waveform synthesis from timing quantities."""

import pytest

from repro.errors import MeasurementError
from repro.waveform import (
    Edge,
    FALL,
    RISE,
    Thresholds,
    edge_to_waveform,
    events_to_waveform,
    transition_time,
)


@pytest.fixture
def thr():
    return Thresholds(vil=1.3, vih=3.5, vdd=5.0)


class TestEdgeToWaveform:
    def test_crossing_honoured(self, thr):
        wf = edge_to_waveform(Edge(RISE, 2e-9, 400e-12), thr)
        assert wf.first_crossing(thr.vil, RISE) == pytest.approx(2e-9, rel=1e-9)

    def test_transition_time_roundtrip(self, thr):
        """Measuring the synthesized ramp recovers the edge's tau."""
        tau = 600e-12
        wf = edge_to_waveform(Edge(FALL, 1e-9, tau), thr)
        assert transition_time(wf, FALL, thr) == pytest.approx(tau, rel=1e-9)


class TestEventsToWaveform:
    def test_static(self, thr):
        wf = events_to_waveform(True, [], thr, t_start=0.0, t_end=1e-9)
        assert wf(0.5e-9) == pytest.approx(5.0)

    def test_single_fall(self, thr):
        wf = events_to_waveform(True, [Edge(FALL, 1e-9, 200e-12)], thr)
        assert wf.initial_value() == pytest.approx(5.0)
        assert wf.final_value() == pytest.approx(0.0)
        assert wf.first_crossing(thr.vih, FALL) == pytest.approx(1e-9, rel=1e-9)

    def test_pulse(self, thr):
        wf = events_to_waveform(True, [
            Edge(FALL, 1e-9, 200e-12),
            Edge(RISE, 3e-9, 300e-12),
        ], thr, t_end=5e-9)
        assert wf(2e-9) == pytest.approx(0.0, abs=0.01)
        assert wf.final_value() == pytest.approx(5.0)

    def test_runt_clips_partially(self, thr):
        """Overlapping ramps produce a partial-swing runt, not a crash."""
        wf = events_to_waveform(True, [
            Edge(FALL, 1e-9, 800e-12),
            Edge(RISE, 1.05e-9, 800e-12),
        ], thr, t_end=4e-9)
        assert 0.0 < wf.min() < 5.0
        assert wf.final_value() == pytest.approx(5.0, abs=0.01)

    def test_rejects_non_alternating(self, thr):
        with pytest.raises(MeasurementError):
            events_to_waveform(True, [Edge(RISE, 1e-9, 1e-10)], thr)

    def test_rejects_unordered(self, thr):
        with pytest.raises(MeasurementError):
            events_to_waveform(True, [
                Edge(FALL, 2e-9, 1e-10),
                Edge(RISE, 1e-9, 1e-10),
            ], thr)

    def test_eventsim_output_renders(self, thr, calculator):
        """End-to-end: render an event-simulator net waveform."""
        from repro.timing import EventSimulator, NetWaveform, TimingNetlist

        net = TimingNetlist("render")
        for name in ("i0", "i1", "i2"):
            net.add_input(name)
        net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "out")
        sim = EventSimulator(net)
        result = sim.run({
            "i0": NetWaveform(True, (Edge(FALL, 1e-9, 200e-12),
                                     Edge(RISE, 4e-9, 200e-12))),
            "i1": NetWaveform(True),
            "i2": NetWaveform(True),
        })
        out = result.waveform("out")
        rendered = events_to_waveform(out.initial, list(out.edges),
                                      calculator.thresholds, t_end=8e-9)
        assert rendered.initial_value() == pytest.approx(0.0, abs=0.01)
        assert rendered.max() == pytest.approx(5.0, abs=0.01)
