"""Checkpoint journal: durability, torn-line tolerance, keyed paths."""

import json

import pytest

from repro.resilience import ProgressJournal
from repro.resilience.journal import _digest


class TestRecordAndLoad:
    def test_round_trip(self, tmp_path):
        journal = ProgressJournal(tmp_path / "j.jsonl")
        journal.record(0, [1.0, 2.0])
        journal.record(3, [4.5, 6.0])
        assert journal.load() == {0: [1.0, 2.0], 3: [4.5, 6.0]}
        assert journal.completed_count == 2

    def test_floats_round_trip_bit_identical(self, tmp_path):
        """json serializes floats by repr, so a resumed value must equal
        the original exactly -- this is what makes resume bit-identical."""
        journal = ProgressJournal(tmp_path / "j.jsonl")
        value = 1.1174592339871634e-10
        journal.record(7, value)
        assert journal.load()[7] == value

    def test_decode_hook(self, tmp_path):
        journal = ProgressJournal(tmp_path / "j.jsonl")
        journal.record(1, [1.0, 2.0])
        assert journal.load(decode=tuple) == {1: (1.0, 2.0)}

    def test_missing_file_is_empty(self, tmp_path):
        assert ProgressJournal(tmp_path / "absent.jsonl").load() == {}

    def test_later_record_wins(self, tmp_path):
        journal = ProgressJournal(tmp_path / "j.jsonl")
        journal.record(2, "first")
        journal.record(2, "second")
        assert journal.load() == {2: "second"}


class TestTornWrites:
    def test_torn_final_line_is_skipped(self, tmp_path):
        """A run killed mid-append leaves a truncated last line; the
        journal must shrug and replay only the complete records."""
        path = tmp_path / "j.jsonl"
        journal = ProgressJournal(path)
        journal.record(0, 10.0)
        journal.record(1, 11.0)
        with open(path, "a") as handle:
            handle.write('{"i": 2, "v": 1')  # no closing brace, no newline
        assert journal.load() == {0: 10.0, 1: 11.0}

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n{"i": 4, "v": 7.5}\n{"v": 1.0}\n\n')
        assert ProgressJournal(path).load() == {4: 7.5}

    def test_torn_line_with_invalid_utf8_is_skipped(self, tmp_path):
        """Regression: a crash can tear an append mid-UTF-8-sequence.
        Text-mode iteration raised ``UnicodeDecodeError`` for the whole
        file (outside the per-line guard), so a resume crashed instead
        of recomputing the one torn point."""
        path = tmp_path / "j.jsonl"
        journal = ProgressJournal(path)
        journal.record(0, 10.0)
        journal.record(1, 11.0)
        with open(path, "ab") as handle:
            handle.write(b'{"i": 2, "v": 1.\xc3')  # torn multi-byte char
        assert journal.load() == {0: 10.0, 1: 11.0}

    def test_garbage_bytes_mid_file_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b'{"i": 0, "v": 1.0}\n\xff\xfe\x00garbage\n'
                         b'{"i": 1, "v": 2.0}\n')
        assert ProgressJournal(path).load() == {0: 1.0, 1: 2.0}


class TestClear:
    def test_clear_deletes(self, tmp_path):
        journal = ProgressJournal(tmp_path / "j.jsonl")
        journal.record(0, 1.0)
        journal.clear()
        assert not journal.path.exists()
        assert journal.load() == {}

    def test_clear_is_idempotent(self, tmp_path):
        ProgressJournal(tmp_path / "absent.jsonl").clear()  # no raise


class TestKeyedPaths:
    def test_for_key_is_deterministic_and_kind_scoped(self, tmp_path):
        key = {"schema": 2, "gate": "nand2", "taus": [1e-10, 5e-10]}
        a = ProgressJournal.for_key(tmp_path, "single", key)
        b = ProgressJournal.for_key(tmp_path, "single", dict(key))
        assert a.path == b.path
        assert a.path.parent == tmp_path
        assert a.path.name == f"journal-single-{_digest(key)}.jsonl"
        other_kind = ProgressJournal.for_key(tmp_path, "dual", key)
        assert other_kind.path != a.path

    def test_different_keys_never_collide(self, tmp_path):
        key = {"gate": "nand2", "taus": [1e-10]}
        changed = {"gate": "nand2", "taus": [2e-10]}
        assert (ProgressJournal.for_key(tmp_path, "single", key).path
                != ProgressJournal.for_key(tmp_path, "single", changed).path)

    def test_key_digest_accepts_numpy_scalars(self, tmp_path):
        np = pytest.importorskip("numpy")
        key = {"tau": np.float64(1e-10), "n": np.int64(3)}
        plain = {"tau": 1e-10, "n": 3}
        assert _digest(key) == _digest(plain)
