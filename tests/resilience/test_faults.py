"""The fault-injection harness itself: grammar, firing budgets, hooks."""

import os

import pytest

from repro.errors import ConvergenceError, ReproError
from repro.resilience import FaultInjection, FaultSpec, parse_faults
from repro.resilience import faults


class TestGrammar:
    def test_basic_clause(self):
        (spec,) = parse_faults("point@3")
        assert spec == FaultSpec(kind="point", selector="3", times=1)

    def test_scoped_selector_and_count(self):
        (spec,) = parse_faults("point@dual/7:4")
        assert spec.selector == "dual/7"
        assert spec.times == 4

    def test_always(self):
        (spec,) = parse_faults("crash@2:always")
        assert spec.times is None

    def test_multiple_clauses(self):
        specs = parse_faults("point@1, crash@2:always ,corrupt@vtc:3")
        assert [s.kind for s in specs] == ["point", "crash", "corrupt"]

    def test_empty_spec_is_empty_plan(self):
        assert parse_faults("") == ()

    @pytest.mark.parametrize("bad", [
        "pointat3",           # no @
        "explode@1",          # unknown kind
        "point@",             # empty selector
        "point@3:soon",       # bad count
        "point@3:0",          # count < 1
    ])
    def test_bad_clauses_raise(self, bad):
        with pytest.raises(ReproError):
            parse_faults(bad)

    def test_fault_id_is_filesystem_safe(self):
        (spec,) = parse_faults("point@dual/7")
        assert "/" not in spec.fault_id


class TestFaultInjectionContext:
    def test_sets_and_restores_environment(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        with FaultInjection("point@1") as fi:
            assert os.environ[faults.FAULTS_ENV_VAR] == "point@1"
            assert os.environ[faults.STATE_ENV_VAR] == str(fi.state_dir)
        assert faults.FAULTS_ENV_VAR not in os.environ
        assert faults.STATE_ENV_VAR not in os.environ

    def test_invalid_spec_rejected_eagerly(self):
        with pytest.raises(ReproError):
            FaultInjection("bogus@@")

    def test_state_dir_cleaned_up(self):
        with FaultInjection("point@1") as fi:
            state = fi.state_dir
            assert state.exists()
        assert not state.exists()


class TestFiringBudgets:
    def test_counted_fault_fires_exactly_n_times(self):
        with FaultInjection("point@5:2") as fi:
            for _ in range(2):
                with pytest.raises(ConvergenceError):
                    faults.fire_point("single", 5)
            faults.fire_point("single", 5)  # budget exhausted: no raise
            assert fi.fired_count("point") == 2

    def test_always_fault_never_exhausts(self):
        with FaultInjection("point@5:always"):
            for _ in range(4):
                with pytest.raises(ConvergenceError):
                    faults.fire_point("dual", 5)

    def test_scope_narrowing(self):
        with FaultInjection("point@dual/3:always"):
            faults.fire_point("single", 3)  # wrong scope: no fire
            with pytest.raises(ConvergenceError):
                faults.fire_point("dual", 3)

    def test_bare_index_matches_every_scope(self):
        with FaultInjection("point@3:always"):
            with pytest.raises(ConvergenceError):
                faults.fire_point("single", 3)
            with pytest.raises(ConvergenceError):
                faults.fire_point("dual", 3)

    def test_unmatched_hooks_are_noops(self):
        with FaultInjection("point@3:always"):
            faults.fire_point("single", 4)
            faults.fire_task(3)          # point clause is not a task fault
            faults.fire_transient()

    def test_counted_clause_without_state_dir_raises(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "point@1:1")
        monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
        with pytest.raises(ReproError):
            faults.fire_point("single", 1)

    def test_no_plan_means_every_hook_is_free(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        faults.fire_point("single", 0)
        faults.fire_task(0)
        faults.fire_transient()
        faults.corrupt_after_store("vtc", "/nonexistent/never-touched.json")


class TestSolverFaultHooks:
    """The sparse-factorization and batch-lane hooks added for the
    solver-guardrail chaos legs."""

    def test_sparse_and_lane_clauses_parse(self):
        specs = parse_faults("sparse@factorize:1, lane@2:3")
        assert [s.kind for s in specs] == ["sparse", "lane"]
        assert specs[0].selector == "factorize"
        assert specs[1] == FaultSpec(kind="lane", selector="2", times=3)

    def test_sparse_factorize_raises_linalgerror_within_budget(self):
        np = pytest.importorskip("numpy")
        with FaultInjection("sparse@factorize:1") as fi:
            with pytest.raises(np.linalg.LinAlgError, match="injected"):
                faults.fire_sparse_factorize()
            faults.fire_sparse_factorize()  # budget exhausted: no raise
            assert fi.fired_count("sparse") == 1

    def test_sparse_wildcard_selector_fires(self):
        np = pytest.importorskip("numpy")
        with FaultInjection("sparse@*:always"):
            for _ in range(3):
                with pytest.raises(np.linalg.LinAlgError):
                    faults.fire_sparse_factorize()

    def test_batch_lane_fires_only_for_matching_index(self):
        with FaultInjection("lane@1:1") as fi:
            assert faults.fire_batch_lane(0) is False
            assert faults.fire_batch_lane(1) is True
            assert faults.fire_batch_lane(1) is False  # budget exhausted
            assert faults.fire_batch_lane(2) is False
            assert fi.fired_count("lane") == 1

    def test_batch_lane_wildcard_respects_budget(self):
        with FaultInjection("lane@*:2") as fi:
            assert faults.fire_batch_lane(0) is True
            assert faults.fire_batch_lane(5) is True
            assert faults.fire_batch_lane(5) is False
            assert fi.fired_count("lane") == 2

    def test_no_plan_means_solver_hooks_are_free(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        faults.fire_sparse_factorize()
        assert faults.fire_batch_lane(0) is False


class TestCorruptHook:
    def test_scribbles_matching_kind_only(self, tmp_path):
        target = tmp_path / "vtc-abc.json"
        target.write_text('{"curves": []}')
        other = tmp_path / "single-abc.json"
        other.write_text('{"u": []}')
        with FaultInjection("corrupt@vtc:1"):
            faults.corrupt_after_store("single", other)
            assert other.read_text() == '{"u": []}'
            faults.corrupt_after_store("vtc", target)
        text = target.read_text()
        import json
        with pytest.raises(json.JSONDecodeError):
            json.loads(text)
