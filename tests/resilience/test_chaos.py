"""End-to-end chaos tests: characterization under injected faults.

The scenario from the issue's acceptance criteria: a small but real
single- and dual-input characterization of a NAND2 where three grid
points fail persistently, one worker crashes mid-sweep and one cache
entry is corrupted on disk.  The run must complete, report exactly the
injected losses, keep every surviving table cell bit-identical to a
fault-free run at any worker count, and repair itself under resume.
"""

import numpy as np
import pytest

from repro.charlib.cache import CharacterizationCache
from repro.charlib.dual import DualInputGrid, characterize_dual_input
from repro.charlib.single import SingleInputGrid, characterize_single_input
from repro.resilience import FaultInjection
from repro.resilience.runtime import resilient_map

SGRID = SingleInputGrid(taus=(100e-12, 500e-12, 2000e-12), load_factors=(1.0,))
DGRID = DualInputGrid(tau_refs=(100e-12, 1000e-12), a2=(0.5, 2.0),
                      a3=(-1.0, 0.0, 1.0))

#: Three persistent point faults (one single-input, two dual-input grid
#: points) plus one transient worker crash.
FAULTS = "point@single/1:always,point@dual/3:always,point@dual/7:always,crash@2:1"


def _characterize(gate, thresholds, directory, *, workers=None):
    # Pinned to the scalar (one task per point) path: the crash fault
    # spec targets a task index, and batching deliberately changes task
    # granularity.  Batched degradation parity lives in
    # tests/charlib/test_batched_sweeps.py.
    cache = CharacterizationCache(directory)
    single = characterize_single_input(
        gate, "a", "fall", thresholds, grid=SGRID, cache=cache, workers=workers,
        batch=0,
    )
    dual = characterize_dual_input(
        gate, "a", "b", "fall", thresholds, grid=DGRID, cache=cache,
        workers=workers, batch=0,
    )
    return single, dual, cache


@pytest.fixture(scope="module")
def baseline(nand2, thresholds, tmp_path_factory):
    single, dual, cache = _characterize(
        nand2, thresholds, tmp_path_factory.mktemp("chaos-baseline"),
    )
    return {"single": single, "dual": dual, "cache": cache}


@pytest.fixture(scope="module")
def faulted(nand2, thresholds, tmp_path_factory):
    with FaultInjection(FAULTS) as fi:
        single, dual, cache = _characterize(
            nand2, thresholds, tmp_path_factory.mktemp("chaos-faulted"),
            workers=2,
        )
        fired = {kind: fi.fired_count(kind) for kind in ("point", "crash")}
    return {"single": single, "dual": dual, "cache": cache, "fired": fired}


@pytest.fixture(scope="module")
def serial_faulted(nand2, thresholds, tmp_path_factory):
    with FaultInjection(FAULTS):
        single, dual, _ = _characterize(
            nand2, thresholds, tmp_path_factory.mktemp("chaos-serial"),
        )
    return {"single": single, "dual": dual}


def _dual_failed_mask(health):
    """Boolean mask of table cells lost by the sweep, from the report."""
    mask = np.zeros((len(DGRID.tau_refs), len(DGRID.a2), len(DGRID.a3)),
                    dtype=bool)
    for point in health.failed:
        i = DGRID.tau_refs.index(point.coords["tau_ref"])
        j = DGRID.a2.index(point.coords["a2"])
        k = DGRID.a3.index(point.coords["a3"])
        mask[i, j, k] = True
    return mask


class TestDegradedRunCompletes:
    def test_exactly_the_injected_faults_are_reported(self, faulted):
        single_health = faulted["single"].health
        dual_health = faulted["dual"].health
        assert [p.index for p in single_health.failed] == [1]
        assert single_health.failed[0].coords == {
            "load": pytest.approx(100e-15), "tau": pytest.approx(500e-12),
        }
        assert sorted(p.index for p in dual_health.failed) == [3, 7]
        assert all(p.kind == "error" for p in
                   single_health.failed + dual_health.failed)
        assert faulted["fired"]["crash"] == 1

    def test_dual_failed_cells_are_neighbor_filled(self, faulted):
        health = faulted["dual"].health
        assert health.filled == 4  # 2 points x (delay + ttime tables)
        assert np.isfinite(faulted["dual"]._delay_table).all()
        assert np.isfinite(faulted["dual"]._ttime_table).all()

    def test_crash_recovery_leaves_no_scar(self, faulted):
        """The crashed worker's task was resubmitted and completed: only
        the *point* faults appear in the health reports."""
        kinds = {p.kind for p in (faulted["single"].health.failed
                                  + faulted["dual"].health.failed)}
        assert kinds == {"error"}


class TestBitIdentity:
    def test_surviving_dual_cells_match_baseline_exactly(self, baseline, faulted):
        mask = _dual_failed_mask(faulted["dual"].health)
        for name in ("_delay_table", "_ttime_table"):
            clean = getattr(baseline["dual"], name)
            degraded = getattr(faulted["dual"], name)
            assert np.array_equal(clean[~mask], degraded[~mask])
            # The filled cells are estimates, not the true measurements.
            assert not np.array_equal(clean[mask], degraded[mask])

    def test_surviving_single_samples_match_baseline_exactly(self, baseline,
                                                             faulted):
        # The failed tau drops out; the surviving samples are untouched.
        clean_u, degraded_u = baseline["single"]._u, faulted["single"]._u
        assert degraded_u.size == clean_u.size - 1
        assert set(degraded_u) <= set(clean_u)

    def test_worker_count_invariance(self, faulted, serial_faulted):
        """The same faulted sweep, serial vs two workers: identical
        tables, identical health accounting."""
        for name in ("_delay_table", "_ttime_table"):
            assert np.array_equal(getattr(faulted["dual"], name),
                                  getattr(serial_faulted["dual"], name))
        assert np.array_equal(faulted["single"]._d, serial_faulted["single"]._d)
        assert ([p.index for p in faulted["dual"].health.failed]
                == [p.index for p in serial_faulted["dual"].health.failed])


class TestResume:
    def test_journal_outlives_a_degraded_sweep(self, faulted):
        journals = list(faulted["cache"].directory.glob("journal-*.jsonl"))
        assert len(journals) == 2  # one per degraded sweep (single + dual)

    def test_resume_recomputes_only_the_lost_points_and_heals(
            self, baseline, faulted, nand2, thresholds, monkeypatch):
        monkeypatch.setenv("REPRO_RESUME", "1")
        single, dual, cache = _characterize(
            nand2, thresholds, faulted["cache"].directory,
        )
        assert single.health.ok
        assert dual.health.ok and dual.health.filled == 0
        # Healed tables are bit-identical to the never-faulted baseline.
        for name in ("_delay_table", "_ttime_table"):
            assert np.array_equal(getattr(dual, name),
                                  getattr(baseline["dual"], name))
        assert np.array_equal(single._d, baseline["single"]._d)
        assert np.array_equal(single._u, baseline["single"]._u)
        # The repaired sweeps no longer need their journals.
        assert list(cache.directory.glob("journal-*.jsonl")) == []


class TestCacheChaos:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        cache = CharacterizationCache(tmp_path)
        key = {"gate": "nand2", "n": 1}
        with FaultInjection("corrupt@vtc:1"):
            cache.store("vtc", key, {"curves": [[0.0, 5.0]]})
            assert cache.load("vtc", key) is None  # quarantined, not crashed
        corpses = list(tmp_path.glob("*.corrupt"))
        assert len(corpses) == 1
        calls = []

        def compute():
            calls.append(1)
            return {"curves": [[0.0, 5.0]]}

        payload = cache.get_or_compute("vtc", key, compute)
        assert calls == [1]
        assert payload == {"curves": [[0.0, 5.0]]}
        # The rewritten entry is healthy again.
        assert cache.get_or_compute("vtc", key, compute) == payload
        assert calls == [1]

    def test_wrong_shape_payload_is_recomputed(self, tmp_path):
        """A parseable cache entry missing its kind's required keys (a
        stale schema, a hand-edited file) must fall through to a
        recompute instead of being trusted."""
        cache = CharacterizationCache(tmp_path)
        key = {"gate": "nand2"}
        cache.store("single", key, {"value": 42})  # not a single payload
        good = {"u": [1.0], "delay_norm": [0.1], "ttime_norm": [0.2],
                "k_drive": 1.0}
        payload = cache.get_or_compute("single", key, lambda: good)
        assert payload == good
        assert cache.load("single", key) == good


class TestResilientMapAbort:
    def test_journal_survives_a_raise_and_resume_skips_done_points(
            self, tmp_path):
        """on_error='raise' still journals every point completed before
        the abort, so a resumed run replays them instead of recomputing."""
        key = {"sweep": "abort-demo"}
        executed = []

        def flaky(x):
            executed.append(x)
            if x == 3:
                raise ValueError("injected abort")
            return x * 10

        with pytest.raises(ValueError):
            resilient_map(flaky, range(5), journal_kind="demo",
                          journal_key=key, directory=tmp_path,
                          on_error="raise")
        assert executed == [0, 1, 2, 3]
        journals = list(tmp_path.glob("journal-demo-*.jsonl"))
        assert len(journals) == 1

        executed.clear()

        def healthy(x):
            executed.append(x)
            return x * 10

        results, failures = resilient_map(
            healthy, range(5), journal_kind="demo", journal_key=key,
            directory=tmp_path, resume=True,
        )
        assert executed == [3, 4]  # points 0-2 replayed from the journal
        assert failures == []
        assert results == [0, 10, 20, 30, 40]
        assert list(tmp_path.glob("journal-demo-*.jsonl")) == []
