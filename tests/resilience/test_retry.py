"""The solver retry ladder: escalation schedule and solver integration."""

import pytest

from repro.errors import ConvergenceError, ReproError
from repro.resilience import RetryPolicy
from repro.resilience.retry import RETRY_ENV_VAR
from repro.spice.engine import NewtonOptions, NewtonStats
from repro.spice.transient import TransientOptions


class TestPolicyResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(RETRY_ENV_VAR, raising=False)
        assert RetryPolicy.resolve(None).max_attempts == 3

    def test_explicit_policy_passes_through(self):
        policy = RetryPolicy(max_attempts=7)
        assert RetryPolicy.resolve(policy) is policy

    def test_int_shorthand(self):
        assert RetryPolicy.resolve(5).max_attempts == 5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(RETRY_ENV_VAR, "4")
        assert RetryPolicy.resolve(None).max_attempts == 4

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(RETRY_ENV_VAR, "many")
        with pytest.raises(ReproError):
            RetryPolicy.resolve(None)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)


class TestEscalationSchedule:
    def test_attempt_zero_returns_options_unchanged(self):
        policy = RetryPolicy()
        options = NewtonOptions()
        assert policy.escalate_newton(options, 0) is options
        topts = TransientOptions()
        assert policy.escalate_transient(topts, 0) is topts

    def test_newton_escalation_compounds(self):
        policy = RetryPolicy(gmin_step=100.0, iteration_step=2.0,
                             damping_step=0.5)
        base = NewtonOptions(gmin=1e-12, max_iterations=60, max_step=0.6)
        first = policy.escalate_newton(base, 1)
        second = policy.escalate_newton(base, 2)
        assert first.gmin == pytest.approx(1e-10)
        assert second.gmin == pytest.approx(1e-8)
        assert first.max_iterations == 120
        assert second.max_iterations == 240
        assert first.max_step == pytest.approx(0.3)
        assert second.max_step == pytest.approx(0.15)
        # Untouched knobs survive.
        assert first.abstol == base.abstol
        assert first.voltol == base.voltol

    def test_transient_escalation_halves_initial_step(self):
        policy = RetryPolicy(timestep_step=0.5)
        base = TransientOptions(h_initial_ratio=1e-4)
        once = policy.escalate_transient(base, 1)
        assert once.h_initial_ratio == pytest.approx(5e-5)
        assert once.newton.gmin == pytest.approx(base.newton.gmin * 100.0)
        assert once.dv_target == base.dv_target

    def test_schedule_is_deterministic(self):
        policy = RetryPolicy()
        base = NewtonOptions()
        assert policy.escalate_newton(base, 2) == policy.escalate_newton(base, 2)


class TestSolverIntegration:
    def test_transient_retries_through_injected_faults(self, nand2, thresholds):
        """Two injected attempt failures must be absorbed by the default
        3-attempt ladder, and accounted on the result."""
        from repro.charlib.simulate import single_input_response
        from repro.resilience import FaultInjection

        clean = single_input_response(nand2, "a", "fall", 1e-10, thresholds)
        with FaultInjection("transient@*:2") as fi:
            shot = single_input_response(nand2, "a", "fall", 1e-10, thresholds)
            assert fi.fired_count("transient") == 2
        # The surviving attempt ran on an escalated rung, so the numbers
        # may differ in the last digits -- but must stay physical.
        assert shot.delay == pytest.approx(clean.delay, rel=1e-3)

    def test_ladder_exhaustion_raises_with_context(self, nand2, thresholds):
        from repro.charlib.simulate import single_input_response
        from repro.resilience import FaultInjection

        with FaultInjection("transient@*:always"):
            with pytest.raises(ConvergenceError) as excinfo:
                single_input_response(nand2, "a", "fall", 1e-10, thresholds)
        # The error names the gate being measured (simulate.py context)
        # and the ladder (transient.py wrapper).
        assert "nand2" in str(excinfo.value)
        assert "retry-ladder" in str(excinfo.value)

    def test_retry_accounting_on_result(self, nand2):
        from repro.resilience import FaultInjection
        from repro.spice import transient

        circuit = nand2.build({}, switching=[])
        with FaultInjection("transient@*:1"):
            result = transient(circuit, "1ns")
        assert result.solver_retries >= 1
        assert len(result.retry_attempts) == 1
        assert result.retry_attempts[0].attempt == 0
        assert "injected" in result.retry_attempts[0].message

    def test_clean_run_consumes_no_retries(self, nand2):
        from repro.spice import transient

        circuit = nand2.build({}, switching=[])
        result = transient(circuit, "1ns")
        assert result.solver_retries == 0
        assert result.retry_attempts == ()

    def test_stats_retries_counter(self):
        stats = NewtonStats()
        assert stats.retries == 0
