"""Unit tests of :func:`repro.resilience.runtime.resilient_chunked_map`.

The chunked map is the execution primitive under batched
characterization sweeps: it partitions a sweep's points into chunks,
runs one task per chunk, and demultiplexes per-point envelopes back
into the same (results, failures) shape -- and the same per-point
journal -- that :func:`resilient_map` produces, so batch size never
changes what a sweep observes.
"""

import pytest

from repro.parallel import TaskFailure
from repro.resilience.journal import ProgressJournal
from repro.resilience.runtime import resilient_chunked_map, resilient_map

KEY = {"suite": "chunked-map"}


def square_chunk(task):
    """Chunk worker: envelope per pair; odd-tagged items fail."""
    pairs = task
    envelopes = []
    for index, item in pairs:
        if item < 0:
            envelopes.append(("err", "error", f"negative item {item}",
                              "ValueError"))
        else:
            envelopes.append(("ok", item * item))
    return envelopes


def exploding_chunk(task):
    raise RuntimeError("chunk lost wholesale")


def make_chunk(pairs):
    return list(pairs)


def run(items, tmp_path, *, batch, chunk_fn=square_chunk, resume=None):
    return resilient_chunked_map(
        chunk_fn, items, batch=batch, make_chunk=make_chunk,
        journal_kind="chunked", journal_key=KEY, directory=tmp_path,
        resume=resume,
    )


class TestDemux:
    @pytest.mark.parametrize("batch", [1, 2, 3, 5, 10])
    def test_results_in_input_order_for_any_batch(self, batch, tmp_path):
        items = list(range(7))  # 7 items: every batch size leaves a ragged tail
        results, failures = run(items, tmp_path, batch=batch)
        assert results == [i * i for i in items]
        assert failures == []

    def test_point_failure_isolated_within_chunk(self, tmp_path):
        items = [1, -2, 3, 4]
        results, failures = run(items, tmp_path, batch=2)
        assert [results[i] for i in (0, 2, 3)] == [1, 9, 16]
        assert isinstance(results[1], TaskFailure)
        assert len(failures) == 1
        assert failures[0].index == 1
        assert failures[0].kind == "error"
        assert failures[0].message == "negative item -2"
        assert failures[0].error_type == "ValueError"

    def test_lost_chunk_fails_all_its_points(self, tmp_path):
        items = [1, 2, 3, 4, 5]
        results, failures = run(items, tmp_path, batch=2,
                                chunk_fn=exploding_chunk)
        assert len(failures) == 5
        assert [f.index for f in failures] == [0, 1, 2, 3, 4]
        assert all(f.kind == "error" for f in failures)
        assert all("chunk lost wholesale" in f.message for f in failures)

    def test_matches_resilient_map_shape(self, tmp_path):
        """Same (results, failures) as the scalar map for the same work."""

        def scalar_fn(item):
            if item < 0:
                raise ValueError(f"negative item {item}")
            return item * item

        items = [2, -1, 4]
        (tmp_path / "c").mkdir()
        (tmp_path / "s").mkdir()
        chunked_results, chunked_failures = run(items, tmp_path / "c", batch=2)
        scalar_results, scalar_failures = resilient_map(
            scalar_fn, items, journal_kind="chunked", journal_key=KEY,
            directory=tmp_path / "s",
        )
        for c, s in zip(chunked_results, scalar_results):
            if isinstance(s, TaskFailure):
                assert isinstance(c, TaskFailure)
                assert (c.index, c.kind, c.message, c.error_type) == \
                    (s.index, s.kind, s.message, s.error_type)
            else:
                assert c == s


class TestJournal:
    def journal(self, tmp_path):
        return ProgressJournal.for_key(tmp_path, "chunked", KEY)

    def test_journal_cleared_on_success(self, tmp_path):
        run(list(range(5)), tmp_path, batch=2)
        assert self.journal(tmp_path).load() == {}

    def test_surviving_points_journaled_per_point(self, tmp_path):
        """Chunk-mates of a failed point land in the journal individually."""
        run([1, -2, 3], tmp_path, batch=3)
        assert self.journal(tmp_path).load() == {0: 1, 2: 9}

    def test_resume_skips_done_points_across_batch_sizes(self, tmp_path):
        """A sweep interrupted under one batch size resumes under another
        (the journal identity is batch-blind)."""
        run([1, -2, 3, -4, 5], tmp_path, batch=2)

        seen = []

        def tracking_chunk(task):
            seen.extend(index for index, _ in task)
            return square_chunk(task)

        results, failures = run([1, 2, 3, 4, 5], tmp_path, batch=3,
                                chunk_fn=tracking_chunk, resume=True)
        assert seen == [1, 3]  # only the previously failed points recompute
        assert results == [1, 4, 9, 16, 25]
        assert failures == []

    def test_scalar_map_resumes_chunked_journal(self, tmp_path):
        """Interop both ways: the scalar map picks up a chunked journal."""
        run([1, -2, 3], tmp_path, batch=2)
        results, failures = resilient_map(
            lambda item: item * item, [1, 2, 3],
            journal_kind="chunked", journal_key=KEY, directory=tmp_path,
            resume=True,
        )
        assert results == [1, 4, 9]
        assert failures == []

    def test_fresh_run_clears_stale_journal(self, tmp_path):
        run([1, -2, 3], tmp_path, batch=2)
        results, failures = run([1, 2, 3], tmp_path, batch=2)
        assert results == [1, 4, 9]
        assert failures == []
