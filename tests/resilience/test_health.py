"""Degradation bookkeeping: FailedPoint, HealthReport, neighbor_fill."""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.resilience import FailedPoint, HealthReport, neighbor_fill


class TestFailedPoint:
    def test_describe_names_coords_and_cause(self):
        point = FailedPoint(index=7, kind="timeout", message="exceeded 30s",
                            coords={"tau_ref": 1e-10, "a2": 0.5})
        text = point.describe()
        assert "point 7" in text
        assert "tau_ref=1e-10" in text
        assert "timeout" in text
        assert "exceeded 30s" in text


class TestHealthReport:
    def test_clean_report(self):
        report = HealthReport(label="single nand2:a/fall", total_points=6)
        assert report.ok
        assert report.n_failed == 0
        assert report.describe() == "single nand2:a/fall: 6/6 points ok"

    def test_degraded_report_lists_every_failure(self):
        failed = (
            FailedPoint(3, "error", "no convergence", {"tau": 5e-10}),
            FailedPoint(5, "crash", "worker lost", {"tau": 2e-9}),
        )
        report = HealthReport(label="single nand2:a/fall", total_points=6,
                              failed=failed, filled=2)
        assert not report.ok
        text = report.describe()
        assert "4/6 points ok" in text
        assert "2 failed" in text
        assert "2 cells neighbor-filled" in text
        assert "point 3" in text and "point 5" in text

    def test_summarize_empty(self):
        assert "no sweeps" in HealthReport.summarize([])

    def test_summarize_all_ok(self):
        reports = [HealthReport("a", 4), HealthReport("b", 8)]
        text = HealthReport.summarize(reports)
        assert "OK" in text
        assert "12 points" in text

    def test_summarize_mixed_shows_only_degraded_sweeps(self):
        reports = [
            HealthReport("clean-sweep", 10),
            HealthReport("bad-sweep", 10,
                         failed=(FailedPoint(1, "error", "boom"),)),
        ]
        text = HealthReport.summarize(reports)
        assert "1/20 points failed" in text
        assert "bad-sweep" in text
        assert "clean-sweep" not in text


class TestNeighborFill:
    def test_no_nan_is_identity(self):
        table = np.arange(6.0).reshape(2, 3)
        filled, n = neighbor_fill(table)
        assert n == 0
        np.testing.assert_array_equal(filled, table)

    def test_input_is_never_mutated(self):
        table = np.array([[1.0, np.nan], [3.0, 4.0]])
        neighbor_fill(table)
        assert np.isnan(table[0, 1])

    def test_isolated_hole_gets_neighbor_mean(self):
        table = np.array([
            [1.0, 2.0, 3.0],
            [4.0, np.nan, 6.0],
            [7.0, 8.0, 9.0],
        ])
        filled, n = neighbor_fill(table)
        assert n == 1
        assert filled[1, 1] == pytest.approx((2.0 + 4.0 + 6.0 + 8.0) / 4.0)
        assert np.isfinite(filled).all()

    def test_corner_hole_does_not_wrap_around(self):
        """np.roll wraps; the fill must cancel the wrap so a corner NaN
        only sees its true axis neighbors, not the opposite edge."""
        table = np.array([
            [np.nan, 2.0],
            [3.0, 100.0],
        ])
        filled, n = neighbor_fill(table)
        assert n == 1
        # True neighbors of [0,0] are 2.0 (right) and 3.0 (below); with
        # wrap-around the distant 100.0 would pollute the estimate twice.
        assert filled[0, 0] == pytest.approx(2.5)

    def test_large_gap_flood_fills_inward(self):
        table = np.full((1, 5), np.nan)
        table[0, 0] = 10.0
        filled, n = neighbor_fill(table)
        assert n == 4
        np.testing.assert_allclose(filled, [[10.0] * 5])

    def test_all_nan_raises(self):
        with pytest.raises(CharacterizationError):
            neighbor_fill(np.full((2, 2), np.nan))
