"""DC homotopy fallbacks and the retry ladder around them.

These tests wrap ``newton_solve`` as seen by :mod:`repro.spice.dc` with
a gatekeeper that vetoes selected call shapes, proving that each rung of
the escalation actually engages (plain Newton -> gmin stepping -> source
stepping -> retry-ladder re-run) rather than silently being skipped.
"""

from dataclasses import replace

import pytest

from repro.errors import ConvergenceError
from repro.spice import Circuit, solve_dc
from repro.spice import dc as dc_module
from repro.spice.engine import NewtonOptions, NewtonStats, newton_solve


def divider(r1=1e3, r2=3e3, v=4.0) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("v1", "in", v)
    ckt.add_resistor("r1", "in", "mid", r1)
    ckt.add_resistor("r2", "mid", "0", r2)
    return ckt


class TestHomotopyLadder:
    def test_gmin_stepping_engages_when_plain_newton_fails(self, monkeypatch):
        seen_gmins = []
        state = {"plain_vetoed": False}

        def gatekeeper(compiled, x0, known, **kwargs):
            seen_gmins.append(kwargs.get("gmin"))
            if kwargs.get("gmin") is None and not state["plain_vetoed"]:
                state["plain_vetoed"] = True
                raise ConvergenceError("injected plain-Newton failure")
            return newton_solve(compiled, x0, known, **kwargs)

        monkeypatch.setattr(dc_module, "newton_solve", gatekeeper)
        op = solve_dc(divider())
        assert op["mid"] == pytest.approx(3.0, rel=1e-6)
        ramp = [g for g in seen_gmins if g is not None]
        assert ramp, "gmin stepping never ran"
        assert ramp[0] == pytest.approx(1e-2)
        assert ramp == sorted(ramp, reverse=True)  # relaxed decade by decade
        assert ramp[-1] >= NewtonOptions().gmin

    def test_source_stepping_engages_when_gmin_stepping_fails(self, monkeypatch):
        scales = []

        def gatekeeper(compiled, x0, known, **kwargs):
            if "source_scale" not in kwargs:
                raise ConvergenceError("injected failure for non-ramped solve")
            scales.append(kwargs["source_scale"])
            return newton_solve(compiled, x0, known, **kwargs)

        monkeypatch.setattr(dc_module, "newton_solve", gatekeeper)
        op = solve_dc(divider())
        assert op["mid"] == pytest.approx(3.0, rel=1e-6)
        assert scales[0] == pytest.approx(0.1)
        assert scales[-1] == pytest.approx(1.0)
        assert scales == sorted(scales)  # sources ramp monotonically up

    def test_fallback_failures_are_counted(self, monkeypatch):
        """Newton solves that genuinely diverge inside the fallback
        ladder must land in ``stats.failures``, not vanish."""

        def gatekeeper(compiled, x0, known, **kwargs):
            if "source_scale" not in kwargs:
                # Cripple non-ramped solves so they *really* fail inside
                # newton_solve (and are therefore counted), instead of
                # being vetoed from outside.
                crippled = replace(kwargs["options"],
                                   max_iterations=1, max_step=1e-6)
                kwargs = dict(kwargs, options=crippled)
            return newton_solve(compiled, x0, known, **kwargs)

        monkeypatch.setattr(dc_module, "newton_solve", gatekeeper)
        stats = NewtonStats()
        op = solve_dc(divider(), stats=stats)
        assert op["mid"] == pytest.approx(3.0, rel=1e-6)
        # Plain Newton failed, the first gmin-stepping solve failed, then
        # source stepping carried the solve home -- all on attempt 0.
        assert stats.failures == 2
        assert stats.retries == 0


class TestDcRetryLadder:
    def test_escalated_attempt_rescues_the_solve(self, monkeypatch):
        """A solve that only converges with a raised gmin floor must be
        rescued by the ladder's attempt-1 escalation, and accounted."""

        def gatekeeper(compiled, x0, known, **kwargs):
            if kwargs["options"].gmin <= NewtonOptions().gmin:
                raise ConvergenceError("needs a raised gmin floor")
            return newton_solve(compiled, x0, known, **kwargs)

        monkeypatch.setattr(dc_module, "newton_solve", gatekeeper)
        stats = NewtonStats()
        op = solve_dc(divider(), stats=stats)
        assert op["mid"] == pytest.approx(3.0, rel=1e-6)
        assert stats.retries == 1

    def test_exhaustion_preserves_diagnostics(self, monkeypatch):
        def gatekeeper(compiled, x0, known, **kwargs):
            raise ConvergenceError("hopeless", iterations=9, residual=0.25)

        monkeypatch.setattr(dc_module, "newton_solve", gatekeeper)
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(divider(), retry=2)
        message = str(excinfo.value)
        assert "2 retry-ladder attempts" in message
        assert excinfo.value.iterations == 9
        assert excinfo.value.residual == pytest.approx(0.25)
