"""Fault tolerance of parallel_map: crashes, timeouts, collect mode."""

import time

import pytest

from repro.errors import ReproError, TaskError
from repro.parallel import (
    TIMEOUT_ENV_VAR,
    TaskFailure,
    parallel_map,
    resolve_timeout,
)
from repro.resilience import FaultInjection


def _double(x):
    return 2 * x


def _flaky(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return 2 * x


class TestResolveTimeout:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV_VAR, raising=False)
        assert resolve_timeout() is None

    def test_argument_wins(self):
        assert resolve_timeout(2.5) == 2.5

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV_VAR, "1.5")
        assert resolve_timeout() == 1.5

    def test_nonpositive_disables(self):
        assert resolve_timeout(0) is None
        assert resolve_timeout(-1) is None

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV_VAR, "soon")
        with pytest.raises(ReproError):
            resolve_timeout()


class TestCollectMode:
    def test_serial_collect_keeps_order(self):
        results = parallel_map(_flaky, range(6), on_error="collect")
        assert results[:3] == [0, 2, 4]
        assert results[4:] == [8, 10]
        failure = results[3]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 3
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert isinstance(failure.exception, ValueError)
        assert "task 3" in failure.describe()

    def test_pool_collect_keeps_order(self):
        results = parallel_map(_flaky, range(6), workers=2, on_error="collect")
        assert [r for r in results if not isinstance(r, TaskFailure)] == [0, 2, 4, 8, 10]
        (failure,) = [r for r in results if isinstance(r, TaskFailure)]
        assert results.index(failure) == 3
        assert failure.kind == "error"

    def test_raise_mode_still_propagates_original(self):
        with pytest.raises(ValueError, match="bad item 3"):
            parallel_map(_flaky, range(6), workers=2)

    def test_bad_on_error_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(_double, [1], on_error="ignore")

    def test_on_result_sees_successes_only(self):
        seen = []
        parallel_map(_flaky, range(6), on_error="collect",
                     on_result=lambda i, v: seen.append((i, v)))
        assert sorted(seen) == [(0, 0), (1, 2), (2, 4), (4, 8), (5, 10)]


class TestWorkerCrash:
    def test_crash_is_recovered_by_resubmission(self):
        """A worker killed once mid-task: the pool rebuilds, the task
        re-runs, and every result lands."""
        with FaultInjection("crash@2:1") as fi:
            results = parallel_map(_double, range(6), workers=2)
            assert fi.fired_count("crash") == 1
        assert results == [0, 2, 4, 6, 8, 10]

    def test_persistent_crasher_is_declared_lost(self):
        """A task that kills its worker on every attempt must exhaust its
        resubmission budget and come back as a crash failure -- without
        poisoning the other tasks."""
        with FaultInjection("crash@1:always"):
            results = parallel_map(_double, range(4), workers=2,
                                   on_error="collect", pool_retries=2)
        (failure,) = [r for r in results if isinstance(r, TaskFailure)]
        assert results.index(failure) == 1
        assert failure.kind == "crash"
        assert failure.attempts == 3  # initial + pool_retries resubmissions
        assert [r for r in results if not isinstance(r, TaskFailure)] == [0, 4, 6]

    def test_persistent_crasher_raises_task_error_in_raise_mode(self):
        with FaultInjection("crash@0:always"):
            with pytest.raises(TaskError):
                parallel_map(_double, range(4), workers=2, pool_retries=1)

    def test_crash_faults_do_not_fire_serially(self):
        """crash/hang model *worker* faults; the serial path has no
        worker to kill, so the plan must not fire."""
        with FaultInjection("crash@1:1") as fi:
            assert parallel_map(_double, range(4)) == [0, 2, 4, 6]
            assert fi.fired_count("crash") == 0


class TestTaskTimeout:
    def test_hung_task_times_out_and_innocents_survive(self):
        start = time.monotonic()
        with FaultInjection("hang@1:1", hang_seconds=30):
            results = parallel_map(_double, range(5), workers=2,
                                   on_error="collect", timeout=1.0)
        elapsed = time.monotonic() - start
        (failure,) = [r for r in results if isinstance(r, TaskFailure)]
        assert results.index(failure) == 1
        assert failure.kind == "timeout"
        assert [r for r in results if not isinstance(r, TaskFailure)] == [0, 4, 6, 8]
        assert elapsed < 15.0  # did not wait out the 30s hang

    def test_timeout_raises_task_error_in_raise_mode(self):
        with FaultInjection("hang@0:1", hang_seconds=30):
            with pytest.raises(TaskError, match="timeout"):
                parallel_map(_double, range(3), workers=2, timeout=1.0)

    def test_generous_timeout_changes_nothing(self):
        results = parallel_map(_double, range(5), workers=2, timeout=60.0)
        assert results == [0, 2, 4, 6, 8]
