"""A6 load-transfer experiment."""

import pytest

from repro.experiments import sensitivity


@pytest.fixture(scope="module")
def result():
    return sensitivity.run(n_taus=3, n_proximity=3)


class TestSensitivity:
    def test_labels(self, result):
        assert "x0.6 single cpar" in result.errors
        assert "x1.8 proximity" in result.errors

    def test_cpar_beats_raw_drive_factor(self, result):
        for factor in ("x0.6", "x1.8"):
            assert result.rms(f"{factor} single cpar") < \
                result.rms(f"{factor} single no-cpar")

    def test_proximity_transfer_reasonable(self, result):
        assert result.rms("x0.6 proximity") < 8.0

    def test_rows_have_stats(self, result):
        for row in result.rows():
            assert row["rms_pct"] >= 0.0
            assert row["worst_pct"] >= row["rms_pct"] - 1e-9
