"""Experiment harness smoke + shape checks (small sweep sizes).

Each experiment runs with reduced parameters and its *qualitative*
claims -- the "reproduction shape" documented in DESIGN.md -- are
asserted: monotonicity, crossovers, error magnitudes, orderings.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    baselines_exp,
    fig1_2,
    fig2_1,
    fig3_3,
    fig4_2,
    fig5_1,
    fig6_1,
    table5_1,
    timing_exp,
)
from repro.waveform import FALL, RISE


class TestFig12:
    @pytest.fixture(scope="class")
    def falling(self):
        seps = [s * 1e-12 for s in (-100, 0, 100, 250, 400, 700)]
        return fig1_2.run(direction=FALL, separations=seps)

    def test_delay_reduces_at_close_separation(self, falling):
        assert falling.proximity_gain() > 0.2  # paper: "significant"

    def test_delay_saturates_beyond_window(self, falling):
        assert falling.delays[-1] == pytest.approx(
            max(falling.delays), rel=0.02)

    def test_ttime_also_reduced(self, falling):
        assert min(falling.ttimes) < 0.9 * max(falling.ttimes)

    def test_rising_direction_panel(self):
        seps = [s * 1e-12 for s in (0, 300, 600)]
        rising = fig1_2.run(direction=RISE, separations=seps)
        # (c): delay increasing with separation for rising inputs.
        assert rising.delays[0] < rising.delays[-1]

    def test_summary_and_rows(self, falling):
        assert "Figure 1-2" in falling.summary()
        assert len(falling.rows()) == 6


class TestFig21:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_1.run()

    def test_family_size(self, result):
        assert len(result.family) == 7

    def test_selection_sources(self, result):
        assert result.min_vil_curve().label == "c"
        assert result.max_vih_curve().label == "abc"

    def test_selected_in_paper_ballpark(self, result):
        """Not a number-for-number match (different process), but the
        same corner of the design space: Vil ~1.3V, Vih ~3.4V at 5V."""
        assert result.selected.vil == pytest.approx(1.25, abs=0.4)
        assert result.selected.vih == pytest.approx(3.37, abs=0.4)

    def test_summary(self, result):
        assert "selected" in result.summary()


class TestFig33:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_3.run(tau_bs=(100e-12,), points_per_curve=7)

    def test_crossover_produces_discontinuity(self, result):
        curve = result.curves[0]
        assert curve.discontinuity() > 20e-12

    def test_reference_changes_at_crossover(self, result):
        curve = result.curves[0]
        refs = set(curve.references)
        assert refs == {"a", "b"}

    def test_model_tracks_simulation(self, result):
        curve = result.curves[0]
        errors = [abs(row["err_pct"]) for row in curve.rows()]
        assert np.median(errors) < 5.0


class TestFig42:
    def test_full_model_explodes(self):
        result = fig4_2.run(fan_ins=(2, 3, 4), grid=8)
        rows = result.rows()
        assert rows[0]["full_entries"] < rows[0]["all_pairs_entries"] * 2
        assert rows[2]["full_over_shared"] > 1000

    def test_counts_formula(self):
        row = fig4_2.model_counts(3, 4)
        assert row.full_entries == 3 * 4 ** 5
        assert row.all_pairs_entries == 3 * 4 + 6 * 64
        assert row.shared_entries == 3 * 4 + 3 * 64

    def test_validation(self):
        with pytest.raises(ValueError):
            fig4_2.model_counts(1, 8)
        with pytest.raises(ValueError):
            fig4_2.model_counts(3, 1)


class TestTable51:
    @pytest.fixture(scope="class")
    def result(self):
        return table5_1.run(n_configs=10, seed=1996)

    def test_error_statistics_in_paper_regime(self, result):
        rows = {r["quantity"]: r for r in result.rows()}
        delay = rows["delay"]
        assert abs(delay["mean_err_pct"]) < 5.0
        assert delay["std_pct"] < 6.0
        rise = rows["rise_time"]
        assert abs(rise["mean_err_pct"]) < 10.0

    def test_case_records_complete(self, result):
        assert len(result.cases) == 10
        case = result.cases[0]
        assert case.sim_delay > 0 and case.model_delay > 0
        assert set(case.taus) == {"a", "b", "c"}

    def test_deterministic_seeding(self):
        a = table5_1.random_cases(3, seed=7)
        b = table5_1.random_cases(3, seed=7)
        assert a == b
        c = table5_1.random_cases(3, seed=8)
        assert a != c

    def test_summary_mentions_paper(self, result):
        assert "paper" in result.summary()


class TestFig51:
    def test_histograms_cover_population(self):
        validation = table5_1.run(n_configs=8, seed=3)
        hist = fig5_1.run(validation=validation)
        assert sum(hist.delay_histogram().values()) == 8
        assert sum(hist.ttime_histogram().values()) == 8
        assert "Figure 5-1" in hist.summary()


class TestFig61:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_1.run(
            tau_rises=(100e-12,),
            separations=[s * 1e-12 for s in (-200, 0, 250, 500, 900)],
        )

    def test_vmin_monotone_decreasing(self, result):
        vmins = result.curves[0].vmins
        assert all(b < a + 1e-6 for a, b in zip(vmins, vmins[1:]))

    def test_blocked_region_near_vdd(self, result):
        assert result.curves[0].vmins[0] > 4.5

    def test_min_separation_found(self, result):
        min_sep = result.curves[0].min_valid_separation
        assert min_sep is not None
        assert 0.0 < min_sep < 900e-12


class TestBaselinesAblations:
    def test_ours_beats_collapsed_inverters(self):
        result = baselines_exp.run(n_configs=5, seed=2)
        ours = result.worst_abs_error("proximity (ours)")
        assert ours < result.worst_abs_error("collapsed extreme [8]")
        assert ours < result.worst_abs_error("collapsed weighted [13]")

    def test_ablation_harmonic_beats_additive(self):
        result = ablations.run(n_configs=5, seed=11, variants={
            "default (paper corr, harmonic, dominance)": {},
            "ttime=additive": {"ttime_composition": "additive"},
        })
        assert result.rms("default (paper corr, harmonic, dominance)",
                          "ttime") <= result.rms("ttime=additive", "ttime")


class TestTimingExp:
    def test_proximity_sta_tracks_flat_sim(self):
        result = timing_exp.run(n_scenarios=1, seed=3)
        assert result.rms_error("proximity") < 10.0
        assert result.rms_error("classic") > result.rms_error("proximity")
