"""A4 cross-gate generality experiment."""

import pytest

from repro.experiments import crossgate
from repro.waveform import FALL, RISE


@pytest.fixture(scope="module")
def result():
    return crossgate.run(n_configs=4, seed=77,
                         gates=("nor3", "aoi21"))


class TestCrossGate:
    def test_labels_cover_gates_and_directions(self, result):
        assert set(result.delay_errors) == {
            "nor3/fall", "nor3/rise", "aoi21/fall", "aoi21/rise",
        }

    def test_nor3_within_table51_regime(self, result):
        """In-window NOR3 validation holds Table-5-1-quality errors in
        both directions."""
        for direction in (FALL, RISE):
            assert result.worst_delay_error(f"nor3/{direction}") < 12.0

    def test_aoi21_same_branch_pair_exact(self, result):
        """Two same-branch pins + oracle dual model: exact by
        construction."""
        for direction in (FALL, RISE):
            assert result.worst_delay_error(f"aoi21/{direction}") < 0.5

    def test_rows_and_summary(self, result):
        rows = result.rows()
        assert len(rows) == 8  # 4 labels x (delay, ttime)
        assert "Cross-gate" in result.summary()

    def test_positive_delays_everywhere(self, result):
        for errors in result.delay_errors.values():
            assert all(abs(e) < 100.0 for e in errors)
