"""Report formatting helpers."""

import pytest

from repro.experiments.report import (
    ascii_histogram,
    format_table,
    series_plot,
    stat_row,
)


class TestFormatTable:
    def test_alignment_and_order(self):
        rows = [
            {"name": "a", "value": 1.5},
            {"name": "bb", "value": 22.25},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "22.25" in lines[3]

    def test_explicit_columns(self):
        rows = [{"x": 1, "y": 2}]
        text = format_table(rows, columns=["y", "x"])
        assert text.splitlines()[0].startswith("y")

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_bool_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text


class TestHistogram:
    def test_counts_sum(self):
        values = [-1.0, 0.5, 0.7, 2.2]
        text = ascii_histogram(values, bin_width=1.0)
        total = sum(
            int(line.split(")")[1].split()[0])
            for line in text.splitlines() if ")" in line
        )
        assert total == 4

    def test_empty(self):
        assert ascii_histogram([], bin_width=1.0) == "(no samples)"

    def test_label(self):
        assert "delay" in ascii_histogram([1.0], bin_width=1.0, label="delay")


class TestSeriesPlot:
    def test_contains_markers_and_ranges(self):
        text = series_plot([0, 1, 2], {"s1": [1, 2, 3], "s2": [3, 2, 1]},
                           x_label="t", y_label="v")
        assert "o=s1" in text and "x=s2" in text
        assert "t: 0" in text

    def test_degenerate_ranges(self):
        text = series_plot([1, 1], {"s": [2, 2]})
        assert "|" in text


class TestStatRow:
    def test_statistics(self):
        row = stat_row("delay", [1.0, -1.0, 3.0])
        assert row["quantity"] == "delay"
        assert row["mean_err_pct"] == pytest.approx(1.0)
        assert row["max_err_pct"] == 3.0
        assert row["min_err_pct"] == -1.0
