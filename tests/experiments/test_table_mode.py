"""A5: table-mode validation path (uses the characterization cache, so
this is fast after the first run of the repo's test/bench suite)."""

import pytest

from repro.experiments import table5_1


@pytest.fixture(scope="module")
def result():
    return table5_1.run(
        n_configs=8, seed=1996, mode="table",
        characterize_kwargs={"directions": ("fall",), "pairs": "all"},
    )


class TestTableMode:
    def test_mode_recorded(self, result):
        assert result.mode == "table"

    def test_paper_envelope(self, result):
        rows = {r["quantity"]: r for r in result.rows()}
        assert abs(rows["delay"]["mean_err_pct"]) < 5.0
        assert rows["delay"]["std_pct"] < 7.0
        assert rows["delay"]["max_err_pct"] < 15.0
        assert rows["delay"]["min_err_pct"] > -15.0

    def test_positive_outputs(self, result):
        for case in result.cases:
            assert case.model_delay > 0.0
            assert case.model_ttime > 0.0


class TestEffectiveParasitic:
    def test_c_par_fitted_with_multiple_loads(self):
        from repro.experiments.common import paper_library
        lib = paper_library(mode="table", directions=("fall",), pairs="all")
        model = lib.single("a", "fall")
        # For the default NAND3 the fitted parasitic is tens of fF.
        assert 1e-14 < model.c_par < 1.5e-13

    def test_c_par_zero_single_load(self, nand2, thresholds):
        from repro.charlib import SingleInputGrid
        from repro.charlib.single import characterize_single_input
        from repro.charlib.library import cached_thresholds
        thr = cached_thresholds(nand2)
        model = characterize_single_input(
            nand2, "a", "fall", thr, grid=SingleInputGrid.fast(),
        )
        assert model.c_par == 0.0
