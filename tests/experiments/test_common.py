"""Shared experiment fixtures: memoization and identity."""

import pytest

from repro.experiments.common import (
    paper_calculator,
    paper_gate,
    paper_library,
    paper_thresholds,
)


class TestMemoization:
    def test_gate_identity(self):
        assert paper_gate() is paper_gate()

    def test_gate_distinguishes_load(self):
        assert paper_gate(load=100e-15) is not paper_gate(load=50e-15)

    def test_library_identity(self):
        assert paper_library(mode="oracle") is paper_library(mode="oracle")

    def test_library_distinguishes_char_kwargs(self):
        base = paper_library(mode="oracle")
        # Different characterize kwargs -> different library object.
        other = paper_library(mode="oracle", directions=("fall",))
        assert base is not other

    def test_calculator_forwards_kwargs(self):
        calc = paper_calculator(correction="off")
        assert calc.correction.value == "off"


class TestDefaults:
    def test_testbench_is_nand3(self):
        gate = paper_gate()
        assert gate.name == "nand3"
        assert gate.inputs == ("a", "b", "c")
        assert gate.load == pytest.approx(100e-15)

    def test_thresholds_consistent_with_library(self):
        thr = paper_thresholds()
        lib = paper_library(mode="oracle")
        assert lib.thresholds.vil == pytest.approx(thr.vil)
        assert lib.thresholds.vih == pytest.approx(thr.vih)
