"""VTC extraction from gate simulations (paper Section 2 behaviour)."""

import pytest

from repro.errors import MeasurementError
from repro.gates import Gate
from repro.vtc import extract_vtc, select_thresholds, vtc_family
from repro.vtc.extract import gate_thresholds


@pytest.fixture(scope="module")
def nand3_family(nand3_module):
    return vtc_family(nand3_module, coarse_points=31, dense_points=81)


@pytest.fixture(scope="module")
def nand3_module(process_module):
    return Gate.nand(3, process_module, load=100e-15)


@pytest.fixture(scope="module")
def process_module():
    from repro.tech import default_process
    return default_process()


class TestExtract:
    def test_single_input_curve(self, nand3_module):
        curve = extract_vtc(nand3_module, ["a"], coarse_points=21,
                            dense_points=61)
        assert curve.switching == ("a",)
        assert 0.0 < curve.vil < curve.vm < curve.vih < 5.0

    def test_empty_switching_rejected(self, nand3_module):
        with pytest.raises(MeasurementError):
            extract_vtc(nand3_module, [])

    def test_family_size(self, nand3_family):
        assert len(nand3_family) == 7  # 2^3 - 1

    def test_family_labels_unique(self, nand3_family):
        labels = [c.label for c in nand3_family]
        assert len(set(labels)) == 7

    def test_paper_ordering_single_below_joint(self, nand3_family):
        """VTCs of single switching inputs sit left of the all-switching
        VTC (paper Figure 2-1(b))."""
        by_label = {c.label: c for c in nand3_family}
        for single in ("a", "b", "c"):
            assert by_label[single].vm < by_label["abc"].vm
            assert by_label[single].vil < by_label["abc"].vil
            assert by_label[single].vih < by_label["abc"].vih

    def test_min_vil_from_input_closest_to_ground(self, nand3_family):
        """Paper: 'the V_il chosen would be from the input closest to the
        ground'.  Our NAND stacks 'c' next to ground."""
        min_curve = min(nand3_family, key=lambda c: c.vil)
        assert min_curve.label == "c"

    def test_max_vih_from_all_switching(self, nand3_family):
        min_curve = max(nand3_family, key=lambda c: c.vih)
        assert min_curve.label == "abc"

    def test_selected_thresholds_bracket_every_vm(self, nand3_family):
        thr = select_thresholds(nand3_family, 5.0)
        for curve in nand3_family:
            assert thr.vil < curve.vm < thr.vih

    def test_gate_thresholds_convenience(self, nand3_module, nand3_family):
        thr = gate_thresholds(nand3_module, family=nand3_family)
        assert thr.vil == pytest.approx(min(c.vil for c in nand3_family))

    def test_nor_max_vih_from_input_closest_to_rail(self, process_module):
        """Paper: for NOR gates V_ih comes from the input closest to the
        power rail and V_il from all switching together."""
        nor3 = Gate.nor(3, process_module, load=100e-15)
        family = vtc_family(nor3, coarse_points=31, dense_points=81)
        max_vih = max(family, key=lambda c: c.vih)
        assert max_vih.label == "a"  # 'a' is adjacent to Vdd in our NOR
        min_vil = min(family, key=lambda c: c.vil)
        assert min_vil.label == "abc"
