"""VTC analysis on synthetic and simulated curves."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.vtc import analyze_vtc, select_thresholds, threshold_table
from repro.vtc.thresholds import VtcCurve


def synthetic_vtc(vdd=5.0, vm=2.5, steepness=4.0, n=401):
    """A smooth inverter-like tanh curve with known geometry."""
    vin = np.linspace(0.0, vdd, n)
    vout = vdd / 2.0 * (1.0 - np.tanh(steepness * (vin - vm)))
    return vin, vout


class TestAnalyzeVtc:
    def test_thresholds_ordered(self):
        vin, vout = synthetic_vtc()
        curve = analyze_vtc(vin, vout, ("a",))
        assert 0.0 < curve.vil < curve.vm < curve.vih < 5.0

    def test_vm_matches_construction(self):
        vin, vout = synthetic_vtc(vm=2.2)
        curve = analyze_vtc(vin, vout)
        # v_out = v_in crossing of the tanh curve is near (not exactly at)
        # the tanh center; just bracket it.
        assert curve.vm == pytest.approx(2.2, abs=0.3)

    def test_steeper_curve_narrows_transition(self):
        vin1, vout1 = synthetic_vtc(steepness=2.0)
        vin2, vout2 = synthetic_vtc(steepness=8.0)
        wide = analyze_vtc(vin1, vout1)
        narrow = analyze_vtc(vin2, vout2)
        assert (narrow.vih - narrow.vil) < (wide.vih - wide.vil)

    def test_unity_gain_points(self):
        vin, vout = synthetic_vtc()
        curve = analyze_vtc(vin, vout)
        assert curve.gain_at(curve.vil) == pytest.approx(-1.0, abs=0.08)
        assert curve.gain_at(curve.vih) == pytest.approx(-1.0, abs=0.08)

    def test_rejects_flat_curve(self):
        vin = np.linspace(0, 5, 50)
        with pytest.raises(MeasurementError):
            analyze_vtc(vin, np.full_like(vin, 2.5))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(MeasurementError):
            analyze_vtc([0, 1, 2, 3, 4], [0, 1])

    def test_rejects_unsorted_grid(self):
        with pytest.raises(MeasurementError):
            analyze_vtc([0, 2, 1, 3, 4], [5, 4, 3, 2, 1])

    def test_rejects_non_crossing_curve(self):
        # Monotone decreasing but always above v_in=v_out? Not possible
        # for a 0..vdd sweep ending at 0 -- use a curve that never has
        # slope -1 instead.
        vin = np.linspace(0, 5, 100)
        vout = 5.0 - 0.5 * vin  # constant slope -0.5
        with pytest.raises(MeasurementError):
            analyze_vtc(vin, vout)

    def test_label(self):
        vin, vout = synthetic_vtc()
        assert analyze_vtc(vin, vout, ("a", "b")).label == "ab"


class TestSelection:
    def make_curve(self, vil, vih, vm, label):
        vin, vout = synthetic_vtc()
        return VtcCurve((label,), vin, vout, vil=vil, vih=vih, vm=vm)

    def test_min_vil_max_vih(self):
        family = [
            self.make_curve(1.2, 2.5, 2.0, "a"),
            self.make_curve(2.0, 3.4, 2.8, "b"),
        ]
        thr = select_thresholds(family, vdd=5.0)
        assert thr.vil == pytest.approx(1.2)
        assert thr.vih == pytest.approx(3.4)

    def test_guarantee_property(self):
        """The selected band contains every family member's V_m."""
        family = [
            self.make_curve(1.2, 2.5, 2.0, "a"),
            self.make_curve(2.0, 3.4, 2.8, "b"),
            self.make_curve(1.5, 3.0, 2.4, "c"),
        ]
        thr = select_thresholds(family, vdd=5.0)
        for curve in family:
            assert thr.vil < curve.vm < thr.vih

    def test_empty_family_rejected(self):
        with pytest.raises(MeasurementError):
            select_thresholds([], vdd=5.0)

    def test_table_ordering(self):
        family = [
            self.make_curve(2.0, 3.4, 2.8, "b"),
            self.make_curve(1.2, 2.5, 2.0, "a"),
        ]
        rows = threshold_table(family)
        assert [r["switching"] for r in rows] == ["a", "b"]
        assert set(rows[0]) == {"switching", "vil", "vm", "vih"}
