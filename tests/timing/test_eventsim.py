"""Event-driven waveform-level simulation with inertial filtering."""

import pytest

from repro.errors import TimingError
from repro.timing import EventSimulator, NetWaveform, TimingNetlist
from repro.waveform import Edge, FALL, RISE


@pytest.fixture
def single_gate(calculator):
    net = TimingNetlist("one")
    for name in ("i0", "i1", "i2"):
        net.add_input(name)
    net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "out")
    return net


def wf(initial, *edges):
    return NetWaveform(initial=initial, edges=tuple(edges))


class TestNetWaveform:
    def test_levels(self):
        w = wf(True, Edge(FALL, 1e-9, 1e-10), Edge(RISE, 2e-9, 1e-10))
        assert w.level_at(0.5e-9) is True
        assert w.level_at(1.5e-9) is False
        assert w.level_at(3e-9) is True
        assert w.final_level is True

    def test_direction_consistency_enforced(self):
        with pytest.raises(TimingError):
            wf(True, Edge(RISE, 1e-9, 1e-10))
        with pytest.raises(TimingError):
            wf(False, Edge(RISE, 1e-9, 1e-10), Edge(RISE, 2e-9, 1e-10))

    def test_time_ordering_enforced(self):
        with pytest.raises(TimingError):
            wf(True, Edge(FALL, 2e-9, 1e-10), Edge(RISE, 1e-9, 1e-10))

    def test_describe(self):
        text = wf(True, Edge(FALL, 1e-9, 1e-10)).describe()
        assert text.startswith("1")
        assert "fall" in text


class TestSingleGate:
    def test_static_inputs_static_output(self, single_gate):
        sim = EventSimulator(single_gate)
        result = sim.run({
            "i0": wf(True), "i1": wf(True), "i2": wf(True),
        })
        out = result.waveform("out")
        assert out.initial is False      # NAND(1,1,1)=0
        assert out.edges == ()

    def test_single_transition_matches_sta_delay(self, single_gate,
                                                 calculator):
        sim = EventSimulator(single_gate)
        result = sim.run({
            "i0": wf(True, Edge(FALL, 1e-9, 300e-12)),
            "i1": wf(True),
            "i2": wf(True),
        })
        out = result.waveform("out")
        assert out.initial is False
        assert len(out.edges) == 1
        (edge,) = out.edges
        assert edge.direction == RISE
        expected = 1e-9 + calculator.single_delay("a", FALL, 300e-12)
        assert edge.t_cross == pytest.approx(expected, rel=1e-6)

    def test_proximity_cluster_speeds_output(self, single_gate, calculator):
        """Two near-simultaneous falls -> one output rise, earlier than
        the single-input prediction."""
        sim = EventSimulator(single_gate)
        result = sim.run({
            "i0": wf(True, Edge(FALL, 1e-9, 300e-12)),
            "i1": wf(True, Edge(FALL, 1.02e-9, 300e-12)),
            "i2": wf(True),
        })
        out = result.waveform("out")
        assert len(out.edges) == 1
        lone = 1e-9 + calculator.single_delay("a", FALL, 300e-12)
        assert out.edges[0].t_cross < lone

    def test_full_pulse_propagates(self, single_gate):
        """A wide input pulse produces a wide output pulse."""
        sim = EventSimulator(single_gate)
        result = sim.run({
            "i0": wf(True,
                     Edge(FALL, 1e-9, 100e-12),
                     Edge(RISE, 3e-9, 100e-12)),
            "i1": wf(True),
            "i2": wf(True),
        })
        out = result.waveform("out")
        assert [e.direction for e in out.edges] == [RISE, FALL]
        assert result.filtered_glitches == []

    def test_runt_pulse_filtered(self, single_gate):
        """A pulse narrower than the inertial threshold is swallowed and
        reported (Section 6's phenomenon at the event level)."""
        sim = EventSimulator(single_gate)
        result = sim.run({
            "i0": wf(True,
                     Edge(FALL, 1.0e-9, 100e-12),
                     Edge(RISE, 1.05e-9, 100e-12)),
            "i1": wf(True),
            "i2": wf(True),
        })
        out = result.waveform("out")
        assert out.edges == ()
        assert len(result.filtered_glitches) == 1
        glitch = result.filtered_glitches[0]
        assert glitch.instance == "g1"
        assert glitch.net == "out"
        assert glitch.width < 200e-12

    def test_explicit_minimum_pulse(self, single_gate):
        sim_loose = EventSimulator(single_gate, minimum_pulse=1e-15)
        result = sim_loose.run({
            "i0": wf(True,
                     Edge(FALL, 1.0e-9, 100e-12),
                     Edge(RISE, 1.05e-9, 100e-12)),
            "i1": wf(True),
            "i2": wf(True),
        })
        # With a (physically silly) femtosecond threshold the pulse
        # survives.
        assert len(result.waveform("out").edges) == 2

    def test_validation(self, single_gate):
        sim = EventSimulator(single_gate)
        with pytest.raises(TimingError):
            sim.run({"i0": wf(True)})  # missing inputs
        with pytest.raises(TimingError):
            sim.run({
                "i0": wf(True), "i1": wf(True), "i2": wf(True),
                "bogus": wf(False),
            })
        with pytest.raises(TimingError):
            EventSimulator(single_gate, pulse_fraction=0.0)


class TestChain:
    @pytest.fixture
    def chain(self, calculator):
        net = TimingNetlist("chain")
        for name in ("i0", "i1", "i2", "i3", "i4"):
            net.add_input(name)
        net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "w1")
        net.add_gate("g2", calculator, {"a": "w1", "b": "i3", "c": "i4"}, "out")
        return net

    def test_propagation_through_two_levels(self, chain):
        sim = EventSimulator(chain)
        result = sim.run({
            "i0": wf(True, Edge(FALL, 1e-9, 300e-12)),
            "i1": wf(True), "i2": wf(True),
            "i3": wf(True), "i4": wf(True),
        })
        w1 = result.waveform("w1")
        out = result.waveform("out")
        assert [e.direction for e in w1.edges] == [RISE]
        assert [e.direction for e in out.edges] == [FALL]
        assert out.edges[0].t_cross > w1.edges[0].t_cross

    def test_glitch_absorbed_before_next_stage(self, chain):
        """A runt at w1 never reaches g2."""
        sim = EventSimulator(chain)
        result = sim.run({
            "i0": wf(True,
                     Edge(FALL, 1.0e-9, 100e-12),
                     Edge(RISE, 1.04e-9, 100e-12)),
            "i1": wf(True), "i2": wf(True),
            "i3": wf(True), "i4": wf(True),
        })
        assert result.waveform("w1").edges == ()
        assert result.waveform("out").edges == ()
        assert any(g.instance == "g1" for g in result.filtered_glitches)

    def test_transition_counts(self, chain):
        sim = EventSimulator(chain)
        result = sim.run({
            "i0": wf(True,
                     Edge(FALL, 1e-9, 200e-12),
                     Edge(RISE, 4e-9, 200e-12),
                     Edge(FALL, 8e-9, 200e-12)),
            "i1": wf(True), "i2": wf(True),
            "i3": wf(True), "i4": wf(True),
        })
        assert result.transition_count("w1") == 3
        assert result.transition_count("out") == 3


class TestWiredEventSim:
    def test_wire_delays_events(self, single_gate, calculator):
        """A wire on the output net adds load; a wire on an input net
        shifts arrivals -- both must move the output event later."""
        from repro.interconnect import WireSpec
        from repro.timing import EventSimulator, NetWaveform, TimingNetlist

        def build(with_wire):
            net = TimingNetlist("w")
            for name in ("i0", "i1", "i2"):
                net.add_input(name)
            net.add_gate("g1", calculator,
                         {"a": "i0", "b": "i1", "c": "i2"}, "mid")
            net.add_gate("g2", calculator,
                         {"a": "mid", "b": "i1", "c": "i2"}, "out")
            if with_wire:
                net.set_wire("mid", WireSpec(length=3e-3, r_per_m=1e5,
                                             c_per_m=1.5e-10))
            return net

        inputs = {
            "i0": NetWaveform(True, (Edge(FALL, 1e-9, 200e-12),)),
            "i1": NetWaveform(True),
            "i2": NetWaveform(True),
        }
        bare = EventSimulator(build(False)).run(inputs)
        wired = EventSimulator(build(True)).run(inputs)
        t_bare = bare.waveform("out").edges[0].t_cross
        t_wired = wired.waveform("out").edges[0].t_cross
        assert t_wired > t_bare + 10e-12
