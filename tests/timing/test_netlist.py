"""Timing netlist structure: drivers, loads, cycles, topological order."""

import pytest

from repro.errors import TimingError
from repro.timing import TimingNetlist


@pytest.fixture
def netlist(calculator):
    net = TimingNetlist("t")
    for name in ("i0", "i1", "i2", "i3", "i4"):
        net.add_input(name)
    net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "w1")
    net.add_gate("g2", calculator, {"a": "w1", "b": "i3", "c": "i4"}, "out")
    return net


class TestConstruction:
    def test_duplicate_input_rejected(self, calculator):
        net = TimingNetlist()
        net.add_input("i0")
        with pytest.raises(TimingError):
            net.add_input("i0")

    def test_duplicate_instance_rejected(self, netlist, calculator):
        with pytest.raises(TimingError):
            netlist.add_gate("g1", calculator,
                             {"a": "i0", "b": "i1", "c": "i2"}, "wx")

    def test_net_single_driver(self, netlist, calculator):
        with pytest.raises(TimingError):
            netlist.add_gate("g3", calculator,
                             {"a": "i0", "b": "i1", "c": "i2"}, "w1")

    def test_missing_pin_rejected(self, calculator):
        net = TimingNetlist()
        net.add_input("i0")
        with pytest.raises(TimingError):
            net.add_gate("g1", calculator, {"a": "i0"}, "w1")

    def test_extra_pin_rejected(self, calculator):
        net = TimingNetlist()
        for name in ("i0", "i1", "i2", "i3"):
            net.add_input(name)
        with pytest.raises(TimingError):
            net.add_gate("g1", calculator,
                         {"a": "i0", "b": "i1", "c": "i2", "d": "i3"}, "w1")


class TestStructure:
    def test_primary_outputs(self, netlist):
        assert netlist.primary_outputs() == ["out"]

    def test_driver_lookup(self, netlist):
        assert netlist.driver("w1").name == "g1"
        assert netlist.driver("i0") is None
        with pytest.raises(TimingError):
            netlist.driver("floating")

    def test_loads(self, netlist):
        loads = netlist.loads("w1")
        assert [(inst.name, pin) for inst, pin in loads] == [("g2", "a")]

    def test_nets_enumeration(self, netlist):
        nets = netlist.nets()
        assert set(nets) >= {"i0", "i1", "i2", "i3", "i4", "w1", "out"}

    def test_topological_order(self, netlist):
        order = [inst.name for inst in netlist.topological_order()]
        assert order.index("g1") < order.index("g2")

    def test_floating_input_detected(self, calculator):
        net = TimingNetlist()
        net.add_input("i0")
        net.add_gate("g1", calculator,
                     {"a": "i0", "b": "ghost", "c": "i0x"[:2]}, "w1")
        with pytest.raises(TimingError):
            net.topological_order()

    def test_cycle_detected(self, calculator):
        net = TimingNetlist()
        net.add_input("i0")
        net.add_input("i1")
        net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "w2"}, "w1")
        net.add_gate("g2", calculator, {"a": "w1", "b": "i0", "c": "i1"}, "w2")
        with pytest.raises(TimingError):
            net.topological_order()

    def test_instance_lookup(self, netlist):
        assert netlist.instance("g1").output_net == "w1"
        with pytest.raises(TimingError):
            netlist.instance("nope")

    def test_instance_pin_helpers(self, netlist):
        g1 = netlist.instance("g1")
        assert g1.net_of("a") == "i0"
        assert g1.pins_on_net("i1") == ["b"]
        with pytest.raises(TimingError):
            g1.net_of("q")
