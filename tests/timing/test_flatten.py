"""Transistor-level flattening and whole-netlist simulation."""

import pytest

from repro.errors import TimingError
from repro.spice import solve_dc
from repro.timing import TimingNetlist, flatten_to_circuit, simulate_netlist
from repro.waveform import Edge, FALL, Pwl, timing_threshold


@pytest.fixture
def chain(calculator):
    net = TimingNetlist("flat")
    for name in ("i0", "i1", "i2", "i3", "i4"):
        net.add_input(name)
    net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "w1")
    net.add_gate("g2", calculator, {"a": "w1", "b": "i3", "c": "i4"}, "out")
    return net


def const(v):
    return Pwl([0.0, 1e-12], [v, v])


class TestFlatten:
    def test_dc_logic_levels(self, chain):
        """All inputs high: w1 = NAND(1,1,1) = 0, out = NAND(0,1,1) = 1."""
        waveforms = {f"i{k}": const(5.0) for k in range(5)}
        circuit, node_of = flatten_to_circuit(chain, waveforms)
        op = solve_dc(circuit)
        assert op[node_of["w1"]] == pytest.approx(0.0, abs=0.05)
        assert op[node_of["out"]] == pytest.approx(5.0, abs=0.05)

    def test_missing_input_waveform_rejected(self, chain):
        with pytest.raises(TimingError):
            flatten_to_circuit(chain, {"i0": const(5.0)})

    def test_unknown_input_rejected(self, chain):
        waveforms = {f"i{k}": const(5.0) for k in range(5)}
        waveforms["bogus"] = const(0.0)
        with pytest.raises(TimingError):
            flatten_to_circuit(chain, waveforms)

    def test_load_caps_attached(self, chain):
        waveforms = {f"i{k}": const(5.0) for k in range(5)}
        circuit, node_of = flatten_to_circuit(chain, waveforms)
        compiled = circuit.compile()
        # Two explicit 100 fF loads plus parasitics.
        big_caps = [c for a, b, c in compiled.capacitors if c >= 9e-14]
        assert len(big_caps) == 2


class TestSimulateNetlist:
    def test_end_to_end_transition(self, chain, thresholds):
        edges = {
            "i0": Edge(FALL, 0.0, 300e-12),
            "i1": Edge(FALL, 30e-12, 300e-12),
            "i2": Edge(FALL, 60e-12, 300e-12),
        }
        result, node_of = simulate_netlist(
            chain, edges, thresholds,
            static_levels={"i3": True, "i4": True},
        )
        out = result.node(node_of["out"])
        # inputs fall -> w1 rises -> out falls.
        assert out.initial_value() == pytest.approx(5.0, abs=0.1)
        assert out.final_value() == pytest.approx(0.0, abs=0.1)

    def test_static_level_required(self, chain, thresholds):
        edges = {"i0": Edge(FALL, 0.0, 300e-12)}
        with pytest.raises(TimingError):
            simulate_netlist(chain, edges, thresholds)

    def test_sta_matches_flat_simulation(self, chain, thresholds):
        """The headline integration check: proximity STA arrival within
        ~10% of the flat transistor-level simulation."""
        from repro.timing import ProximitySta

        edges = {
            "i0": Edge(FALL, 0.0, 250e-12),
            "i1": Edge(FALL, 40e-12, 400e-12),
            "i2": Edge(FALL, 90e-12, 150e-12),
        }
        sta = ProximitySta(chain).analyze(edges)
        sim, node_of = simulate_netlist(
            chain, edges, thresholds,
            static_levels={"i3": True, "i4": True},
        )
        out = sim.node(node_of["out"])
        level = timing_threshold(FALL, thresholds)
        t_out = out.last_crossing(level, FALL)
        i0 = sim.node(node_of["i0"])
        shift = i0.first_crossing(timing_threshold(FALL, thresholds), FALL)
        assert sta.arrival("out") == pytest.approx(t_out - shift, rel=0.12)
