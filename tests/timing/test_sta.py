"""Proximity and classic STA behaviour."""

import pytest

from repro.errors import TimingError
from repro.timing import ClassicSta, ProximitySta, TimingNetlist
from repro.waveform import Edge, FALL, RISE


@pytest.fixture
def chain(calculator):
    """g1 feeds g2.a; both NAND3."""
    net = TimingNetlist("chain")
    for name in ("i0", "i1", "i2", "i3", "i4"):
        net.add_input(name)
    net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "w1")
    net.add_gate("g2", calculator, {"a": "w1", "b": "i3", "c": "i4"}, "out")
    return net


def falling_inputs(*nets, skew=50e-12, tau=300e-12):
    return {net: Edge(FALL, i * skew, tau) for i, net in enumerate(nets)}


class TestPropagation:
    def test_single_switching_input_matches_single_model(self, chain,
                                                         calculator):
        events = {"i0": Edge(FALL, 0.0, 300e-12)}
        result = ProximitySta(chain).analyze(events)
        expected = calculator.single_delay("a", FALL, 300e-12)
        assert result.arrival("w1") == pytest.approx(expected, rel=1e-6)
        # w1 rises -> g2 output falls.
        assert result.events["out"].direction == FALL

    def test_proximity_faster_than_classic_on_close_inputs(self, chain):
        events = falling_inputs("i0", "i1", "i2", skew=30e-12)
        prox = ProximitySta(chain).analyze(events)
        classic = ClassicSta(chain).analyze(events)
        assert prox.arrival("w1") < classic.arrival("w1")

    def test_agree_when_one_input_switches(self, chain):
        events = {"i1": Edge(FALL, 0.0, 500e-12)}
        prox = ProximitySta(chain).analyze(events)
        classic = ClassicSta(chain).analyze(events)
        assert prox.arrival("out") == pytest.approx(classic.arrival("out"),
                                                    rel=1e-6)

    def test_unreached_nets_have_no_event(self, chain):
        result = ProximitySta(chain).analyze(
            {"i3": Edge(FALL, 0.0, 300e-12)})
        # g1 never switches; g2 sees only i3.
        with pytest.raises(TimingError):
            result.arrival("w1")
        assert result.arrival("out") > 0.0

    def test_slew_propagates(self, chain):
        events = falling_inputs("i0", "i1", "i2")
        result = ProximitySta(chain).analyze(events)
        assert result.slew("w1") > 0.0
        assert result.slew("out") > 0.0

    def test_non_primary_input_event_rejected(self, chain):
        with pytest.raises(TimingError):
            ProximitySta(chain).analyze({"w1": Edge(FALL, 0.0, 1e-10)})

    def test_gate_results_recorded(self, chain):
        events = falling_inputs("i0", "i1", "i2", skew=20e-12)
        result = ProximitySta(chain).analyze(events)
        assert "g1" in result.gate_results
        g1 = result.gate_results["g1"]
        assert len(g1.merged_inputs) >= 2


class TestGlitchWarnings:
    def test_opposite_directions_warn(self, chain):
        events = {
            "i0": Edge(FALL, 0.0, 300e-12),
            "i1": Edge(RISE, 20e-12, 300e-12),
        }
        result = ProximitySta(chain).analyze(events)
        assert result.glitch_warnings
        assert "g1" in result.glitch_warnings[0]
        # The settling transition still propagates.
        assert result.arrival("w1") > 0.0

    def test_same_direction_no_warning(self, chain):
        events = falling_inputs("i0", "i1")
        result = ProximitySta(chain).analyze(events)
        assert result.glitch_warnings == []


class TestClassicSta:
    def test_worst_arrival_wins(self, chain, calculator):
        events = {
            "i0": Edge(FALL, 0.0, 300e-12),
            "i1": Edge(FALL, 400e-12, 300e-12),
        }
        result = ClassicSta(chain).analyze(events)
        d_b = calculator.single_delay("b", FALL, 300e-12)
        assert result.arrival("w1") == pytest.approx(400e-12 + d_b, rel=1e-6)
