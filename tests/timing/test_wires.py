"""Wire-annotated timing: STA Elmore annotation vs flat simulation."""

import pytest

from repro.interconnect import WireSpec, elmore_delay
from repro.timing import ProximitySta, TimingNetlist, simulate_netlist
from repro.waveform import Edge, FALL, timing_threshold


@pytest.fixture
def wired_chain(calculator):
    net = TimingNetlist("wired")
    for name in ("i0", "i1", "i2", "i3", "i4"):
        net.add_input(name)
    net.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "w1")
    net.add_gate("g2", calculator, {"a": "w1", "b": "i3", "c": "i4"}, "out")
    # A long intermediate wire: 2 mm of resistive metal.
    net.set_wire("w1", WireSpec(length=2e-3, r_per_m=1e5, c_per_m=1e-10))
    return net


class TestWireAnnotation:
    def test_wire_lookup(self, wired_chain):
        assert wired_chain.wire("w1") is not None
        assert wired_chain.wire("out") is None

    def test_wire_adds_arrival(self, wired_chain, calculator):
        events = {"i0": Edge(FALL, 0.0, 300e-12)}
        wired = ProximitySta(wired_chain).analyze(events)

        bare = TimingNetlist("bare")
        for name in ("i0", "i1", "i2", "i3", "i4"):
            bare.add_input(name)
        bare.add_gate("g1", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "w1")
        bare.add_gate("g2", calculator, {"a": "w1", "b": "i3", "c": "i4"}, "out")
        plain = ProximitySta(bare).analyze(events)

        wire = wired_chain.wire("w1")
        extra = wired.arrival("out") - plain.arrival("out")
        # The arrival penalty is at least the wire Elmore (slew
        # degradation adds a bit more through the gate model).
        assert extra > 0.8 * elmore_delay(wire)

    def test_wire_degrades_slew_seen_by_receiver(self, wired_chain):
        events = {"i0": Edge(FALL, 0.0, 100e-12)}
        result = ProximitySta(wired_chain).analyze(events)
        # The net event records the driver-side slew; the receiver-side
        # effect shows up in g2's folded input slews via gate_results.
        g2 = result.gate_results["g2"]
        assert g2.delta1  # evaluated successfully with degraded edge

    def test_sta_tracks_flat_simulation_with_wire(self, wired_chain,
                                                  thresholds):
        edges = {
            "i0": Edge(FALL, 0.0, 250e-12),
            "i1": Edge(FALL, 40e-12, 350e-12),
            "i2": Edge(FALL, 80e-12, 200e-12),
        }
        sta = ProximitySta(wired_chain).analyze(edges)
        sim, node_of = simulate_netlist(
            wired_chain, edges, thresholds,
            static_levels={"i3": True, "i4": True},
        )
        out = sim.node(node_of["out"])
        level = timing_threshold(FALL, thresholds)
        t_out = out.last_crossing(level, FALL)
        i0 = sim.node(node_of["i0"])
        shift = i0.first_crossing(timing_threshold(FALL, thresholds), FALL)
        assert sta.arrival("out") == pytest.approx(t_out - shift, rel=0.15)
