"""Cross-validation of the event simulator's inertial heuristic against
the Section-6 measured minimum pulse width."""

import pytest

from repro.inertial import minimum_pulse_width
from repro.waveform import RISE


class TestPulseFractionHeuristic:
    def test_heuristic_within_factor_two_of_measured(self, nand3, thresholds,
                                                     calculator):
        """The default 0.6 x output-slew threshold approximates the
        simulated minimum pulse width for fast input edges."""
        measured = minimum_pulse_width(
            nand3, "b", tau_first="100ps", tau_second="100ps",
            first_direction=RISE, thresholds=thresholds,
        )
        # The event simulator's heuristic threshold for the same edge:
        # 0.6 * output slew of the first transition.
        out_slew = calculator.single_ttime("b", RISE, 100e-12)
        heuristic = 0.6 * out_slew
        assert heuristic == pytest.approx(measured, rel=1.0)
        assert 0.3 * measured < heuristic < 3.0 * measured

    def test_measured_width_exceeds_input_taus(self, nand3, thresholds):
        """Sanity: the gate cannot pass pulses much shorter than its own
        response; the minimum width exceeds the input edge times."""
        measured = minimum_pulse_width(
            nand3, "b", tau_first="100ps", tau_second="100ps",
            first_direction=RISE, thresholds=thresholds,
        )
        assert measured > 200e-12
