"""Wire-annotated classic STA and multi-fanout loading behaviour."""

import pytest

from repro.interconnect import WireSpec, elmore_delay
from repro.timing import ClassicSta, ProximitySta, TimingNetlist
from repro.waveform import Edge, FALL


@pytest.fixture
def fanout_netlist(calculator):
    """One driver fanning out to two receivers through a wired net."""
    net = TimingNetlist("fanout")
    for name in ("i0", "i1", "i2", "i3", "i4", "i5", "i6"):
        net.add_input(name)
    net.add_gate("drv", calculator, {"a": "i0", "b": "i1", "c": "i2"}, "w")
    net.add_gate("rx1", calculator, {"a": "w", "b": "i3", "c": "i4"}, "o1")
    net.add_gate("rx2", calculator, {"a": "w", "b": "i5", "c": "i6"}, "o2")
    return net


class TestClassicStaWithWires:
    def test_wire_slows_classic_arrivals_too(self, fanout_netlist):
        events = {"i0": Edge(FALL, 0.0, 300e-12)}
        bare = ClassicSta(fanout_netlist).analyze(events)
        fanout_netlist.set_wire("w", WireSpec(length=2e-3, r_per_m=1e5,
                                              c_per_m=1e-10))
        wired = ClassicSta(fanout_netlist).analyze(events)
        wire = fanout_netlist.wire("w")
        assert wired.arrival("o1") > bare.arrival("o1") + \
            0.8 * elmore_delay(wire)

    def test_both_receivers_see_the_wire(self, fanout_netlist):
        fanout_netlist.set_wire("w", WireSpec(length=2e-3))
        events = {"i0": Edge(FALL, 0.0, 300e-12)}
        result = ProximitySta(fanout_netlist).analyze(events)
        assert result.arrival("o1") == pytest.approx(result.arrival("o2"),
                                                     rel=1e-9)

    def test_wire_degraded_slew_reaches_receivers(self, fanout_netlist):
        events = {"i0": Edge(FALL, 0.0, 100e-12)}
        bare = ProximitySta(fanout_netlist).analyze(events)
        fanout_netlist.set_wire("w", WireSpec(length=4e-3, r_per_m=2e5,
                                              c_per_m=2e-10))
        wired = ProximitySta(fanout_netlist).analyze(events)
        # Downstream slew grows because the receiver gate was fed a
        # degraded edge (and its driver carries the wire load).
        assert wired.slew("o1") > bare.slew("o1")
