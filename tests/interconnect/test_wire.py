"""Wire specs, pi models and circuit emission."""

import pytest

from repro.errors import NetlistError
from repro.interconnect import WireSpec, emit_wire, pi_model
from repro.spice import Circuit, transient
from repro.waveform import Pwl


class TestWireSpec:
    def test_totals(self):
        wire = WireSpec(length=1e-3, r_per_m=7e4, c_per_m=2e-10)
        assert wire.resistance == pytest.approx(70.0)
        assert wire.capacitance == pytest.approx(2e-13)

    def test_validation(self):
        with pytest.raises(NetlistError):
            WireSpec(length=0.0)
        with pytest.raises(NetlistError):
            WireSpec(length=1e-3, r_per_m=-1.0)

    def test_scaled(self):
        wire = WireSpec(length=1e-3).scaled(2.0)
        assert wire.length == pytest.approx(2e-3)
        with pytest.raises(NetlistError):
            wire.scaled(0.0)

    def test_pi_model_splits_capacitance(self):
        wire = WireSpec(length=1e-3, r_per_m=1e5, c_per_m=1e-10)
        c1, r, c2 = pi_model(wire)
        assert c1 == pytest.approx(c2)
        assert c1 + c2 == pytest.approx(wire.capacitance)
        assert r == pytest.approx(wire.resistance)


class TestEmitWire:
    def make_driven_wire(self, segments):
        ckt = Circuit()
        step = Pwl([1e-10, 1.05e-10], [0.0, 5.0])
        ckt.add_vsource("vin", "near", step)
        wire = WireSpec(length=2e-3, r_per_m=1e5, c_per_m=2.5e-10)
        emit_wire(ckt, "w", "near", "far", wire, segments=segments)
        ckt.add_capacitor("cl", "far", "0", 5e-14)
        return ckt, wire

    def test_internal_node_count(self):
        ckt, _ = self.make_driven_wire(segments=4)
        compiled = ckt.compile()
        internal = [n for n in compiled.unknown_names if n.startswith("w.")]
        assert len(internal) == 3

    def test_far_end_settles_to_source(self):
        ckt, _ = self.make_driven_wire(segments=3)
        result = transient(ckt, 20e-9)
        assert result.node("far").final_value() == pytest.approx(5.0, abs=0.05)

    def test_delay_close_to_elmore(self):
        """The simulated 50% crossing at the far end lands within ~35%
        of the Elmore estimate (Elmore upper-bounds RC-tree delay)."""
        from repro.interconnect import elmore_delay

        ckt, wire = self.make_driven_wire(segments=5)
        result = transient(ckt, 20e-9)
        far = result.node("far")
        t50 = far.first_crossing(2.5, "rise") - 1.05e-10
        estimate = elmore_delay(wire, load=5e-14)
        assert t50 <= estimate * 1.05
        assert t50 >= estimate * 0.4

    def test_validation(self):
        ckt = Circuit()
        wire = WireSpec(length=1e-3)
        with pytest.raises(NetlistError):
            emit_wire(ckt, "w", "a", "a", wire)
        with pytest.raises(NetlistError):
            emit_wire(ckt, "w", "a", "b", wire, segments=0)
