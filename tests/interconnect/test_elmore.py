"""Elmore delay over RC trees."""

import pytest

from repro.errors import TimingError
from repro.interconnect import RcTree, WireSpec, elmore_delay, elmore_slew


class TestElmoreFormulas:
    def test_single_wire(self):
        wire = WireSpec(length=1e-3, r_per_m=1e5, c_per_m=1e-10)
        # R=100, C=100fF: R*C/2 = 5ps.
        assert elmore_delay(wire) == pytest.approx(5e-12)

    def test_with_load(self):
        wire = WireSpec(length=1e-3, r_per_m=1e5, c_per_m=1e-10)
        assert elmore_delay(wire, load=1e-13) == pytest.approx(
            100.0 * (0.5e-13 + 1e-13))

    def test_slew_quadrature(self):
        wire = WireSpec(length=1e-3, r_per_m=1e5, c_per_m=1e-10)
        pure = elmore_slew(wire)
        with_input = elmore_slew(wire, input_slew=1e-10)
        assert with_input > pure
        assert with_input == pytest.approx(
            (pure ** 2 + (1e-10) ** 2) ** 0.5)

    def test_zero_wire_slew_passthrough(self):
        wire = WireSpec(length=1e-6, r_per_m=0.0, c_per_m=0.0)
        assert elmore_slew(wire, input_slew=2e-10) == pytest.approx(2e-10)


class TestRcTree:
    def build_ladder(self):
        """root -R1- n1 -R2- n2, caps at both."""
        tree = RcTree("root")
        tree.add_node("n1", "root", resistance=100.0, capacitance=1e-13)
        tree.add_node("n2", "n1", resistance=200.0, capacitance=2e-13)
        return tree

    def test_ladder_elmore(self):
        tree = self.build_ladder()
        # T(n2) = R1*(C1+C2) + R2*C2.
        expected = 100.0 * 3e-13 + 200.0 * 2e-13
        assert tree.elmore("n2") == pytest.approx(expected)

    def test_near_sink(self):
        tree = self.build_ladder()
        expected = 100.0 * 3e-13
        assert tree.elmore("n1") == pytest.approx(expected)

    def test_branching(self):
        """A fork: side branch capacitance loads the shared resistance
        but not the branch-specific one."""
        tree = RcTree("root")
        tree.add_node("trunk", "root", resistance=100.0, capacitance=0.0)
        tree.add_node("left", "trunk", resistance=50.0, capacitance=1e-13)
        tree.add_node("right", "trunk", resistance=80.0, capacitance=2e-13)
        t_left = tree.elmore("left")
        assert t_left == pytest.approx(100.0 * 3e-13 + 50.0 * 1e-13)
        t_right = tree.elmore("right")
        assert t_right == pytest.approx(100.0 * 3e-13 + 80.0 * 2e-13)

    def test_add_wire_segments(self):
        tree = RcTree("root")
        wire = WireSpec(length=1e-3, r_per_m=1e5, c_per_m=1e-10)
        end = tree.add_wire("sink", "root", wire, segments=10)
        assert end == "sink"
        # With many segments the lumped ladder approaches the
        # distributed-line Elmore R*C/2.
        assert tree.elmore("sink") == pytest.approx(
            elmore_delay(wire), rel=0.1)

    def test_add_cap(self):
        tree = self.build_ladder()
        tree.add_cap("n2", 1e-13)
        expected = 100.0 * 4e-13 + 200.0 * 3e-13
        assert tree.elmore("n2") == pytest.approx(expected)

    def test_total_and_downstream(self):
        tree = self.build_ladder()
        assert tree.total_capacitance() == pytest.approx(3e-13)
        assert tree.downstream_capacitance("n1") == pytest.approx(3e-13)
        assert tree.downstream_capacitance("n2") == pytest.approx(2e-13)

    def test_validation(self):
        tree = self.build_ladder()
        with pytest.raises(TimingError):
            tree.add_node("n1", "root", resistance=1.0, capacitance=0.0)
        with pytest.raises(TimingError):
            tree.add_node("n3", "ghost", resistance=1.0, capacitance=0.0)
        with pytest.raises(TimingError):
            tree.add_node("n3", "root", resistance=-1.0, capacitance=0.0)
        with pytest.raises(TimingError):
            tree.elmore("ghost")
        with pytest.raises(TimingError):
            tree.add_cap("ghost", 1e-15)
        with pytest.raises(TimingError):
            tree.add_cap("n1", -1e-15)
