"""Level-1 MOSFET model: regions, symmetry, continuity, derivatives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.mosfet import MosfetInstance, mosfet_current, nmos_like_current
from repro.tech import MosfetParams

K = 1e-4
VT = 0.7
LAM = 0.05


class TestRegions:
    def test_cutoff(self):
        ids, gm, gds = nmos_like_current(K, VT, LAM, vgs=0.5, vds=3.0)
        assert ids == 0.0 and gm == 0.0 and gds == 0.0

    def test_triode(self):
        vgs, vds = 3.0, 0.5
        ids, gm, gds = nmos_like_current(K, VT, LAM, vgs, vds)
        vov = vgs - VT
        expected = K * (2 * vov * vds - vds**2) * (1 + LAM * vds)
        assert ids == pytest.approx(expected)
        assert gm > 0 and gds > 0

    def test_saturation(self):
        vgs, vds = 2.0, 4.0
        ids, gm, gds = nmos_like_current(K, VT, LAM, vgs, vds)
        vov = vgs - VT
        assert ids == pytest.approx(K * vov**2 * (1 + LAM * vds))

    def test_saturation_current_grows_with_vgs(self):
        i1, _, _ = nmos_like_current(K, VT, LAM, 2.0, 5.0)
        i2, _, _ = nmos_like_current(K, VT, LAM, 3.0, 5.0)
        assert i2 > i1


class TestSymmetry:
    def test_drain_source_swap(self):
        """I(vgs, -vds) must equal -I(vgd, vds) by device symmetry."""
        vgs, vds = 3.0, -1.5
        ids, _, _ = nmos_like_current(K, VT, LAM, vgs, vds)
        ids_sw, _, _ = nmos_like_current(K, VT, LAM, vgs - vds, -vds)
        assert ids == pytest.approx(-ids_sw)

    def test_zero_vds_zero_current(self):
        ids, _, gds = nmos_like_current(K, VT, LAM, 3.0, 0.0)
        assert ids == 0.0
        assert gds > 0.0  # conducting channel


class TestContinuity:
    @given(vgs=st.floats(min_value=0.0, max_value=5.0))
    def test_triode_saturation_boundary(self, vgs):
        """Current and gds are continuous at vds = vov."""
        vov = vgs - VT
        if vov <= 1e-3:
            return
        eps = 1e-9
        below = nmos_like_current(K, VT, LAM, vgs, vov - eps)
        above = nmos_like_current(K, VT, LAM, vgs, vov + eps)
        assert below[0] == pytest.approx(above[0], rel=1e-5)
        assert below[2] == pytest.approx(above[2], rel=1e-3, abs=1e-12)

    @settings(max_examples=40)
    @given(
        vgs=st.floats(min_value=-1.0, max_value=6.0),
        vds=st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_derivatives_match_finite_differences(self, vgs, vds):
        """gm and gds agree with numerical differentiation away from the
        (measure-zero) region-boundary kinks."""
        vov = vgs - VT
        h = 1e-7
        # Skip within 10h of the kinks where the FD straddles regions.
        if abs(vov) < 10 * h or abs(vds - vov) < 10 * h or abs(vds) < 10 * h:
            return
        if abs(-vds - (vgs - vds - VT)) < 10 * h:  # swapped-mode kink
            return
        ids, gm, gds = nmos_like_current(K, VT, LAM, vgs, vds)
        ip, _, _ = nmos_like_current(K, VT, LAM, vgs + h, vds)
        im, _, _ = nmos_like_current(K, VT, LAM, vgs - h, vds)
        assert gm == pytest.approx((ip - im) / (2 * h), rel=1e-3, abs=1e-10)
        ip, _, _ = nmos_like_current(K, VT, LAM, vgs, vds + h)
        im, _, _ = nmos_like_current(K, VT, LAM, vgs, vds - h)
        assert gds == pytest.approx((ip - im) / (2 * h), rel=1e-3, abs=1e-10)


class TestPolarities:
    @pytest.fixture
    def nmos(self):
        return MosfetParams("nmos", vt0=VT, kp=60e-6, lam=LAM)

    @pytest.fixture
    def pmos(self):
        return MosfetParams("pmos", vt0=-VT, kp=25e-6, lam=LAM)

    def test_nmos_conducts_high_gate(self, nmos):
        i_d, *_ = mosfet_current(nmos, K, vg=5.0, vd=5.0, vs=0.0)
        assert i_d > 0.0

    def test_nmos_off_low_gate(self, nmos):
        i_d, *_ = mosfet_current(nmos, K, vg=0.0, vd=5.0, vs=0.0)
        assert i_d == 0.0

    def test_pmos_conducts_low_gate(self, pmos):
        # Source at Vdd, drain low: current flows INTO the drain node
        # convention-wise means negative i_d here (current exits drain).
        i_d, *_ = mosfet_current(pmos, K, vg=0.0, vd=0.0, vs=5.0)
        assert i_d < 0.0

    def test_pmos_off_high_gate(self, pmos):
        i_d, *_ = mosfet_current(pmos, K, vg=5.0, vd=0.0, vs=5.0)
        assert i_d == 0.0

    @settings(max_examples=30)
    @given(
        vg=st.floats(min_value=0.0, max_value=5.0),
        vd=st.floats(min_value=0.0, max_value=5.0),
        vs=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_pmos_derivatives_match_fd(self, vg, vd, vs):
        pmos = MosfetParams("pmos", vt0=-VT, kp=25e-6, lam=LAM)
        h = 1e-7
        i0, di_dvd, di_dvg, di_dvs = mosfet_current(pmos, K, vg, vd, vs)
        for idx, expected in ((0, di_dvg), (1, di_dvd), (2, di_dvs)):
            args = [vg, vd, vs]
            args[idx] += h
            ip = mosfet_current(pmos, K, *args)[0]
            args[idx] -= 2 * h
            im = mosfet_current(pmos, K, *args)[0]
            fd = (ip - im) / (2 * h)
            # Tolerate kink straddling: only check when FD is stable.
            args[idx] += h
            if abs(fd - expected) > 1e-3 * max(abs(fd), abs(expected), 1e-9):
                mid = mosfet_current(pmos, K, *args)[0]
                onesided = (ip - mid) / h
                assert (
                    expected == pytest.approx(fd, rel=1e-2, abs=1e-9)
                    or expected == pytest.approx(onesided, rel=1e-2, abs=1e-9)
                )


class TestMosfetInstance:
    def test_strength_uses_geometry(self):
        params = MosfetParams("nmos", vt0=VT, kp=60e-6)
        inst = MosfetInstance("m1", "d", "g", "s", "0", params, 4e-6, 0.8e-6)
        assert inst.k == pytest.approx(0.5 * 60e-6 * 5.0)

    def test_parasitic_caps_scale_with_width(self):
        params = MosfetParams(
            "nmos", vt0=VT, kp=60e-6,
            cgs_per_width=1e-9, cgd_per_width=0.5e-9, cj_per_width=2e-9,
        )
        inst = MosfetInstance("m1", "d", "g", "s", "b", params, 2e-6, 0.8e-6)
        caps = dict()
        for name, a, b, c in inst.parasitic_caps():
            caps[name] = (a, b, c)
        assert caps["m1.cgs"] == ("g", "s", pytest.approx(2e-15))
        assert caps["m1.cgd"] == ("g", "d", pytest.approx(1e-15))
        assert caps["m1.cdb"] == ("d", "b", pytest.approx(4e-15))
        assert caps["m1.csb"] == ("s", "b", pytest.approx(4e-15))

    def test_zero_parasitics_omitted(self):
        params = MosfetParams("nmos", vt0=VT, kp=60e-6)
        inst = MosfetInstance("m1", "d", "g", "s", "b", params, 2e-6, 0.8e-6)
        assert inst.parasitic_caps() == []
