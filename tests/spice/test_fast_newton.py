"""The opt-in modified-Newton mode (``REPRO_FAST_NEWTON``).

Fast Newton reuses the LU factorization across iterations (and across
same-``h`` accepted timesteps), so it is *tolerance-gated* rather than
bit-identical: waveforms must track the full-Newton solution to within
1 nV, measured crossing times to within 1 fs, and the retry/health
accounting must be unchanged.  The default mode stays bit-identical and
is pinned elsewhere (``test_assembly_equivalence``,
``test_batch_equivalence``); these tests pin the opt-in contract.
"""

import numpy as np
import pytest

from repro.spice import Circuit, NewtonStats, TransientOptions, solve_dc, transient
from repro.spice.engine import (
    FAST_NEWTON_ENV_VAR,
    FastNewtonState,
    NewtonOptions,
    fast_newton_enabled,
    newton_solve,
)
from repro.tech import default_process
from repro.waveform import ramp

PROC = default_process()

FAST_OPTS = TransientOptions(h_max_ratio=2e-2)


def inverter(tau: float = 0.3e-9) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("vvdd", "vdd", PROC.vdd)
    ckt.add_vsource("vin", "in", ramp(0.5e-9, 0.0, PROC.vdd, tau))
    ckt.add_mosfet("mn", "out", "in", "0", "0", PROC.nmos, 4e-6, 0.8e-6)
    ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", PROC.pmos, 8e-6, 0.8e-6)
    ckt.add_capacitor("cl", "out", "0", 1e-13)
    return ckt


class TestEnvKnob:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("yes", True), ("on", True),
        (" 1 ", True), ("TRUE", True),
        ("0", False), ("false", False), ("no", False), ("off", False),
        ("", False),
    ])
    def test_fast_newton_enabled_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv(FAST_NEWTON_ENV_VAR, value)
        assert fast_newton_enabled() is expected

    def test_disabled_when_unset(self, monkeypatch):
        monkeypatch.delenv(FAST_NEWTON_ENV_VAR, raising=False)
        assert not fast_newton_enabled()


class TestToleranceContract:
    def test_transient_waveforms_within_nanovolt(self, monkeypatch):
        monkeypatch.delenv(FAST_NEWTON_ENV_VAR, raising=False)
        base = transient(inverter(), 2e-9, options=FAST_OPTS)
        monkeypatch.setenv(FAST_NEWTON_ENV_VAR, "1")
        fast = transient(inverter(), 2e-9, options=FAST_OPTS)
        grid = np.linspace(0.0, 2e-9, 400)
        for node in ("out", "in"):
            vb = base.node(node)(grid)
            vf = fast.node(node)(grid)
            assert float(np.abs(vb - vf).max()) <= 1e-9

    def test_transient_crossings_within_femtosecond(self, monkeypatch):
        monkeypatch.delenv(FAST_NEWTON_ENV_VAR, raising=False)
        base = transient(inverter(), 2e-9, options=FAST_OPTS)
        monkeypatch.setenv(FAST_NEWTON_ENV_VAR, "1")
        fast = transient(inverter(), 2e-9, options=FAST_OPTS)
        level = PROC.vdd / 2.0
        t_base = base.node("out").first_crossing(level, "fall")
        t_fast = fast.node("out").first_crossing(level, "fall")
        assert abs(t_base - t_fast) <= 1e-15

    def test_retry_and_health_accounting_unchanged(self, monkeypatch):
        monkeypatch.delenv(FAST_NEWTON_ENV_VAR, raising=False)
        base = transient(inverter(), 2e-9, options=FAST_OPTS)
        monkeypatch.setenv(FAST_NEWTON_ENV_VAR, "1")
        fast = transient(inverter(), 2e-9, options=FAST_OPTS)
        assert fast.solver_retries == base.solver_retries
        assert fast.retry_attempts == base.retry_attempts
        assert fast.newton_failures == base.newton_failures
        assert fast.rejected_steps == base.rejected_steps

    def test_dc_operating_point_within_nanovolt(self, monkeypatch):
        monkeypatch.delenv(FAST_NEWTON_ENV_VAR, raising=False)
        base = solve_dc(inverter())
        monkeypatch.setenv(FAST_NEWTON_ENV_VAR, "1")
        fast = solve_dc(inverter())
        for node, value in base.voltages.items():
            assert abs(fast.voltages[node] - value) <= 1e-9


class TestLuReuse:
    def test_reuse_counter_advances(self):
        """Across repeated solves under one key, the retained LU must
        actually be reused (otherwise the mode is full Newton in
        disguise)."""
        compiled = inverter().compile()
        known = compiled.known_voltages(0.0)
        fast = FastNewtonState()
        options = NewtonOptions()
        x = np.full(compiled.n_unknown, PROC.vdd / 2.0)
        for _ in range(3):
            x = newton_solve(compiled, x, known, options=options, fast=fast)
        assert fast.refactorized >= 1
        assert fast.reused >= 1

    def test_matches_full_newton_solution(self):
        compiled = inverter().compile()
        known = compiled.known_voltages(0.0)
        options = NewtonOptions()
        x0 = np.full(compiled.n_unknown, PROC.vdd / 2.0)
        ref = newton_solve(compiled, x0, known, options=options)
        fast = newton_solve(compiled, x0, known, options=options,
                            fast=FastNewtonState())
        assert float(np.abs(ref - fast).max()) <= 1e-9

    def test_stats_still_recorded(self):
        compiled = inverter().compile()
        known = compiled.known_voltages(0.0)
        stats = NewtonStats()
        x0 = np.full(compiled.n_unknown, PROC.vdd / 2.0)
        newton_solve(compiled, x0, known, options=NewtonOptions(),
                     stats=stats, fast=FastNewtonState())
        assert stats.solves == 1
        assert stats.iterations >= 1

    def test_singular_jacobian_recovers_or_raises_like_default(self):
        """A floating node (gmin=0) gives a singular J; the fast path
        must walk the same nudge-then-raise ladder as full Newton."""
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 1.0)
        ckt.add_capacitor("c1", "float", "0", 1e-15)
        ckt.add_resistor("r1", "in", "mid", 1e3)
        ckt.add_resistor("r2", "mid", "0", 1e3)
        compiled = ckt.compile()
        known = compiled.known_voltages(0.0)
        options = NewtonOptions(gmin=0.0)
        x0 = np.zeros(compiled.n_unknown)
        def attempt(**kwargs):
            try:
                return newton_solve(compiled, x0, known,
                                    options=options, **kwargs)
            except Exception as exc:  # ConvergenceError
                return type(exc).__name__
        ref = attempt()
        fast = attempt(fast=FastNewtonState())
        if isinstance(ref, str):
            assert fast == ref
        else:
            assert float(np.abs(ref - fast).max()) <= 1e-9
