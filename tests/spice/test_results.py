"""Result containers."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.spice.results import SweepResult, TransientResult


class TestSweepResult:
    def make(self):
        grid = np.linspace(0.0, 5.0, 6)
        return SweepResult(
            sweep_source="vin",
            sweep_values=grid,
            voltages={"z": 5.0 - grid, "vin": grid},
        )

    def test_node_access(self):
        sweep = self.make()
        assert sweep.node("z")[0] == pytest.approx(5.0)
        with pytest.raises(MeasurementError):
            sweep.node("ghost")

    def test_transfer_curve_interpolates(self):
        curve = self.make().transfer_curve("z")
        assert curve(2.5) == pytest.approx(2.5)


class TestTransientResult:
    def make(self):
        t = np.linspace(0.0, 1e-9, 5)
        return TransientResult(
            t, {"z": np.linspace(0.0, 5.0, 5)},
            rejected_steps=2, newton_iterations=17,
        )

    def test_node_waveform(self):
        result = self.make()
        wf = result.node("z")
        assert wf(0.5e-9) == pytest.approx(2.5)
        assert result.t_stop == pytest.approx(1e-9)

    def test_missing_node_lists_available(self):
        result = self.make()
        with pytest.raises(MeasurementError) as excinfo:
            result.node("q")
        assert "z" in str(excinfo.value)

    def test_counters_kept(self):
        result = self.make()
        assert result.rejected_steps == 2
        assert result.newton_iterations == 17

    def test_node_names_sorted(self):
        t = np.array([0.0, 1.0])
        result = TransientResult(t, {"b": t, "a": t})
        assert result.node_names == ["a", "b"]
