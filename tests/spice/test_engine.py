"""Assembly and Newton solver unit tests on hand-checkable systems."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.spice import Circuit
from repro.spice.engine import NewtonOptions, assemble_system, newton_solve
from repro.tech import default_process


def divider():
    ckt = Circuit()
    ckt.add_vsource("v1", "in", 2.0)
    ckt.add_resistor("r1", "in", "mid", 1e3)
    ckt.add_resistor("r2", "mid", "0", 1e3)
    return ckt.compile()


class TestAssembly:
    def test_residual_zero_at_solution(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        F, J = assemble_system(compiled, np.array([1.0]), known, gmin=0.0)
        assert F[0] == pytest.approx(0.0, abs=1e-15)
        assert J[0, 0] == pytest.approx(2e-3)

    def test_residual_sign(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        # Node above the solution: net current flows out (positive F).
        F, _ = assemble_system(compiled, np.array([1.5]), known, gmin=0.0)
        assert F[0] > 0.0

    def test_gmin_stamped(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        _, J0 = assemble_system(compiled, np.array([1.0]), known, gmin=0.0)
        _, J1 = assemble_system(compiled, np.array([1.0]), known, gmin=1e-3)
        assert J1[0, 0] - J0[0, 0] == pytest.approx(1e-3)

    def test_source_scaling(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        F, _ = assemble_system(compiled, np.array([0.5]), known,
                               gmin=0.0, source_scale=0.5)
        # At half source, v_mid=0.5 solves.
        assert F[0] == pytest.approx(0.0, abs=1e-15)

    def test_cap_stamp_contribution(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        # Companion conductance pulling 'mid' toward 0.
        stamps = [(0, -1, 1e-3, 0.0)]  # between mid (slot 0) and ground
        F, J = assemble_system(compiled, np.array([1.0]), known,
                               gmin=0.0, cap_stamps=stamps)
        assert F[0] == pytest.approx(1e-3)
        assert J[0, 0] == pytest.approx(3e-3)

    def test_mosfet_stamp_conservation(self):
        """Drain current leaves one node and enters the other: KCL rows
        for drain and source carry opposite signs."""
        proc = default_process()
        ckt = Circuit()
        ckt.add_vsource("vg", "g", 5.0)
        ckt.add_resistor("rd", "g", "d", 1e5)
        ckt.add_resistor("rs", "s", "0", 1e5)
        ckt.add_mosfet("m1", "d", "g", "s", "0", proc.nmos, 4e-6, 0.8e-6,
                       with_parasitics=False)
        compiled = ckt.compile()
        known = compiled.known_voltages(0.0)
        x = np.array([3.0, 1.0])  # d, s
        F, _ = assemble_system(compiled, x, known, gmin=0.0)
        d_idx = compiled.unknown_names.index("d")
        s_idx = compiled.unknown_names.index("s")
        # Resistor currents: into d from g: (5-3)/1e5; out of s: 1/1e5.
        i_rd = (3.0 - 5.0) / 1e5
        i_rs = 1.0 / 1e5
        i_channel = F[d_idx] - i_rd
        assert F[s_idx] == pytest.approx(i_rs - i_channel)


class TestNewton:
    def test_linear_system_one_iteration_converges(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        x = newton_solve(compiled, np.array([0.0]), known,
                         options=NewtonOptions())
        assert x[0] == pytest.approx(1.0, rel=1e-9)

    def test_damping_limits_step(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        opts = NewtonOptions(max_step=0.1)
        # Still converges, just in more iterations.
        x = newton_solve(compiled, np.array([5.0]), known, options=opts)
        assert x[0] == pytest.approx(1.0, rel=1e-6)

    def test_iteration_budget_exhausted(self):
        compiled = divider()
        known = compiled.known_voltages(0.0)
        opts = NewtonOptions(max_step=1e-4, max_iterations=3)
        with pytest.raises(ConvergenceError) as excinfo:
            newton_solve(compiled, np.array([5.0]), known, options=opts)
        assert excinfo.value.iterations == 3

    def test_nand_dc_convergence_from_bad_guess(self):
        proc = default_process()
        from repro.gates import Gate
        gate = Gate.nand(2, proc)
        compiled = gate.build({"a": 5.0, "b": 5.0},
                              switching=["a", "b"]).compile()
        known = compiled.known_voltages(0.0)
        x0 = np.full(compiled.n_unknown, 5.0)  # everything at the rail
        x = newton_solve(compiled, x0, known, options=NewtonOptions())
        z = compiled.unknown_names.index("z")
        assert x[z] == pytest.approx(0.0, abs=0.05)


class TestNewtonStats:
    def test_stats_accumulate_on_success(self):
        from repro.spice.engine import NewtonStats

        compiled = divider()
        known = compiled.known_voltages(0.0)
        stats = NewtonStats()
        newton_solve(compiled, np.array([0.0]), known,
                     options=NewtonOptions(), stats=stats)
        assert stats.iterations >= 1
        assert stats.solves == 1
        assert stats.failures == 0
        first = stats.iterations
        # A second solve keeps accumulating into the same object.
        newton_solve(compiled, np.array([0.0]), known,
                     options=NewtonOptions(), stats=stats)
        assert stats.iterations == 2 * first
        assert stats.solves == 2

    def test_stats_accumulate_on_failure(self):
        from repro.spice.engine import NewtonStats

        compiled = divider()
        known = compiled.known_voltages(0.0)
        stats = NewtonStats()
        opts = NewtonOptions(max_step=1e-4, max_iterations=3)
        with pytest.raises(ConvergenceError):
            newton_solve(compiled, np.array([5.0]), known, options=opts,
                         stats=stats)
        assert stats.iterations == 3
        assert stats.failures == 1
        assert stats.solves == 0
