"""Regressions for singular-Jacobian handling in the batched driver.

The lockstep kernel mirrors the scalar Newton loop's nudge-then-fail
ladder lane by lane.  Two bugs are pinned here:

* a **doubly singular** lane (LU fails even after the diagonal nudge)
  used to zero its step and could then satisfy the ``step < voltol``
  convergence test at a near-solution iterate -- reporting *false
  convergence* from a solve that never solved anything.  The singular
  mask must veto convergence and finish the lane on the failure path.
* the batched nudge once rebuilt ``J + value*np.eye(n)`` while the
  scalar loop nudged the diagonal in place, and the two drivers could
  disagree on the escalation value.  Both now share
  :func:`~repro.spice.engine.nudge_diagonal` /
  :func:`~repro.spice.engine.singular_nudge`, so recovery arithmetic is
  bit-identical -- pinned by solving a deliberately singular circuit
  through both drivers.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.spice import Circuit
from repro.spice.batch import run_plans_batched
from repro.spice.sparse import SPARSE_ENV_VAR
from repro.spice.engine import (
    NewtonOptions,
    NewtonRequest,
    NewtonStats,
    newton_solve,
    nudge_diagonal,
    request_solve,
    singular_nudge,
)


@pytest.fixture(autouse=True)
def dense_backend(monkeypatch):
    """Pin the dense path: the lockstep kernel under regression here is
    dense-only, and a ``REPRO_SPARSE=1`` environment (the CI sparse
    smoke leg) would otherwise divert every lane to the serial sparse
    driver -- whose SuperLU solves the ``np.linalg.solve`` monkeypatch
    cannot reach."""
    monkeypatch.setenv(SPARSE_ENV_VAR, "0")


def divider() -> Circuit:
    """v(in)=1 through an equal divider: exact solution v(mid)=0.5."""
    ckt = Circuit("divider")
    ckt.add_vsource("v1", "in", 1.0)
    ckt.add_resistor("r1", "in", "mid", 1e3)
    ckt.add_resistor("r2", "mid", "0", 1e3)
    return ckt


def floating_node() -> Circuit:
    """A capacitor-only node: singular in DC whenever gmin is zero."""
    ckt = Circuit("floating")
    ckt.add_vsource("v1", "in", 1.0)
    ckt.add_resistor("r1", "in", "mid", 1e3)
    ckt.add_resistor("r2", "mid", "0", 1e3)
    ckt.add_capacitor("c1", "float", "0", 1e-15)
    return ckt


def entry(circuit: Circuit, x0, *, options: NewtonOptions):
    compiled = circuit.compile()
    request = NewtonRequest(
        x0=np.asarray(x0, dtype=float),
        known=compiled.known_voltages(0.0),
        options=options,
    )
    return (compiled, request_solve(request), NewtonStats())


class TestDoublySingularLanes:
    def test_no_false_convergence_at_exact_solution(self, monkeypatch):
        """Lanes parked AT the solution, every LU declared singular.

        The iterate already satisfies ``residual < abstol``, and the
        doubly-singular fallback's zero step satisfies
        ``step < voltol`` -- on the pre-fix code path (no singular veto
        in the convergence test) both lanes would falsely converge and
        return x0.  The fix must finish them as failures instead.
        """
        exact = [0.5]

        def always_singular(*args, **kwargs):
            raise np.linalg.LinAlgError("singular matrix (forced)")

        monkeypatch.setattr(np.linalg, "solve", always_singular)
        options = NewtonOptions()
        outcomes = run_plans_batched([
            entry(divider(), exact, options=options),
            entry(divider(), exact, options=options),
        ])
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert isinstance(outcome, ConvergenceError), \
                f"doubly singular lane reported convergence: {outcome!r}"
            assert "singular" in str(outcome)

    def test_stats_count_singular_lanes_as_failures(self, monkeypatch):
        def always_singular(*args, **kwargs):
            raise np.linalg.LinAlgError("singular matrix (forced)")

        monkeypatch.setattr(np.linalg, "solve", always_singular)
        entries = [entry(divider(), [0.5], options=NewtonOptions())
                   for _ in range(2)]
        run_plans_batched(entries)
        for _, _, stats in entries:
            assert stats.failures == 1
            assert stats.solves == 0


class TestNudgeEquivalence:
    def test_batch_matches_scalar_on_singular_circuit(self):
        """gmin=0 leaves the floating node's row all-zero: both drivers
        must take the same nudge (``singular_nudge``) and land on
        bit-identical solutions."""
        options = NewtonOptions(gmin=0.0)
        compiled = floating_node().compile()
        x0 = np.zeros(compiled.n_unknown)
        scalar = newton_solve(compiled, x0.copy(),
                              compiled.known_voltages(0.0), options=options)
        outcomes = run_plans_batched([
            entry(floating_node(), x0, options=options),
            entry(floating_node(), x0, options=options),
        ])
        for outcome in outcomes:
            assert isinstance(outcome, np.ndarray)
            assert np.array_equal(outcome, scalar)

    def test_singular_nudge_floor(self):
        assert singular_nudge(0.0) == 1e-9
        assert singular_nudge(1e-12) == 1e-9
        assert singular_nudge(1e-6) == 1e-6


class TestNudgeDiagonal:
    def test_contiguous_matches_eye_addition(self):
        rng = np.random.default_rng(7)
        J = rng.normal(size=(5, 5))
        expected = J + 1e-9 * np.eye(5)
        nudge_diagonal(J, 1e-9)
        assert np.array_equal(J, expected)

    def test_non_contiguous_view_not_corrupted(self):
        """The flat-stride trick is only valid on C-contiguous storage;
        on a transposed / sliced view it would smear the nudge across
        off-diagonal cells."""
        rng = np.random.default_rng(8)
        base = rng.normal(size=(10, 10))
        J = base[::2, ::2]  # non-contiguous square view
        assert not J.flags.c_contiguous
        expected = J + 0.5 * np.eye(5)
        nudge_diagonal(J, 0.5)
        assert np.array_equal(J, expected)

    def test_fortran_order_matches(self):
        J = np.asfortranarray(np.arange(16.0).reshape(4, 4))
        expected = J + 2.0 * np.eye(4)
        nudge_diagonal(J, 2.0)
        assert np.array_equal(J, expected)
