"""Alpha-power-law MOSFET model (Sakurai-Newton, paper ref [14])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.mosfet import alpha_power_current, nmos_like_current
from repro.tech import MosfetParams, submicron_process

K = 1e-4
VT = 0.6
LAM = 0.05


class TestReducesToSquareLaw:
    @settings(max_examples=40)
    @given(
        vgs=st.floats(min_value=-0.5, max_value=4.0),
        vds=st.floats(min_value=-3.0, max_value=4.0),
    )
    def test_alpha_two_equals_level1(self, vgs, vds):
        """At alpha = 2 the alpha law IS the square law (vdsat = vov)."""
        a = alpha_power_current(K, VT, LAM, 2.0, vgs, vds)
        l1 = nmos_like_current(K, VT, LAM, vgs, vds)
        for x, y in zip(a, l1):
            assert x == pytest.approx(y, rel=1e-9, abs=1e-15)


class TestAlphaBehaviour:
    def test_cutoff(self):
        assert alpha_power_current(K, VT, LAM, 1.3, 0.3, 2.0) == (0.0, 0.0, 0.0)

    def test_saturation_value(self):
        vgs, vds = 2.0, 3.0
        ids, gm, gds = alpha_power_current(K, VT, 0.0, 1.3, vgs, vds)
        assert ids == pytest.approx(K * (vgs - VT) ** 1.3)

    def test_velocity_saturation_weakens_gate_drive(self):
        """The defining alpha-law property: at high overdrive, current
        grows slower than quadratically."""
        i_sq, _, _ = nmos_like_current(K, VT, 0.0, 4.0, 5.0)
        i_al, _, _ = alpha_power_current(K, VT, 0.0, 1.3, 4.0, 5.0)
        assert i_al < i_sq

    def test_continuity_at_vdsat(self):
        vgs = 2.0
        vdsat = (vgs - VT) ** 0.65
        eps = 1e-9
        below = alpha_power_current(K, VT, LAM, 1.3, vgs, vdsat - eps)
        above = alpha_power_current(K, VT, LAM, 1.3, vgs, vdsat + eps)
        assert below[0] == pytest.approx(above[0], rel=1e-6)
        assert below[1] == pytest.approx(above[1], rel=1e-4)
        assert below[2] == pytest.approx(above[2], rel=1e-3, abs=1e-12)

    @settings(max_examples=40)
    @given(
        vgs=st.floats(min_value=0.7, max_value=3.5),
        vds=st.floats(min_value=0.01, max_value=3.5),
        alpha=st.floats(min_value=1.05, max_value=1.95),
    )
    def test_derivatives_match_finite_differences(self, vgs, vds, alpha):
        h = 1e-7
        vov = vgs - VT
        vdsat = vov ** (0.5 * alpha)
        if abs(vds - vdsat) < 10 * h or vov < 10 * h:
            return
        ids, gm, gds = alpha_power_current(K, VT, LAM, alpha, vgs, vds)
        ip, _, _ = alpha_power_current(K, VT, LAM, alpha, vgs + h, vds)
        im, _, _ = alpha_power_current(K, VT, LAM, alpha, vgs - h, vds)
        # The boundary moves with vgs; skip straddles.
        if abs(vds - (vgs + h - VT) ** (0.5 * alpha)) > 5 * h and \
           abs(vds - (vgs - h - VT) ** (0.5 * alpha)) > 5 * h:
            assert gm == pytest.approx((ip - im) / (2 * h), rel=1e-3, abs=1e-10)
        ip, _, _ = alpha_power_current(K, VT, LAM, alpha, vgs, vds + h)
        im, _, _ = alpha_power_current(K, VT, LAM, alpha, vgs, vds - h)
        assert gds == pytest.approx((ip - im) / (2 * h), rel=1e-3, abs=1e-10)

    def test_symmetry(self):
        vgs, vds = 2.5, -1.0
        ids, _, _ = alpha_power_current(K, VT, LAM, 1.3, vgs, vds)
        ids_sw, _, _ = alpha_power_current(K, VT, LAM, 1.3, vgs - vds, -vds)
        assert ids == pytest.approx(-ids_sw)


class TestModelValidation:
    def test_rejects_unknown_model(self):
        with pytest.raises(Exception):
            MosfetParams("nmos", vt0=0.6, kp=1e-4, model="bsim4")

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(Exception):
            MosfetParams("nmos", vt0=0.6, kp=1e-4, model="alpha", alpha=0.5)


class TestEndToEnd:
    def test_submicron_nand_switches(self):
        """A full VTC + transient flow on the alpha-model process."""
        from repro.charlib.library import cached_thresholds
        from repro.charlib.simulate import single_input_response
        from repro.gates import Gate

        proc = submicron_process()
        gate = Gate.nand(2, proc, load=60e-15)
        thr = cached_thresholds(gate)
        assert 0.0 < thr.vil < thr.vih < proc.vdd
        shot = single_input_response(gate, "a", "fall", 300e-12, thr)
        assert shot.delay > 0.0
        assert shot.output.final_value() == pytest.approx(proc.vdd, abs=0.1)

    def test_proximity_effect_present_with_alpha_model(self):
        """The proximity speedup is device-model independent."""
        from repro.charlib.library import cached_thresholds
        from repro.charlib.simulate import (
            multi_input_response, single_input_response)
        from repro.gates import Gate
        from repro.waveform import Edge

        proc = submicron_process()
        gate = Gate.nand(2, proc, load=60e-15)
        thr = cached_thresholds(gate)
        lone = single_input_response(gate, "a", "fall", 300e-12, thr)
        both = multi_input_response(
            gate,
            {"a": Edge("fall", 0.0, 300e-12), "b": Edge("fall", 0.0, 300e-12)},
            thr, reference="a",
        )
        assert both.delay < lone.delay
