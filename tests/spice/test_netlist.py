"""Circuit construction and compilation."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice import Circuit
from repro.tech import default_process
from repro.waveform import Pwl


@pytest.fixture
def process():
    return default_process()


class TestConstruction:
    def test_duplicate_element_names_rejected(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", "b", 1e3)
        with pytest.raises(NetlistError):
            ckt.add_resistor("r1", "b", "c", 1e3)

    def test_resistor_must_be_positive(self):
        ckt = Circuit()
        with pytest.raises(NetlistError):
            ckt.add_resistor("r1", "a", "0", 0.0)

    def test_capacitor_negative_rejected(self):
        ckt = Circuit()
        with pytest.raises(NetlistError):
            ckt.add_capacitor("c1", "a", "0", -1e-15)

    def test_zero_capacitor_dropped(self):
        ckt = Circuit()
        ckt.add_capacitor("c0", "a", "0", 0.0)
        ckt.add_vsource("v1", "a", 1.0)
        ckt.add_resistor("r1", "a", "b", 1e3)
        ckt.add_resistor("r2", "b", "0", 1e3)
        compiled = ckt.compile()
        assert compiled.capacitors == []

    def test_vsource_drives_one_node_only(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 1.0)
        with pytest.raises(NetlistError):
            ckt.add_vsource("v2", "in", 2.0)

    def test_vsource_cannot_drive_ground(self):
        ckt = Circuit()
        with pytest.raises(NetlistError):
            ckt.add_vsource("v1", "0", 1.0)

    def test_ground_aliases(self):
        assert Circuit.is_ground("0")
        assert Circuit.is_ground("GND")
        assert Circuit.is_ground("vss")
        assert not Circuit.is_ground("out")

    def test_replace_vsource(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 1.0)
        ckt.add_resistor("r1", "in", "out", 1e3)
        ckt.add_resistor("r2", "out", "0", 1e3)
        ckt.replace_vsource("v1", 2.0)
        compiled = ckt.compile()
        assert compiled.known_voltages(0.0)[1] == pytest.approx(2.0)
        with pytest.raises(NetlistError):
            ckt.replace_vsource("nope", 1.0)

    def test_mosfet_adds_parasitics(self, process):
        ckt = Circuit()
        ckt.add_vsource("vd", "vdd", 5.0)
        ckt.add_mosfet("m1", "out", "vdd", "0", "0", process.nmos, 4e-6, 0.8e-6)
        ckt.add_capacitor("cl", "out", "0", 1e-13)
        compiled = ckt.compile()
        # cgs collapses (gate=vdd both known? no: gate-source cap between
        # vdd and 0 still stamps) -- just check multiple caps exist.
        assert len(compiled.capacitors) >= 3

    def test_mosfet_without_parasitics(self, process):
        ckt = Circuit()
        ckt.add_vsource("vd", "vdd", 5.0)
        ckt.add_mosfet("m1", "out", "vdd", "0", "0", process.nmos,
                       4e-6, 0.8e-6, with_parasitics=False)
        ckt.add_capacitor("cl", "out", "0", 1e-13)
        assert len(ckt.compile().capacitors) == 1


class TestCompilation:
    def test_unknown_nodes_exclude_driven_and_ground(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 1.0)
        ckt.add_resistor("r1", "in", "mid", 1e3)
        ckt.add_resistor("r2", "mid", "0", 1e3)
        assert ckt.unknown_nodes() == ["mid"]

    def test_no_unknowns_rejected(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 1.0)
        ckt.add_resistor("r1", "in", "0", 1e3)
        with pytest.raises(NetlistError):
            ckt.compile()

    def test_pwl_source_breakpoints_collected(self):
        ckt = Circuit()
        wf = Pwl([1e-9, 2e-9], [0.0, 5.0])
        ckt.add_vsource("v1", "in", wf)
        ckt.add_resistor("r1", "in", "mid", 1e3)
        ckt.add_capacitor("c1", "mid", "0", 1e-15)
        compiled = ckt.compile()
        assert compiled.breakpoints == (1e-9, 2e-9)

    def test_known_voltages_time_dependent(self):
        ckt = Circuit()
        wf = Pwl([0.0, 1e-9], [0.0, 5.0])
        ckt.add_vsource("v1", "in", wf)
        ckt.add_resistor("r1", "in", "mid", 1e3)
        ckt.add_resistor("r2", "mid", "0", 1e3)
        compiled = ckt.compile()
        assert compiled.known_voltages(0.0)[1] == pytest.approx(0.0)
        assert compiled.known_voltages(0.5e-9)[1] == pytest.approx(2.5)

    def test_node_voltage_series(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 2.0)
        ckt.add_resistor("r1", "in", "mid", 1e3)
        ckt.add_resistor("r2", "mid", "0", 1e3)
        compiled = ckt.compile()
        times = np.array([0.0, 1.0])
        x = np.array([[1.0], [1.5]])
        assert np.allclose(compiled.node_voltage_series("mid", times, x), [1.0, 1.5])
        assert np.allclose(compiled.node_voltage_series("0", times, x), [0.0, 0.0])
        assert np.allclose(compiled.node_voltage_series("in", times, x), [2.0, 2.0])
        with pytest.raises(NetlistError):
            compiled.node_voltage_series("nope", times, x)

    def test_source_node_lookup(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 1.0)
        assert ckt.source_node("v1") == "in"
        with pytest.raises(NetlistError):
            ckt.source_node("v2")
