"""Bit-equivalence of the batched lockstep kernel against the scalar path.

The batched driver (:mod:`repro.spice.batch`) promises *bit-identical*
results to the scalar plan driver -- same waveforms, same Newton
accounting, same solver counters -- for any partition of a grid into
batches.  These tests enforce that contract across batch sizes, ragged
final chunks, mixed-convergence batches (one lane walking the homotopy
ladder while siblings converge plainly) and the serial fallbacks.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.obs import recording
from repro.spice import (
    Circuit,
    NewtonStats,
    TransientOptions,
    solve_dc,
    solve_dc_batch,
    transient,
    transient_batch,
)
from repro.spice.batch import BatchCompiled, BatchIncongruent
from repro.tech import default_process
from repro.waveform import ramp

PROC = default_process()

#: Coarser stepping than the defaults purely to keep the test grids fast;
#: scalar and batched paths always share the same options object.
FAST = TransientOptions(h_max_ratio=2e-2)


def inverter(tau: float = 0.3e-9, cl: float = 1e-13) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("vvdd", "vdd", PROC.vdd)
    ckt.add_vsource("vin", "in", ramp(0.5e-9, 0.0, PROC.vdd, tau))
    ckt.add_mosfet("mn", "out", "in", "0", "0", PROC.nmos, 4e-6, 0.8e-6)
    ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", PROC.pmos, 8e-6, 0.8e-6)
    ckt.add_capacitor("cl", "out", "0", cl)
    return ckt


def inverter_grid(count: int):
    return [inverter(tau=0.1e-9 + 0.05e-9 * i, cl=5e-14 + 1e-14 * (i % 7))
            for i in range(count)]


def dc_inverter(width: float = 4e-6) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("vvdd", "vdd", PROC.vdd)
    ckt.add_vsource("vin", "in", 2.5)
    ckt.add_mosfet("mn", "out", "in", "0", "0", PROC.nmos, width, 0.8e-6)
    ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", PROC.pmos,
                   2 * width, 0.8e-6)
    return ckt


def assert_result_identical(scalar, batched) -> None:
    assert np.array_equal(scalar.times, batched.times)
    assert scalar.node_names == batched.node_names
    for name in scalar.node_names:
        assert np.array_equal(scalar.node(name).values,
                              batched.node(name).values), name
    assert scalar.newton_iterations == batched.newton_iterations
    assert scalar.newton_failures == batched.newton_failures
    assert scalar.rejected_steps == batched.rejected_steps
    assert scalar.solver_retries == batched.solver_retries


def chunked(items, size):
    return [items[i:i + size] for i in range(0, len(items), size)]


def solver_counters(recorder) -> dict:
    """The solver-side counters (``spice.batch.*`` bookkeeping excluded)."""
    return {
        key: value
        for key, value in recorder.metrics_payload()["counters"].items()
        if key.startswith("spice.") and not key.startswith("spice.batch")
    }


class TestTransientEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_grid_bit_identical_across_batch_sizes(self, batch_size):
        """Any chunking of the grid -- including the ragged final chunk
        (8 lanes at size 3 -> 3+3+2) and the single-lane serial path --
        reproduces the scalar results bit for bit."""
        t_stop = 2e-9
        scalar = [transient(c, t_stop, options=FAST)
                  for c in inverter_grid(8)]
        batched = []
        for chunk in chunked(inverter_grid(8), batch_size):
            batched.extend(transient_batch(chunk, t_stop, options=FAST))
        assert len(batched) == len(scalar)
        for s, b in zip(scalar, batched):
            assert_result_identical(s, b)

    def test_large_batch_bit_identical(self):
        t_stop = 1.5e-9
        scalar = [transient(c, t_stop, options=FAST)
                  for c in inverter_grid(64)]
        batched = transient_batch(inverter_grid(64), t_stop, options=FAST)
        for s, b in zip(scalar, batched):
            assert_result_identical(s, b)

    def test_per_lane_stop_times(self):
        stops = [1.5e-9, 2e-9, 2.5e-9]
        ckts = inverter_grid(3)
        scalar = [transient(c, stop, options=FAST)
                  for c, stop in zip(ckts, stops)]
        batched = transient_batch(inverter_grid(3), stops, options=FAST)
        for s, b in zip(scalar, batched):
            assert_result_identical(s, b)

    def test_stop_time_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="t_stops length"):
            transient_batch(inverter_grid(3), [1e-9, 2e-9])

    def test_lane_failure_does_not_abort_siblings(self):
        """A lane whose analysis dies (invalid window) reports its error
        in place; sibling lanes still match the scalar run exactly."""
        ckts = inverter_grid(3)
        outcomes = transient_batch(ckts, [2e-9, -1.0, 2e-9], options=FAST)
        assert isinstance(outcomes[1], ConvergenceError)
        for idx in (0, 2):
            assert_result_identical(
                transient(inverter_grid(3)[idx], 2e-9, options=FAST),
                outcomes[idx])


class TestCounterInvariance:
    def test_newton_counters_invariant_across_batch_sizes(self):
        """Worker-count and batch-size invariance: the solver counters
        (iterations, solves, failures, homotopy engagements) depend only
        on the work done, never on how lanes were batched."""
        t_stop = 2e-9
        references = None
        for batch_size in (1, 3, 8):
            with recording() as rec:
                for chunk in chunked(inverter_grid(8), batch_size):
                    transient_batch(chunk, t_stop, options=FAST)
            counters = solver_counters(rec)
            assert counters["spice.newton.iterations"] > 0
            if references is None:
                references = counters
            else:
                assert counters == references

        with recording() as rec:
            for ckt in inverter_grid(8):
                transient(ckt, t_stop, options=FAST)
        assert solver_counters(rec) == references

    def test_batch_counters_present(self):
        with recording() as rec:
            transient_batch(inverter_grid(3), 1.5e-9, options=FAST)
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.lanes"] == 3
        assert counters["spice.batch.rounds"] > 0
        assert "spice.batch.fallbacks" not in counters


class TestMixedConvergenceDc:
    def test_lane_walking_the_homotopy_ladder(self):
        """One lane's absurd initial guess forces gmin *and* source
        stepping while its siblings converge plainly; every lane must
        still match its scalar solve exactly, counters included."""
        guesses = [None, {"out": 80.0}, {"out": 2.0}, None]
        widths = [4e-6 + 1e-6 * i for i in range(4)]

        with recording() as rec_scalar:
            scalar_stats = [NewtonStats() for _ in widths]
            scalar = [solve_dc(dc_inverter(w), initial_guess=g, stats=st)
                      for w, g, st in zip(widths, guesses, scalar_stats)]
        scalar_counters = solver_counters(rec_scalar)
        assert scalar_counters["spice.dc.gmin_stepping"] >= 1

        with recording() as rec_batch:
            batch_stats = [NewtonStats() for _ in widths]
            batched = solve_dc_batch(
                [dc_inverter(w) for w in widths],
                initial_guesses=guesses, stats=batch_stats)

        assert solver_counters(rec_batch) == scalar_counters
        for s, b in zip(scalar, batched):
            assert s.voltages == b.voltages
        for s, b in zip(scalar_stats, batch_stats):
            assert (s.iterations, s.solves, s.failures, s.retries) == \
                (b.iterations, b.solves, b.failures, b.retries)

    def test_plain_grid_matches_scalar(self):
        widths = [3e-6, 4e-6, 5e-6, 6e-6, 7e-6]
        scalar = [solve_dc(dc_inverter(w)) for w in widths]
        batched = solve_dc_batch([dc_inverter(w) for w in widths])
        for s, b in zip(scalar, batched):
            assert s.voltages == b.voltages


class TestFallbacks:
    def test_incongruent_lanes_fall_back_serially(self):
        """Structurally different circuits cannot share a kernel; the
        driver must fall back to per-lane serial execution, count it,
        and still return scalar-identical results."""
        other = Circuit()
        other.add_vsource("v1", "in", 4.0)
        other.add_resistor("r1", "in", "mid", 1e3)
        other.add_resistor("r2", "mid", "0", 3e3)
        with recording() as rec:
            batched = solve_dc_batch([dc_inverter(), other])
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.fallbacks"] == 1
        assert batched[0].voltages == solve_dc(dc_inverter()).voltages
        assert batched[1]["mid"] == pytest.approx(3.0, rel=1e-6)

    def test_congruence_rejects_mismatched_structure(self):
        other = Circuit()
        other.add_vsource("v1", "in", 4.0)
        other.add_resistor("r1", "in", "mid", 1e3)
        other.add_resistor("r2", "mid", "0", 3e3)
        with pytest.raises(BatchIncongruent):
            BatchCompiled([dc_inverter().compile(), other.compile()])

    def test_single_lane_runs_serially(self):
        batched = transient_batch([inverter()], 2e-9, options=FAST)
        assert_result_identical(transient(inverter(), 2e-9, options=FAST),
                                batched[0])
