"""Bit-equivalence of the batched sparse kernel against the scalar path.

The batched sparse driver (:mod:`repro.spice.sparse_batch`) promises
*bit-identical* results to the scalar sparse driver -- same waveforms,
same Newton accounting, same solver counters -- at any batch size, on
either side of the ``auto`` dispatch cutover (forced via
``REPRO_SPARSE=1`` below it).  These tests enforce that contract on
randomized congruent lanes, pin the fault/eviction parity carried over
from the dense lockstep kernel (``sparse@factorize`` recovery,
``lane@INDEX`` eviction with a *sparse* solo retry), the fallback
counting rules (``spice.batch.sparse_fallbacks`` counts lanes, never
congruent batched rounds), the once-per-run fallback warning, and the
``--fast-newton`` LU-reuse contract through the scalar sparse path
that the serial fallback rides.
"""

import numpy as np

from repro.errors import ConvergenceError
from repro.obs import recording
from repro.resilience import FaultInjection
from repro.spice import (
    NewtonOptions,
    NewtonStats,
    TransientOptions,
    solve_dc_batch,
    transient,
    transient_batch,
)
from repro.spice.batch import run_plans_batched
from repro.spice.builders import bitcell_array, delay_chain
from repro.spice.engine import (
    FastNewtonState,
    NewtonRequest,
    newton_solve,
    request_solve,
)
from repro.spice.sparse import SPARSE_ENV_VAR, SPARSE_NODE_CUTOVER
from repro.spice.sparse_batch import (
    SPARSE_BATCH_ENV_VAR,
    sparse_batch_enabled,
)
from repro.tech import default_process
from repro.waveform import ramp

PROC = default_process()
FAST = TransientOptions(h_max_ratio=2e-2)

def chain_lanes(count: int = 4, stages: int = 36, fanout: int = 3):
    """Randomized congruent delay chains above the dispatch cutover.

    The rng is re-seeded per call so repeated invocations hand every
    leg (scalar, batched, serial-fallback) the *same* randomized grid.
    """
    rng = np.random.default_rng(20260808)
    lanes = []
    for _ in range(count):
        lanes.append(delay_chain(
            stages, fanout,
            input_stimulus=ramp(2e-12, 0.0, PROC.vdd, 8e-12),
            stage_load=float(2e-15 * (1.0 + 0.4 * rng.random())),
            load=float(8e-15 * (1.0 + 0.4 * rng.random())),
        ))
    return lanes


def small_lanes(count: int = 4):
    """Congruent two-transistor lanes *below* the cutover."""
    from repro.spice import Circuit

    lanes = []
    for i in range(count):
        ckt = Circuit()
        ckt.add_vsource("vvdd", "vdd", PROC.vdd)
        ckt.add_vsource("vin", "in", ramp(0.1e-9, 0.0, PROC.vdd,
                                          0.1e-9 + 0.05e-9 * i))
        ckt.add_mosfet("mn", "out", "in", "0", "0", PROC.nmos,
                       4e-6 + 1e-6 * i, 0.8e-6)
        ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", PROC.pmos,
                       8e-6, 0.8e-6)
        ckt.add_capacitor("cl", "out", "0", 5e-14 + 1e-14 * i)
        lanes.append(ckt)
    return lanes


def assert_result_identical(scalar, batched) -> None:
    assert np.array_equal(scalar.times, batched.times)
    assert scalar.node_names == batched.node_names
    for name in scalar.node_names:
        assert np.array_equal(scalar.samples(name),
                              batched.samples(name)), name
    assert scalar.newton_iterations == batched.newton_iterations
    assert scalar.newton_failures == batched.newton_failures
    assert scalar.rejected_steps == batched.rejected_steps
    assert scalar.solver_retries == batched.solver_retries


def solver_counters(recorder) -> dict:
    return {
        key: value
        for key, value in recorder.metrics_payload()["counters"].items()
        if key.startswith("spice.") and not key.startswith("spice.batch")
    }


class TestBitIdentity:
    def test_transient_above_cutover_matches_serial_sparse(self, monkeypatch):
        """Randomized congruent lanes, auto-dispatched sparse: the
        batched kernel and the ``REPRO_SPARSE_BATCH=0`` serial fallback
        must produce the same bits and the same Newton accounting."""
        lanes = chain_lanes()
        assert lanes[0].compile().n_unknown >= SPARSE_NODE_CUTOVER
        t_stop = 15e-12
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        batched = transient_batch(lanes, t_stop, options=FAST)
        monkeypatch.setenv(SPARSE_BATCH_ENV_VAR, "0")
        serial = transient_batch(chain_lanes(), t_stop, options=FAST)
        for s, b in zip(serial, batched):
            assert_result_identical(s, b)

    def test_matches_scalar_driver_exactly(self, monkeypatch):
        """The batched kernel vs per-lane scalar ``transient`` calls."""
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        t_stop = 15e-12
        scalar = [transient(c, t_stop, options=FAST) for c in chain_lanes()]
        batched = transient_batch(chain_lanes(), t_stop, options=FAST)
        for s, b in zip(scalar, batched):
            assert_result_identical(s, b)

    def test_forced_sparse_below_cutover(self, monkeypatch):
        """``REPRO_SPARSE=1`` rides the batched sparse kernel on small
        lanes too; results still match the scalar (sparse) driver."""
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        t_stop = 1.5e-9
        scalar = [transient(c, t_stop, options=FAST) for c in small_lanes()]
        with recording() as rec:
            batched = transient_batch(small_lanes(), t_stop, options=FAST)
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.sparse_rounds"] > 0
        assert "spice.batch.sparse_fallbacks" not in counters
        for s, b in zip(scalar, batched):
            assert_result_identical(s, b)

    def test_dc_bitcell_batch_matches_serial(self, monkeypatch):
        """The characterization-shot shape: per-lane stored patterns on
        a shared bitcell-array structure, operating points identical
        between kernel and fallback."""
        def lanes():
            pats = [[(i * 2654435761 + r) % 256 for r in range(4)]
                    for i in range(3)]
            return [bitcell_array(4, 8, pattern=p, wordline=0)
                    for p in pats]

        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        batched = solve_dc_batch(lanes())
        monkeypatch.setenv(SPARSE_BATCH_ENV_VAR, "0")
        serial = solve_dc_batch(lanes())
        for b, s in zip(batched, serial):
            assert b.voltages == s.voltages

    def test_newton_counters_invariant_across_batch_sizes(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        t_stop = 1.5e-9
        references = None
        for batch_size in (1, 2, 4):
            lanes = small_lanes()
            with recording() as rec:
                for i in range(0, len(lanes), batch_size):
                    transient_batch(lanes[i:i + batch_size], t_stop,
                                    options=FAST)
            counters = solver_counters(rec)
            assert counters["spice.newton.iterations"] > 0
            if references is None:
                references = counters
            else:
                assert counters == references


class TestFallbackCounting:
    def test_knob_off_counts_every_lane(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.setenv(SPARSE_BATCH_ENV_VAR, "0")
        assert not sparse_batch_enabled()
        with recording() as rec:
            solve_dc_batch(small_lanes(4))
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.sparse_fallbacks"] == 4

    def test_incongruent_sparse_lanes_count_per_lane(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        lanes = small_lanes(2) + [delay_chain(2, 2)]
        with recording() as rec:
            solve_dc_batch(lanes)
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.sparse_fallbacks"] == 3
        assert "spice.batch.fallbacks" not in counters

    def test_congruent_batch_never_counts_fallbacks(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        with recording() as rec:
            solve_dc_batch(small_lanes(4))
        counters = rec.metrics_payload()["counters"]
        assert "spice.batch.sparse_fallbacks" not in counters
        assert counters["spice.batch.sparse_rounds"] > 0

    def test_fallback_warns_once_per_run_generation(self, monkeypatch,
                                                    caplog):
        import logging

        import repro.obs.manifest as manifest
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.setenv(SPARSE_BATCH_ENV_VAR, "0")
        # Any earlier CLI ``main()`` run in this process pins a stderr
        # handler on the ``repro`` logger and stops propagation
        # (repro.log.setup_logging); caplog captures at the root, so
        # re-enable propagation for the duration of this test.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        # Earlier tests in this process may have latched the current
        # generation already; start from a fresh one.
        monkeypatch.setattr(manifest, "_RUN_GENERATION",
                            manifest._RUN_GENERATION + 1)
        with caplog.at_level("DEBUG", logger="repro.spice.batch"):
            solve_dc_batch(small_lanes(2))
            solve_dc_batch(small_lanes(2))
        warnings = [r for r in caplog.records if r.levelname == "WARNING"]
        debugs = [r for r in caplog.records if r.levelname == "DEBUG"
                  and "serially" in r.getMessage()]
        assert len(warnings) == 1
        assert len(debugs) == 1
        # A new run generation (a second CLI run in the same process)
        # re-arms the one-WARNING latch.
        caplog.clear()
        monkeypatch.setattr(manifest, "_RUN_GENERATION",
                            manifest._RUN_GENERATION + 1)
        with caplog.at_level("DEBUG", logger="repro.spice.batch"):
            solve_dc_batch(small_lanes(2))
        warnings = [r for r in caplog.records if r.levelname == "WARNING"]
        assert len(warnings) == 1


class TestFaultParity:
    def test_lane_fault_evicts_and_retries_solo_sparse(self, monkeypatch):
        """An evicted lane's solo retry must stay on the *sparse*
        backend: the retried waveform is bit-identical to the scalar
        sparse driver (a dense retry would only agree to tolerance)."""
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        t_stop = 1.5e-9
        scalar = [transient(c, t_stop, options=FAST) for c in small_lanes(3)]
        with recording() as rec, FaultInjection("lane@1:1") as fi:
            batched = transient_batch(small_lanes(3), t_stop, options=FAST)
            assert fi.fired_count("lane") == 1
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.evictions{reason=fault}"] == 1
        for s, b in zip(scalar, batched):
            assert_result_identical(s, b)

    def test_factorization_fault_recovers_via_nudge(self, monkeypatch):
        """``sparse@factorize`` into a batched lane walks the same
        nudge rung as the scalar ladder; every lane still converges."""
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)
        clean = solve_dc_batch(small_lanes(3))
        with recording() as rec, FaultInjection("sparse@factorize:1") as fi:
            faulted = solve_dc_batch(small_lanes(3))
            assert fi.fired_count("sparse") == 1
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.guard.rung{rung=nudge}"] >= 1
        for c, f in zip(clean, faulted):
            for node, value in c.voltages.items():
                assert abs(f.voltages[node] - value) <= 1e-9

    def test_persistent_factorization_fault_fails_cleanly(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.delenv(SPARSE_BATCH_ENV_VAR, raising=False)

        def entries():
            out = []
            for circuit in small_lanes(2):
                compiled = circuit.compile()
                request = NewtonRequest(
                    x0=np.zeros(compiled.n_unknown),
                    known=compiled.known_voltages(0.0),
                    options=NewtonOptions(),
                )
                out.append((compiled, request_solve(request), NewtonStats()))
            return out

        with FaultInjection("sparse@factorize:always"):
            outcomes = run_plans_batched(entries())
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert isinstance(outcome, ConvergenceError)
            assert "singular" in str(outcome)


class TestLuReuseThroughSparse:
    def test_serial_sparse_fallback_reuses_retained_lu(self, monkeypatch):
        """Satellite contract: ``--fast-newton`` LU reuse holds on the
        sparse path -- repeated solves under one Jacobian key must not
        refactorize per call (``spice.sparse.factorizations`` pins it,
        the counter every sparse factorization increments)."""
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        compiled = small_lanes(1)[0].compile()
        known = compiled.known_voltages(0.0)
        fast = FastNewtonState()
        options = NewtonOptions()
        x = np.full(compiled.n_unknown, PROC.vdd / 2.0)
        with recording() as rec:
            for _ in range(3):
                x = newton_solve(compiled, x, known, options=options,
                                 sparse=True, fast=fast)
        assert fast.refactorized >= 1
        assert fast.reused >= 1
        counters = rec.metrics_payload()["counters"]
        # Reused iterations skip the factorization entirely.
        total_iters = counters["spice.newton.iterations"]
        assert counters["spice.sparse.factorizations"] == \
            total_iters - fast.reused
