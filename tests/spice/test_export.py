"""SPICE-deck export."""

import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, to_spice, write_spice
from repro.tech import default_process, submicron_process
from repro.waveform import ramp


@pytest.fixture
def inverter_circuit():
    proc = default_process()
    ckt = Circuit("inv")
    ckt.add_vsource("vdd", "vdd", proc.vdd)
    ckt.add_vsource("in", "a", ramp(1e-9, 0.0, 5.0, 2e-10))
    ckt.add_mosfet("mn", "z", "a", "0", "0", proc.nmos, 4e-6, 0.8e-6)
    ckt.add_mosfet("mp", "z", "a", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
    ckt.add_capacitor("cl", "z", "0", 1e-13)
    return ckt


class TestToSpice:
    def test_structure(self, inverter_circuit):
        deck = to_spice(inverter_circuit, t_stop=5e-9)
        assert deck.startswith("* inv")
        assert ".MODEL nmos1 NMOS (LEVEL=1" in deck
        assert ".MODEL pmos1 PMOS (LEVEL=1" in deck
        assert "Mmn z a 0 0 nmos1 W=4e-06 L=8e-07" in deck
        assert "Vvdd vdd 0 DC 5" in deck
        assert "PWL(" in deck
        assert ".TRAN" in deck
        assert deck.rstrip().endswith(".END")

    def test_model_cards_deduplicated(self, inverter_circuit):
        proc = default_process()
        inverter_circuit.add_mosfet("mn2", "z2", "a", "0", "0",
                                    proc.nmos, 4e-6, 0.8e-6)
        inverter_circuit.add_capacitor("cl2", "z2", "0", 1e-14)
        deck = to_spice(inverter_circuit)
        assert deck.count(".MODEL nmos1") == 1

    def test_parasitic_caps_exported(self, inverter_circuit):
        deck = to_spice(inverter_circuit)
        assert "Cmn_cgd" in deck  # dots normalized to underscores

    def test_ground_aliases_map_to_zero(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 1.0)
        ckt.add_resistor("r1", "in", "gnd", 1e3)
        deck = to_spice(ckt)
        assert "Rr1 in 0 1000" in deck

    def test_pwl_values_roundtrip(self, inverter_circuit):
        deck = to_spice(inverter_circuit)
        line = next(s for s in deck.splitlines() if s.startswith("Vin"))
        assert "1e-09 0" in line and "1.2e-09 5" in line

    def test_alpha_model_warns_or_raises(self):
        proc = submicron_process()
        ckt = Circuit()
        ckt.add_vsource("vdd", "vdd", proc.vdd)
        ckt.add_mosfet("mn", "z", "vdd", "0", "0", proc.nmos, 2e-6, 0.35e-6)
        ckt.add_capacitor("cl", "z", "0", 1e-14)
        deck = to_spice(ckt)
        assert "WARNING" in deck and "alpha" in deck
        with pytest.raises(NetlistError):
            to_spice(ckt, strict=True)

    def test_callable_source_omitted_or_raises(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", lambda t: 1.0)
        ckt.add_resistor("r1", "in", "0", 1e3)
        deck = to_spice(ckt)
        assert "python-callable source omitted" in deck
        with pytest.raises(NetlistError):
            to_spice(ckt, strict=True)

    def test_gate_build_exports(self):
        from repro.gates import Gate
        gate = Gate.nand(3, default_process())
        circuit = gate.build({"a": ramp(1e-9, 5.0, 0.0, 3e-10)})
        deck = to_spice(circuit, t_stop="6ns")
        assert deck.count("NMOS") == 1
        assert deck.count("Mmn") == 3  # three pull-down devices


class TestWriteSpice:
    def test_writes_file(self, inverter_circuit, tmp_path):
        path = tmp_path / "inv.sp"
        write_spice(inverter_circuit, path, t_stop=1e-9)
        text = path.read_text()
        assert ".END" in text
