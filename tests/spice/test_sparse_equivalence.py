"""Equivalence contract of the sparse solver backend (``REPRO_SPARSE``).

The sparse backend promises, versus the default dense path:

* **bit-identical assembly** -- every stored CSC entry equals the
  corresponding dense Jacobian cell bit for bit (the emission-ordered
  data scatter replays the dense per-cell accumulation order), and the
  residual is the dense scatter itself;
* **tolerance-gated solves** -- SuperLU replaces LAPACK, so Newton
  steps match to machine precision but not bit-for-bit: waveforms must
  track the dense solution within 1 nV, measured crossings within
  1 fs, and the Newton/retry accounting must be unchanged (the same
  contract ``REPRO_FAST_NEWTON`` is held to);
* **deterministic dispatch** -- ``auto`` picks exactly one backend per
  circuit from its unknown count, so default-mode results never mix.
"""

import numpy as np
import pytest

from repro.obs import recording
from repro.spice import (
    Circuit,
    TransientOptions,
    solve_dc,
    transient,
)
from repro.spice.builders import hierarchical_decoder, inverter_chain
from repro.spice.engine import NewtonOptions, newton_solve
from repro.spice.sparse import (
    SPARSE_ENV_VAR,
    SPARSE_NODE_CUTOVER,
    SparsePlan,
    sparse_enabled,
    sparse_mode,
)
from repro.spice.stamps import assemble_into, assemble_sparse, load_solve
from repro.tech import default_process
from repro.waveform import ramp

PROC = default_process()

FAST = TransientOptions(h_max_ratio=2e-2)


def random_chain(rng) -> Circuit:
    """A randomized multi-gate circuit with every stamp kind present."""
    ckt = inverter_chain(int(rng.integers(3, 9)))
    ckt.add_resistor("rx", "n1", "n2", float(rng.uniform(1e3, 1e5)))
    ckt.add_capacitor("cx", "n2", "0", float(rng.uniform(1e-15, 1e-13)))
    ckt.add_isource("ix", "n1", "0", float(rng.uniform(-1e-6, 1e-6)))
    return ckt


def switching_decoder(bits: int = 4) -> Circuit:
    return hierarchical_decoder(
        bits, address=0,
        stimuli={"a0": ramp(0.3e-9, 0.0, PROC.vdd, 0.2e-9)})


class TestEnvKnob:
    @pytest.mark.parametrize("value,expected", [
        ("", "auto"), ("auto", "auto"), (" AUTO ", "auto"),
        ("0", "off"), ("false", "off"), ("no", "off"), ("off", "off"),
        ("1", "on"), ("true", "on"), ("yes", "on"), ("on", "on"),
    ])
    def test_sparse_mode_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv(SPARSE_ENV_VAR, value)
        assert sparse_mode() == expected

    def test_auto_when_unset(self, monkeypatch):
        monkeypatch.delenv(SPARSE_ENV_VAR, raising=False)
        assert sparse_mode() == "auto"

    def test_auto_dispatches_by_cutover(self, monkeypatch):
        monkeypatch.delenv(SPARSE_ENV_VAR, raising=False)
        assert not sparse_enabled(SPARSE_NODE_CUTOVER - 1)
        assert sparse_enabled(SPARSE_NODE_CUTOVER)

    def test_forced_modes_ignore_size(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        assert sparse_enabled(1)
        monkeypatch.setenv(SPARSE_ENV_VAR, "0")
        assert not sparse_enabled(10 * SPARSE_NODE_CUTOVER)


class TestAssemblyBitIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_jacobian_and_residual_bit_identical(self, seed):
        """Random circuits, random states, with and without companion
        stamps: the CSC entries must equal the dense cells bit for bit."""
        rng = np.random.default_rng(seed)
        compiled = random_chain(rng).compile()
        plan = compiled.stamp_plan
        ws = plan.scratch
        known = compiled.known_voltages(0.0)
        cap_stamps = [(a, b, float(rng.uniform(1e-6, 1e-3)),
                       float(rng.uniform(-1e-6, 1e-6)))
                      for a, b in plan.cap_pairs]
        sp = plan.sparse
        for with_caps in (False, True):
            stamps = cap_stamps if with_caps else []
            load_solve(plan, ws, known, 0.0, stamps, 1.0, compiled.isources)
            x = rng.uniform(0.0, PROC.vdd, plan.n)
            gmin = float(rng.choice([0.0, 1e-12, 1e-9]))
            F_d, J_d = assemble_into(plan, ws, x, gmin, with_caps)
            F_d, J_d = F_d.copy(), J_d.copy()
            F_s, A = assemble_sparse(plan, ws, sp, x, gmin, with_caps)
            assert np.array_equal(F_d, F_s)
            assert np.array_equal(J_d, sp.dense_jacobian())

    def test_structure_covers_every_dense_nonzero(self):
        rng = np.random.default_rng(99)
        compiled = random_chain(rng).compile()
        plan = compiled.stamp_plan
        sp = plan.sparse
        assert isinstance(sp, SparsePlan)
        assert plan._sparse_plan is sp  # lazy property caches
        ws = plan.scratch
        load_solve(plan, ws, compiled.known_voltages(0.0), 0.0, [], 1.0,
                   compiled.isources)
        x = rng.uniform(0.0, PROC.vdd, plan.n)
        _, J = assemble_into(plan, ws, x, 1e-12, False)
        assert np.count_nonzero(J) <= sp.nnz <= plan.n * plan.n


def waveform_gap(base, other, nodes, t_stop) -> float:
    grid = np.linspace(0.0, t_stop, 400)
    return max(float(np.abs(base.node(n)(grid) - other.node(n)(grid)).max())
               for n in nodes)


class TestSolveParity:
    """Dense and sparse runs of the same analysis, both dispatch sides."""

    def test_dc_within_nanovolt_below_cutover(self, monkeypatch):
        """Forcing sparse on a small circuit (auto would stay dense)."""
        ckt = inverter_chain(6)
        assert ckt.compile().n_unknown < SPARSE_NODE_CUTOVER
        monkeypatch.setenv(SPARSE_ENV_VAR, "0")
        base = solve_dc(inverter_chain(6))
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        forced = solve_dc(inverter_chain(6))
        for node, value in base.voltages.items():
            assert abs(forced.voltages[node] - value) <= 1e-9

    def test_dc_within_nanovolt_above_cutover(self, monkeypatch):
        """Above the cutover, auto dispatch must match forced dense."""
        ckt = hierarchical_decoder(5, address=7)
        assert ckt.compile().n_unknown >= SPARSE_NODE_CUTOVER
        monkeypatch.setenv(SPARSE_ENV_VAR, "0")
        base = solve_dc(hierarchical_decoder(5, address=7))
        monkeypatch.delenv(SPARSE_ENV_VAR, raising=False)
        auto = solve_dc(hierarchical_decoder(5, address=7))
        for node, value in base.voltages.items():
            assert abs(auto.voltages[node] - value) <= 1e-9

    def test_transient_waveforms_within_nanovolt(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "0")
        base = transient(switching_decoder(), 1.2e-9, options=FAST)
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        sparse = transient(switching_decoder(), 1.2e-9, options=FAST)
        gap = waveform_gap(base, sparse, ("wl0", "wl1", "pre0_0", "pre0_1"),
                           1.2e-9)
        assert gap <= 1e-9

    def test_transient_crossings_within_femtosecond(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "0")
        base = transient(switching_decoder(), 1.2e-9, options=FAST)
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        sparse = transient(switching_decoder(), 1.2e-9, options=FAST)
        level = PROC.vdd / 2.0
        t_base = base.node("wl0").first_crossing(level, "fall")
        t_sparse = sparse.node("wl0").first_crossing(level, "fall")
        assert abs(t_base - t_sparse) <= 1e-15

    def test_newton_accounting_unchanged(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "0")
        base = transient(switching_decoder(), 1.2e-9, options=FAST)
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        sparse = transient(switching_decoder(), 1.2e-9, options=FAST)
        assert sparse.newton_iterations == base.newton_iterations
        assert sparse.newton_failures == base.newton_failures
        assert sparse.solver_retries == base.solver_retries
        assert sparse.rejected_steps == base.rejected_steps
        assert len(sparse.times) == len(base.times)
        assert float(np.abs(sparse.times - base.times).max()) <= 1e-15

    def test_fast_newton_composes_with_sparse(self, monkeypatch):
        """The two opt-in modes stack: sparse fast-Newton must stay
        within the fast-Newton tolerance contract of the dense run."""
        monkeypatch.delenv(SPARSE_ENV_VAR, raising=False)
        monkeypatch.delenv("REPRO_FAST_NEWTON", raising=False)
        base = transient(switching_decoder(), 1.2e-9, options=FAST)
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        monkeypatch.setenv("REPRO_FAST_NEWTON", "1")
        both = transient(switching_decoder(), 1.2e-9, options=FAST)
        gap = waveform_gap(base, both, ("wl0", "wl1"), 1.2e-9)
        assert gap <= 1e-9


class TestDispatchTelemetry:
    def test_dense_and_sparse_dispatch_counted(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV_VAR, "0")
        with recording() as rec:
            solve_dc(inverter_chain(4))
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.newton.dispatch{backend=dense}"] > 0
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        with recording() as rec:
            solve_dc(inverter_chain(4))
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.newton.dispatch{backend=sparse}"] > 0
        assert counters["spice.sparse.factorizations"] > 0
        assert "spice.newton.dispatch{backend=dense}" not in counters


class TestSingularHandling:
    def test_singular_jacobian_recovers_or_raises_like_dense(self,
                                                             monkeypatch):
        """A floating node (gmin=0) walks the same nudge-then-raise
        ladder in both backends."""
        def compiled():
            ckt = Circuit()
            ckt.add_vsource("v1", "in", 1.0)
            ckt.add_capacitor("c1", "float", "0", 1e-15)
            ckt.add_resistor("r1", "in", "mid", 1e3)
            ckt.add_resistor("r2", "mid", "0", 1e3)
            return ckt.compile()

        options = NewtonOptions(gmin=0.0)

        def attempt(sparse):
            cc = compiled()
            x0 = np.zeros(cc.n_unknown)
            try:
                return newton_solve(cc, x0, cc.known_voltages(0.0),
                                    options=options, sparse=sparse)
            except Exception as exc:  # ConvergenceError
                return type(exc).__name__

        dense = attempt(sparse=False)
        sparse = attempt(sparse=True)
        if isinstance(dense, str):
            assert sparse == dense
        else:
            assert float(np.abs(dense - sparse).max()) <= 1e-9
