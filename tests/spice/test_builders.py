"""Smoke tests for the multi-gate netlist builders.

These circuits exist to exercise the solver at scale, so the tests pin
the *logic* (chains invert per stage, decoders one-hot their selected
wordline) and the *scaling* (unknown counts grow as documented) rather
than analog detail -- the waveform-level physics is covered by the gate
and proximity suites.
"""

import pytest

from repro.spice import solve_dc, transient
from repro.spice.builders import (
    STAGE_LOAD,
    bitcell_array,
    bitcell_levels,
    delay_chain,
    hierarchical_decoder,
    inverter_chain,
    nand_chain,
    predecode_groups,
)
from repro.tech import default_process
from repro.waveform import ramp

PROC = default_process()
HIGH = 0.9 * PROC.vdd
LOW = 0.1 * PROC.vdd


class TestChains:
    @pytest.mark.parametrize("builder", [inverter_chain, nand_chain])
    @pytest.mark.parametrize("stages", [1, 2, 5])
    def test_dc_logic_levels_alternate(self, builder, stages):
        op = solve_dc(builder(stages, input_stimulus=0.0))
        level = op.voltages["out"]
        if stages % 2:
            assert level > HIGH
        else:
            assert level < LOW
        op = solve_dc(builder(stages, input_stimulus=PROC.vdd))
        level = op.voltages["out"]
        if stages % 2:
            assert level < LOW
        else:
            assert level > HIGH

    def test_chain_nets_and_loads(self):
        ckt = inverter_chain(3, stage_load=1e-15, load=9e-15)
        caps = {c.name: c.capacitance for c in ckt._capacitors}
        assert caps["cw1"] == 1e-15
        assert caps["cw3"] == 9e-15
        nodes = set(ckt.unknown_nodes())
        assert {"n1", "n2", "out"} <= nodes

    def test_transient_propagates_edge(self):
        ckt = inverter_chain(
            2, input_stimulus=ramp(0.1e-9, 0.0, PROC.vdd, 0.1e-9))
        result = transient(ckt, 1.5e-9)
        # two inversions: out follows in, so it ends high after the rise
        assert result.samples("out")[-1] > HIGH
        assert result.samples("out")[0] < LOW

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            inverter_chain(0)
        with pytest.raises(ValueError):
            nand_chain(0)


class TestPredecodeGroups:
    @pytest.mark.parametrize("bits,expected", [
        (2, [[0, 1]]),
        (3, [[0, 1, 2]]),
        (4, [[0, 1], [2, 3]]),
        (5, [[0, 1, 2], [3, 4]]),
        (6, [[0, 1], [2, 3], [4, 5]]),
        (7, [[0, 1, 2], [3, 4], [5, 6]]),
    ])
    def test_partition(self, bits, expected):
        groups = predecode_groups(bits)
        assert groups == expected
        # a partition: every bit exactly once
        assert sorted(b for g in groups for b in g) == list(range(bits))

    def test_rejects_single_bit(self):
        with pytest.raises(ValueError):
            predecode_groups(1)


class TestHierarchicalDecoder:
    @pytest.mark.parametrize("bits,address", [(2, 0), (2, 3), (3, 5),
                                              (4, 3), (4, 12)])
    def test_dc_selects_one_wordline(self, bits, address):
        op = solve_dc(hierarchical_decoder(bits, address=address))
        for row in range(2 ** bits):
            level = op.voltages[f"wl{row}"]
            if row == address:
                assert level > HIGH, f"wl{row} should be selected"
            else:
                assert level < LOW, f"wl{row} should be idle"

    def test_unknown_count_scales_past_cutover(self):
        from repro.spice.sparse import SPARSE_NODE_CUTOVER
        n4 = hierarchical_decoder(4).compile().n_unknown
        n6 = hierarchical_decoder(6).compile().n_unknown
        assert n4 < n6
        assert n6 >= SPARSE_NODE_CUTOVER  # the sparse reference workload
        assert n6 > 250  # ~300 unknowns as documented

    def test_stimulus_override_switches_wordlines(self):
        # address 0 with a0 ramping high: wl0 hands over to wl1.
        ckt = hierarchical_decoder(
            3, address=0, stimuli={"a0": ramp(0.3e-9, 0.0, PROC.vdd, 0.2e-9)})
        result = transient(ckt, 1.5e-9)
        assert result.samples("wl0")[0] > HIGH
        assert result.samples("wl0")[-1] < LOW
        assert result.samples("wl1")[0] < LOW
        assert result.samples("wl1")[-1] > HIGH

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            hierarchical_decoder(3, address=8)
        with pytest.raises(ValueError):
            hierarchical_decoder(3, address=-1)
        with pytest.raises(ValueError):
            hierarchical_decoder(3, stimuli={"a9": 0.0})

    def test_wordline_load_applied(self):
        ckt = hierarchical_decoder(2, wordline_load=5e-15)
        caps = {c.name: c.capacitance for c in ckt._capacitors}
        for row in range(4):
            assert caps[f"cwl{row}"] == 5e-15
        assert STAGE_LOAD > 0


class TestBitcellArray:
    def test_unknown_count_is_two_per_cell(self):
        compiled = bitcell_array(4, 8).compile()
        assert compiled.n_unknown == 2 * 4 * 8
        # AMC scale: a 72x72 array passes 10k unknowns (constructed
        # only -- compiling one is benchmark territory).
        big = bitcell_array(72, 72)
        assert len(big._mosfets) == 6 * 72 * 72

    def test_dc_recovers_stored_pattern(self):
        rows, cols = 3, 6
        pattern = [0b101010, 0b011011, 0b000111]
        ckt = bitcell_array(rows, cols, pattern=pattern, wordline=0)
        op = solve_dc(ckt, initial_guess=bitcell_levels(rows, cols, pattern))
        for row in range(rows):
            for col in range(cols):
                bit = (pattern[row] >> col) & 1
                q = op.voltages[f"q{row}_{col}"]
                qb = op.voltages[f"qb{row}_{col}"]
                assert (q > HIGH) == bool(bit), (row, col)
                assert (qb > HIGH) == (not bit), (row, col)

    def test_levels_are_complementary(self):
        levels = bitcell_levels(2, 3, [0b101, 0b010])
        assert levels["q0_0"] == PROC.vdd and levels["qb0_0"] == 0.0
        assert levels["q0_1"] == 0.0 and levels["qb0_1"] == PROC.vdd
        assert len(levels) == 2 * 2 * 3

    def test_stimulus_overrides_driven_net(self):
        ckt = bitcell_array(2, 2, stimuli={"wl1": ramp(0.1e-9, 0.0,
                                                       PROC.vdd, 0.1e-9)})
        assert "vwl1" in ckt._vsources

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bitcell_array(0, 4)
        with pytest.raises(ValueError):
            bitcell_array(2, 2, pattern=[1])
        with pytest.raises(ValueError):
            bitcell_array(2, 2, wordline=2)


class TestDelayChain:
    def test_unknowns_scale_with_stages_times_fanout(self):
        compiled = delay_chain(10, 4).compile()
        assert compiled.n_unknown == 10 * 4

    def test_transient_propagates_edge(self):
        ckt = delay_chain(2, 2,
                          input_stimulus=ramp(0.1e-9, 0.0, PROC.vdd, 0.1e-9))
        result = transient(ckt, 2e-9)
        # Two inverting stages: the output follows the input's rise.
        assert result.samples("out")[0] < LOW
        assert result.samples("out")[-1] > HIGH

    def test_dummy_loads_present(self):
        ckt = delay_chain(3, 3, stage_load=7e-15)
        caps = {c.name: c.capacitance for c in ckt._capacitors}
        # fanout-1 dummies per stage, each loaded.
        assert caps["cd1_1"] == 7e-15
        assert caps["cd1_2"] == 7e-15

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            delay_chain(0)
        with pytest.raises(ValueError):
            delay_chain(3, 0)
