"""Builder-scale circuits under injected solver faults.

The multi-gate testbenches (:mod:`repro.spice.builders`) are where a
degraded solve does real damage: one lost cell in a chain delay table
or one wrong wordline in a decoder corrupts a whole characterization
sweep.  These tests pin the degradation contract at that scale --
transient faults burn retry-ladder attempts and, when the ladder is
exhausted, the cell goes *NaN* (never a silently wrong number), while
sparse-dispatched decoder solves recover from injected factorization
faults through the diagonal-nudge rung with correct logic levels.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.obs import recording
from repro.resilience import FaultInjection
from repro.spice import TransientOptions, solve_dc, transient
from repro.spice.builders import hierarchical_decoder, inverter_chain
from repro.spice.sparse import SPARSE_ENV_VAR, SPARSE_NODE_CUTOVER
from repro.tech import default_process
from repro.waveform import ramp

PROC = default_process()
HIGH = 0.9 * PROC.vdd
LOW = 0.1 * PROC.vdd
FAST = TransientOptions(h_max_ratio=2e-2)


def chain_circuits():
    """A small grid of 2-stage chains with varying output loads."""
    return [
        inverter_chain(2, input_stimulus=ramp(0.1e-9, 0.0, PROC.vdd, 0.1e-9),
                       load=load)
        for load in (20e-15, 40e-15, 60e-15)
    ]


def chain_final_levels(retry=None) -> np.ndarray:
    """One 'table cell' per chain: the settled output level, NaN when
    the analysis dies -- the same degrade-to-NaN discipline the
    characterization sweeps apply per grid point."""
    cells = []
    for circuit in chain_circuits():
        try:
            result = transient(circuit, 1.5e-9, options=FAST, retry=retry)
            cells.append(result.samples("out")[-1])
        except ConvergenceError:
            cells.append(float("nan"))
    return np.array(cells)


class TestChainDegradation:
    def test_exhausted_retries_leave_nan_cells_not_corrupt_ones(self):
        """With the ladder capped at one attempt, two injected faults
        kill exactly the first two cells; the survivor is bit-identical
        to the clean table."""
        clean = chain_final_levels()
        assert np.isfinite(clean).all()
        with FaultInjection("transient@*:2") as fi:
            degraded = chain_final_levels(retry=1)
            assert fi.fired_count("transient") == 2
        assert np.isnan(degraded[:2]).all()
        assert degraded[2] == clean[2]

    def test_default_retry_ladder_absorbs_the_faults(self):
        """The default ladder retries through both injected failures:
        every cell survives, and cells whose solves never faulted stay
        bit-identical to the clean run."""
        clean = chain_final_levels()
        with FaultInjection("transient@*:2") as fi:
            healed = chain_final_levels()
            assert fi.fired_count("transient") == 2
        assert np.isfinite(healed).all()
        # Both faults hit the first chain's attempts 0 and 1; its
        # attempt-2 result is an escalated-options estimate, while the
        # untouched chains reproduce the clean run exactly.
        assert np.array_equal(healed[1:], clean[1:])
        assert healed[0] == pytest.approx(clean[0], rel=1e-3)


def decoder_wordlines(bits: int, address: int, **kwargs) -> dict:
    op = solve_dc(hierarchical_decoder(bits, address=address), **kwargs)
    return {row: op.voltages[f"wl{row}"] for row in range(2 ** bits)}


def assert_one_hot(levels: dict, address: int) -> None:
    for row, level in levels.items():
        if row == address:
            assert level > HIGH, f"wl{row} should be selected"
        else:
            assert level < LOW, f"wl{row} should be idle"


class TestDecoderSparseFaults:
    def test_forced_sparse_decoder_recovers_via_nudge(self, monkeypatch):
        """A 4-bit decoder forced onto the sparse backend: one injected
        factorization fault walks the nudge rung and still one-hots the
        right wordline."""
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        with recording() as rec, FaultInjection("sparse@factorize:1") as fi:
            levels = decoder_wordlines(4, address=6)
            assert fi.fired_count("sparse") == 1
        assert_one_hot(levels, 6)
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.guard.rung{rung=nudge}"] >= 1
        assert counters["spice.sparse.factorizations"] >= 1

    def test_auto_dispatched_decoder_recovers_via_nudge(self, monkeypatch):
        """The 6-bit decoder crosses the sparse cutover on its own; the
        injected fault must be handled on the auto-dispatched path too."""
        monkeypatch.delenv(SPARSE_ENV_VAR, raising=False)
        circuit = hierarchical_decoder(6, address=21)
        compiled = circuit.compile()
        assert compiled.n_unknown >= SPARSE_NODE_CUTOVER
        with recording() as rec, FaultInjection("sparse@factorize:1") as fi:
            op = solve_dc(compiled)
            assert fi.fired_count("sparse") == 1
        assert_one_hot({row: op.voltages[f"wl{row}"] for row in range(64)},
                       21)
        assert rec.metrics_payload()["counters"][
            "spice.guard.rung{rung=nudge}"] >= 1

    def test_persistent_sparse_fault_degrades_to_nan_cell(self, monkeypatch):
        """A factorization that *always* fails exhausts the nudge and
        homotopy rungs; the table-building pattern yields a NaN cell
        while sibling addresses keep their exact clean values."""
        monkeypatch.setenv(SPARSE_ENV_VAR, "1")
        addresses = (2, 5, 11)
        clean = {addr: decoder_wordlines(4, addr, retry=1)
                 for addr in addresses}
        cells = {}
        for addr in addresses:
            plan = ("sparse@factorize:always" if addr == 5 else "")
            if plan:
                with FaultInjection(plan):
                    with pytest.raises(ConvergenceError):
                        decoder_wordlines(4, addr, retry=1)
                cells[addr] = float("nan")
            else:
                cells[addr] = decoder_wordlines(4, addr, retry=1)
        assert np.isnan(cells[5])
        for addr in (2, 11):
            assert cells[addr] == clean[addr]
            assert_one_hot(cells[addr], addr)
