"""Transient integration against analytic RC responses."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.spice import Circuit, transient
from repro.spice.transient import TransientOptions
from repro.tech import default_process
from repro.waveform import Pwl, ramp


def rc_circuit(r=1e3, c=1e-12, source=5.0) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("v1", "in", source)
    ckt.add_resistor("r1", "in", "out", r)
    ckt.add_capacitor("c1", "out", "0", c)
    return ckt


class TestRcAnalytic:
    def test_step_charge(self):
        """RC step response matches v(t) = V (1 - exp(-t/RC))."""
        r, c = 1e3, 1e-12
        step = Pwl([1e-10, 1.01e-10], [0.0, 5.0])
        ckt = rc_circuit(r, c, step)
        result = transient(ckt, 6e-9)
        out = result.node("out")
        for t in (0.5e-9, 1e-9, 2e-9, 4e-9):
            analytic = 5.0 * (1.0 - np.exp(-(t - 1.01e-10) / (r * c)))
            assert out(t) == pytest.approx(analytic, abs=0.03)

    def test_initial_condition_from_dc(self):
        """Output starts at the DC solution (source value, cap charged)."""
        result = transient(rc_circuit(source=3.0), 1e-9)
        assert result.node("out").initial_value() == pytest.approx(3.0, abs=1e-3)

    def test_ramp_tracking(self):
        """For slow ramps the RC output tracks the input with lag ~RC."""
        r, c = 1e3, 1e-13  # RC = 0.1ns
        wf = ramp(1e-9, 0.0, 5.0, 5e-9)
        result = transient(rc_circuit(r, c, wf), 10e-9)
        out = result.node("out")
        mid = out(3.5e-9)
        vin_mid = wf(3.5e-9 - r * c)
        assert mid == pytest.approx(vin_mid, abs=0.1)

    def test_methods_agree(self):
        wf = ramp(0.5e-9, 0.0, 5.0, 1e-9)
        res_trap = transient(rc_circuit(source=wf), 5e-9,
                             options=TransientOptions(method="trap"))
        res_be = transient(rc_circuit(source=wf), 5e-9,
                           options=TransientOptions(method="be"))
        t_grid = np.linspace(0, 5e-9, 50)
        v_trap = res_trap.node("out")(t_grid)
        v_be = res_be.node("out")(t_grid)
        assert np.max(np.abs(v_trap - v_be)) < 0.1

    def test_coupled_capacitor_divider(self):
        """A floating cap between two nodes: step couples through the
        capacitive divider c1/(c1+c2)."""
        ckt = Circuit()
        step = Pwl([1e-10, 1.05e-10], [0.0, 4.0])
        ckt.add_vsource("v1", "in", step)
        ckt.add_capacitor("c1", "in", "mid", 2e-12)
        ckt.add_capacitor("c2", "mid", "0", 2e-12)
        ckt.add_resistor("rleak", "mid", "0", 1e9)  # slow discharge
        result = transient(ckt, 3e-10)
        # Right after the step: v_mid ~ 4 * c1/(c1+c2) = 2.
        assert result.node("mid")(1.5e-10) == pytest.approx(2.0, abs=0.1)


class TestEngineBehaviour:
    def test_breakpoints_hit_exactly(self):
        wf = Pwl([1e-9, 1.5e-9], [0.0, 5.0])
        result = transient(rc_circuit(source=wf), 4e-9)
        assert np.any(np.isclose(result.times, 1e-9, atol=1e-15))
        assert np.any(np.isclose(result.times, 1.5e-9, atol=1e-15))

    def test_record_subset(self):
        result = transient(rc_circuit(), 1e-9, record=["out"])
        assert result.node_names == ["out"]
        from repro.errors import MeasurementError
        with pytest.raises(MeasurementError):
            result.node("in")

    def test_rejects_bad_tstop(self):
        with pytest.raises(ConvergenceError):
            transient(rc_circuit(), 0.0)

    def test_rejects_bad_method(self):
        with pytest.raises(ConvergenceError):
            TransientOptions(method="rk4")

    def test_rejects_bad_budget(self):
        with pytest.raises(ConvergenceError):
            TransientOptions(dv_target=0.5, dv_reject=0.2)

    def test_quantity_string_tstop(self):
        result = transient(rc_circuit(), "2ns")
        assert result.t_stop == pytest.approx(2e-9)


class TestInverterTransient:
    def test_inverter_switches(self):
        proc = default_process()
        ckt = Circuit()
        ckt.add_vsource("vvdd", "vdd", proc.vdd)
        ckt.add_vsource("vin", "in", ramp(1e-9, 0.0, proc.vdd, 0.3e-9))
        ckt.add_mosfet("mn", "out", "in", "0", "0", proc.nmos, 4e-6, 0.8e-6)
        ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
        ckt.add_capacitor("cl", "out", "0", 1e-13)
        result = transient(ckt, 5e-9)
        out = result.node("out")
        assert out.initial_value() == pytest.approx(proc.vdd, abs=0.02)
        assert out.final_value() == pytest.approx(0.0, abs=0.02)
        # Monotone-ish fall: output after the edge below 10% Vdd.
        assert out(4e-9) < 0.5

    def test_charge_conservation_flat_input(self):
        """Nothing switches: every node stays at its DC value."""
        proc = default_process()
        ckt = Circuit()
        ckt.add_vsource("vvdd", "vdd", proc.vdd)
        ckt.add_vsource("vin", "in", 0.0)
        ckt.add_mosfet("mn", "out", "in", "0", "0", proc.nmos, 4e-6, 0.8e-6)
        ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
        ckt.add_capacitor("cl", "out", "0", 1e-13)
        result = transient(ckt, 3e-9)
        out = result.node("out").values
        assert np.max(np.abs(out - out[0])) < 1e-3


class TestBreakpointRobustness:
    def test_breakpoint_landing_regression(self):
        """Regression: a step landing a few attoseconds short of a PWL
        corner must not underflow the step size (the corner is snapped
        within h_min).  Exact ramp times from a failing characterization
        point."""
        from repro.gates import Gate
        from repro.waveform import Pwl

        proc = default_process()
        gate = Gate.nand(3, proc, load=100e-15)
        # Reconstructed stimuli of the original failure (irrational ramp
        # times from a geomspace grid).
        a_ramp = Pwl([4.0067604560380076e-10, 7.169038116206387e-10], [5.0, 0.0])
        c_ramp = Pwl([4.999999999999997e-11, 1.536596909458366e-10], [5.0, 0.0])
        circuit = gate.build({"a": a_ramp, "c": c_ramp}, switching=["a", "c"])
        result = transient(circuit, 3.3e-9)
        z = result.node("z")
        assert z.final_value() == pytest.approx(5.0, abs=0.05)

    def test_many_irrational_breakpoints(self):
        """Stress: a source with many closely spaced irrational corners
        integrates cleanly."""
        import numpy as np
        times = np.cumsum(np.geomspace(1e-12, 3e-10, 24)) + 1e-10
        values = [(5.0 if i % 2 else 0.0) for i in range(24)]
        wf = Pwl(times, values)
        result = transient(rc_circuit(1e3, 5e-14, wf), float(times[-1]) + 2e-9)
        assert len(result.times) > 50


class TestNewtonAccounting:
    """Regression: ``newton_iterations`` used to be dead (always 0)."""

    def test_newton_iterations_nonzero(self):
        """Any converged transient performed at least one Newton
        iteration per accepted step (plus the DC solve)."""
        result = transient(rc_circuit(), 2e-9)
        assert result.newton_iterations > 0
        assert result.newton_iterations >= len(result.times) - 1

    def test_rejected_steps_counted_in_iterations(self):
        """A waveform violent enough to force step rejections must
        accumulate the rejected solves' iterations too."""
        wf = Pwl([1e-10, 1.001e-10], [0.0, 5.0])  # near-step edge
        tight = TransientOptions(dv_target=0.02, dv_reject=0.08)
        loose = TransientOptions()
        res_tight = transient(rc_circuit(1e3, 1e-12, wf), 4e-9, options=tight)
        res_loose = transient(rc_circuit(1e3, 1e-12, wf), 4e-9, options=loose)
        assert res_tight.newton_iterations > 0
        # Tighter budgets mean more (and more often rejected) steps,
        # which must show up in the accounting.
        assert res_tight.newton_iterations > res_loose.newton_iterations

    def test_gate_transient_reports_iterations(self):
        proc = default_process()
        ckt = Circuit()
        ckt.add_vsource("vvdd", "vdd", proc.vdd)
        ckt.add_vsource("vin", "in", ramp(1e-9, 0.0, proc.vdd, 0.3e-9))
        ckt.add_mosfet("mn", "out", "in", "0", "0", proc.nmos, 4e-6, 0.8e-6)
        ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
        ckt.add_capacitor("cl", "out", "0", 1e-13)
        result = transient(ckt, 5e-9)
        assert result.newton_iterations > len(result.times)
