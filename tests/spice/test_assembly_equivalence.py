"""Bit-identity of the compiled-stamp assembly against the scalar oracle.

The vectorized assembler (:func:`repro.spice.engine.assemble_system`,
driven by a compiled :class:`~repro.spice.stamps.StampPlan`) promises
*bit-identical* output to :func:`assemble_system_reference`, the
original scalar loop kept as the equivalence oracle.  IEEE addition is
not associative, so this holds only because the plan's ordered scatter
replays the scalar per-cell accumulation order exactly -- these tests
enforce that contract on randomized circuits, for DC and cap-stamped
assembly, on both sides of the scalar/batched channel-model cutover.
"""

import numpy as np
import pytest

from repro.spice import Circuit
from repro.spice.engine import assemble_system, assemble_system_reference
from repro.spice.stamps import SCALAR_MOS_CUTOVER
from repro.tech import default_process
from repro.waveform import ramp
from repro.waveform.pwl import Pwl

PROC = default_process()


def random_circuit(rng: np.random.Generator, *, n_mos: int) -> Circuit:
    """A random connected mess of every device type the netlist has."""
    ckt = Circuit()
    nodes = ["0", "vdd", "in", "n1", "n2", "n3"]
    ckt.add_vsource("vvdd", "vdd", PROC.vdd)
    ckt.add_vsource("vin", "in", ramp(0.2e-9, 0.0, PROC.vdd, 0.3e-9))
    for i in range(rng.integers(2, 5)):
        a, b = rng.choice(len(nodes), size=2, replace=False)
        ckt.add_resistor(f"r{i}", nodes[a], nodes[b],
                         float(rng.uniform(1e3, 1e6)))
    for i in range(rng.integers(1, 4)):
        a, b = rng.choice(len(nodes), size=2, replace=False)
        ckt.add_capacitor(f"c{i}", nodes[a], nodes[b],
                          float(rng.uniform(1e-15, 1e-13)))
    for i in range(rng.integers(0, 2)):
        a, b = rng.choice(len(nodes), size=2, replace=False)
        ckt.add_isource(f"i{i}", nodes[a], nodes[b],
                        float(rng.uniform(-1e-5, 1e-5)))
    for i in range(n_mos):
        model = PROC.nmos if rng.random() < 0.5 else PROC.pmos
        bulk = "0" if model.is_nmos else "vdd"
        d, g, s = (nodes[j] for j in
                   rng.choice(len(nodes), size=3, replace=False))
        ckt.add_mosfet(f"m{i}", d, g, s, bulk, model,
                       float(rng.uniform(2e-6, 12e-6)), 0.8e-6,
                       with_parasitics=bool(rng.random() < 0.5))
    return ckt


def assert_assembly_identical(compiled, rng: np.random.Generator,
                              *, cap_stamps, source_scale: float = 1.0,
                              gmin: float = 1e-12) -> None:
    n = compiled.n_unknown
    known = compiled.known_voltages(0.13e-9)
    for _ in range(5):
        x = rng.uniform(-1.0, PROC.vdd + 1.0, n)
        got = assemble_system(compiled, x, known, gmin=gmin, time=0.13e-9,
                              cap_stamps=cap_stamps,
                              source_scale=source_scale)
        want = assemble_system_reference(
            compiled, x, known, gmin=gmin, time=0.13e-9,
            cap_stamps=cap_stamps, source_scale=source_scale)
        # Bit-for-bit, not approx: tobytes() compares the raw IEEE bits.
        assert got[0].tobytes() == want[0].tobytes()
        assert got[1].tobytes() == want[1].tobytes()


def ordered_stamps(compiled):
    """Companion stamps in compiled capacitor order (the transient's)."""
    return [(a, b, c / 1e-12, (c / 1e-12) * 0.3)
            for a, b, c in compiled.capacitors]


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_dc_assembly_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        compiled = random_circuit(rng, n_mos=int(rng.integers(0, 7))).compile()
        assert_assembly_identical(compiled, rng, cap_stamps=None)

    @pytest.mark.parametrize("seed", range(8))
    def test_cap_stamped_assembly_bit_identical(self, seed):
        rng = np.random.default_rng(100 + seed)
        compiled = random_circuit(rng, n_mos=int(rng.integers(0, 7))).compile()
        assert_assembly_identical(compiled, rng,
                                  cap_stamps=ordered_stamps(compiled))

    @pytest.mark.parametrize("seed", range(4))
    def test_source_stepping_assembly_bit_identical(self, seed):
        rng = np.random.default_rng(200 + seed)
        compiled = random_circuit(rng, n_mos=int(rng.integers(1, 5))).compile()
        assert_assembly_identical(compiled, rng, cap_stamps=None,
                                  source_scale=0.375, gmin=1e-6)

    def test_above_scalar_cutover_uses_batched_model(self):
        """Large device counts take the grouped batch-model path; the
        output must stay bit-identical there too."""
        rng = np.random.default_rng(42)
        ckt = random_circuit(rng, n_mos=SCALAR_MOS_CUTOVER + 3)
        compiled = ckt.compile()
        assert not compiled.stamp_plan.use_scalar_mos
        assert_assembly_identical(compiled, rng,
                                  cap_stamps=ordered_stamps(compiled))

    def test_below_cutover_uses_scalar_model(self):
        rng = np.random.default_rng(43)
        compiled = random_circuit(rng, n_mos=3).compile()
        assert compiled.stamp_plan.use_scalar_mos
        assert_assembly_identical(compiled, rng, cap_stamps=None)

    def test_out_of_order_stamps_fall_back_to_reference(self):
        """Hand-built stamp lists that do not follow the compiled
        capacitor order must still assemble correctly (via fallback)."""
        rng = np.random.default_rng(7)
        compiled = random_circuit(rng, n_mos=2).compile()
        stamps = list(reversed(ordered_stamps(compiled)))
        if len(stamps) > 1:
            assert not compiled.stamp_plan.stamps_match(stamps)
        assert_assembly_identical(compiled, rng, cap_stamps=stamps)

    def test_workspace_reuse_does_not_leak_state(self):
        """Back-to-back assemblies with different shapes (DC after
        cap-stamped, residual after full) share one workspace."""
        rng = np.random.default_rng(11)
        compiled = random_circuit(rng, n_mos=4).compile()
        stamps = ordered_stamps(compiled)
        assert_assembly_identical(compiled, rng, cap_stamps=stamps)
        assert_assembly_identical(compiled, rng, cap_stamps=None)
        assert_assembly_identical(compiled, rng, cap_stamps=stamps)


class TestKnownVoltages:
    def test_known_voltages_match_source_waveforms(self):
        """The stacked interp must reproduce each source's own Pwl
        evaluation bit for bit (same np.interp semantics)."""
        ckt = Circuit()
        wave_a = ramp(0.2e-9, 0.0, 5.0, 0.3e-9)
        wave_b = ramp(0.35e-9, 5.0, 0.0, 0.1e-9)
        ckt.add_vsource("va", "a", wave_a)
        ckt.add_vsource("vb", "b", wave_b)
        ckt.add_resistor("r1", "a", "n1", 1e4)
        ckt.add_resistor("r2", "b", "n1", 1e4)
        ckt.add_resistor("r3", "n1", "0", 1e4)
        compiled = ckt.compile()
        idx = {name: i for i, name in enumerate(compiled._known_names)}
        probes = np.concatenate([
            wave_a.times, wave_b.times,
            np.linspace(-0.1e-9, 0.6e-9, 37),
        ])
        for t in probes:
            got = compiled.known_voltages(float(t))
            assert got[idx["a"]] == float(np.interp(t, wave_a.times,
                                                    wave_a.values))
            assert got[idx["b"]] == float(np.interp(t, wave_b.times,
                                                    wave_b.values))
            assert got[idx["0"]] == 0.0


class TestPwlScalarFastPath:
    def test_scalar_matches_interp(self):
        rng = np.random.default_rng(5)
        t = np.sort(rng.uniform(0.0, 1.0, 9))
        v = rng.uniform(-2.0, 2.0, 9)
        wave = Pwl(t, v)
        probes = list(t)  # exact breakpoint hits
        probes += [t[0] - 0.5, t[-1] + 0.5]  # clamped ends
        probes += list(rng.uniform(-0.2, 1.2, 50))
        for probe in probes:
            assert wave(float(probe)) == float(np.interp(probe, t, v))

    def test_int_query(self):
        wave = Pwl([0.0, 2.0], [1.0, 3.0])
        assert wave(1) == 2.0
        assert isinstance(wave(1), float)

    def test_single_breakpoint(self):
        wave = Pwl([0.5], [4.25])
        for probe in (-1.0, 0.5, 2.0):
            assert wave(probe) == 4.25

    def test_array_path_unchanged(self):
        wave = Pwl([0.0, 1.0], [0.0, 5.0])
        grid = np.linspace(-0.5, 1.5, 11)
        out = wave(grid)
        assert isinstance(out, np.ndarray)
        assert out.tobytes() == np.interp(grid, wave.times,
                                          wave.values).tobytes()

    def test_nan_query_defers_to_numpy(self):
        wave = Pwl([0.0, 1.0], [0.0, 5.0])
        got = wave(float("nan"))
        want = float(np.interp(float("nan"), wave.times, wave.values))
        assert np.isnan(got) == np.isnan(want)
