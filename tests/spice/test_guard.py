"""Solver guardrails: escalation accounting, health monitors, hardening.

Three layers under test:

* the :mod:`repro.spice.guard` primitives themselves -- env parsing,
  divergence streaks, watchdog deadlines, condition-estimate sampling;
* the scalar integration -- a guarded run is bit-identical to an
  unguarded one on the clean path, diverging solves abort early and
  enter the normal homotopy/degradation ladder, every escalation rung
  is counted;
* the batched kernel's fault hardening -- diverging or fault-injected
  lanes are evicted and retried solo with accounting identical to the
  scalar driver, and sparse-dispatched solves recover from injected
  factorization faults through the nudge rung.
"""

import logging
import time

import numpy as np
import pytest

from repro.errors import ConvergenceError, ReproError
from repro.obs import recording
from repro.resilience import FaultInjection
from repro.spice import (
    Circuit,
    NewtonOptions,
    TransientOptions,
    solve_dc,
    solve_dc_batch,
    transient,
    transient_batch,
)
from repro.spice.engine import newton_solve
from repro.spice.guard import (
    COND_ENV_VAR,
    COND_EVERY_ENV_VAR,
    DIVERGE_ENV_VAR,
    DIVERGE_STREAK,
    GUARD_ENV_VAR,
    WALL_ENV_VAR,
    GuardAbort,
    GuardMonitor,
    GuardPolicy,
    condition_estimate_dense,
    guard_enabled,
    record_rung,
)
from repro.spice.sparse import SPARSE_ENV_VAR
from repro.tech import default_process
from repro.waveform import ramp

PROC = default_process()
FAST = TransientOptions(h_max_ratio=2e-2)


@pytest.fixture(autouse=True)
def pinned_backends(monkeypatch):
    """Pin the dense full-Newton path: the divergence/parity tests
    monkeypatch ``np.linalg.solve`` (which SuperLU bypasses) and compare
    scalar against the dense lockstep kernel (which the fast-Newton and
    sparse CI legs would otherwise divert).  Tests that exercise those
    backends opt back in explicitly."""
    monkeypatch.setenv(SPARSE_ENV_VAR, "0")
    monkeypatch.setenv("REPRO_FAST_NEWTON", "0")
    monkeypatch.delenv(GUARD_ENV_VAR, raising=False)
    monkeypatch.delenv(COND_ENV_VAR, raising=False)
    monkeypatch.delenv(COND_EVERY_ENV_VAR, raising=False)
    monkeypatch.delenv(DIVERGE_ENV_VAR, raising=False)
    monkeypatch.delenv(WALL_ENV_VAR, raising=False)


def inverter(tau: float = 0.3e-9, cl: float = 1e-13) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("vvdd", "vdd", PROC.vdd)
    ckt.add_vsource("vin", "in", ramp(0.5e-9, 0.0, PROC.vdd, tau))
    ckt.add_mosfet("mn", "out", "in", "0", "0", PROC.nmos, 4e-6, 0.8e-6)
    ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", PROC.pmos, 8e-6, 0.8e-6)
    ckt.add_capacitor("cl", "out", "0", cl)
    return ckt


def inverter_grid(count: int):
    return [inverter(tau=0.1e-9 + 0.05e-9 * i, cl=5e-14 + 1e-14 * (i % 7))
            for i in range(count)]


def dc_inverter(width: float = 4e-6) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("vvdd", "vdd", PROC.vdd)
    ckt.add_vsource("vin", "in", 2.5)
    ckt.add_mosfet("mn", "out", "in", "0", "0", PROC.nmos, width, 0.8e-6)
    ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", PROC.pmos,
                   2 * width, 0.8e-6)
    return ckt


def floating_node() -> Circuit:
    ckt = Circuit("floating")
    ckt.add_vsource("v1", "in", 1.0)
    ckt.add_resistor("r1", "in", "mid", 1e3)
    ckt.add_resistor("r2", "mid", "0", 1e3)
    ckt.add_capacitor("c1", "float", "0", 1e-15)
    return ckt


def solver_counters(recorder) -> dict:
    """Solver-side counters (``spice.batch.*`` bookkeeping excluded)."""
    return {
        key: value
        for key, value in recorder.metrics_payload()["counters"].items()
        if key.startswith("spice.") and not key.startswith("spice.batch")
    }


def runaway_solve(a, b):
    """A ``np.linalg.solve`` stand-in whose steps never contract.

    Works for both the scalar ``(n,)`` and batched ``(B, n, 1)`` right
    hand sides, so scalar and lockstep drivers see identical garbage.
    """
    return np.ones_like(b) * 10.0


class TestEnvParsing:
    def test_guard_off_by_default(self):
        assert not guard_enabled()
        assert GuardPolicy.from_env() is None
        assert GuardMonitor.from_env() is None

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", ""])
    def test_falsey_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(GUARD_ENV_VAR, value)
        assert GuardPolicy.from_env() is None

    def test_default_policy(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        policy = GuardPolicy.from_env()
        assert policy == GuardPolicy(condition_limit=1e12, condition_every=0,
                                     diverge_factor=1e3,
                                     diverge_streak=DIVERGE_STREAK,
                                     max_wall_seconds=None)

    def test_zero_disables_individual_monitors(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(COND_ENV_VAR, "0")
        monkeypatch.setenv(DIVERGE_ENV_VAR, "off")
        policy = GuardPolicy.from_env()
        assert policy.condition_limit == float("inf")
        assert policy.diverge_factor == float("inf")

    def test_explicit_knobs(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(COND_ENV_VAR, "1e8")
        monkeypatch.setenv(COND_EVERY_ENV_VAR, "3")
        monkeypatch.setenv(DIVERGE_ENV_VAR, "50")
        monkeypatch.setenv(WALL_ENV_VAR, "2.5")
        policy = GuardPolicy.from_env()
        assert policy.condition_limit == 1e8
        assert policy.condition_every == 3
        assert policy.diverge_factor == 50.0
        assert policy.max_wall_seconds == 2.5

    def test_wall_zero_is_an_immediate_deadline(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(WALL_ENV_VAR, "0")
        assert GuardPolicy.from_env().max_wall_seconds == 0.0

    @pytest.mark.parametrize("var,value", [
        (COND_ENV_VAR, "bogus"),
        (COND_ENV_VAR, "-1"),
        (DIVERGE_ENV_VAR, "nonsense"),
        (DIVERGE_ENV_VAR, "-2"),
        (WALL_ENV_VAR, "soon"),
        (WALL_ENV_VAR, "-1"),
        (COND_EVERY_ENV_VAR, "x"),
        (COND_EVERY_ENV_VAR, "-3"),
    ])
    def test_invalid_knobs_raise(self, monkeypatch, var, value):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(var, value)
        with pytest.raises(ReproError):
            GuardPolicy.from_env()


class TestSolveGuard:
    def test_divergence_needs_a_full_streak(self):
        guard = GuardMonitor(GuardPolicy(diverge_factor=10.0)).start_solve()
        assert guard.check(1, 1.0) is None  # establishes best
        for k in range(2, 2 + DIVERGE_STREAK - 1):
            assert guard.check(k, 100.0) is None
        abort = guard.check(2 + DIVERGE_STREAK - 1, 100.0)
        assert isinstance(abort, GuardAbort)
        assert abort.reason == "divergence"
        assert isinstance(abort, ConvergenceError)

    def test_one_contracting_iteration_resets_the_streak(self):
        guard = GuardMonitor(GuardPolicy(diverge_factor=10.0)).start_solve()
        guard.check(1, 1.0)
        for k in range(2, 2 + DIVERGE_STREAK - 1):
            assert guard.check(k, 100.0) is None
        assert guard.check(10, 2.0) is None  # below factor x best: reset
        for k in range(11, 11 + DIVERGE_STREAK - 1):
            assert guard.check(k, 100.0) is None, k

    def test_improving_residuals_never_abort(self):
        guard = GuardMonitor(GuardPolicy(diverge_factor=2.0)).start_solve()
        residual = 1.0
        for k in range(1, 50):
            assert guard.check(k, residual) is None
            residual *= 0.5

    def test_watchdog_expiry(self):
        policy = GuardPolicy(max_wall_seconds=0.0)
        guard = GuardMonitor(policy).start_solve()
        time.sleep(0.002)
        abort = guard.check(3, 1.0)
        assert isinstance(abort, GuardAbort)
        assert abort.reason == "watchdog"
        assert abort.iterations == 3

    def test_condition_sampling_cadence(self):
        monitor = GuardMonitor(GuardPolicy(condition_every=2))
        sampled = [monitor.start_solve().check_condition for _ in range(5)]
        assert sampled == [True, False, True, False, True]

    def test_default_cadence_is_first_solve_only(self):
        monitor = GuardMonitor(GuardPolicy())
        sampled = [monitor.start_solve().check_condition for _ in range(4)]
        assert sampled == [True, False, False, False]

    def test_infinite_limit_disables_sampling(self):
        monitor = GuardMonitor(GuardPolicy(condition_limit=float("inf")))
        assert monitor.start_solve().check_condition is False

    def test_note_condition_tracks_worst_and_breach(self):
        monitor = GuardMonitor(GuardPolicy(condition_limit=100.0))
        guard = monitor.start_solve()
        assert guard.note_condition(5.0) is False
        assert guard.check_condition is False  # one sample per solve
        assert monitor.worst_condition == 5.0
        assert monitor.start_solve().note_condition(500.0) is True
        assert monitor.worst_condition == 500.0


class TestConditionEstimate:
    def test_lower_bound_on_a_known_matrix(self):
        J = np.diag([1.0, 2.0, 100.0])
        true_cond = 100.0 * 1.0  # ||J||_1 * ||J^-1||_1
        estimate = condition_estimate_dense(J)
        assert 0 < estimate <= true_cond * (1 + 1e-12)
        assert estimate > 1.0

    def test_identity_is_well_conditioned(self):
        assert condition_estimate_dense(np.eye(4)) == pytest.approx(1.0)

    def test_singular_matrix_reports_inf(self):
        assert condition_estimate_dense(np.zeros((3, 3))) == float("inf")
        J = np.ones((2, 2))  # rank 1
        assert condition_estimate_dense(J) == float("inf")

    def test_empty_system(self):
        assert condition_estimate_dense(np.zeros((0, 0))) == 0.0


class TestRungTelemetry:
    def test_record_rung_counts_under_recording(self):
        with recording() as rec:
            record_rung("nudge")
            record_rung("nudge")
            record_rung("gmin_ramp")
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.guard.rung{rung=nudge}"] == 2
        assert counters["spice.guard.rung{rung=gmin_ramp}"] == 1

    def test_homotopy_rungs_match_dc_counters(self):
        """The gmin/source rungs are counted exactly where the existing
        homotopy counters are, guard on or off (always-on telemetry)."""
        with recording() as rec:
            solve_dc(dc_inverter(), initial_guess={"out": 80.0})
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.guard.rung{rung=gmin_ramp}"] == \
            counters["spice.dc.gmin_stepping"]
        assert counters.get("spice.guard.rung{rung=source_step}", 0) == \
            counters.get("spice.dc.source_stepping", 0)

    def test_nudge_rung_scalar_matches_batch(self):
        """A gmin=0 floating node forces exactly one nudge per solve on
        both drivers."""
        options = NewtonOptions(gmin=0.0)
        compiled = floating_node().compile()
        x0 = np.zeros(compiled.n_unknown)
        with recording() as rec_scalar:
            newton_solve(compiled, x0.copy(), compiled.known_voltages(0.0),
                         options=options)
        scalar = rec_scalar.metrics_payload()["counters"]
        assert scalar["spice.guard.rung{rung=nudge}"] >= 1

        from repro.spice.batch import run_plans_batched
        from repro.spice.engine import NewtonRequest, NewtonStats, \
            request_solve

        def entry():
            c = floating_node().compile()
            request = NewtonRequest(x0=np.zeros(c.n_unknown),
                                    known=c.known_voltages(0.0),
                                    options=options)
            return (c, request_solve(request), NewtonStats())

        with recording() as rec_batch:
            run_plans_batched([entry(), entry()])
        batch = rec_batch.metrics_payload()["counters"]
        assert batch["spice.guard.rung{rung=nudge}"] == \
            2 * scalar["spice.guard.rung{rung=nudge}"]

    def test_timestep_cut_rung_counts_rejected_steps(self):
        """Every shrink of ``h`` -- Newton failure or dv rejection -- is
        one ``timestep_cut`` engagement, which is exactly what the
        result's ``rejected_steps`` counts."""
        with recording() as rec:
            result = transient(inverter(tau=0.05e-9), 1.5e-9, options=FAST)
        counters = rec.metrics_payload()["counters"]
        cuts = counters.get("spice.guard.rung{rung=timestep_cut}", 0)
        assert cuts == result.rejected_steps

    def test_refresh_rung_under_fast_newton(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_NEWTON", "1")
        with recording() as rec:
            transient(inverter(), 2e-9, options=FAST)
        counters = rec.metrics_payload()["counters"]
        assert counters.get("spice.guard.rung{rung=refresh}", 0) >= 1


class TestCleanPathIdentity:
    def test_guarded_transient_is_bit_identical(self, monkeypatch):
        baseline = transient(inverter(), 2e-9, options=FAST)
        with recording() as rec_off:
            transient(inverter(), 2e-9, options=FAST)
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        with recording() as rec_on:
            guarded = transient(inverter(), 2e-9, options=FAST)
        assert np.array_equal(baseline.times, guarded.times)
        for name in baseline.node_names:
            assert np.array_equal(baseline.node(name).values,
                                  guarded.node(name).values), name
        # The monitors only watch: counters match the unguarded run too
        # (no aborts, no ill-conditioning on a healthy circuit).
        assert solver_counters(rec_on) == solver_counters(rec_off)

    def test_guarded_dc_is_bit_identical(self, monkeypatch):
        baseline = solve_dc(dc_inverter())
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        assert solve_dc(dc_inverter()).voltages == baseline.voltages


class TestDivergenceAbort:
    def test_runaway_scalar_solve_aborts_and_walks_the_ladder(
            self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(DIVERGE_ENV_VAR, "2")
        monkeypatch.setattr(np.linalg, "solve", runaway_solve)
        with recording() as rec:
            with pytest.raises(ConvergenceError):
                solve_dc(dc_inverter())
        counters = rec.metrics_payload()["counters"]
        # Every rung of the DC ladder was tried, each attempt aborted
        # early by the divergence monitor rather than burning the full
        # iteration budget.
        assert counters["spice.guard.aborts{reason=divergence}"] >= 1
        assert counters["spice.guard.rung{rung=gmin_ramp}"] >= 1
        assert counters["spice.guard.rung{rung=source_step}"] >= 1

    def test_unguarded_runaway_burns_the_full_budget(self, monkeypatch):
        """Without the guard the same runaway run must still fail --
        the monitor only changes *when*, never *whether*."""
        monkeypatch.setattr(np.linalg, "solve", runaway_solve)
        with recording() as rec:
            with pytest.raises(ConvergenceError):
                solve_dc(dc_inverter())
        assert "spice.guard.aborts{reason=divergence}" not in \
            rec.metrics_payload()["counters"]

    def test_batch_divergence_accounting_matches_scalar(self, monkeypatch):
        """A diverging lane is evicted and retried solo: its stats and
        guard counters must equal the scalar driver's, lane for lane."""
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(DIVERGE_ENV_VAR, "2")
        monkeypatch.setattr(np.linalg, "solve", runaway_solve)
        widths = [4e-6, 5e-6, 6e-6]

        from repro.spice import NewtonStats
        with recording() as rec_scalar:
            scalar_stats = [NewtonStats() for _ in widths]
            for w, st in zip(widths, scalar_stats):
                with pytest.raises(ConvergenceError):
                    solve_dc(dc_inverter(w), stats=st)
        scalar_counters = solver_counters(rec_scalar)
        assert scalar_counters["spice.guard.aborts{reason=divergence}"] >= 3

        with recording() as rec_batch:
            batch_stats = [NewtonStats() for _ in widths]
            outcomes = solve_dc_batch([dc_inverter(w) for w in widths],
                                      stats=batch_stats)
        assert all(isinstance(o, ConvergenceError) for o in outcomes)
        assert solver_counters(rec_batch) == scalar_counters
        for s, b in zip(scalar_stats, batch_stats):
            assert (s.iterations, s.solves, s.failures, s.retries) == \
                (b.iterations, b.solves, b.failures, b.retries)
        evictions = {
            key: value
            for key, value in rec_batch.metrics_payload()["counters"].items()
            if key.startswith("spice.batch.evictions")
        }
        assert evictions["spice.batch.evictions{reason=divergence}"] >= 3


class TestWatchdog:
    def test_zero_budget_aborts_every_solve(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(WALL_ENV_VAR, "0")
        with recording() as rec:
            with pytest.raises(ConvergenceError, match="watchdog"):
                solve_dc(dc_inverter())
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.guard.aborts{reason=watchdog}"] >= 1

    def test_generous_budget_never_fires(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(WALL_ENV_VAR, "3600")
        baseline = solve_dc(dc_inverter())
        assert solve_dc(dc_inverter()).voltages == baseline.voltages


class TestConditionMonitoring:
    def test_breach_warns_and_counts_but_does_not_change_results(
            self, monkeypatch, caplog):
        # The floating node's ~gmin diagonal entry puts the condition
        # estimate around 2e9, far past the 1e6 limit.
        baseline = solve_dc(floating_node())
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(COND_ENV_VAR, "1e6")
        logger = logging.getLogger("repro")
        monkeypatch.setattr(logger, "propagate", True)
        with recording() as rec:
            with caplog.at_level(logging.WARNING, logger="repro.spice.guard"):
                guarded = solve_dc(floating_node())
        assert guarded.voltages == baseline.voltages  # warn-only
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.guard.illconditioned"] >= 1
        assert any("ill-conditioned" in message
                   for message in caplog.messages)

    def test_well_conditioned_solves_stay_silent(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")  # default 1e12 limit
        with recording() as rec:
            solve_dc(dc_inverter())
        assert "spice.guard.illconditioned" not in \
            rec.metrics_payload()["counters"]

    def test_illconditioned_count_is_batch_invariant(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(COND_ENV_VAR, "1e6")
        lanes = 4
        with recording() as rec_scalar:
            for _ in range(lanes):
                solve_dc(floating_node())
        with recording() as rec_batch:
            solve_dc_batch([floating_node() for _ in range(lanes)])
        key = "spice.guard.illconditioned"
        scalar = rec_scalar.metrics_payload()["counters"][key]
        assert scalar >= lanes
        assert rec_batch.metrics_payload()["counters"][key] == scalar


class TestBatchLaneFaults:
    def test_faulted_lane_is_evicted_and_retried_solo(self):
        t_stop = 1.5e-9
        scalar = [transient(c, t_stop, options=FAST)
                  for c in inverter_grid(3)]
        with recording() as rec, FaultInjection("lane@1:1") as fi:
            batched = transient_batch(inverter_grid(3), t_stop, options=FAST)
            assert fi.fired_count("lane") == 1
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.evictions{reason=fault}"] == 1
        for s, b in zip(scalar, batched):
            assert np.array_equal(s.times, b.times)
            for name in s.node_names:
                assert np.array_equal(s.node(name).values,
                                      b.node(name).values), name

    def test_lane_wildcard_evicts_every_first_load(self):
        with recording() as rec, FaultInjection("lane@*:3") as fi:
            batched = transient_batch(inverter_grid(3), 1.5e-9, options=FAST)
            assert fi.fired_count("lane") == 3
        assert all(not isinstance(b, ConvergenceError) for b in batched)
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.batch.evictions{reason=fault}"] == 3

    def test_solver_counters_invariant_under_lane_fault(self):
        """The evicted lane's solo retry reproduces the scalar
        accounting exactly: solver counters (evictions excluded) match
        a fault-free batched run."""
        with recording() as rec_clean:
            transient_batch(inverter_grid(3), 1.5e-9, options=FAST)
        with recording() as rec_faulted, FaultInjection("lane@2:1"):
            transient_batch(inverter_grid(3), 1.5e-9, options=FAST)
        assert solver_counters(rec_faulted) == solver_counters(rec_clean)


class TestSparseFaultHardening:
    def test_injected_factorization_fault_recovers_via_nudge(
            self, monkeypatch):
        compiled = dc_inverter().compile()
        x0 = np.zeros(compiled.n_unknown)
        known = compiled.known_voltages(0.0)
        options = NewtonOptions()
        clean = newton_solve(compiled, x0.copy(), known, options=options,
                             sparse=True)
        with recording() as rec, FaultInjection("sparse@factorize:1") as fi:
            recovered = newton_solve(compiled, x0.copy(), known,
                                     options=options, sparse=True)
            assert fi.fired_count("sparse") == 1
        # The nudge perturbs one early step; Newton still lands on the
        # same operating point to solver tolerance.
        assert np.allclose(recovered, clean, rtol=1e-9, atol=1e-9)
        counters = rec.metrics_payload()["counters"]
        assert counters["spice.guard.rung{rung=nudge}"] >= 1

    def test_persistent_factorization_fault_fails_cleanly(self):
        compiled = dc_inverter().compile()
        x0 = np.zeros(compiled.n_unknown)
        with FaultInjection("sparse@factorize:always"):
            with pytest.raises(ConvergenceError, match="singular"):
                newton_solve(compiled, x0, compiled.known_voltages(0.0),
                             options=NewtonOptions(), sparse=True)

    def test_guarded_sparse_solve_matches_dense(self, monkeypatch):
        """Condition monitoring on the sparse backend (retained-factor
        estimate) must not perturb the solution."""
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        compiled = dc_inverter().compile()
        x0 = np.zeros(compiled.n_unknown)
        known = compiled.known_voltages(0.0)
        dense = newton_solve(compiled, x0.copy(), known,
                             options=NewtonOptions(), sparse=False)
        monitor = GuardMonitor(GuardPolicy())
        sparse = newton_solve(compiled, x0.copy(), known,
                              options=NewtonOptions(), sparse=True,
                              guard=monitor)
        assert np.allclose(sparse, dense, rtol=1e-9, atol=1e-12)
        assert monitor.worst_condition > 0.0  # the estimate actually ran


class TestDegradationReporting:
    def test_guard_aborts_appear_in_the_degradation_summary(
            self, monkeypatch):
        from repro.obs.export import degradation_summary
        monkeypatch.setenv(GUARD_ENV_VAR, "1")
        monkeypatch.setenv(WALL_ENV_VAR, "0")
        with recording() as rec:
            with pytest.raises(ConvergenceError):
                solve_dc(dc_inverter())
            summary = degradation_summary(rec)
        assert "guard aborts" in summary
        assert "watchdog" in summary

    def test_lane_evictions_appear_in_the_degradation_summary(self):
        from repro.obs.export import degradation_summary
        with recording() as rec, FaultInjection("lane@0:1"):
            transient_batch(inverter_grid(2), 1e-9, options=FAST)
            summary = degradation_summary(rec)
        assert "batch-lane evictions" in summary
        assert "fault=1" in summary

    def test_clean_run_reports_nothing(self):
        from repro.obs.export import degradation_summary
        with recording() as rec:
            transient(inverter(), 1e-9, options=FAST)
            assert degradation_summary(rec) == ""
