"""DC operating point and sweeps against analytic circuits."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.spice import Circuit, dc_sweep, solve_dc
from repro.tech import default_process


def divider(r1=1e3, r2=1e3, v=2.0) -> Circuit:
    ckt = Circuit()
    ckt.add_vsource("v1", "in", v)
    ckt.add_resistor("r1", "in", "mid", r1)
    ckt.add_resistor("r2", "mid", "0", r2)
    return ckt


class TestSolveDc:
    def test_resistor_divider(self):
        op = solve_dc(divider(1e3, 3e3, 4.0))
        assert op["mid"] == pytest.approx(3.0, rel=1e-6)

    def test_ladder(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 10.0)
        ckt.add_resistor("r1", "in", "a", 1e3)
        ckt.add_resistor("r2", "a", "b", 1e3)
        ckt.add_resistor("r3", "b", "0", 2e3)
        op = solve_dc(ckt)
        assert op["a"] == pytest.approx(7.5, rel=1e-6)
        assert op["b"] == pytest.approx(5.0, rel=1e-6)

    def test_current_source(self):
        ckt = Circuit()
        ckt.add_vsource("v1", "in", 0.0)
        ckt.add_resistor("r1", "in", "out", 1e3)
        ckt.add_isource("i1", "0", "out", 1e-3)  # 1 mA into out
        op = solve_dc(ckt)
        assert op["out"] == pytest.approx(1.0, rel=1e-5)

    def test_inverter_logic_levels(self):
        proc = default_process()
        for vin, expected in ((0.0, proc.vdd), (proc.vdd, 0.0)):
            ckt = Circuit()
            ckt.add_vsource("vvdd", "vdd", proc.vdd)
            ckt.add_vsource("vin", "in", vin)
            ckt.add_mosfet("mn", "out", "in", "0", "0", proc.nmos, 4e-6, 0.8e-6)
            ckt.add_mosfet("mp", "out", "in", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
            ckt.add_capacitor("cl", "out", "0", 1e-13)
            op = solve_dc(ckt)
            assert op["out"] == pytest.approx(expected, abs=0.01)

    def test_floating_series_stack_settles(self):
        """Both transistors off: the internal node must still solve
        (gmin pulls it to a rail ballpark, no exception)."""
        proc = default_process()
        ckt = Circuit()
        ckt.add_vsource("vvdd", "vdd", proc.vdd)
        ckt.add_vsource("va", "a", 0.0)
        ckt.add_vsource("vb", "b", 0.0)
        ckt.add_mosfet("m1", "out", "a", "mid", "0", proc.nmos, 4e-6, 0.8e-6)
        ckt.add_mosfet("m2", "mid", "b", "0", "0", proc.nmos, 4e-6, 0.8e-6)
        ckt.add_mosfet("mp1", "out", "a", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
        op = solve_dc(ckt)
        assert 0.0 <= op["mid"] <= proc.vdd + 0.1
        assert op["out"] == pytest.approx(proc.vdd, abs=0.01)

    def test_initial_guess_honoured(self):
        op = solve_dc(divider(), initial_guess={"mid": 0.9})
        assert op["mid"] == pytest.approx(1.0, rel=1e-6)


class TestDcSweep:
    def test_divider_tracks_input(self):
        ckt = divider(1e3, 1e3)
        grid = np.linspace(0.0, 4.0, 9)
        sweep = dc_sweep(ckt, "v1", grid)
        assert np.allclose(sweep.node("mid"), grid / 2.0, rtol=1e-6)

    def test_sweep_restores_source(self):
        ckt = divider(v=2.0)
        dc_sweep(ckt, "v1", np.linspace(0.0, 4.0, 5))
        op = solve_dc(ckt)
        assert op["in"] == pytest.approx(2.0)

    def test_multi_source_lockstep(self):
        proc = default_process()
        ckt = Circuit()
        ckt.add_vsource("vvdd", "vdd", proc.vdd)
        ckt.add_vsource("va", "a", 0.0)
        ckt.add_vsource("vb", "b", 0.0)
        ckt.add_mosfet("mna", "out", "a", "mid", "0", proc.nmos, 8e-6, 0.8e-6)
        ckt.add_mosfet("mnb", "mid", "b", "0", "0", proc.nmos, 8e-6, 0.8e-6)
        ckt.add_mosfet("mpa", "out", "a", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
        ckt.add_mosfet("mpb", "out", "b", "vdd", "vdd", proc.pmos, 8e-6, 0.8e-6)
        grid = np.linspace(0.0, proc.vdd, 21)
        sweep = dc_sweep(ckt, ["va", "vb"], grid, record=["out"])
        vout = sweep.node("out")
        # NAND2 VTC: monotone decreasing from ~vdd to ~0.
        assert vout[0] == pytest.approx(proc.vdd, abs=0.05)
        assert vout[-1] == pytest.approx(0.0, abs=0.05)
        assert np.all(np.diff(vout) <= 1e-6)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConvergenceError):
            dc_sweep(divider(), "v1", [1.0])

    def test_rejects_empty_sources(self):
        with pytest.raises(ConvergenceError):
            dc_sweep(divider(), [], np.linspace(0, 1, 3))

    def test_transfer_curve(self):
        sweep = dc_sweep(divider(), "v1", np.linspace(0.0, 4.0, 5))
        curve = sweep.transfer_curve("mid")
        assert curve(2.0) == pytest.approx(1.0, rel=1e-6)

    def test_missing_node_raises(self):
        from repro.errors import MeasurementError
        sweep = dc_sweep(divider(), "v1", np.linspace(0, 1, 3), record=["mid"])
        with pytest.raises(MeasurementError):
            sweep.node("nope")
