"""GateLibrary assembly, lookup fallbacks and serialization."""

import pytest

from repro.charlib import DualInputGrid, GateLibrary, SingleInputGrid
from repro.charlib.library import cached_thresholds, cached_vtc_family
from repro.errors import CharacterizationError, ModelError
from repro.models import (
    SimulatorDualInputModel,
    SimulatorSingleInputModel,
    TableDualInputModel,
    TableSingleInputModel,
)
from repro.waveform import FALL, RISE


class TestOracleMode:
    def test_all_models_present(self, oracle_library, nand3):
        for name in nand3.inputs:
            for direction in (RISE, FALL):
                model = oracle_library.single(name, direction)
                assert isinstance(model, SimulatorSingleInputModel)
        model = oracle_library.dual("a", "b", FALL)
        assert isinstance(model, SimulatorDualInputModel)
        assert len(oracle_library.dual_keys) == 12  # 6 ordered pairs x 2 dirs

    def test_missing_single_raises(self, oracle_library):
        with pytest.raises(ModelError):
            oracle_library.single("x", FALL)

    def test_oracle_not_serializable(self, oracle_library, tmp_path):
        with pytest.raises(CharacterizationError):
            oracle_library.save(tmp_path / "lib.json")


class TestTableMode:
    @pytest.fixture(scope="class")
    def table_library(self, nand2):
        return GateLibrary.characterize(
            nand2, mode="table",
            single_grid=SingleInputGrid.fast(),
            dual_grid=DualInputGrid.fast(),
            pairs="reference",
            directions=(FALL,),
        )

    def test_model_types(self, table_library):
        assert isinstance(table_library.single("a", FALL), TableSingleInputModel)
        assert isinstance(table_library.dual("a", "b", FALL), TableDualInputModel)

    def test_reference_pair_selection(self, table_library):
        # nand2: one model per reference pin.
        assert len(table_library.dual_keys) == 2

    def test_dual_sharing_fallback(self, table_library):
        """Asking for a missing ordered pair returns a shared model for
        the same reference or direction (the paper's 'n macromodels
        suffice' observation)."""
        model = table_library.dual("b", "a", FALL)
        assert model.direction == FALL

    def test_missing_direction_raises(self, table_library):
        with pytest.raises(ModelError):
            table_library.dual("a", "b", RISE)

    def test_roundtrip_save_load(self, table_library, nand2, tmp_path):
        path = tmp_path / "nand2.json"
        table_library.save(path)
        loaded = GateLibrary.load(path, nand2)
        tau = 300e-12
        assert loaded.single("a", FALL).delay(tau) == pytest.approx(
            table_library.single("a", FALL).delay(tau), rel=1e-12)
        assert loaded.thresholds.vil == pytest.approx(
            table_library.thresholds.vil)

    def test_load_rejects_wrong_topology(self, table_library, nor2, tmp_path):
        path = tmp_path / "nand2.json"
        table_library.save(path)
        with pytest.raises(CharacterizationError):
            GateLibrary.load(path, nor2)

    def test_explicit_pairs(self, nand2):
        lib = GateLibrary.characterize(
            nand2, mode="table",
            single_grid=SingleInputGrid.fast(),
            dual_grid=DualInputGrid.fast(),
            pairs=[("a", "b")],
            directions=(FALL,),
        )
        assert lib.dual_keys == [("a", "b", FALL)]

    def test_invalid_pairs_rejected(self, nand2):
        with pytest.raises(CharacterizationError):
            GateLibrary.characterize(nand2, mode="table", pairs=[("a", "a")])

    def test_unknown_mode_rejected(self, nand2):
        with pytest.raises(CharacterizationError):
            GateLibrary.characterize(nand2, mode="magic")


class TestCachedThresholds:
    def test_matches_family_selection(self, nand3):
        from repro.vtc import select_thresholds
        family = cached_vtc_family(nand3)
        thr = cached_thresholds(nand3)
        direct = select_thresholds(family, nand3.process.vdd)
        assert thr.vil == pytest.approx(direct.vil)
        assert thr.vih == pytest.approx(direct.vih)

    def test_family_has_all_subsets(self, nand3):
        assert len(cached_vtc_family(nand3)) == 7
