"""The characterization cache: keys, hits, corruption, disabling."""

import json

import numpy as np
import pytest

from repro.charlib.cache import CharacterizationCache
from repro.errors import CharacterizationError


@pytest.fixture
def cache(tmp_path):
    return CharacterizationCache(tmp_path)


class TestBasics:
    def test_miss_then_hit(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        # "k" has no REQUIRED_PAYLOAD_KEYS contract, so any dict is a hit.
        key = {"gate": "nand3", "tau": 1e-10}
        assert cache.get_or_compute("k", key, compute) == {"value": 42}
        assert cache.get_or_compute("k", key, compute) == {"value": 42}
        assert len(calls) == 1

    def test_different_keys_different_entries(self, cache):
        cache.store("k", {"x": 1}, {"v": 1})
        cache.store("k", {"x": 2}, {"v": 2})
        assert cache.load("k", {"x": 1}) == {"v": 1}
        assert cache.load("k", {"x": 2}) == {"v": 2}

    def test_kind_separates_namespaces(self, cache):
        cache.store("single", {"x": 1}, {"v": "s"})
        assert cache.load("dual", {"x": 1}) is None

    def test_key_order_irrelevant(self, cache):
        cache.store("k", {"a": 1, "b": 2}, {"v": 9})
        assert cache.load("k", {"b": 2, "a": 1}) == {"v": 9}

    def test_numpy_values_in_keys_and_payloads(self, cache):
        key = {"tau": np.float64(1e-10), "grid": np.array([1.0, 2.0])}
        cache.store("k", key, {"table": np.array([1.0, 2.0])})
        loaded = cache.load("k", key)
        assert loaded == {"table": [1.0, 2.0]}

    def test_unserializable_key_raises(self, cache):
        with pytest.raises(CharacterizationError):
            cache.load("k", {"fn": object()})


class TestRobustness:
    def test_corrupt_entry_is_miss(self, cache, tmp_path):
        key = {"x": 1}
        cache.store("k", key, {"v": 1})
        (path,) = list(tmp_path.glob("k-*.json"))
        path.write_text("{ not json")
        assert cache.load("k", key) is None
        # get_or_compute recovers by recomputing and rewriting.
        assert cache.get_or_compute("k", key, lambda: {"v": 2}) == {"v": 2}
        assert cache.load("k", key) == {"v": 2}

    def test_atomic_write_leaves_no_tmp(self, cache, tmp_path):
        cache.store("k", {"x": 1}, {"v": 1})
        assert not list(tmp_path.glob("*.tmp"))

    def test_disabled_by_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        cache = CharacterizationCache()
        assert not cache.enabled
        calls = []
        cache.get_or_compute("k", {"x": 1}, lambda: calls.append(1) or {"v": 1})
        cache.get_or_compute("k", {"x": 1}, lambda: calls.append(1) or {"v": 1})
        assert len(calls) == 2

    def test_env_directory(self, monkeypatch, tmp_path):
        target = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
        cache = CharacterizationCache()
        cache.store("k", {"x": 1}, {"v": 1})
        assert target.exists()
        assert list(target.glob("k-*.json"))


class TestConcurrency:
    def test_concurrent_stores_of_same_key(self, cache, tmp_path):
        """Regression: the old fixed ``.tmp`` staging name let two
        concurrent writers interleave into one half-written temp file.
        Hammer one key from many threads; the surviving entry must be a
        complete payload from *some* writer and no temp litter remains."""
        from concurrent.futures import ThreadPoolExecutor

        key = {"gate": "nand3", "grid": "fast"}
        payloads = [{"writer": i, "table": list(range(200))} for i in range(8)]

        def write(payload):
            for _ in range(25):
                cache.store("dual", key, payload)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, payloads))

        loaded = cache.load("dual", key)
        assert loaded is not None
        assert loaded in payloads
        assert not list(tmp_path.glob("*.tmp"))

    def test_store_failure_cleans_up_temp(self, cache, tmp_path):
        with pytest.raises(TypeError):
            cache.store("k", {"x": 1}, {"bad": object()})
        assert not list(tmp_path.glob("*.tmp"))


class TestDefaultCache:
    def test_reresolves_on_env_change(self, monkeypatch, tmp_path):
        """Regression: the memoized instance used to ignore later
        ``REPRO_CACHE_DIR`` changes, breaking test isolation."""
        from repro.charlib.cache import default_cache, reset_default_cache

        reset_default_cache()
        try:
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "one"))
            first = default_cache()
            assert first.directory == tmp_path / "one"
            assert default_cache() is first  # stable while env unchanged

            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "two"))
            second = default_cache()
            assert second is not first
            assert second.directory == tmp_path / "two"

            monkeypatch.setenv("REPRO_CACHE_DIR", "off")
            assert not default_cache().enabled
        finally:
            reset_default_cache()

    def test_reset_hook(self, monkeypatch, tmp_path):
        from repro.charlib.cache import default_cache, reset_default_cache

        reset_default_cache()
        try:
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
            first = default_cache()
            reset_default_cache()
            second = default_cache()
            assert second is not first
            assert second.directory == first.directory
        finally:
            reset_default_cache()
