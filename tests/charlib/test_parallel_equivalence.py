"""Parallel-vs-serial equivalence of the characterization hot paths.

The contract of :mod:`repro.parallel` is that a worker count never
changes results: characterization tables, oracle memos and experiment
statistics must be *bit-identical* between ``workers=0`` (serial) and a
real process-pool fan-out.  Each test here computes the same artifact
both ways into independent cache directories and compares exactly.
"""

import numpy as np
import pytest

from repro.charlib.cache import CharacterizationCache
from repro.charlib.dual import DualInputGrid, characterize_dual_input
from repro.charlib.single import SingleInputGrid, characterize_single_input


@pytest.fixture
def tiny_dual_grid():
    return DualInputGrid(
        tau_refs=(100e-12, 800e-12), a2=(0.5, 2.0), a3=(-1.0, 0.5),
    )


class TestCharacterizationEquivalence:
    def test_dual_table_bit_identical(self, nand2, thresholds, tiny_dual_grid,
                                      tmp_path):
        serial = characterize_dual_input(
            nand2, "a", "b", "fall", thresholds, grid=tiny_dual_grid,
            cache=CharacterizationCache(tmp_path / "serial"), workers=0,
        )
        parallel = characterize_dual_input(
            nand2, "a", "b", "fall", thresholds, grid=tiny_dual_grid,
            cache=CharacterizationCache(tmp_path / "parallel"), workers=2,
        )
        for axis_s, axis_p in zip(serial.axes, parallel.axes):
            assert np.array_equal(axis_s, axis_p)
        assert np.array_equal(serial._delay_table, parallel._delay_table)
        assert np.array_equal(serial._ttime_table, parallel._ttime_table)

    def test_single_table_bit_identical(self, nand2, thresholds, tmp_path):
        grid = SingleInputGrid(taus=(100e-12, 500e-12, 1500e-12),
                               load_factors=(1.0,))
        serial = characterize_single_input(
            nand2, "a", "fall", thresholds, grid=grid,
            cache=CharacterizationCache(tmp_path / "serial"), workers=0,
        )
        parallel = characterize_single_input(
            nand2, "a", "fall", thresholds, grid=grid,
            cache=CharacterizationCache(tmp_path / "parallel"), workers=2,
        )
        assert np.array_equal(serial._u, parallel._u)
        assert np.array_equal(serial._d, parallel._d)
        assert np.array_equal(serial._t, parallel._t)


class TestOraclePrefetch:
    def test_prefetch_fills_memo_identically(self, nand3, thresholds):
        from repro.models.dual import SimulatorDualInputModel

        queries = [
            (200e-12, 300e-12, 50e-12),
            (400e-12, 200e-12, -100e-12),
            (200e-12, 300e-12, 50e-12),  # duplicate: one sim only
        ]
        prefetched = SimulatorDualInputModel(nand3, "a", "b", "fall",
                                             thresholds)
        fresh = prefetched.prefetch(queries, workers=2)
        assert fresh == 2
        assert len(prefetched._memo) == 2
        # A second prefetch of the same batch is a no-op.
        assert prefetched.prefetch(queries, workers=2) == 0

        on_demand = SimulatorDualInputModel(nand3, "a", "b", "fall",
                                            thresholds)
        for tau_ref, tau_other, sep in queries:
            assert (prefetched.delay_ratio(tau_ref, tau_other, sep,
                                           delta1=1e-10)
                    == on_demand.delay_ratio(tau_ref, tau_other, sep,
                                             delta1=1e-10))
            assert (prefetched.ttime_ratio(tau_ref, tau_other, sep,
                                           tau1=1e-10, delta1=1e-10)
                    == on_demand.ttime_ratio(tau_ref, tau_other, sep,
                                             tau1=1e-10, delta1=1e-10))
        # The prefetched model never simulated on demand.
        assert len(prefetched._memo) == 2


class TestExperimentEquivalence:
    def test_table5_1_population_bit_identical(self):
        from repro.experiments import table5_1

        serial = table5_1.run(n_configs=3, seed=123, workers=0)
        parallel = table5_1.run(n_configs=3, seed=123, workers=2)
        assert serial.delay_errors == parallel.delay_errors
        assert serial.ttime_errors == parallel.ttime_errors
        for case_s, case_p in zip(serial.cases, parallel.cases):
            assert case_s == case_p
