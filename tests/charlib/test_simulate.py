"""Stimulus construction and response measurement."""

import pytest

from repro.charlib.simulate import (
    estimate_settle_time,
    multi_input_response,
    single_input_response,
)
from repro.errors import MeasurementError
from repro.waveform import Edge, FALL, RISE


class TestSingleInput:
    def test_falling_input_rising_output(self, nand3, thresholds):
        shot = single_input_response(nand3, "a", FALL, 500e-12, thresholds)
        assert shot.delay > 0.0
        assert shot.out_ttime > 0.0
        assert shot.output.final_value() == pytest.approx(5.0, abs=0.05)

    def test_rising_input_falling_output(self, nand3, thresholds):
        shot = single_input_response(nand3, "a", RISE, 500e-12, thresholds)
        assert shot.delay > 0.0
        assert shot.output.final_value() == pytest.approx(0.0, abs=0.05)

    def test_delay_monotone_in_tau(self, nand3, thresholds):
        """The paper's chosen thresholds give delay monotonically
        increasing with input transition time."""
        delays = [
            single_input_response(nand3, "a", FALL, tau, thresholds).delay
            for tau in (100e-12, 400e-12, 1200e-12)
        ]
        assert delays[0] < delays[1] < delays[2]

    def test_positive_delay_for_very_slow_input(self, nand3, thresholds):
        """Section 2's whole point: even a 5 ns ramp yields positive delay."""
        shot = single_input_response(nand3, "a", FALL, 5e-9, thresholds)
        assert shot.delay > 0.0

    def test_delay_grows_with_load(self, nand3, thresholds):
        d_small = single_input_response(
            nand3, "a", FALL, 300e-12, thresholds, load=50e-15).delay
        d_large = single_input_response(
            nand3, "a", FALL, 300e-12, thresholds, load=200e-15).delay
        assert d_large > d_small

    def test_stack_position_affects_delay(self, nand3, thresholds):
        """Input nearest ground discharges through the full stack: the
        three pins have distinct single-input delays."""
        delays = {
            name: single_input_response(nand3, name, FALL, 500e-12, thresholds).delay
            for name in "abc"
        }
        assert len({round(d * 1e15) for d in delays.values()}) == 3


class TestMultiInput:
    def test_two_falling_inputs_speed_up_output(self, nand3, thresholds):
        lone = single_input_response(nand3, "b", FALL, 500e-12, thresholds)
        edges = {
            "b": Edge(FALL, 0.0, 500e-12),
            "a": Edge(FALL, 0.0, 500e-12),
        }
        both = multi_input_response(nand3, edges, thresholds, reference="b")
        assert both.delay < lone.delay

    def test_far_separation_matches_single(self, nand3, thresholds):
        lone = single_input_response(nand3, "a", FALL, 300e-12, thresholds)
        edges = {
            "a": Edge(FALL, 0.0, 300e-12),
            "b": Edge(FALL, 3e-9, 300e-12),  # far outside the window
        }
        both = multi_input_response(nand3, edges, thresholds, reference="a")
        assert both.delay == pytest.approx(lone.delay, rel=0.02)

    def test_reference_defaults_to_earliest(self, nand3, thresholds):
        edges = {
            "a": Edge(FALL, 100e-12, 300e-12),
            "b": Edge(FALL, 0.0, 300e-12),
        }
        shot = multi_input_response(nand3, edges, thresholds)
        assert shot.reference == "b"

    def test_empty_edges_rejected(self, nand3, thresholds):
        with pytest.raises(MeasurementError):
            multi_input_response(nand3, {}, thresholds)

    def test_unknown_input_rejected(self, nand3, thresholds):
        with pytest.raises(MeasurementError):
            multi_input_response(
                nand3, {"x": Edge(FALL, 0.0, 1e-10)}, thresholds)

    def test_vmin_vmax_recorded(self, nand3, thresholds):
        edges = {"a": Edge(FALL, 0.0, 300e-12)}
        shot = multi_input_response(nand3, edges, thresholds)
        assert shot.vmin <= shot.vmax
        assert shot.vmax == pytest.approx(5.0, abs=0.1)


class TestSettleEstimate:
    def test_scales_with_load(self, nand3):
        assert estimate_settle_time(nand3, 200e-15) > estimate_settle_time(
            nand3, 50e-15)

    def test_positive(self, nand3):
        assert estimate_settle_time(nand3, 100e-15) > 0.0
