"""Dual-input characterization (eq. 3.11/3.12 tables)."""

import pytest

from repro.charlib import CharacterizationCache, DualInputGrid
from repro.charlib.dual import characterize_dual_input
from repro.charlib.simulate import multi_input_response, single_input_response
from repro.errors import CharacterizationError
from repro.waveform import Edge, FALL


@pytest.fixture(scope="module")
def env():
    from repro.gates import Gate
    from repro.tech import default_process
    from repro.charlib.library import cached_thresholds

    gate = Gate.nand(3, default_process(), load=100e-15)
    return gate, cached_thresholds(gate)


@pytest.fixture(scope="module")
def tmp_cache(tmp_path_factory):
    return CharacterizationCache(tmp_path_factory.mktemp("dualcache"))


@pytest.fixture(scope="module")
def model(env, tmp_cache):
    gate, thresholds = env
    return characterize_dual_input(
        gate, "a", "b", FALL, thresholds,
        grid=DualInputGrid.fast(), cache=tmp_cache,
    )


class TestGrid:
    def test_validation(self):
        with pytest.raises(CharacterizationError):
            DualInputGrid(tau_refs=(1e-10,))
        with pytest.raises(CharacterizationError):
            DualInputGrid(a2=(1.0, 0.5))  # not increasing
        with pytest.raises(CharacterizationError):
            DualInputGrid(a3=(0.0,))

    def test_point_count(self):
        grid = DualInputGrid.fast()
        assert grid.n_points == len(grid.tau_refs) * len(grid.a2) * len(grid.a3)


class TestCharacterization:
    def test_same_pin_rejected(self, env, tmp_cache):
        gate, thresholds = env
        with pytest.raises(CharacterizationError):
            characterize_dual_input(gate, "a", "a", FALL, thresholds,
                                    cache=tmp_cache)

    def test_unknown_pin_rejected(self, env, tmp_cache):
        gate, thresholds = env
        with pytest.raises(CharacterizationError):
            characterize_dual_input(gate, "a", "x", FALL, thresholds,
                                    cache=tmp_cache)

    def test_far_separation_ratio_is_one(self, model, env):
        """Beyond the proximity window the dual model must return the
        single-input delay (ratio 1)."""
        gate, thresholds = env
        tau = 400e-12
        single = single_input_response(gate, "a", FALL, tau, thresholds)
        ratio = model.delay_ratio(tau, 200e-12, sep=1.2 * single.delay,
                                  delta1=single.delay)
        assert ratio == pytest.approx(1.0, abs=0.06)

    def test_close_separation_speeds_up(self, model, env):
        gate, thresholds = env
        tau = 400e-12
        single = single_input_response(gate, "a", FALL, tau, thresholds)
        ratio = model.delay_ratio(tau, 200e-12, sep=0.0, delta1=single.delay)
        assert ratio < 0.95

    def test_interpolation_against_simulation(self, model, env):
        """Query an off-grid point and compare with a fresh simulation."""
        gate, thresholds = env
        tau_ref, tau_other, sep = 350e-12, 260e-12, 40e-12
        single = single_input_response(gate, "a", FALL, tau_ref, thresholds)
        edges = {
            "a": Edge(FALL, 0.0, tau_ref),
            "b": Edge(FALL, sep, tau_other),
        }
        shot = multi_input_response(gate, edges, thresholds, reference="a")
        predicted = model.delay_ratio(tau_ref, tau_other, sep,
                                      delta1=single.delay) * single.delay
        assert predicted == pytest.approx(shot.delay, rel=0.12)

    def test_ttime_ratio_positive(self, model, env):
        gate, thresholds = env
        tau = 400e-12
        single = single_input_response(gate, "a", FALL, tau, thresholds)
        ratio = model.ttime_ratio(tau, 200e-12, sep=0.0,
                                  tau1=single.out_ttime, delta1=single.delay)
        assert 0.0 < ratio <= 1.2

    def test_cache_hit_is_fast(self, env, tmp_cache):
        import time
        gate, thresholds = env
        t0 = time.time()
        characterize_dual_input(
            gate, "a", "b", FALL, thresholds,
            grid=DualInputGrid.fast(), cache=tmp_cache,
        )
        assert time.time() - t0 < 0.5
