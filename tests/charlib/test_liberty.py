"""Liberty (NLDM) export."""

import pytest

from repro.charlib import (
    DualInputGrid,
    GateLibrary,
    SingleInputGrid,
    to_liberty,
    write_liberty,
)
from repro.errors import CharacterizationError


@pytest.fixture(scope="module")
def table_library(nand2_m):
    return GateLibrary.characterize(
        nand2_m, mode="table",
        single_grid=SingleInputGrid.fast(),
        dual_grid=DualInputGrid.fast(),
        pairs="reference",
    )


@pytest.fixture(scope="module")
def nand2_m():
    from repro.gates import Gate
    from repro.tech import default_process
    return Gate.nand(2, default_process(), load=100e-15)


@pytest.fixture(scope="module")
def lib_text(table_library):
    return to_liberty(table_library)


class TestStructure:
    def test_header(self, lib_text):
        assert lib_text.startswith("library (repro_lib)")
        assert 'time_unit : "1ns";' in lib_text
        assert "lu_table_template" in lib_text

    def test_cell_and_pins(self, lib_text):
        assert "cell (nand2)" in lib_text
        assert "pin (A)" in lib_text and "pin (B)" in lib_text
        assert "pin (Z)" in lib_text

    def test_logic_function(self, lib_text):
        assert 'function : "!(A*B)"' in lib_text

    def test_timing_arcs_per_input(self, lib_text):
        assert lib_text.count('related_pin : "A"') == 1
        assert lib_text.count('related_pin : "B"') == 1
        assert "negative_unate" in lib_text
        for kw in ("cell_rise", "cell_fall", "rise_transition",
                   "fall_transition"):
            assert lib_text.count(kw) >= 2

    def test_input_capacitance_positive(self, lib_text):
        for line in lib_text.splitlines():
            if "capacitance :" in line and "load" not in line:
                value = float(line.split(":")[1].strip(" ;"))
                assert value > 0.0


class TestValues:
    def test_delay_values_match_model(self, table_library, lib_text):
        """Spot-check one NLDM cell against the model it was sampled
        from: slowest slew, largest load, input A falling (cell_rise)."""
        model = table_library.single("a", "fall")
        expected_ns = model.delay(2000e-12, 200e-15) * 1e9
        assert f"{expected_ns:.5f}" in lib_text

    def test_monotone_in_load(self, table_library):
        text = to_liberty(table_library, slews=[300e-12],
                          loads=[50e-15, 100e-15, 200e-15])
        # The single cell_rise row must increase along the load axis.
        lines = text.splitlines()
        idx = next(i for i, line in enumerate(lines) if "cell_rise" in line)
        row = next(line for line in lines[idx:] if line.strip().startswith('"'))
        values = [float(v) for v in row.strip().strip('"\\ ').strip('"').split(",")]
        assert values[0] < values[1] < values[2]


class TestErrorsAndIo:
    def test_oracle_library_rejected(self, oracle_library):
        with pytest.raises(CharacterizationError):
            to_liberty(oracle_library)

    def test_write_liberty(self, table_library, tmp_path):
        path = tmp_path / "nand2.lib"
        write_liberty(table_library, path, library_name="mylib")
        text = path.read_text()
        assert text.startswith("library (mylib)")
