"""Batched-vs-scalar equivalence of the characterization sweeps.

The batched grid path (``batch``/``REPRO_BATCH``) chunks sweep points
through the vectorized lockstep kernel instead of one transient per
point.  Its contract mirrors the worker-count contract: tables are
*bit-identical* to the scalar sweep for any batch size, failures degrade
to the same NaN cells and health records, and the per-point journal
stays interoperable between the two modes.
"""

import numpy as np
import pytest

from repro.charlib.cache import CharacterizationCache
from repro.charlib.dual import DualInputGrid, characterize_dual_input
from repro.charlib.single import SingleInputGrid, characterize_single_input
from repro.resilience.faults import FaultInjection

SINGLE_GRID = SingleInputGrid(taus=(100e-12, 500e-12, 1500e-12),
                              load_factors=(1.0,))

DUAL_GRID = DualInputGrid(tau_refs=(100e-12, 800e-12), a2=(0.5, 2.0),
                          a3=(-1.0, 0.5))


def single(nand2, thresholds, directory, **kwargs):
    return characterize_single_input(
        nand2, "a", "fall", thresholds, grid=SINGLE_GRID,
        cache=CharacterizationCache(directory), **kwargs,
    )


def dual(nand2, thresholds, directory, **kwargs):
    return characterize_dual_input(
        nand2, "a", "b", "fall", thresholds, grid=DUAL_GRID,
        cache=CharacterizationCache(directory), **kwargs,
    )


class TestBatchedEquivalence:
    @pytest.mark.parametrize("batch", [2, 8])
    def test_single_table_bit_identical(self, nand2, thresholds, tmp_path,
                                        batch):
        """Batch 2 leaves a ragged final chunk; batch 8 exceeds the
        3-point sweep, exercising the single-chunk path."""
        scalar = single(nand2, thresholds, tmp_path / "scalar", batch=0)
        batched = single(nand2, thresholds, tmp_path / "batched", batch=batch)
        assert np.array_equal(scalar._u, batched._u)
        assert np.array_equal(scalar._d, batched._d)
        assert np.array_equal(scalar._t, batched._t)
        assert scalar.c_par == batched.c_par

    def test_dual_table_bit_identical(self, nand2, thresholds, tmp_path):
        scalar = dual(nand2, thresholds, tmp_path / "scalar", batch=0)
        batched = dual(nand2, thresholds, tmp_path / "batched", batch=3)
        for axis_s, axis_b in zip(scalar.axes, batched.axes):
            assert np.array_equal(axis_s, axis_b)
        assert np.array_equal(scalar._delay_table, batched._delay_table)
        assert np.array_equal(scalar._ttime_table, batched._ttime_table)

    def test_batch_composes_with_workers(self, nand2, thresholds, tmp_path):
        scalar = single(nand2, thresholds, tmp_path / "scalar")
        pooled = single(nand2, thresholds, tmp_path / "pooled",
                        batch=2, workers=2)
        assert np.array_equal(scalar._u, pooled._u)
        assert np.array_equal(scalar._d, pooled._d)
        assert np.array_equal(scalar._t, pooled._t)

    def test_env_var_selects_batched_path(self, nand2, thresholds, tmp_path,
                                          monkeypatch):
        scalar = single(nand2, thresholds, tmp_path / "scalar")
        monkeypatch.setenv("REPRO_BATCH", "4")
        batched = single(nand2, thresholds, tmp_path / "env")
        assert np.array_equal(scalar._u, batched._u)
        assert np.array_equal(scalar._d, batched._d)


class TestBatchedDegradation:
    def test_failed_point_matches_scalar_record(self, nand2, thresholds,
                                                tmp_path):
        """An injected point fault produces the same NaN cell and the
        same health record (kind, message, coords) in both modes, and
        chunk-mates of the failed point survive untouched."""
        with FaultInjection("point@single/1:always"):
            scalar = single(nand2, thresholds, tmp_path / "scalar")
        with FaultInjection("point@single/1:always"):
            batched = single(nand2, thresholds, tmp_path / "batched", batch=3)
        assert np.array_equal(scalar._u, batched._u)
        assert np.array_equal(scalar._d, batched._d)
        assert len(batched.health.failed) == 1
        s_rec, b_rec = scalar.health.failed[0], batched.health.failed[0]
        assert (s_rec.index, s_rec.kind, s_rec.message, s_rec.coords) == \
            (b_rec.index, b_rec.kind, b_rec.message, b_rec.coords)

    def test_resume_repairs_batched_sweep_scalar(self, nand2, thresholds,
                                                 tmp_path, monkeypatch):
        """A sweep degraded under batching resumes scalar (or any other
        batch size): the journal holds its completed points."""
        cache_dir = tmp_path / "cache"
        with FaultInjection("point@single/1:always"):
            degraded = single(nand2, thresholds, cache_dir, batch=3)
        assert len(degraded.health.failed) == 1

        monkeypatch.setenv("REPRO_RESUME", "1")
        repaired = single(nand2, thresholds, cache_dir)
        assert len(repaired.health.failed) == 0

        clean = single(nand2, thresholds, tmp_path / "clean")
        assert np.array_equal(repaired._u, clean._u)
        assert np.array_equal(repaired._d, clean._d)
        assert np.array_equal(repaired._t, clean._t)

    def test_dual_failed_cell_matches_scalar(self, nand2, thresholds,
                                             tmp_path):
        with FaultInjection("point@dual/3:always"):
            scalar = dual(nand2, thresholds, tmp_path / "scalar")
        with FaultInjection("point@dual/3:always"):
            batched = dual(nand2, thresholds, tmp_path / "batched", batch=4)
        assert np.array_equal(scalar._delay_table, batched._delay_table)
        assert np.array_equal(scalar._ttime_table, batched._ttime_table)
        assert len(batched.health.failed) == 1
        s_rec, b_rec = scalar.health.failed[0], batched.health.failed[0]
        assert (s_rec.index, s_rec.kind, s_rec.message) == \
            (b_rec.index, b_rec.kind, b_rec.message)
