"""Single-input characterization (eq. 3.7/3.8 tables)."""

import numpy as np
import pytest

from repro.charlib import CharacterizationCache, SingleInputGrid
from repro.charlib.single import characterize_single_input, drive_strength
from repro.errors import CharacterizationError
from repro.waveform import FALL, RISE


@pytest.fixture(scope="module")
def model(nand3_m, thresholds_m, tmp_cache):
    return characterize_single_input(
        nand3_m, "a", FALL, thresholds_m,
        grid=SingleInputGrid.fast(), cache=tmp_cache,
    )


@pytest.fixture(scope="module")
def nand3_m():
    from repro.gates import Gate
    from repro.tech import default_process
    return Gate.nand(3, default_process(), load=100e-15)


@pytest.fixture(scope="module")
def thresholds_m(nand3_m):
    from repro.charlib.library import cached_thresholds
    return cached_thresholds(nand3_m)


@pytest.fixture(scope="module")
def tmp_cache(tmp_path_factory):
    return CharacterizationCache(tmp_path_factory.mktemp("charcache"))


class TestGrid:
    def test_default_covers_paper_range(self):
        grid = SingleInputGrid()
        assert min(grid.taus) <= 50e-12
        assert max(grid.taus) >= 2000e-12

    def test_validation(self):
        with pytest.raises(CharacterizationError):
            SingleInputGrid(taus=())
        with pytest.raises(CharacterizationError):
            SingleInputGrid(load_factors=(0.0,))

    def test_key_is_json_friendly(self):
        key = SingleInputGrid.fast().key()
        assert isinstance(key["taus"], list)


class TestDriveStrength:
    def test_rising_input_uses_nmos(self, nand3_m):
        assert drive_strength(nand3_m, "a", RISE) == pytest.approx(
            nand3_m.strength_n("a"))

    def test_falling_input_uses_pmos(self, nand3_m):
        assert drive_strength(nand3_m, "a", FALL) == pytest.approx(
            nand3_m.strength_p("a"))


class TestCharacterization:
    def test_model_matches_simulation_at_grid_points(self, model, nand3_m,
                                                     thresholds_m):
        from repro.charlib.simulate import single_input_response
        for tau in (100e-12, 700e-12):
            shot = single_input_response(nand3_m, "a", FALL, tau, thresholds_m)
            assert model.delay(tau) == pytest.approx(shot.delay, rel=0.05)
            assert model.ttime(tau) == pytest.approx(shot.out_ttime, rel=0.08)

    def test_delay_monotone_in_tau(self, model):
        taus = np.geomspace(60e-12, 1800e-12, 12)
        delays = [model.delay(float(t)) for t in taus]
        assert all(d2 > d1 for d1, d2 in zip(delays, delays[1:]))

    def test_load_transfer_through_drive_factor(self, model, nand3_m,
                                                thresholds_m):
        """Dimensional analysis: a table built at one load answers
        queries at other loads through u = C_L/(K Vdd tau)."""
        from repro.charlib.simulate import single_input_response
        tau = 400e-12
        for load in (60e-15, 150e-15):
            shot = single_input_response(
                nand3_m, "a", FALL, tau, thresholds_m, load=load)
            assert model.delay(tau, load) == pytest.approx(shot.delay, rel=0.10)

    def test_cached_second_call_is_instant(self, nand3_m, thresholds_m, tmp_cache):
        import time
        t0 = time.time()
        characterize_single_input(
            nand3_m, "a", FALL, thresholds_m,
            grid=SingleInputGrid.fast(), cache=tmp_cache,
        )
        assert time.time() - t0 < 0.5

    def test_unknown_input_rejected(self, nand3_m, thresholds_m, tmp_cache):
        with pytest.raises(CharacterizationError):
            characterize_single_input(
                nand3_m, "x", FALL, thresholds_m, cache=tmp_cache)


class TestMergeDuplicates:
    def test_duplicates_averaged(self):
        from repro.charlib.single import _merge_duplicates
        u = np.array([1.0, 2.0, 2.0, 3.0])
        d = np.array([10.0, 20.0, 22.0, 30.0])
        t = np.array([1.0, 2.0, 4.0, 3.0])
        mu, md, mt = _merge_duplicates(u, d, t)
        assert np.allclose(mu, [1.0, 2.0, 3.0])
        assert np.allclose(md, [10.0, 21.0, 30.0])
        assert np.allclose(mt, [1.0, 3.0, 3.0])

    def test_unsorted_input_sorted(self):
        from repro.charlib.single import _merge_duplicates
        u = np.array([3.0, 1.0, 2.0])
        d = np.array([30.0, 10.0, 20.0])
        t = np.array([3.0, 1.0, 2.0])
        mu, md, mt = _merge_duplicates(u, d, t)
        assert np.allclose(mu, [1.0, 2.0, 3.0])
        assert np.allclose(md, [10.0, 20.0, 30.0])
