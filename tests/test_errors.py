"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    CharacterizationError,
    ConvergenceError,
    MeasurementError,
    ModelError,
    NetlistError,
    ReproError,
    TimingError,
    UnitError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        UnitError, NetlistError, ConvergenceError, MeasurementError,
        CharacterizationError, ModelError, TimingError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_value_errors_catchable_as_value_error(self):
        for exc_type in (UnitError, NetlistError, MeasurementError,
                         ModelError, TimingError):
            assert issubclass(exc_type, ValueError)

    def test_runtime_errors(self):
        assert issubclass(ConvergenceError, RuntimeError)
        assert issubclass(CharacterizationError, RuntimeError)

    def test_single_except_catches_library_failures(self):
        with pytest.raises(ReproError):
            raise ConvergenceError("solver died")
        with pytest.raises(ReproError):
            raise UnitError("bad quantity")


class TestConvergenceErrorPayload:
    def test_diagnostics_attached(self):
        exc = ConvergenceError("no luck", iterations=42, residual=1e-3)
        assert exc.iterations == 42
        assert exc.residual == pytest.approx(1e-3)
        assert "no luck" in str(exc)

    def test_defaults(self):
        exc = ConvergenceError("plain")
        assert exc.iterations is None
        assert exc.residual is None
