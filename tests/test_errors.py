"""Exception hierarchy contracts."""

import pickle

import pytest

from repro.errors import (
    CharacterizationError,
    ConvergenceError,
    MeasurementError,
    ModelError,
    NetlistError,
    ReproError,
    TaskError,
    TimingError,
    UnitError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        UnitError, NetlistError, ConvergenceError, MeasurementError,
        CharacterizationError, ModelError, TimingError, TaskError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_value_errors_catchable_as_value_error(self):
        for exc_type in (UnitError, NetlistError, MeasurementError,
                         ModelError, TimingError):
            assert issubclass(exc_type, ValueError)

    def test_runtime_errors(self):
        assert issubclass(ConvergenceError, RuntimeError)
        assert issubclass(CharacterizationError, RuntimeError)

    def test_single_except_catches_library_failures(self):
        with pytest.raises(ReproError):
            raise ConvergenceError("solver died")
        with pytest.raises(ReproError):
            raise UnitError("bad quantity")


class TestConvergenceErrorPayload:
    def test_diagnostics_attached(self):
        exc = ConvergenceError("no luck", iterations=42, residual=1e-3)
        assert exc.iterations == 42
        assert exc.residual == pytest.approx(1e-3)
        assert "no luck" in str(exc)

    def test_defaults(self):
        exc = ConvergenceError("plain")
        assert exc.iterations is None
        assert exc.residual is None

    def test_pickle_round_trip_preserves_diagnostics(self):
        """Regression: the keyword-only ``iterations``/``residual``
        payload used to be dropped when the exception crossed a
        process-pool boundary (pickle reconstructs from ``args`` only,
        so the diagnostics reset to None)."""
        exc = ConvergenceError("no luck", iterations=17, residual=2.5e-4)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, ConvergenceError)
        assert str(clone) == str(exc)
        assert clone.iterations == 17
        assert clone.residual == pytest.approx(2.5e-4)

    def test_pickle_round_trip_with_defaults(self):
        clone = pickle.loads(pickle.dumps(ConvergenceError("plain")))
        assert clone.iterations is None
        assert clone.residual is None

    def test_diagnostics_survive_a_real_worker_boundary(self):
        """The original failure mode end-to-end: a worker raising
        ConvergenceError must deliver its diagnostics to the parent."""
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_raise_convergence_error)
            exc = future.exception()
        assert isinstance(exc, ConvergenceError)
        assert exc.iterations == 60
        assert exc.residual == pytest.approx(1e-2)


def _raise_convergence_error():
    raise ConvergenceError("worker solve failed", iterations=60, residual=1e-2)
