"""Dominant-input identification (paper Section 3)."""

import pytest

from repro.core import alone_crossing, dominance_crossover, order_by_dominance
from repro.errors import ModelError
from repro.waveform import Edge, FALL


class TestAloneCrossing:
    def test_sum(self):
        edge = Edge(FALL, 1e-10, 2e-10)
        assert alone_crossing(edge, 3e-10) == pytest.approx(4e-10)


class TestOrdering:
    def test_paper_scenario_late_fast_input_dominates(self):
        """Figure 3-2: slow 'a' arrives first, fast 'b' a little later;
        b's alone-output crossing is earlier, so b is dominant."""
        edges = {
            "a": Edge(FALL, 0.0, 500e-12),
            "b": Edge(FALL, 50e-12, 100e-12),
        }
        delta1 = {"a": 300e-12, "b": 120e-12}
        # b crosses at 50+120=170ps < a at 0+300=300ps.
        assert order_by_dominance(edges, delta1) == ["b", "a"]

    def test_crossover_flips_dominance(self):
        delta1 = {"a": 300e-12, "b": 120e-12}
        crossover = dominance_crossover(delta1["a"], delta1["b"])
        assert crossover == pytest.approx(180e-12)
        for sep, expected in ((170e-12, "b"), (190e-12, "a")):
            edges = {
                "a": Edge(FALL, 0.0, 500e-12),
                "b": Edge(FALL, sep, 100e-12),
            }
            assert order_by_dominance(edges, delta1)[0] == expected

    def test_ties_break_by_arrival_then_name(self):
        edges = {
            "a": Edge(FALL, 10e-12, 100e-12),
            "b": Edge(FALL, 0.0, 100e-12),
        }
        delta1 = {"a": 100e-12, "b": 110e-12}  # same alone crossing
        assert order_by_dominance(edges, delta1) == ["b", "a"]

        edges_same = {
            "a": Edge(FALL, 0.0, 100e-12),
            "b": Edge(FALL, 0.0, 100e-12),
        }
        delta1_same = {"a": 100e-12, "b": 100e-12}
        assert order_by_dominance(edges_same, delta1_same) == ["a", "b"]

    def test_three_inputs_sorted(self):
        edges = {
            "a": Edge(FALL, 0.0, 100e-12),
            "b": Edge(FALL, -100e-12, 100e-12),
            "c": Edge(FALL, 200e-12, 100e-12),
        }
        delta1 = {"a": 250e-12, "b": 260e-12, "c": 240e-12}
        # crossings: a=250, b=160, c=440.
        assert order_by_dominance(edges, delta1) == ["b", "a", "c"]

    def test_missing_delta_raises(self):
        edges = {"a": Edge(FALL, 0.0, 1e-10)}
        with pytest.raises(ModelError):
            order_by_dominance(edges, {})

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            order_by_dominance({}, {})


class TestAgainstSimulation:
    def test_dominant_input_predicts_output_crossing(self, nand3, thresholds,
                                                     oracle_library):
        """The dominant input's alone-crossing approximates the real
        two-input output crossing better than the other input's."""
        from repro.charlib.simulate import multi_input_response

        tau_a, tau_b, sep = 500e-12, 100e-12, 50e-12
        edges = {
            "a": Edge(FALL, 0.0, tau_a),
            "b": Edge(FALL, sep, tau_b),
        }
        delta1 = {
            name: oracle_library.single(name, FALL).delay(edge.tau)
            for name, edge in edges.items()
        }
        order = order_by_dominance(edges, delta1)
        dominant = order[0]
        shot = multi_input_response(nand3, edges, thresholds,
                                    reference=dominant)
        t_out = edges[dominant].t_cross + shot.delay
        d_dom = abs(t_out - alone_crossing(edges[dominant], delta1[dominant]))
        other = order[1]
        d_other = abs(t_out - alone_crossing(edges[other], delta1[other]))
        assert d_dom <= d_other
