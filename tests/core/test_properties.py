"""Property-based tests of algorithm invariants (hypothesis).

These run against a *stub* dual model (no simulation), so they can
afford hundreds of examples: the invariants are structural properties
of the composition, not of the circuit.
"""

import math

from hypothesis import given, settings, strategies as st
import pytest

from repro.core.algorithm import CorrectionPolicy, proximity_delay
from repro.waveform import Edge, FALL


class SmoothDual:
    """A deterministic, physically-shaped stub: ratio saturates at 1 for
    large separation and dips smoothly toward 0.5 near s* = 0."""

    def delay_ratio(self, tau_ref, tau_other, sep, *, delta1, load=None):
        x = sep / delta1
        return 1.0 - 0.5 * math.exp(-((x - 0.0) ** 2))

    def ttime_ratio(self, tau_ref, tau_other, sep, *, tau1, delta1, load=None):
        x = sep / delta1
        return 1.0 - 0.4 * math.exp(-(x ** 2))


def lookup(ref, other, direction):
    return SmoothDual()


def edge_strategy():
    return st.builds(
        lambda t, tau: Edge(FALL, t * 1e-12, tau * 1e-12),
        st.integers(min_value=-500, max_value=500),
        st.integers(min_value=50, max_value=2000),
    )


def config_strategy(n_inputs=3):
    return st.lists(edge_strategy(), min_size=1, max_size=n_inputs)


def run(edges_list, **kwargs):
    names = [f"x{i}" for i in range(len(edges_list))]
    edges = dict(zip(names, edges_list))
    delta1 = {n: 150e-12 + 0.3 * edges[n].tau for n in names}
    tau1 = {n: 200e-12 + 0.4 * edges[n].tau for n in names}
    return proximity_delay(edges, delta1, tau1, lookup, **kwargs)


class TestInvariants:
    @settings(max_examples=120)
    @given(config_strategy())
    def test_results_always_positive(self, edges_list):
        result = run(edges_list)
        assert result.delay > 0.0
        assert result.ttime > 0.0

    @settings(max_examples=120)
    @given(config_strategy())
    def test_insertion_order_irrelevant(self, edges_list):
        """Dict insertion order must not change the outcome."""
        forward = run(edges_list)
        names = [f"x{i}" for i in range(len(edges_list))]
        edges_rev = dict(reversed(list(zip(names, edges_list))))
        delta1 = {n: 150e-12 + 0.3 * edges_rev[n].tau for n in names}
        tau1 = {n: 200e-12 + 0.4 * edges_rev[n].tau for n in names}
        backward = proximity_delay(edges_rev, delta1, tau1, lookup)
        assert backward.delay == pytest.approx(forward.delay, rel=1e-12)
        assert backward.ttime == pytest.approx(forward.ttime, rel=1e-12)
        assert backward.reference == forward.reference

    @settings(max_examples=120)
    @given(config_strategy())
    def test_time_translation_invariance(self, edges_list):
        """Shifting every edge by a constant shifts nothing relative."""
        base = run(edges_list)
        shifted = run([e.shifted(3e-9) for e in edges_list])
        assert shifted.delay == pytest.approx(base.delay, rel=1e-9)
        assert shifted.ttime == pytest.approx(base.ttime, rel=1e-9)

    @settings(max_examples=120)
    @given(config_strategy())
    def test_proximity_never_slows_beyond_single_with_speedup_model(
            self, edges_list):
        """With a pure speed-up dual model (ratio <= 1), the composed
        delay never exceeds the reference's single-input delay."""
        result = run(edges_list)
        assert result.raw_delay <= result.delta1[result.reference] + 1e-18

    @settings(max_examples=80)
    @given(config_strategy(), st.sampled_from(["paper", "scaled", "off"]))
    def test_correction_bounded_by_step_error(self, edges_list, policy):
        step_error = (7e-12, 3e-12)
        result = run(edges_list, step_error=step_error,
                     correction=CorrectionPolicy(policy))
        assert abs(result.delay_correction) <= abs(step_error[0]) + 1e-18
        assert abs(result.ttime_correction) <= abs(step_error[1]) + 1e-18

    @settings(max_examples=80)
    @given(config_strategy())
    def test_far_inputs_do_not_change_result(self, edges_list):
        """Adding an input far outside every window is a no-op."""
        base = run(edges_list)
        names = [f"x{i}" for i in range(len(edges_list))]
        edges = dict(zip(names, edges_list))
        edges["far"] = Edge(FALL, 1.0, 100e-12)  # one full second away
        delta1 = {n: 150e-12 + 0.3 * edges[n].tau for n in edges}
        tau1 = {n: 200e-12 + 0.4 * edges[n].tau for n in edges}
        bigger = proximity_delay(edges, delta1, tau1, lookup)
        assert bigger.delay == pytest.approx(base.delay, rel=1e-12)
