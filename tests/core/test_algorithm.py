"""The ProximityDelay composition algorithm (paper Figure 4-1)."""

import pytest

from repro.core.algorithm import (
    CorrectionPolicy,
    apply_correction,
    proximity_delay,
)
from repro.errors import ModelError
from repro.waveform import Edge, FALL, RISE


class StubDual:
    """A controllable dual-input model for unit-testing the recursion."""

    def __init__(self, delay_fn=None, ttime_fn=None):
        self._delay_fn = delay_fn or (lambda *a, **k: 1.0)
        self._ttime_fn = ttime_fn or (lambda *a, **k: 1.0)
        self.delay_calls = []
        self.ttime_calls = []

    def delay_ratio(self, tau_ref, tau_other, sep, *, delta1, load=None):
        self.delay_calls.append((tau_ref, tau_other, sep, delta1))
        return self._delay_fn(tau_ref, tau_other, sep, delta1)

    def ttime_ratio(self, tau_ref, tau_other, sep, *, tau1, delta1, load=None):
        self.ttime_calls.append((tau_ref, tau_other, sep, tau1, delta1))
        return self._ttime_fn(tau_ref, tau_other, sep, tau1, delta1)


def lookup(stub):
    return lambda ref, other, direction: stub


def edges3(s_ab=0.0, s_ac=0.0, taus=(300e-12, 300e-12, 300e-12)):
    return {
        "a": Edge(FALL, 0.0, taus[0]),
        "b": Edge(FALL, s_ab, taus[1]),
        "c": Edge(FALL, s_ac, taus[2]),
    }


DELTA1 = {"a": 250e-12, "b": 260e-12, "c": 270e-12}
TAU1 = {"a": 350e-12, "b": 360e-12, "c": 370e-12}


class TestStructure:
    def test_single_edge_returns_single_input_values(self):
        stub = StubDual()
        result = proximity_delay(
            {"a": Edge(FALL, 0.0, 3e-10)}, DELTA1, TAU1, lookup(stub))
        assert result.delay == pytest.approx(DELTA1["a"])
        assert result.ttime == pytest.approx(TAU1["a"])
        assert stub.delay_calls == []

    def test_mixed_directions_rejected(self):
        edges = {
            "a": Edge(FALL, 0.0, 1e-10),
            "b": Edge(RISE, 0.0, 1e-10),
        }
        with pytest.raises(ModelError):
            proximity_delay(edges, DELTA1, TAU1, lookup(StubDual()))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            proximity_delay({}, DELTA1, TAU1, lookup(StubDual()))

    def test_out_of_window_input_ignored(self):
        """s >= Delta_cum + ttime_cum: not folded at all."""
        stub = StubDual()
        edges = edges3(s_ab=2e-9, s_ac=3e-9)
        result = proximity_delay(edges, DELTA1, TAU1, lookup(stub))
        assert result.delay == pytest.approx(DELTA1["a"])
        assert result.steps == ()

    def test_in_delay_window_folded(self):
        stub = StubDual(delay_fn=lambda *a: 0.8)
        edges = edges3(s_ab=100e-12, s_ac=2e-9)
        result = proximity_delay(edges, DELTA1, TAU1, lookup(stub))
        # One fold: Delta = Delta1 + Delta1*(0.8 - 1).
        assert result.raw_delay == pytest.approx(DELTA1["a"] * 0.8)
        assert [s.input_name for s in result.delay_steps] == ["b"]

    def test_ttime_window_wider_than_delay_window(self):
        """An input outside the delay window but inside the ttime window
        affects only the transition time."""
        stub = StubDual(delay_fn=lambda *a: 0.8, ttime_fn=lambda *a: 0.7)
        sep = 300e-12  # > Delta1(a)=250ps but < 250+350=600ps
        edges = edges3(s_ab=sep, s_ac=2e-9)
        result = proximity_delay(edges, DELTA1, TAU1, lookup(stub))
        assert result.raw_delay == pytest.approx(DELTA1["a"])
        assert result.raw_ttime < TAU1["a"]
        (step,) = result.steps
        assert not step.in_delay_window and step.in_ttime_window

    def test_equivalent_waveform_shift(self):
        """The second fold sees s* = s + Delta1 - Delta_cum (eq. 4.3)."""
        ratios = iter([0.8, 0.9])
        stub = StubDual(delay_fn=lambda *a: next(ratios))
        edges = edges3(s_ab=50e-12, s_ac=100e-12)
        result = proximity_delay(edges, DELTA1, TAU1, lookup(stub),
                                 correction=CorrectionPolicy.OFF)
        base = DELTA1["a"]
        cum_after_b = base * 0.8
        expected_s_star = 100e-12 + base - cum_after_b
        assert result.steps[1].s_star == pytest.approx(expected_s_star)
        assert result.raw_delay == pytest.approx(cum_after_b + base * (0.9 - 1.0))

    def test_stop_at_first_outside_semantics(self):
        """Figure 4-1's while-loop stops at the first out-of-window input
        in dominance order, even if a later one would be in-window."""
        stub = StubDual(delay_fn=lambda *a: 0.8)
        # b far outside any window; c right on top of a.
        edges = edges3(s_ab=5e-9, s_ac=0.0)
        delta1 = {"a": 250e-12, "b": 240e-12, "c": 270e-12}
        # dominance: a (250) < c (270) < b (5e-9+240).  So order a, c, b:
        # c IS in window and folds; b stops the loop -- same either way.
        # Make b dominate position 2 instead: give b small delay but huge sep.
        result_stop = proximity_delay(edges, delta1, TAU1, lookup(stub),
                                      stop_at_first_outside=True)
        result_skip = proximity_delay(edges, delta1, TAU1, lookup(stub),
                                      stop_at_first_outside=False)
        # Order is [a, c, b]; both fold c, then b is outside: identical.
        assert result_stop.raw_delay == pytest.approx(result_skip.raw_delay)

        # Now force order [a, b(out-of-window), c(in-window)]:
        delta1b = {"a": 250e-12, "b": 1e-15, "c": 270e-12}
        edges2 = edges3(s_ab=240e-12, s_ac=0.0)
        stop = proximity_delay(edges2, delta1b, TAU1, lookup(stub),
                               stop_at_first_outside=True)
        skip = proximity_delay(edges2, delta1b, TAU1, lookup(stub),
                               stop_at_first_outside=False)
        # b's alone-crossing = 240ps + ~0 < a's 250ps... b becomes the
        # reference instead.  Use separations keeping a dominant.
        assert stop.reference in ("a", "b")
        assert len(skip.steps) >= len(stop.steps)

    def test_arrival_ordering_ablation(self):
        edges = {
            "a": Edge(FALL, 0.0, 500e-12),
            "b": Edge(FALL, 50e-12, 100e-12),
        }
        delta1 = {"a": 300e-12, "b": 120e-12}
        tau1 = {"a": 350e-12, "b": 160e-12}
        stub = StubDual()
        dom = proximity_delay(edges, delta1, tau1, lookup(stub),
                              ordering="dominance")
        arr = proximity_delay(edges, delta1, tau1, lookup(stub),
                              ordering="arrival")
        assert dom.reference == "b"
        assert arr.reference == "a"
        with pytest.raises(ModelError):
            proximity_delay(edges, delta1, tau1, lookup(stub),
                            ordering="alphabetical")

    def test_nonpositive_base_rejected(self):
        edges = {"a": Edge(FALL, 0.0, 1e-10)}
        with pytest.raises(ModelError):
            proximity_delay(edges, {"a": 0.0}, {"a": 1e-10}, lookup(StubDual()))


class TestTtimeComposition:
    def test_harmonic_less_aggressive_than_additive(self):
        stub = StubDual(ttime_fn=lambda *a: 0.6)
        edges = edges3(s_ab=0.0, s_ac=0.0)
        harmonic = proximity_delay(edges, DELTA1, TAU1, lookup(stub),
                                   ttime_composition="harmonic")
        additive = proximity_delay(edges, DELTA1, TAU1, lookup(stub),
                                   ttime_composition="additive")
        # Two folds of 0.6: additive = tau1*(1-0.4-0.4)=0.2*tau1;
        # harmonic = 1/(1/t + 2*(1/0.6-1)/t) stays higher.
        assert additive.raw_ttime < harmonic.raw_ttime < TAU1["a"]

    def test_harmonic_matches_single_fold(self):
        """With one fold, harmonic and additive agree to first order but
        the harmonic result equals t1 / (1/T2 ... ) exactly."""
        stub = StubDual(ttime_fn=lambda *a: 0.5)
        edges = edges3(s_ab=0.0, s_ac=5e-9)
        result = proximity_delay(edges, DELTA1, TAU1, lookup(stub))
        t1 = TAU1["a"]
        expected = 1.0 / (1.0 / t1 + 1.0 / (0.5 * t1) - 1.0 / t1)
        assert result.raw_ttime == pytest.approx(expected)

    def test_slowing_input_handled(self):
        """T2 > 1 (series case): ttime grows, never negative/divergent."""
        stub = StubDual(ttime_fn=lambda *a: 1.8)
        edges = edges3(s_ab=0.0, s_ac=0.0)
        result = proximity_delay(edges, DELTA1, TAU1, lookup(stub))
        assert result.raw_ttime > TAU1["a"]
        assert result.raw_ttime < 1e3 * TAU1["a"]

    def test_invalid_composition_rejected(self):
        with pytest.raises(ModelError):
            proximity_delay(edges3(), DELTA1, TAU1, lookup(StubDual()),
                            ttime_composition="geometric")


class TestCorrection:
    def test_off_policy(self):
        value, corr = apply_correction(
            1e-10, 5e-12, CorrectionPolicy.OFF,
            merged_count=3, total_inputs=3, last_separation=0.0, window=1e-10)
        assert value == 1e-10 and corr == 0.0

    def test_two_merged_inputs_uncorrected(self):
        """The dual model is exact for two inputs: no correction."""
        value, corr = apply_correction(
            1e-10, 5e-12, CorrectionPolicy.PAPER,
            merged_count=2, total_inputs=3, last_separation=0.0, window=1e-10)
        assert corr == 0.0

    def test_full_weight_at_nonpositive_separation(self):
        value, corr = apply_correction(
            1e-10, 5e-12, CorrectionPolicy.PAPER,
            merged_count=3, total_inputs=3, last_separation=-1e-12,
            window=1e-10)
        assert corr == pytest.approx(5e-12)
        assert value == pytest.approx(1e-10 - 5e-12)

    def test_linear_ramp_to_zero(self):
        _, half = apply_correction(
            1e-10, 4e-12, CorrectionPolicy.PAPER,
            merged_count=3, total_inputs=3, last_separation=5e-11,
            window=1e-10)
        assert half == pytest.approx(2e-12)
        _, zero = apply_correction(
            1e-10, 4e-12, CorrectionPolicy.PAPER,
            merged_count=3, total_inputs=3, last_separation=1e-10,
            window=1e-10)
        assert zero == 0.0

    def test_scaled_policy_shrinks(self):
        _, paper = apply_correction(
            1e-10, 4e-12, CorrectionPolicy.PAPER,
            merged_count=3, total_inputs=4, last_separation=0.0, window=1e-10)
        _, scaled = apply_correction(
            1e-10, 4e-12, CorrectionPolicy.SCALED,
            merged_count=3, total_inputs=4, last_separation=0.0, window=1e-10)
        assert scaled == pytest.approx(paper * 2.0 / 3.0)

    def test_correction_applied_end_to_end(self):
        stub = StubDual(delay_fn=lambda *a: 0.8)
        edges = edges3(s_ab=0.0, s_ac=0.0)
        result = proximity_delay(
            edges, DELTA1, TAU1, lookup(stub),
            step_error=(3e-12, 1e-12), correction=CorrectionPolicy.PAPER)
        assert result.delay == pytest.approx(result.raw_delay - 3e-12)
        assert result.delay_correction == pytest.approx(3e-12)
