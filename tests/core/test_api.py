"""DelayCalculator end-to-end behaviour against the simulator."""

import pytest

from repro.charlib.simulate import multi_input_response
from repro.core import CorrectionPolicy, DelayCalculator
from repro.errors import ModelError
from repro.waveform import Edge, FALL, RISE


class TestSingleInputApi:
    def test_single_delay_quantity_strings(self, calculator):
        d = calculator.single_delay("a", "fall", "500ps")
        assert d == pytest.approx(
            calculator.single_delay("a", FALL, 500e-12))

    def test_unknown_input_rejected(self, calculator):
        with pytest.raises(ModelError):
            calculator.explain({"x": Edge(FALL, 0.0, 1e-10)})


class TestProximityBehaviour:
    def test_reduces_to_single_input_at_large_separation(self, calculator):
        edges = {
            "a": Edge(FALL, 0.0, 400e-12),
            "b": Edge(FALL, 5e-9, 400e-12),
        }
        result = calculator.explain(edges)
        assert result.reference == "a"
        assert result.delay == pytest.approx(
            calculator.single_delay("a", FALL, 400e-12), rel=1e-6)

    def test_close_inputs_reduce_delay(self, calculator):
        lone = calculator.single_delay("b", FALL, 400e-12)
        edges = {
            "a": Edge(FALL, 0.0, 400e-12),
            "b": Edge(FALL, 0.0, 400e-12),
        }
        assert calculator.delay(edges) < lone

    def test_positive_delay_guarantee(self, calculator):
        """Section-2 property at algorithm level: random-ish configs all
        produce positive delay and transition time."""
        import random
        rng = random.Random(5)
        for _ in range(8):
            edges = {
                name: Edge(FALL, rng.uniform(-5e-10, 5e-10),
                           rng.uniform(5e-11, 2e-9))
                for name in "abc"
            }
            result = calculator.explain(edges)
            assert result.delay > 0.0
            assert result.ttime > 0.0

    def test_matches_full_simulation_two_inputs(self, calculator, nand3,
                                                thresholds):
        """Oracle mode + two switching inputs: the model IS the dual
        simulation, so the match is exact."""
        edges = {
            "a": Edge(FALL, 0.0, 500e-12),
            "b": Edge(FALL, 120e-12, 100e-12),
        }
        result = calculator.explain(edges)
        shot = multi_input_response(nand3, edges, thresholds,
                                    reference=result.reference)
        assert result.raw_delay == pytest.approx(shot.delay, rel=1e-9)

    def test_three_inputs_close_to_simulation(self, calculator, nand3,
                                              thresholds):
        edges = {
            "a": Edge(FALL, 0.0, 500e-12),
            "b": Edge(FALL, 100e-12, 200e-12),
            "c": Edge(FALL, -150e-12, 800e-12),
        }
        result = calculator.explain(edges)
        shot = multi_input_response(nand3, edges, thresholds,
                                    reference=result.reference)
        assert result.delay == pytest.approx(shot.delay, rel=0.10)
        assert result.ttime == pytest.approx(shot.out_ttime, rel=0.20)

    def test_rising_inputs_supported(self, calculator, nand3, thresholds):
        edges = {
            "a": Edge(RISE, 0.0, 300e-12),
            "b": Edge(RISE, 50e-12, 300e-12),
        }
        result = calculator.explain(edges)
        shot = multi_input_response(nand3, edges, thresholds,
                                    reference=result.reference)
        assert result.raw_delay == pytest.approx(shot.delay, rel=1e-9)

    def test_output_crossing_time(self, calculator):
        edges = {
            "a": Edge(FALL, 1e-9, 400e-12),
            "b": Edge(FALL, 1.05e-9, 300e-12),
        }
        result = calculator.explain(edges)
        expected = edges[result.reference].t_cross + result.delay
        assert calculator.output_crossing_time(edges) == pytest.approx(expected)


class TestStepError:
    def test_memoized(self, oracle_library):
        import time
        calc = DelayCalculator(oracle_library)
        calc.step_error(FALL)
        t0 = time.time()
        calc.step_error(FALL)
        assert time.time() - t0 < 0.01

    def test_correction_exact_on_step_case(self, oracle_library):
        """By construction, the corrected delay equals the simulated
        delay when all inputs get the calibration step simultaneously."""

        calc = DelayCalculator(oracle_library,
                               correction=CorrectionPolicy.PAPER)
        gate = calc.gate
        edges = {name: Edge(FALL, 0.0, calc.step_tau) for name in gate.inputs}
        result = calc.explain(edges)
        shot = multi_input_response(gate, edges, calc.thresholds,
                                    reference=result.reference)
        assert result.delay == pytest.approx(shot.delay, rel=1e-6)

    def test_policies_differ_only_in_correction(self, oracle_library):
        edges = {
            "a": Edge(FALL, 0.0, 100e-12),
            "b": Edge(FALL, 10e-12, 100e-12),
            "c": Edge(FALL, 20e-12, 100e-12),
        }
        off = DelayCalculator(oracle_library, correction="off").explain(edges)
        paper = DelayCalculator(oracle_library, correction="paper").explain(edges)
        assert off.raw_delay == pytest.approx(paper.raw_delay, rel=1e-12)
        assert off.delay_correction == 0.0
