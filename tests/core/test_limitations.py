"""Documented limitations of the paper's algorithm, demonstrated.

These tests pin down behaviour we consider *faithful to the paper* but
physically incomplete, so regressions in either direction (accidentally
"fixing" them silently, or making them worse) are caught:

1. **Series-driven transitions and the proximity window.**  The paper's
   window rule -- "for s_ab > Delta_a^(1), the transitions on b can be
   ignored and the delay will be the same as when a was alone" -- is
   derived from the parallel-driven case (falling NAND inputs).  For a
   *series*-driven transition (rising NAND inputs) a sufficiently late
   second input gates the output indefinitely, so the rule
   underestimates.  The paper's validation (Table 5-1) used falling
   inputs only.
2. **Mixed-branch switching on complex gates** degrades accuracy; see
   :mod:`repro.experiments.crossgate`.
"""

import pytest

from repro.charlib.simulate import multi_input_response
from repro.waveform import Edge, FALL, RISE


class TestSeriesWindowLimitation:
    def test_late_series_input_gates_the_output(self, nand3, thresholds,
                                                calculator):
        """Rising NAND inputs, b far outside a's delay window: the real
        output waits for b; the paper's algorithm reports a-alone."""
        sep = 1.5e-9  # far beyond Delta_a(300ps) ~ 220ps
        edges = {
            "a": Edge(RISE, 0.0, 300e-12),
            "b": Edge(RISE, sep, 300e-12),
        }
        result = calculator.explain(edges)
        # Algorithm: b ignored, delay == single-input delay of a.
        assert result.delay == pytest.approx(
            calculator.single_delay("a", RISE, 300e-12), rel=0.01)
        # Reality: the stack conducts only after b rises.
        shot = multi_input_response(nand3, edges, thresholds,
                                    reference=result.reference)
        assert shot.delay > result.delay * 2.0

    def test_within_window_series_case_is_accurate(self, nand3, thresholds,
                                                   calculator):
        """Inside the window the dual model captures the series slow-down
        exactly (oracle mode), so the limitation is purely the window."""
        edges = {
            "a": Edge(RISE, 0.0, 300e-12),
            "b": Edge(RISE, 100e-12, 300e-12),
        }
        result = calculator.explain(edges)
        shot = multi_input_response(nand3, edges, thresholds,
                                    reference=result.reference)
        assert result.raw_delay == pytest.approx(shot.delay, rel=1e-6)

    def test_parallel_case_window_rule_holds(self, nand3, thresholds,
                                             calculator):
        """The falling (parallel-driven) case the paper validated:
        outside the window the single-input delay IS correct."""
        sep = 1.5e-9
        edges = {
            "a": Edge(FALL, 0.0, 300e-12),
            "b": Edge(FALL, sep, 300e-12),
        }
        result = calculator.explain(edges)
        shot = multi_input_response(nand3, edges, thresholds,
                                    reference=result.reference)
        assert result.delay == pytest.approx(shot.delay, rel=0.02)


class TestMixedBranchLimitation:
    def test_aoi21_all_pins_degrades(self):
        """All three AOI21 pins switching: inconsistent sensitization
        contexts make the composition visibly worse than the same-branch
        pair (kept as a characterized, documented limitation)."""
        from repro.experiments import crossgate

        result = crossgate.run(
            n_configs=3, seed=9, gates=("aoi21", "aoi21-all"),
            directions=(FALL,),
        )
        pair_worst = result.worst_delay_error("aoi21/fall")
        all_worst = result.worst_delay_error("aoi21-all/fall")
        assert pair_worst < 1.0       # exact (oracle, n=2)
        assert all_worst > pair_worst  # degradation is real and measured
