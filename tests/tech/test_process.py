"""Process and device-parameter validation."""

import pytest

from repro.errors import NetlistError
from repro.tech import MosfetParams, Process, Sizing, default_process
from repro.tech.presets import PROCESSES, fast_process, slow_process


class TestMosfetParams:
    def test_strength_matches_paper_definition(self):
        params = MosfetParams("nmos", vt0=0.7, kp=60e-6)
        # K = (1/2) mu Cox W/L
        assert params.strength(4e-6, 0.8e-6) == pytest.approx(0.5 * 60e-6 * 5.0)

    def test_polarity_validation(self):
        with pytest.raises(NetlistError):
            MosfetParams("cmos", vt0=0.7, kp=60e-6)

    def test_nmos_needs_positive_vt(self):
        with pytest.raises(NetlistError):
            MosfetParams("nmos", vt0=-0.7, kp=60e-6)

    def test_pmos_needs_negative_vt(self):
        with pytest.raises(NetlistError):
            MosfetParams("pmos", vt0=0.7, kp=25e-6)

    def test_kp_positive(self):
        with pytest.raises(NetlistError):
            MosfetParams("nmos", vt0=0.7, kp=0.0)

    def test_lambda_nonnegative(self):
        with pytest.raises(NetlistError):
            MosfetParams("nmos", vt0=0.7, kp=60e-6, lam=-0.1)

    def test_strength_rejects_bad_geometry(self):
        params = MosfetParams("nmos", vt0=0.7, kp=60e-6)
        with pytest.raises(NetlistError):
            params.strength(0.0, 1e-6)
        with pytest.raises(NetlistError):
            params.strength(1e-6, -1e-6)


class TestSizing:
    def test_positive_required(self):
        with pytest.raises(NetlistError):
            Sizing(wn=0.0, wp=1e-6, length=1e-6)

    def test_scaled(self):
        sizing = Sizing(wn=2e-6, wp=4e-6, length=1e-6).scaled(2.0, 1.5)
        assert sizing.wn == pytest.approx(4e-6)
        assert sizing.wp == pytest.approx(6e-6)
        assert sizing.length == pytest.approx(1e-6)

    def test_scaled_rejects_nonpositive(self):
        sizing = Sizing(wn=2e-6, wp=4e-6, length=1e-6)
        with pytest.raises(NetlistError):
            sizing.scaled(0.0, 1.0)


class TestProcess:
    def test_default_is_consistent(self):
        proc = default_process()
        assert proc.vdd == 5.0
        assert proc.nmos.is_nmos
        assert not proc.pmos.is_nmos
        # NMOS stronger per-width than PMOS, standard CMOS.
        assert proc.nmos.kp > proc.pmos.kp

    def test_beta_ratio_near_unity_for_default(self):
        # Default sizing compensates mobility with 2x PMOS width.
        proc = default_process()
        assert 0.5 < proc.beta_ratio() < 1.5

    def test_cache_key_is_scalar_mapping(self):
        key = default_process().cache_key()
        assert all(isinstance(v, (int, float, str)) for v in key.values())
        assert key["vdd"] == 5.0

    def test_cache_key_distinguishes_processes(self):
        assert default_process().cache_key() != fast_process().cache_key()

    def test_with_vdd(self):
        proc = default_process().with_vdd("4.5V")
        assert proc.vdd == pytest.approx(4.5)
        assert proc.nmos == default_process().nmos

    def test_threshold_above_supply_rejected(self):
        proc = default_process()
        with pytest.raises(NetlistError):
            proc.with_vdd(0.5)

    def test_mismatched_polarity_rejected(self):
        proc = default_process()
        with pytest.raises(NetlistError):
            Process("bad", 5.0, proc.pmos, proc.pmos, proc.sizing)
        with pytest.raises(NetlistError):
            Process("bad", 5.0, proc.nmos, proc.nmos, proc.sizing)

    def test_presets_registry(self):
        for name, factory in PROCESSES.items():
            proc = factory()
            assert proc.vdd > 0
        assert slow_process().sizing.length > default_process().sizing.length
