"""Single-input macromodel backends."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import SimulatorSingleInputModel, TableSingleInputModel
from repro.waveform import FALL


def make_table(k_drive=1e-3, vdd=5.0, char_load=1e-13):
    """A synthetic but physically-shaped normalized delay curve:
    Delta/tau grows with the drive factor u."""
    u = np.geomspace(0.01, 10.0, 12)
    delay_norm = 0.2 + 1.5 * u ** 0.8
    ttime_norm = 0.4 + 2.0 * u ** 0.8
    return TableSingleInputModel(
        "a", FALL, u, delay_norm, ttime_norm,
        k_drive=k_drive, vdd=vdd, char_load=char_load,
    )


class TestTableModel:
    def test_interpolates_grid_points(self):
        model = make_table()
        # Pick a tau that lands exactly on a grid u.
        u_target = 0.1
        tau = model.char_load / (model.k_drive * model.vdd * u_target)
        expected = (0.2 + 1.5 * u_target ** 0.8) * tau
        assert model.delay(tau) == pytest.approx(expected, rel=0.02)

    def test_load_scaling(self):
        model = make_table()
        tau = 1e-10
        # Doubling load doubles u; normalized delay grows.
        assert model.delay(tau, load=2e-13) > model.delay(tau, load=1e-13)

    def test_validation(self):
        with pytest.raises(ModelError):
            TableSingleInputModel("a", FALL, np.array([1.0]),
                                  np.array([1.0]), np.array([1.0]),
                                  k_drive=1.0, vdd=5.0, char_load=1e-13)
        with pytest.raises(ModelError):
            TableSingleInputModel("a", FALL, np.array([1.0, 1.0]),
                                  np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                                  k_drive=1.0, vdd=5.0, char_load=1e-13)
        with pytest.raises(ModelError):
            TableSingleInputModel("a", FALL, np.array([-1.0, 1.0]),
                                  np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                                  k_drive=1.0, vdd=5.0, char_load=1e-13)

    def test_query_validation(self):
        model = make_table()
        with pytest.raises(ModelError):
            model.delay(0.0)
        with pytest.raises(ModelError):
            model.delay(1e-10, load=-1.0)

    def test_payload_roundtrip(self):
        model = make_table()
        clone = TableSingleInputModel.from_payload(model.to_payload())
        tau = 3.3e-10
        assert clone.delay(tau) == pytest.approx(model.delay(tau), rel=1e-12)
        assert clone.ttime(tau) == pytest.approx(model.ttime(tau), rel=1e-12)
        assert clone.input_name == "a"

    def test_unsorted_samples_accepted(self):
        u = np.array([1.0, 0.1, 10.0])
        model = TableSingleInputModel(
            "a", FALL, u, 0.2 + u, 0.4 + u,
            k_drive=1e-3, vdd=5.0, char_load=1e-13,
        )
        assert model.drive_factor(1e-10) > 0


class TestSimulatorModel:
    def test_matches_direct_simulation(self, nand3, thresholds):
        from repro.charlib.simulate import single_input_response
        model = SimulatorSingleInputModel(nand3, "a", FALL, thresholds)
        tau = 321e-12
        shot = single_input_response(nand3, "a", FALL, tau, thresholds)
        assert model.delay(tau) == pytest.approx(shot.delay, rel=1e-9)
        assert model.ttime(tau) == pytest.approx(shot.out_ttime, rel=1e-9)

    def test_memoization(self, nand3, thresholds):
        import time
        model = SimulatorSingleInputModel(nand3, "b", FALL, thresholds)
        model.delay(222e-12)
        t0 = time.time()
        for _ in range(50):
            model.delay(222e-12)
        assert time.time() - t0 < 0.05
