"""Dual-input macromodel backends."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import SimulatorDualInputModel, TableDualInputModel
from repro.waveform import Edge, FALL


def make_table():
    """A synthetic proximity surface: ratio 1 at large separation,
    dipping toward 0.5 at sep = 0, independent of the tau axes."""
    a1 = np.array([0.5, 1.0, 2.0, 4.0])
    a2 = np.array([0.25, 1.0, 4.0])
    a3 = np.array([-2.0, -1.0, 0.0, 0.5, 1.0, 1.5])
    ratio_of_sep = np.array([0.55, 0.5, 0.5, 0.75, 1.0, 1.0])
    delay = np.broadcast_to(ratio_of_sep, (4, 3, 6)).copy()
    ttime = 0.9 * delay
    return TableDualInputModel("a", "b", FALL, (a1, a2, a3), delay, ttime)


class TestTableModel:
    def test_normalized_lookup(self):
        model = make_table()
        delta1 = 2e-10
        # sep = 0.5 * delta1 -> a3 = 0.5 -> ratio 0.75.
        ratio = model.delay_ratio(2e-10, 2e-10, 1e-10, delta1=delta1)
        assert ratio == pytest.approx(0.75, abs=0.02)

    def test_interpolation_between_grid_points(self):
        model = make_table()
        delta1 = 2e-10
        ratio = model.delay_ratio(2e-10, 2e-10, 0.25 * delta1, delta1=delta1)
        assert 0.5 < ratio < 0.75

    def test_clamping_beyond_grid(self):
        model = make_table()
        delta1 = 2e-10
        far = model.delay_ratio(2e-10, 2e-10, 10 * delta1, delta1=delta1)
        assert far == pytest.approx(1.0)
        early = model.delay_ratio(2e-10, 2e-10, -10 * delta1, delta1=delta1)
        assert early == pytest.approx(0.55)

    def test_ttime_uses_same_coordinates(self):
        model = make_table()
        delta1, tau1 = 2e-10, 3e-10
        ratio = model.ttime_ratio(2e-10, 2e-10, 1e-10, tau1=tau1, delta1=delta1)
        assert ratio == pytest.approx(0.9 * 0.75, abs=0.02)

    def test_validation(self):
        a1 = np.array([0.5, 1.0])
        a2 = np.array([0.25, 1.0])
        a3 = np.array([0.0, 1.0])
        good = np.ones((2, 2, 2))
        with pytest.raises(ModelError):
            TableDualInputModel("a", "b", FALL, (a1, a2, a3),
                                np.ones((2, 2, 3)), good)
        with pytest.raises(ModelError):
            TableDualInputModel("a", "b", FALL,
                                (np.array([1.0, 0.5]), a2, a3), good, good)

    def test_query_validation(self):
        model = make_table()
        with pytest.raises(ModelError):
            model.delay_ratio(1e-10, 1e-10, 0.0, delta1=0.0)
        with pytest.raises(ModelError):
            model.ttime_ratio(1e-10, 1e-10, 0.0, tau1=-1.0, delta1=1e-10)

    def test_payload_roundtrip(self):
        model = make_table()
        clone = TableDualInputModel.from_payload(model.to_payload())
        args = (2e-10, 1.5e-10, 0.3e-10)
        assert clone.delay_ratio(*args, delta1=2e-10) == pytest.approx(
            model.delay_ratio(*args, delta1=2e-10))
        assert clone.reference == "a" and clone.other == "b"


class TestSimulatorModel:
    def test_matches_direct_simulation(self, nand3, thresholds):
        from repro.charlib.simulate import multi_input_response, \
            single_input_response
        model = SimulatorDualInputModel(nand3, "a", "b", FALL, thresholds)
        tau_ref, tau_other, sep = 400e-12, 150e-12, 50e-12
        single = single_input_response(nand3, "a", FALL, tau_ref, thresholds)
        edges = {"a": Edge(FALL, 0.0, tau_ref), "b": Edge(FALL, sep, tau_other)}
        shot = multi_input_response(nand3, edges, thresholds, reference="a")
        ratio = model.delay_ratio(tau_ref, tau_other, sep, delta1=single.delay)
        assert ratio * single.delay == pytest.approx(shot.delay, rel=1e-9)

    def test_requires_positive_normalizers(self, nand3, thresholds):
        model = SimulatorDualInputModel(nand3, "a", "b", FALL, thresholds)
        with pytest.raises(ModelError):
            model.delay_ratio(1e-10, 1e-10, 0.0, delta1=-1.0)
        with pytest.raises(ModelError):
            model.ttime_ratio(1e-10, 1e-10, 0.0, tau1=0.0, delta1=1e-10)
