"""Macromodel interface contracts."""

import pytest

from repro.models import (
    DualInputModel,
    SimulatorDualInputModel,
    SimulatorSingleInputModel,
    SingleInputModel,
    TableDualInputModel,
    TableSingleInputModel,
)


class TestAbstractness:
    def test_single_cannot_instantiate(self):
        with pytest.raises(TypeError):
            SingleInputModel()  # type: ignore[abstract]

    def test_dual_cannot_instantiate(self):
        with pytest.raises(TypeError):
            DualInputModel()  # type: ignore[abstract]

    def test_implementations_registered(self):
        assert issubclass(TableSingleInputModel, SingleInputModel)
        assert issubclass(SimulatorSingleInputModel, SingleInputModel)
        assert issubclass(TableDualInputModel, DualInputModel)
        assert issubclass(SimulatorDualInputModel, DualInputModel)


class TestInterchangeability:
    def test_oracle_and_table_agree_on_grid_points(self, nand3, thresholds,
                                                   oracle_library):
        """At a characterized grid point the table model reproduces the
        oracle (both are the same simulation, modulo interpolation of
        exactly-hit nodes)."""
        from repro.charlib import SingleInputGrid
        from repro.charlib.single import characterize_single_input

        grid = SingleInputGrid.fast()
        table = characterize_single_input(nand3, "a", "fall", thresholds,
                                          grid=grid)
        oracle = oracle_library.single("a", "fall")
        tau = grid.taus[2]
        assert table.delay(tau) == pytest.approx(oracle.delay(tau), rel=0.02)
        assert table.ttime(tau) == pytest.approx(oracle.ttime(tau), rel=0.05)
