"""Live snapshot plane: OpenMetrics schema, atomic snapshots, invariance.

Three acceptance properties of ``repro.obs.live``:

* the OpenMetrics rendering is schema-correct (``# TYPE`` per family,
  ``_total`` counters, cumulative histogram buckets, escaped label
  values, ``# EOF`` terminator);
* snapshots land atomically and re-read as complete documents;
* mid-run snapshot totals at a completed-task boundary are identical
  at ``--workers 1`` and ``--workers 4`` (worker deltas fold in through
  ``absorb_task`` as each task completes).
"""

import json
import threading

import pytest

from repro.obs import (
    OBS_ENV_VAR,
    Recorder,
    get_recorder,
    recording,
)
from repro.obs.live import (
    LIVE_ENV_VAR,
    OPENMETRICS_NAME,
    SNAPSHOT_NAME,
    Snapshotter,
    format_top,
    live_dir_from_env,
    parse_metric_key,
    read_snapshot,
    render_openmetrics,
)
from repro.parallel import parallel_map


class TestLiveActivation:
    def test_off_by_default(self):
        assert live_dir_from_env() is None

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", ""])
    def test_falsy_values_stay_off(self, monkeypatch, value):
        monkeypatch.setenv(LIVE_ENV_VAR, value)
        assert live_dir_from_env() is None

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_bare_truthy_means_live_dir(self, monkeypatch, value):
        monkeypatch.setenv(LIVE_ENV_VAR, value)
        assert live_dir_from_env() == "live"

    def test_path_value_is_the_directory(self, monkeypatch):
        monkeypatch.setenv(LIVE_ENV_VAR, "out/telemetry")
        assert live_dir_from_env() == "out/telemetry"

    def test_live_env_enables_recording(self, monkeypatch):
        """REPRO_LIVE alone must enable the recorder (worker deltas
        need recording in every process for totals to merge)."""
        monkeypatch.setenv(LIVE_ENV_VAR, "1")
        assert get_recorder().enabled


class TestParseMetricKey:
    def test_bare_name(self):
        assert parse_metric_key("spice.newton.solves") == (
            "spice.newton.solves", {})

    def test_labeled_key(self):
        name, labels = parse_metric_key("spice.guard.rung{rung=nudge}")
        assert name == "spice.guard.rung"
        assert labels == {"rung": "nudge"}

    def test_multiple_labels(self):
        _, labels = parse_metric_key("x{driver=dense,phase=assembly}")
        assert labels == {"driver": "dense", "phase": "assembly"}


class TestOpenMetricsSchema:
    def _payload(self):
        recorder = Recorder()
        recorder.counter("unit.solves").inc(3)
        recorder.counter("unit.rung", rung="gmin_ramp").inc(2)
        recorder.gauge("unit.workers").set(4)
        hist = recorder.histogram("unit.seconds", edges=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return recorder.metrics_payload()

    def test_type_lines_and_counter_total_suffix(self):
        text = render_openmetrics(self._payload())
        assert "# TYPE repro_unit_solves counter" in text
        assert "repro_unit_solves_total 3" in text
        assert "# TYPE repro_unit_workers gauge" in text
        assert "repro_unit_workers 4" in text
        assert 'repro_unit_rung_total{rung="gmin_ramp"} 2' in text

    def test_one_type_line_per_family(self):
        recorder = Recorder()
        recorder.counter("unit.rung", rung="nudge").inc()
        recorder.counter("unit.rung", rung="gmin_ramp").inc()
        text = render_openmetrics(recorder.metrics_payload())
        assert text.count("# TYPE repro_unit_rung counter") == 1

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_openmetrics(self._payload())
        assert 'repro_unit_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_unit_seconds_bucket{le="1"} 2' in text
        assert 'repro_unit_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_unit_seconds_count 3" in text
        assert "repro_unit_seconds_sum" in text

    def test_eof_terminator(self):
        text = render_openmetrics(self._payload())
        assert text.endswith("# EOF\n")

    def test_name_sanitization(self):
        recorder = Recorder()
        recorder.counter("spice.newton-dispatch").inc()
        text = render_openmetrics(recorder.metrics_payload())
        assert "repro_spice_newton_dispatch_total 1" in text

    def test_label_value_escaping(self):
        recorder = Recorder()
        recorder.counter("unit.odd", path='a\\b"c\nd').inc()
        text = render_openmetrics(recorder.metrics_payload())
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_empty_payload_is_just_eof(self):
        assert render_openmetrics(Recorder().metrics_payload()) == "# EOF\n"


class TestSnapshotter:
    def test_write_now_produces_both_files(self, tmp_path):
        recorder = Recorder()
        recorder.counter("unit.items").inc(7)
        snap = Snapshotter(recorder, str(tmp_path / "live"))
        document = snap.write_now()
        assert document["seq"] == 1
        on_disk = read_snapshot(str(tmp_path / "live" / SNAPSHOT_NAME))
        assert on_disk["kind"] == "repro-live"
        assert on_disk["counters"]["unit.items"] == 7
        prom = (tmp_path / "live" / OPENMETRICS_NAME).read_text()
        assert "repro_unit_items_total 7" in prom
        assert prom.endswith("# EOF\n")

    def test_no_temp_file_residue(self, tmp_path):
        snap = Snapshotter(Recorder(), str(tmp_path))
        snap.write_now()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [SNAPSHOT_NAME, OPENMETRICS_NAME]

    def test_sequence_increments(self, tmp_path):
        snap = Snapshotter(Recorder(), str(tmp_path))
        assert snap.write_now()["seq"] == 1
        assert snap.write_now()["seq"] == 2

    def test_thread_lifecycle_and_final_write(self, tmp_path):
        recorder = Recorder()
        snap = Snapshotter(recorder, str(tmp_path), interval=0.05)
        assert not snap.running
        snap.start()
        assert snap.running
        names = [t.name for t in threading.enumerate()]
        assert "repro-live-snapshotter" in names
        recorder.counter("unit.final").inc()
        snap.stop(final=True)
        assert not snap.running
        names = [t.name for t in threading.enumerate()]
        assert "repro-live-snapshotter" not in names
        document = read_snapshot(str(tmp_path / SNAPSHOT_NAME))
        assert document["counters"]["unit.final"] == 1

    def test_read_snapshot_rejects_torn_or_foreign_files(self, tmp_path):
        assert read_snapshot(str(tmp_path / "missing.json")) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"kind": "repro-li')
        assert read_snapshot(str(torn)) is None
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"kind": "something-else"}))
        assert read_snapshot(str(foreign)) is None


def _live_task(x):
    recorder = get_recorder()
    recorder.counter("unit.items").inc()
    recorder.histogram("unit.task_cost", edges=(1.0, 10.0)).observe(x)
    return x


class TestWorkerInvariantSnapshots:
    """Mid-run snapshot totals must not depend on the worker count."""

    BOUNDARY = 4
    ITEMS = [2.0] * 8  # identical tasks: totals at any completed-task
    #                    boundary are a function of the count alone

    def _snapshot_at_boundary(self, workers, monkeypatch, tmp_path):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        captured = {}
        with recording() as recorder:
            snap = Snapshotter(recorder, str(tmp_path / f"w{workers}"))
            done = []

            def on_result(index, value):
                done.append(index)
                if len(done) == self.BOUNDARY:
                    captured["doc"] = snap.write_now()

            parallel_map(_live_task, self.ITEMS, workers=workers,
                         on_result=on_result)
        return captured["doc"]

    def test_totals_identical_1_vs_4_workers(self, monkeypatch, tmp_path):
        serial = self._snapshot_at_boundary(1, monkeypatch, tmp_path)
        pooled = self._snapshot_at_boundary(4, monkeypatch, tmp_path)
        assert serial["counters"]["unit.items"] == self.BOUNDARY
        assert pooled["counters"]["unit.items"] == self.BOUNDARY
        assert (serial["histograms"]["unit.task_cost"]["counts"]
                == pooled["histograms"]["unit.task_cost"]["counts"])
        assert (serial["histograms"]["unit.task_cost"]["sum"]
                == pooled["histograms"]["unit.task_cost"]["sum"])

    def test_final_totals_also_match(self, monkeypatch, tmp_path):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        totals = []
        for workers in (1, 4):
            with recording() as recorder:
                parallel_map(_live_task, self.ITEMS, workers=workers)
                totals.append(
                    recorder.metrics_payload()["counters"]["unit.items"])
        assert totals[0] == totals[1] == len(self.ITEMS)


class TestFormatTop:
    def _document(self, **counters):
        base = {"spice.newton.solves": 120.0,
                "spice.newton.iterations": 360.0}
        base.update(counters)
        return {
            "schema": 1, "kind": "repro-live", "pid": 42, "seq": 3,
            "time": 1000.0, "uptime": 12.0,
            "counters": base, "gauges": {}, "histograms": {},
        }

    def test_headline_and_rate_from_uptime(self):
        text = format_top(self._document(), now=1000.5)
        assert "pid 42" in text and "seq 3" in text
        assert "solves" in text
        assert "10.0/s" in text  # 120 solves / 12s uptime

    def test_rate_from_previous_snapshot(self):
        previous = self._document()
        previous["time"] = 998.0
        previous["counters"] = {"spice.newton.solves": 20.0}
        text = format_top(self._document(), previous=previous, now=1000.5)
        assert "50" in text and "over last 2.0s" in text

    def test_rung_and_eviction_lines(self):
        text = format_top(self._document(**{
            "spice.guard.rung{rung=nudge}": 3.0,
            "spice.batch.evictions{reason=divergence}": 1.0,
            "obs.flight.dumps{reason=guard_divergence}": 1.0,
        }), now=1000.5)
        assert "rungs" in text and "nudge=3" in text
        assert "evictions" in text and "divergence=1" in text
        assert "flight" in text and "1 dump(s)" in text

    def test_pool_health_line(self):
        document = self._document(**{"parallel.tasks.completed": 9.0})
        document["gauges"] = {"parallel.workers": 4.0,
                              "parallel.tasks.inflight": 2.0}
        text = format_top(document, now=1000.5)
        assert "workers=4" in text and "inflight=2" in text
        assert "tasks ok=9" in text

    def test_phase_breakdown_section(self):
        document = self._document()
        document["histograms"] = {
            "spice.phase.seconds{driver=dense,phase=assembly}": {
                "edges": [0.1], "counts": [1], "sum": 0.3, "count": 1},
            "spice.phase.seconds{driver=dense,phase=factorize}": {
                "edges": [0.1], "counts": [1], "sum": 0.1, "count": 1},
        }
        text = format_top(document, now=1000.5)
        assert "phase breakdown" in text
        assert "assembly 75%" in text
        assert "factorize 25%" in text
