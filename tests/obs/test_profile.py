"""Phase profiler: accumulator semantics and per-driver solver wiring.

The wiring tests run a real transient on each driver and assert the
``spice.phase.seconds{driver=...,phase=...}`` histograms show up with
the phases that driver actually has -- that is the contract ``repro
top``, the flight recorder, and the bench-trend attribution all lean
on.
"""

import pytest

from repro.obs import NullRecorder, Recorder, recording
from repro.obs.profile import (
    PHASE_METRIC,
    PHASES,
    PhaseProfiler,
    PhaseTimes,
    phase_breakdown,
)
from repro.spice import transient
from repro.spice.builders import inverter_chain


class TestPhaseTimes:
    def test_starts_at_zero(self):
        times = PhaseTimes()
        assert times.total == 0.0
        assert times.as_dict() == {}

    def test_as_dict_keeps_only_nonzero_phases(self):
        times = PhaseTimes()
        times.assembly += 0.25
        times.guard += 0.05
        assert times.as_dict() == {"assembly": 0.25, "guard": 0.05}
        assert times.total == pytest.approx(0.30)

    def test_slots_reject_unknown_phases(self):
        with pytest.raises(AttributeError):
            PhaseTimes().refactorize = 1.0


class TestPhaseProfiler:
    def test_disabled_recorder_yields_none(self):
        assert PhaseProfiler.from_recorder(None) is None
        assert PhaseProfiler.from_recorder(NullRecorder()) is None

    def test_finish_records_labelled_histograms(self):
        recorder = Recorder()
        profiler = PhaseProfiler.from_recorder(recorder)
        times = profiler.begin()
        times.assembly += 2e-4
        times.factorize += 1e-3
        profiler.finish("dense", times)
        hists = recorder.metrics_payload()["histograms"]
        key = PHASE_METRIC + "{driver=dense,phase=assembly}"
        assert hists[key]["count"] == 1
        assert hists[key]["sum"] == pytest.approx(2e-4)
        assert PHASE_METRIC + "{driver=dense,phase=factorize}" in hists
        # Zero phases are skipped: the handle registers the family but
        # records no observation.
        scatter = hists[PHASE_METRIC + "{driver=dense,phase=scatter}"]
        assert scatter["count"] == 0 and scatter["sum"] == 0.0

    def test_handles_are_cached_per_driver(self):
        profiler = PhaseProfiler.from_recorder(Recorder())
        assert profiler._handles("dense") is profiler._handles("dense")
        assert profiler._handles("dense") is not profiler._handles("sparse")


class TestPhaseBreakdown:
    def test_parses_driver_and_phase_labels(self):
        histograms = {
            PHASE_METRIC + "{driver=dense,phase=assembly}": {"sum": 0.3},
            PHASE_METRIC + "{driver=dense,phase=factorize}": {"sum": 0.1},
            PHASE_METRIC + "{driver=batch,phase=scatter}": {"sum": 0.2},
            "spice.newton.iterations": {"sum": 99.0},  # ignored
            PHASE_METRIC + "{driver=dense}": {"sum": 1.0},  # no phase
        }
        breakdown = phase_breakdown(histograms)
        assert breakdown == {
            "dense": {"assembly": 0.3, "factorize": 0.1},
            "batch": {"scatter": 0.2},
        }

    def test_malformed_sums_are_skipped(self):
        histograms = {
            PHASE_METRIC + "{driver=dense,phase=assembly}": {"count": 4},
        }
        assert phase_breakdown(histograms) == {}


def _run_and_breakdown(stages=2, stop="0.5ns"):
    with recording() as recorder:
        transient(inverter_chain(stages), stop)
        payload = recorder.metrics_payload()
    return phase_breakdown(payload["histograms"])


class TestSolverWiring:
    def test_dense_driver_phases(self):
        breakdown = _run_and_breakdown()
        assert "dense" in breakdown
        phases = breakdown["dense"]
        assert phases.get("assembly", 0.0) > 0.0
        # Plain dense gesv fuses factorization + back-substitution; the
        # whole linear solve books under ``factorize``.
        assert phases.get("factorize", 0.0) > 0.0
        assert phases.get("back_solve", 0.0) == 0.0
        assert set(phases) <= set(PHASES)

    def test_fast_newton_splits_back_solve(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_NEWTON", "1")
        breakdown = _run_and_breakdown()
        phases = breakdown["dense"]
        assert phases.get("factorize", 0.0) > 0.0
        assert phases.get("back_solve", 0.0) > 0.0

    def test_sparse_driver_phases(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE", "1")
        breakdown = _run_and_breakdown()
        phases = breakdown.get("sparse", {})
        assert phases.get("assembly", 0.0) > 0.0
        assert phases.get("factorize", 0.0) > 0.0
        assert phases.get("back_solve", 0.0) > 0.0

    def test_guard_phase_appears_when_guarded(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "1")
        breakdown = _run_and_breakdown()
        assert breakdown["dense"].get("guard", 0.0) > 0.0

    def test_batch_driver_phases(self, monkeypatch):
        import numpy as np

        from repro.spice import Circuit
        from repro.spice.batch import run_plans_batched
        from repro.spice.engine import (
            NewtonOptions, NewtonRequest, NewtonStats, request_solve)

        monkeypatch.setenv("REPRO_SPARSE", "0")  # pin the dense kernel

        def entry():
            ckt = Circuit("divider")
            ckt.add_vsource("v1", "in", 1.0)
            ckt.add_resistor("r1", "in", "mid", 1e3)
            ckt.add_resistor("r2", "mid", "0", 1e3)
            compiled = ckt.compile()
            request = NewtonRequest(
                x0=np.zeros(compiled.n_unknown),
                known=compiled.known_voltages(0.0),
                options=NewtonOptions(),
            )
            return (compiled, request_solve(request), NewtonStats())

        with recording() as recorder:
            run_plans_batched([entry() for _ in range(3)])
            payload = recorder.metrics_payload()
        phases = phase_breakdown(payload["histograms"]).get("batch", {})
        assert phases.get("assembly", 0.0) > 0.0
        assert phases.get("factorize", 0.0) > 0.0
        assert phases.get("scatter", 0.0) > 0.0

    def test_sparse_batch_driver_phases(self, monkeypatch):
        from repro.spice.batch import transient_batch
        from repro.spice.builders import inverter_chain

        monkeypatch.setenv("REPRO_SPARSE", "1")  # sparse lockstep kernel
        lanes = [inverter_chain(4) for _ in range(2)]
        with recording() as recorder:
            transient_batch(lanes, "0.2ns")
            payload = recorder.metrics_payload()
        phases = phase_breakdown(payload["histograms"]).get("sparse_batch", {})
        assert phases.get("assembly", 0.0) > 0.0
        # Per-lane SuperLU exposes the factorize/back-solve boundary,
        # unlike the dense kernel's fused stacked gesv.
        assert phases.get("factorize", 0.0) > 0.0
        assert phases.get("back_solve", 0.0) > 0.0
        assert phases.get("scatter", 0.0) > 0.0

    def test_no_histograms_without_telemetry(self):
        transient(inverter_chain(2), "0.5ns")
        # No recorder pinned, REPRO_OBS unset: nothing should record.
        with recording() as recorder:
            payload = recorder.metrics_payload()
        assert payload["histograms"] == {}
