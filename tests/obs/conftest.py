"""Shared state hygiene for the telemetry tests.

The recorder is process-global and env-activated; every test here
starts from a clean slate (no ``REPRO_TRACE``/``REPRO_OBS`` leakage, no
pinned recorder) and leaves one behind.
"""

import pytest

from repro.obs import (
    FLIGHT_DIR_ENV_VAR,
    FLIGHT_ENV_VAR,
    LIVE_ENV_VAR,
    MANIFEST_ENV_VAR,
    METRICS_ENV_VAR,
    OBS_ENV_VAR,
    TRACE_ENV_VAR,
    reset_recorder,
)
from repro.obs.live import LIVE_INTERVAL_ENV_VAR


@pytest.fixture(autouse=True)
def clean_obs_state(monkeypatch):
    for var in (TRACE_ENV_VAR, METRICS_ENV_VAR, MANIFEST_ENV_VAR, OBS_ENV_VAR,
                LIVE_ENV_VAR, LIVE_INTERVAL_ENV_VAR, FLIGHT_ENV_VAR,
                FLIGHT_DIR_ENV_VAR):
        monkeypatch.delenv(var, raising=False)
    reset_recorder()
    yield
    reset_recorder()
