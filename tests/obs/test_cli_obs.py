"""CLI telemetry smoke: --trace/--metrics/--manifest and `repro stats`."""

import json
import os

from repro.cli import main
from repro.obs import (
    MANIFEST_ENV_VAR,
    METRICS_ENV_VAR,
    TRACE_ENV_VAR,
    get_recorder,
)

DELAY_ARGV = [
    "delay", "--gate", "nand2",
    "--edge", "a:fall:400ps",
    "--edge", "b:fall:150ps:100ps",
]


def _run_traced(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    manifest = tmp_path / "manifest.json"
    code = main(DELAY_ARGV + [
        "--trace", str(trace), "--metrics", str(metrics),
        "--manifest", str(manifest),
    ])
    assert code == 0
    assert "delay:" in capsys.readouterr().out  # command output intact
    return trace, metrics, manifest


class TestTracedRun:
    def test_trace_file_schema(self, tmp_path, capsys):
        trace, _, _ = _run_traced(tmp_path, capsys)
        document = json.loads(trace.read_text())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert set(("name", "ph", "ts", "dur", "pid", "tid")) <= set(event)
        names = {e["name"] for e in complete}
        assert "repro.delay" in names        # the root span
        assert "spice.transient" in names    # solver spans nested below it
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "repro" for e in metadata)

    def test_metrics_file_schema(self, tmp_path, capsys):
        _, metrics, _ = _run_traced(tmp_path, capsys)
        document = json.loads(metrics.read_text())
        assert document["kind"] == "repro-metrics"
        assert document["schema"] == 1
        assert document["counters"]["spice.newton.solves"] > 0

    def test_manifest_totals_and_provenance(self, tmp_path, capsys):
        _, _, manifest = _run_traced(tmp_path, capsys)
        document = json.loads(manifest.read_text())
        assert document["kind"] == "repro-manifest"
        assert document["command"] == "delay"
        assert document["args"]["gate"] == "nand2"
        assert document["totals"]["spice.newton.iterations"] > 0
        assert document["wall_seconds"] > 0

    def test_env_and_recorder_restored_after_main(self, tmp_path, capsys):
        _run_traced(tmp_path, capsys)
        for var in (TRACE_ENV_VAR, METRICS_ENV_VAR, MANIFEST_ENV_VAR):
            assert var not in os.environ
        assert not get_recorder().enabled

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        assert main(DELAY_ARGV) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []
        assert not get_recorder().enabled


class TestStatsCommand:
    def test_stats_on_metrics_file(self, tmp_path, capsys):
        _, metrics, _ = _run_traced(tmp_path, capsys)
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "spice.newton.iterations" in out

    def test_stats_on_manifest_titles_the_run(self, tmp_path, capsys):
        _, _, manifest = _run_traced(tmp_path, capsys)
        assert main(["stats", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("run manifest: command=delay git=")
        assert "wall=" in out

    def test_stats_on_non_document_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert main(["stats", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_stats_tolerates_missing_history(self, tmp_path, capsys):
        """An absent BENCH trajectory is a normal state, not an error."""
        assert main(["stats", str(tmp_path / "BENCH_batch.json")]) == 0
        assert "no recorded stats" in capsys.readouterr().out

    def test_stats_tolerates_empty_history(self, tmp_path, capsys):
        for text in ("", "  \n", "[]", "{}"):
            empty = tmp_path / "BENCH_empty.json"
            empty.write_text(text)
            assert main(["stats", str(empty)]) == 0
            assert "no recorded stats" in capsys.readouterr().out

    def test_stats_renders_bench_record(self, tmp_path, capsys):
        record = tmp_path / "BENCH_batch.json"
        record.write_text(json.dumps({
            "schema": 1, "kind": "repro-bench", "name": "batch",
            "wall_seconds": 4.5,
            "tests": {"test_speedup": {
                "wall_seconds": 4.5, "scale": 0.25, "speedup": 2.3,
                "newton_iterations": 93348.0, "transient_analyses": 128.0,
                "cache_hit_rate": 1.0,
            }},
        }))
        assert main(["stats", str(record)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("benchmark record: batch")
        assert "test_speedup" in out
        assert "speedup=2.30x" in out
        assert "newton-iters=93348" in out

    def test_stats_on_bench_record_without_tests(self, tmp_path, capsys):
        record = tmp_path / "BENCH_new.json"
        record.write_text(json.dumps(
            {"schema": 1, "kind": "repro-bench", "name": "new", "tests": {}}))
        assert main(["stats", str(record)]) == 0
        assert "no benchmark history" in capsys.readouterr().out
