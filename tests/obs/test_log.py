"""Central logging: levels, formatting, capture compatibility."""

import logging

from repro.log import ROOT_LOGGER, get_logger, setup_logging


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger("charlib.cache").name == "repro.charlib.cache"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.cli").name == "repro.cli"
        assert get_logger("repro").name == "repro"


class TestSetupLogging:
    def test_default_level_is_warning(self, capsys):
        setup_logging(0)
        log = get_logger("unit")
        log.info("quiet info")
        log.warning("loud warning")
        err = capsys.readouterr().err
        assert "quiet info" not in err
        assert "warning: loud warning" in err

    def test_verbose_levels(self, capsys):
        setup_logging(1)
        get_logger("unit").info("progress")
        assert "info: progress" in capsys.readouterr().err
        setup_logging(2)
        get_logger("unit").debug("detail")
        assert "debug: detail" in capsys.readouterr().err

    def test_quiet_shows_errors_only(self, capsys):
        setup_logging(0, quiet=True)
        log = get_logger("unit")
        log.warning("suppressed")
        log.error("boom")
        err = capsys.readouterr().err
        assert "suppressed" not in err
        assert "error: boom" in err

    def test_lowercase_levelname(self, capsys):
        setup_logging(0)
        get_logger("unit").error("failed to parse")
        err = capsys.readouterr().err
        assert "error: failed to parse" in err
        assert "ERROR" not in err

    def test_repeated_setup_installs_one_handler(self):
        for _ in range(3):
            logger = setup_logging(1)
        assert len(logger.handlers) == 1
        assert logger.name == ROOT_LOGGER
        assert not logger.propagate

    def test_explicit_level_overrides(self, capsys):
        setup_logging(0, level=logging.DEBUG)
        get_logger("unit").debug("forced")
        assert "debug: forced" in capsys.readouterr().err
