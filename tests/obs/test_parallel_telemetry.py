"""Worker-count invariance of pooled telemetry.

The acceptance property of the whole worker seam: an instrumented work
list produces *identical counter totals* whether it runs serially or
fanned over a pool, and worker spans come back tagged with the worker's
own pid.
"""

import os

import pytest

from repro.obs import OBS_ENV_VAR, get_recorder, recording
from repro.parallel import parallel_map


def _instrumented(x):
    recorder = get_recorder()
    with recorder.span("unit.work", item=x):
        recorder.counter("unit.items").inc()
        recorder.counter("unit.sum", parity=x % 2).inc(x)
    return x * 2


ITEMS = list(range(8))


def _run(workers, monkeypatch):
    # Publish to the env so pool workers enable their own recorders.
    monkeypatch.setenv(OBS_ENV_VAR, "1")
    with recording() as rec:
        results = parallel_map(_instrumented, ITEMS, workers=workers)
    return results, rec


class TestWorkerCountInvariance:
    def test_counters_identical_serial_vs_pool(self, monkeypatch):
        serial_results, serial_rec = _run(0, monkeypatch)
        pool_results, pool_rec = _run(2, monkeypatch)
        assert pool_results == serial_results == [x * 2 for x in ITEMS]
        serial_counters = serial_rec.metrics_payload()["counters"]
        pool_counters = pool_rec.metrics_payload()["counters"]
        assert serial_counters == pool_counters
        assert pool_counters["unit.items"] == len(ITEMS)
        assert pool_counters["parallel.tasks.completed"] == len(ITEMS)

    def test_pool_ships_worker_spans_with_worker_pids(self, monkeypatch):
        _, rec = _run(2, monkeypatch)
        events = rec.trace_events()
        work = [e for e in events if e["name"] == "unit.work"]
        tasks = [e for e in events if e["name"] == "parallel.task"]
        assert len(work) == len(tasks) == len(ITEMS)
        # Linux pools fork: the spans carry the worker pids, not ours.
        assert all(e["pid"] != os.getpid() for e in work)
        assert sorted(e["args"]["index"] for e in tasks) == ITEMS

    def test_pool_records_queue_and_execute_timings(self, monkeypatch):
        _, rec = _run(2, monkeypatch)
        histograms = rec.metrics_payload()["histograms"]
        for name in ("parallel.task_queue_wait_seconds",
                     "parallel.task_execute_seconds"):
            assert histograms[name]["count"] == len(ITEMS)
        assert rec.metrics_payload()["gauges"]["parallel.workers"] == 2

    def test_serial_run_keeps_parent_pid_spans(self, monkeypatch):
        _, rec = _run(0, monkeypatch)
        events = rec.trace_events()
        assert events and all(e["pid"] == os.getpid() for e in events)

    def test_disabled_pool_run_emits_nothing(self):
        assert OBS_ENV_VAR not in os.environ
        results = parallel_map(_instrumented, ITEMS, workers=2)
        assert results == [x * 2 for x in ITEMS]
        recorder = get_recorder()
        assert not recorder.enabled
        assert recorder.trace_events() == []


def _failing(x):
    if x == 3:
        raise ValueError("boom")
    get_recorder().counter("unit.items").inc()
    return x


class TestFailureAccounting:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_collected_failures_counted(self, workers, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        with recording() as rec:
            results = parallel_map(_failing, ITEMS, workers=workers,
                                   on_error="collect")
        counters = rec.metrics_payload()["counters"]
        assert counters["parallel.tasks.failed{kind=error}"] == 1
        assert counters["parallel.tasks.completed"] == len(ITEMS) - 1
        assert counters["unit.items"] == len(ITEMS) - 1
        assert results[3].kind == "error"
