"""Manifest knob audit: every ``REPRO_*`` read in src/ is in ENV_KNOBS.

A run manifest is only useful provenance if it records *every*
environment knob that could have changed the run.  This test greps the
source tree for ``REPRO_*`` literals so a new knob cannot be added
without also landing in :data:`repro.obs.manifest.ENV_KNOBS` -- the
failure message names the missing knob and the file that reads it.
"""

import re
from pathlib import Path

from repro.obs.manifest import ENV_KNOBS

SRC = Path(__file__).resolve().parents[2] / "src"

KNOB_RE = re.compile(r'"(REPRO_[A-Z][A-Z0-9_]*)"')

#: ``REPRO_*`` literals in src/ that are not environment knobs.
NOT_KNOBS = {
    # The fault-injection *clause prefix* grep would also match any
    # plain-prose mentions; currently everything matched is a knob.
}


def _knobs_read_in_src():
    found = {}
    for path in sorted(SRC.rglob("*.py")):
        for match in KNOB_RE.finditer(path.read_text(encoding="utf-8")):
            knob = match.group(1)
            if knob not in NOT_KNOBS:
                found.setdefault(knob, path.relative_to(SRC))
    return found


def test_every_repro_knob_is_in_the_manifest():
    found = _knobs_read_in_src()
    assert found, "grep found no REPRO_* knobs under src/ -- regex rot?"
    missing = {knob: str(path) for knob, path in found.items()
               if knob not in ENV_KNOBS}
    assert not missing, (
        "REPRO_* knobs read in src/ but absent from "
        f"repro.obs.manifest.ENV_KNOBS: {missing}")


def test_live_family_is_manifested():
    """The PR-8 observability knobs specifically (regression anchor)."""
    for knob in ("REPRO_LIVE", "REPRO_LIVE_INTERVAL",
                 "REPRO_FLIGHT", "REPRO_FLIGHT_DIR"):
        assert knob in ENV_KNOBS, knob


def test_serve_family_is_manifested():
    """The serve-daemon knobs specifically (regression anchor)."""
    for knob in ("REPRO_SERVE_TTL", "REPRO_SERVE_CACHE_MAX",
                 "REPRO_SERVE_COALESCE", "REPRO_SERVE_GATHER",
                 "REPRO_SERVE_LANES"):
        assert knob in ENV_KNOBS, knob


def test_manifest_has_no_stale_knobs():
    """Knobs listed in ENV_KNOBS but read nowhere under src/ are stale
    provenance -- they record environment that cannot affect the run."""
    found = _knobs_read_in_src()
    stale = [knob for knob in ENV_KNOBS if knob not in found]
    assert not stale, f"ENV_KNOBS entries no code reads: {stale}"
