"""Exporters: trace documents, metrics files, the stats rendering."""

import json
import os

from repro.obs import (
    Recorder,
    degradation_summary,
    format_stats,
    metrics_document,
    recording,
    trace_document,
    write_chrome_trace,
    write_metrics,
)


def _recorded():
    recorder = Recorder()
    with recorder.span("outer"):
        recorder.counter("cache.hits").inc(3)
        recorder.gauge("parallel.workers").set(4)
        recorder.histogram("seconds", edges=(0.1, 1.0)).observe(0.5)
    return recorder


class TestTraceDocument:
    def test_metadata_names_parent_and_workers(self):
        events = [
            {"name": "a", "cat": "repro", "ph": "X", "ts": 0.0, "dur": 1.0,
             "pid": os.getpid(), "tid": 1},
            {"name": "b", "cat": "repro", "ph": "X", "ts": 0.0, "dur": 1.0,
             "pid": 99999999, "tid": 1},
        ]
        document = trace_document(events)
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in metadata}
        assert names[os.getpid()] == "repro"
        assert names[99999999] == "repro worker 99999999"
        assert document["displayTimeUnit"] == "ms"
        assert [e for e in document["traceEvents"] if e["ph"] == "X"] == events

    def test_written_file_is_loadable_json(self, tmp_path):
        recorder = _recorded()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, recorder.trace_events())
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert complete and all(
            set(("name", "ph", "ts", "dur", "pid", "tid")) <= set(e)
            for e in complete
        )


class TestMetricsDocument:
    def test_envelope_and_round_trip(self, tmp_path):
        recorder = _recorded()
        path = tmp_path / "metrics.json"
        write_metrics(path, recorder.metrics_payload())
        document = json.loads(path.read_text())
        assert document["kind"] == "repro-metrics"
        assert document["schema"] == 1
        assert document["counters"]["cache.hits"] == 3
        assert document == metrics_document(recorder.metrics_payload())


class TestFormatStats:
    def test_sections_and_digests(self):
        text = format_stats(_recorded().metrics_payload(), title="run")
        assert text.splitlines()[0] == "run"
        assert "counters:" in text and "cache.hits" in text
        assert "gauges:" in text and "parallel.workers" in text
        assert "n=1" in text and "p50<=1" in text

    def test_empty_payload(self):
        assert "no metrics recorded" in format_stats(
            {"counters": {}, "gauges": {}, "histograms": {}})


class TestDegradationSummary:
    def test_empty_when_disabled(self):
        assert degradation_summary() == ""

    def test_empty_when_nothing_lost(self):
        with recording():
            assert degradation_summary() == ""

    def test_reports_retries_faults_and_fills(self):
        with recording() as rec:
            rec.counter("spice.retries", phase="dc", rung=1).inc(2)
            rec.counter("charlib.points.failed", kind="timeout").inc(3)
            rec.counter("charlib.cells.filled").inc(4)
            line = degradation_summary()
        assert line.startswith("metrics: ")
        assert "solver retries 2" in line
        assert "timeout=3" in line
        assert "cells neighbor-filled 4" in line


class TestHeadlineSummary:
    """`repro stats` leads with the operator-triage counters."""

    def _payload(self):
        recorder = Recorder()
        recorder.counter("spice.newton.solves").inc(200)
        recorder.counter("spice.newton.iterations").inc(640)
        recorder.counter("spice.guard.rung", rung="gmin_ramp").inc(3)
        recorder.counter("spice.guard.rung", rung="nudge").inc(1)
        recorder.counter("spice.guard.aborts", reason="watchdog").inc(1)
        recorder.counter("spice.batch.evictions", reason="divergence").inc(2)
        recorder.counter("spice.sparse.factorizations").inc(40)
        recorder.counter("obs.flight.dumps", reason="guard_watchdog").inc(1)
        return recorder.metrics_payload()

    def test_surfaces_guard_eviction_and_sparse_families(self):
        from repro.obs import headline_summary

        text = headline_summary(self._payload())
        assert text.startswith("headline:")
        assert "solves 200" in text
        assert "guard rungs: gmin_ramp=3, nudge=1" in text
        assert "guard aborts: watchdog=1" in text
        assert "batch evictions: divergence=2" in text
        assert "sparse: factorizations=40" in text
        assert "flight dumps: guard_watchdog=1" in text

    def test_empty_for_quiet_payload(self):
        from repro.obs import headline_summary

        assert headline_summary(
            {"counters": {}, "gauges": {}, "histograms": {}}) == ""

    def test_format_stats_leads_with_headline(self):
        from repro.obs import format_stats, headline_summary

        payload = self._payload()
        text = format_stats(payload)
        assert headline_summary(payload).splitlines()[1] in text
        assert text.index("headline:") < text.index("counters:")
