"""Flight recorder: ring semantics, dump artifacts, failure triggers.

The headline acceptance scenario: a run whose retry ladder exhausts (or
whose guard aborts) under injected faults must leave a
``flight_*.json`` postmortem carrying the recent solve records -- phase
timings, rung history, outcomes -- plus the trigger context.
"""

import json
import glob
import os

import pytest

from repro.obs import (
    OBS_ENV_VAR,
    Recorder,
    recording,
)
from repro.obs.flight import (
    DEFAULT_RING_SIZE,
    FLIGHT_DIR_ENV_VAR,
    FLIGHT_ENV_VAR,
    FlightRecorder,
    dump_flight,
    flight_dump_dir,
    flight_ring_size,
)
from repro.errors import ConvergenceError
from repro.resilience import FaultInjection
from repro.spice import transient
from repro.spice.builders import inverter_chain


def _dumps_in(directory):
    return sorted(glob.glob(os.path.join(str(directory), "flight_*.json")))


def _load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestRingConfig:
    def test_default_size(self):
        assert flight_ring_size() == DEFAULT_RING_SIZE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(FLIGHT_ENV_VAR, "8")
        assert flight_ring_size() == 8

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(FLIGHT_ENV_VAR, "0")
        assert flight_ring_size() == 0
        assert not FlightRecorder().enabled

    def test_garbage_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(FLIGHT_ENV_VAR, "many")
        assert flight_ring_size() == DEFAULT_RING_SIZE

    def test_negative_clamps_to_disabled(self, monkeypatch):
        monkeypatch.setenv(FLIGHT_ENV_VAR, "-3")
        assert flight_ring_size() == 0

    def test_dump_dir_default_and_override(self, monkeypatch):
        assert flight_dump_dir() == "."
        monkeypatch.setenv(FLIGHT_DIR_ENV_VAR, "out/live")
        assert flight_dump_dir() == "out/live"


class TestRingSemantics:
    def test_eviction_keeps_newest(self):
        ring = FlightRecorder(size=3)
        for i in range(5):
            ring.note_solve(n=i)
        kept = [r["n"] for r in ring.records()]
        assert kept == [2, 3, 4]

    def test_solves_and_rungs_interleave_in_order(self):
        ring = FlightRecorder(size=8)
        ring.note_solve(n=1)
        ring.note_rung("gmin_ramp")
        ring.note_solve(n=2)
        events = [(r["event"], r.get("rung") or r.get("n"))
                  for r in ring.records()]
        assert events == [("solve", 1), ("rung", "gmin_ramp"), ("solve", 2)]
        stamps = [r["t"] for r in ring.records()]
        assert stamps == sorted(stamps)

    def test_clear(self):
        ring = FlightRecorder(size=4)
        ring.note_solve(n=1)
        ring.clear()
        assert ring.records() == []

    def test_disabled_ring_ignores_events(self):
        ring = FlightRecorder(size=0)
        ring.note_solve(n=1)
        ring.note_rung("nudge")
        assert ring.records() == []
        assert ring.dump("whatever") is None


class TestDumpArtifact:
    def test_dump_document_shape(self, tmp_path):
        ring = FlightRecorder(size=4)
        ring.note_solve(driver="dense", n=6, iterations=9,
                        outcome="converged",
                        phases={"assembly": 0.01, "factorize": 0.02})
        ring.note_rung("nudge")
        path = ring.dump("retry_ladder_exhausted",
                         context={"phase": "dc", "attempts": 3},
                         directory=str(tmp_path))
        assert path is not None and os.path.basename(path).startswith("flight_")
        document = _load(path)
        assert document["kind"] == "repro-flight"
        assert document["schema"] == 1
        assert document["reason"] == "retry_ladder_exhausted"
        assert document["context"] == {"phase": "dc", "attempts": 3}
        solve, rung = document["records"]
        assert solve["event"] == "solve" and solve["driver"] == "dense"
        assert solve["phases"]["factorize"] == 0.02
        assert rung == {"event": "rung", "rung": "nudge", "t": rung["t"]}

    def test_empty_ring_still_dumps(self, tmp_path):
        """A fault that kills every attempt before its first Newton
        solve leaves no records -- the reason/context alone are the
        postmortem, so the dump must still land."""
        ring = FlightRecorder(size=4)
        path = ring.dump("retry_ladder_exhausted",
                         context={"error": "injected"},
                         directory=str(tmp_path))
        assert path is not None
        assert _load(path)["records"] == []

    def test_sequential_dumps_get_distinct_names(self, tmp_path):
        ring = FlightRecorder(size=4)
        first = ring.dump("a", directory=str(tmp_path))
        second = ring.dump("b", directory=str(tmp_path))
        assert first != second
        assert len(_dumps_in(tmp_path)) == 2

    def test_unwritable_directory_returns_none(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        ring = FlightRecorder(size=4)
        assert ring.dump("a", directory=str(blocked)) is None

    def test_dump_flight_counts_by_reason(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV_VAR, str(tmp_path))
        recorder = Recorder()
        recorder.flight.note_solve(n=1)
        assert dump_flight(recorder, "guard_watchdog") is not None
        counters = recorder.metrics_payload()["counters"]
        assert counters["obs.flight.dumps{reason=guard_watchdog}"] == 1

    def test_dump_flight_none_recorder_is_noop(self):
        assert dump_flight(None, "anything") is None


@pytest.fixture
def flight_env(monkeypatch, tmp_path):
    """Telemetry on, flight dumps routed into a fresh directory."""
    monkeypatch.setenv(OBS_ENV_VAR, "1")
    monkeypatch.setenv(FLIGHT_DIR_ENV_VAR, str(tmp_path))
    return tmp_path


class TestFailureTriggers:
    def test_exhausted_ladder_dumps_solve_records(self, flight_env,
                                                  monkeypatch):
        """``sparse@factorize:always`` makes every Newton solve die at
        the factorization, so the ladder walks all its rungs and then
        exhausts -- the dump must carry the solve records (driver,
        outcome, phase timings) and the interleaved rung history."""
        monkeypatch.setenv("REPRO_SPARSE", "1")
        with recording():
            with FaultInjection("sparse@factorize:always"):
                with pytest.raises(ConvergenceError):
                    transient(inverter_chain(2), "0.2ns")
        dumps = [_load(p) for p in _dumps_in(flight_env)]
        assert dumps, "retry-ladder exhaustion wrote no flight dump"
        final = dumps[-1]
        assert final["reason"] == "retry_ladder_exhausted"
        assert final["context"]["phase"] == "transient"
        solves = [r for r in final["records"] if r["event"] == "solve"]
        rungs = [r["rung"] for r in final["records"] if r["event"] == "rung"]
        assert solves, "dump carries no solve records"
        assert all(r["driver"] == "sparse" for r in solves)
        assert all(r["outcome"] == "singular" for r in solves)
        assert all("assembly" in r["phases"] for r in solves)
        assert "gmin_ramp" in rungs and "nudge" in rungs

    def test_fault_before_first_solve_still_dumps(self, flight_env):
        """``transient@*`` faults fire at attempt start, before any
        Newton solve -- the ring is empty but the postmortem (reason +
        error context) must still be written."""
        with recording():
            with FaultInjection("transient@*:always"):
                with pytest.raises(ConvergenceError):
                    transient(inverter_chain(2), "0.2ns")
        dumps = [_load(p) for p in _dumps_in(flight_env)]
        assert dumps
        assert dumps[-1]["reason"] == "retry_ladder_exhausted"
        assert "injected" in dumps[-1]["context"]["error"]

    def test_guard_watchdog_abort_dumps(self, flight_env, monkeypatch):
        """``REPRO_GUARD_WALL=0`` expires the per-solve watchdog on its
        first check; the guard abort is the second flight-dump
        trigger."""
        monkeypatch.setenv("REPRO_GUARD", "1")
        monkeypatch.setenv("REPRO_GUARD_WALL", "0")
        with recording() as recorder:
            with pytest.raises(ConvergenceError):
                transient(inverter_chain(2), "0.2ns")
            counters = recorder.metrics_payload()["counters"]
        assert counters.get("spice.guard.aborts{reason=watchdog}", 0) > 0
        reasons = {_load(p)["reason"] for p in _dumps_in(flight_env)}
        assert "guard_watchdog" in reasons

    def test_flight_disabled_leaves_no_dumps(self, flight_env, monkeypatch):
        monkeypatch.setenv(FLIGHT_ENV_VAR, "0")
        with recording():
            with FaultInjection("transient@*:always"):
                with pytest.raises(ConvergenceError):
                    transient(inverter_chain(2), "0.2ns")
        assert _dumps_in(flight_env) == []

    def test_clean_solve_dumps_nothing(self, flight_env):
        with recording():
            transient(inverter_chain(2), "0.2ns")
        assert _dumps_in(flight_env) == []
