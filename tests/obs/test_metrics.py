"""Typed metrics: deterministic keys, merging, deltas."""

import pytest

from repro.errors import ReproError
from repro.obs import (
    Histogram,
    MetricRegistry,
    merge_payloads,
    metric_key,
    subtract_payloads,
)


class TestMetricKey:
    def test_plain_name(self):
        assert metric_key("cache.hits") == "cache.hits"

    def test_labels_sorted(self):
        assert (metric_key("x", {"b": 1, "a": 2})
                == metric_key("x", {"a": 2, "b": 1})
                == "x{a=2,b=1}")


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricRegistry()
        registry.counter("n").inc()
        registry.counter("n").inc(4)
        assert registry.snapshot()["counters"]["n"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ReproError):
            MetricRegistry().counter("n").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricRegistry()
        registry.gauge("workers").set(4)
        registry.gauge("workers").set(2)
        assert registry.snapshot()["gauges"]["workers"] == 2

    def test_counter_total_sums_labels(self):
        registry = MetricRegistry()
        registry.counter("spice.retries", phase="dc", rung=1).inc(2)
        registry.counter("spice.retries", phase="transient", rung=1).inc(3)
        registry.counter("spice.retries.other").inc(100)  # prefix, not label
        assert registry.counter_total("spice.retries") == 5

    def test_name_type_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")


class TestHistogram:
    def test_bucketing_and_mean(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 7.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1]
        assert hist.count == 4
        assert hist.mean == pytest.approx(62.5 / 4)

    def test_payload_round_trip(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(3.0)
        clone = Histogram.from_payload(hist.to_payload())
        assert clone.to_payload() == hist.to_payload()

    def test_merge_requires_equal_edges(self):
        with pytest.raises(ReproError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_registry_edge_conflict_raises(self):
        registry = MetricRegistry()
        registry.histogram("t", edges=(1.0, 2.0))
        with pytest.raises(ReproError):
            registry.histogram("t", edges=(1.0, 3.0))

    def test_bad_edges_raise(self):
        with pytest.raises(ReproError):
            Histogram(())
        with pytest.raises(ReproError):
            Histogram((2.0, 1.0))


def _payload(units, seconds):
    registry = MetricRegistry()
    registry.counter("units").inc(units)
    for value in seconds:
        registry.histogram("seconds", edges=(0.1, 1.0)).observe(value)
    return registry.snapshot()


class TestPayloadAlgebra:
    def test_merge_associative_and_commutative(self):
        a = _payload(1, [0.05])
        b = _payload(2, [0.5, 0.5])
        c = _payload(4, [5.0])
        left = merge_payloads(merge_payloads(a, b), c)
        right = merge_payloads(a, merge_payloads(b, c))
        assert left == right
        assert merge_payloads(a, b) == merge_payloads(b, a)
        assert left["counters"]["units"] == 7
        assert left["histograms"]["seconds"]["counts"] == [1, 2, 1]

    def test_subtract_drops_zero_deltas(self):
        registry = MetricRegistry()
        registry.counter("a").inc(3)
        registry.counter("b").inc(1)
        mark = registry.mark()
        registry.counter("a").inc(2)
        delta = registry.delta_since(mark)
        assert delta["counters"] == {"a": 2}
        assert delta["histograms"] == {}

    def test_subtract_rejects_edge_change(self):
        before = _payload(0, [0.5])
        after = dict(before)
        after["histograms"] = {
            "seconds": {"edges": [0.2, 1.0], "counts": [0, 1, 0],
                        "sum": 0.5, "count": 1},
        }
        with pytest.raises(ReproError):
            subtract_payloads(after, before)

    def test_mark_delta_merge_reconstructs(self):
        """A worker-style mark/delta round trip loses nothing."""
        registry = MetricRegistry()
        registry.counter("units").inc(5)
        mark = registry.mark()
        registry.counter("units").inc(2)
        registry.histogram("seconds", edges=(0.1, 1.0)).observe(0.5)
        parent = MetricRegistry()
        parent.merge(mark)
        parent.merge(registry.delta_since(mark))
        assert parent.snapshot() == registry.snapshot()


class TestTransactionalMerge:
    """A rejected payload must leave the registry untouched.

    The pre-fix ``merge`` mutated while iterating: a payload whose
    *second* entry was malformed had already applied its first, so a
    worker delta could land half-absorbed -- exactly the skew the
    worker-invariance guarantee forbids.
    """

    def _seeded(self):
        registry = MetricRegistry()
        registry.counter("units").inc(5)
        registry.gauge("level").set(2.0)
        registry.histogram("seconds", edges=(0.1, 1.0)).observe(0.5)
        return registry, registry.snapshot()

    def test_nonnumeric_counter_rejects_whole_payload(self):
        registry, before = self._seeded()
        with pytest.raises(ReproError):
            registry.merge({"counters": {"units": 1.0, "bad": "NaN-ish?"},
                            "gauges": {"level": 9.0}})
        assert registry.snapshot() == before

    def test_histogram_edge_mismatch_rejects_whole_payload(self):
        registry, before = self._seeded()
        with pytest.raises(ReproError):
            registry.merge({
                "counters": {"units": 3.0},
                "histograms": {
                    "seconds": {"edges": [0.2, 2.0], "counts": [1, 0, 0],
                                "sum": 0.1, "count": 1},
                },
            })
        assert registry.snapshot() == before, \
            "counter applied despite the histogram rejection"

    def test_bad_histogram_shape_rejects_whole_payload(self):
        registry, before = self._seeded()
        with pytest.raises(ReproError):
            registry.merge({
                "gauges": {"level": 7.0},
                "histograms": {"seconds": {"edges": [0.1, 1.0]}},
            })
        assert registry.snapshot() == before

    def test_cross_type_conflict_rejects_whole_payload(self):
        registry, before = self._seeded()
        with pytest.raises(ReproError):
            registry.merge({"counters": {"fresh": 1.0, "level": 2.0}})
        assert registry.snapshot() == before, \
            "'fresh' landed although 'level' conflicted with a gauge"

    def test_valid_payload_still_applies(self):
        registry, _ = self._seeded()
        registry.merge({
            "counters": {"units": 2.0},
            "gauges": {"level": 4.0},
            "histograms": {
                "seconds": {"edges": [0.1, 1.0], "counts": [1, 0, 0],
                            "sum": 0.05, "count": 1},
            },
        })
        snap = registry.snapshot()
        assert snap["counters"]["units"] == 7.0
        assert snap["gauges"]["level"] == 4.0
        assert snap["histograms"]["seconds"]["count"] == 2

    def test_recorder_absorb_task_is_transactional(self):
        from repro.obs import Recorder

        recorder = Recorder()
        recorder.counter("units").inc(5)
        before = recorder.metrics_payload()
        with pytest.raises(ReproError):
            recorder.absorb_task({
                "metrics": {"counters": {"units": 1.0, "oops": object()}},
                "spans": [{"name": "task"}],
            })
        assert recorder.metrics_payload() == before
        assert recorder.drain_spans() == []
