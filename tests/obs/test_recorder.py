"""The recorder: spans, env activation, the disabled no-op path."""

import os
import threading

from repro.obs import (
    OBS_ENV_VAR,
    TRACE_ENV_VAR,
    NullRecorder,
    Recorder,
    capture_task,
    get_recorder,
    recording,
    reset_recorder,
    set_recorder,
    traced,
)

REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


class TestSpans:
    def test_span_event_schema(self):
        recorder = Recorder()
        with recorder.span("outer", gate="nand3"):
            pass
        (event,) = recorder.trace_events()
        for field in REQUIRED_EVENT_FIELDS:
            assert field in event
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident() % 2**31
        assert event["args"] == {"gate": "nand3"}
        assert event["dur"] >= 0

    def test_nested_spans_close_inner_first(self):
        recorder = Recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        names = [e["name"] for e in recorder.trace_events()]
        assert names == ["inner", "outer"]
        inner, outer = recorder.trace_events()
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_drain_empties_buffer(self):
        recorder = Recorder()
        with recorder.span("s"):
            pass
        assert len(recorder.drain_spans()) == 1
        assert recorder.trace_events() == []

    def test_traced_decorator_records_under_pinned_recorder(self):
        @traced("unit.work", flavor="test")
        def work(x):
            return x + 1

        with recording() as rec:
            assert work(1) == 2
        (event,) = rec.trace_events()
        assert event["name"] == "unit.work"
        assert event["args"] == {"flavor": "test"}

    def test_traced_decorator_noop_when_disabled(self):
        @traced("unit.work")
        def work(x):
            return x + 1

        assert work(1) == 2  # NullRecorder path: no spans anywhere
        assert get_recorder().trace_events() == []


class TestActivation:
    def test_disabled_by_default(self):
        assert isinstance(get_recorder(), NullRecorder)

    def test_env_var_enables_and_memoizes(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        recorder = get_recorder()
        assert recorder.enabled
        assert get_recorder() is recorder  # memoized on the env signature

    def test_env_change_re_resolves(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "/tmp/a.json")
        assert get_recorder().enabled
        monkeypatch.delenv(TRACE_ENV_VAR)
        assert not get_recorder().enabled

    def test_falsy_obs_values_stay_disabled(self, monkeypatch):
        for value in ("0", "false", "off", "no", ""):
            monkeypatch.setenv(OBS_ENV_VAR, value)
            assert not get_recorder().enabled

    def test_explicit_pin_beats_env(self, monkeypatch):
        pinned = Recorder()
        set_recorder(pinned)
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        assert get_recorder() is pinned
        reset_recorder()
        assert get_recorder() is not pinned

    def test_recording_restores_previous_state(self):
        before = get_recorder()
        with recording() as rec:
            assert get_recorder() is rec
        assert get_recorder() is before


class TestNullRecorder:
    def test_every_operation_emits_nothing(self):
        recorder = NullRecorder()
        with recorder.span("s", x=1):
            recorder.counter("c", k="v").inc(5)
            recorder.gauge("g").set(2)
            recorder.histogram("h").observe(0.5)
        assert recorder.trace_events() == []
        assert recorder.metrics_payload() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert recorder.drain_spans() == []


def _task(x):
    get_recorder().counter("task.units").inc(x)
    return x * 2


class TestCaptureTask:
    def test_disabled_ships_no_telemetry(self):
        value, telemetry = capture_task(_task, 3, 0)
        assert value == 6
        assert telemetry is None

    def test_delta_isolated_from_preexisting_state(self):
        """A forked worker inherits parent state; it must not re-ship it."""
        with recording() as rec:
            rec.counter("task.units").inc(100)  # "parent" counts, pre-fork
            with rec.span("parent.span"):
                pass
            value, telemetry = capture_task(_task, 3, 7)
        assert value == 6
        assert telemetry["metrics"]["counters"] == {"task.units": 3}
        names = [e["name"] for e in telemetry["spans"]]
        assert names == ["parallel.task"]
        assert telemetry["spans"][0]["args"] == {"index": 7}
        assert telemetry["end"] >= telemetry["start"]
        assert telemetry["pid"] == os.getpid()

    def test_absorb_merges_metrics_and_spans(self):
        with recording():
            _, telemetry = capture_task(_task, 2, 0)
        parent = Recorder()
        parent.counter("task.units").inc(1)
        parent.absorb_task(telemetry)
        parent.absorb_task(None)  # disabled-worker envelope: no-op
        assert parent.metrics_payload()["counters"]["task.units"] == 3
        assert [e["name"] for e in parent.trace_events()] == ["parallel.task"]
