"""Run manifests and the CLI run context."""

import argparse
import json
import os

from repro.obs import (
    MANIFEST_ENV_VAR,
    METRICS_ENV_VAR,
    OBS_ENV_VAR,
    TRACE_ENV_VAR,
    Recorder,
    get_recorder,
)
from repro.obs.manifest import RunContext, build_manifest, git_sha, write_manifest


def _recorder_with_work():
    recorder = Recorder()
    recorder.counter("spice.newton.iterations").inc(100)
    recorder.counter("spice.retries", phase="dc", rung=1).inc(2)
    recorder.counter("cache.hits").inc(5)
    recorder.counter("unrelated").inc(9)
    return recorder


class TestBuildManifest:
    def test_headline_totals_sum_labels_and_drop_zeros(self):
        manifest = build_manifest(_recorder_with_work(), command="test")
        assert manifest["kind"] == "repro-manifest"
        assert manifest["totals"] == {
            "spice.newton.iterations": 100,
            "spice.retries": 2,
            "cache.hits": 5,
        }
        assert manifest["counters"]["unrelated"] == 9

    def test_records_set_env_knobs_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        monkeypatch.delenv("REPRO_RETRY", raising=False)
        manifest = build_manifest(Recorder(), command="test")
        assert manifest["env"].get("REPRO_WORKERS") == "4"
        assert "REPRO_RETRY" not in manifest["env"]

    def test_provenance_fields(self):
        manifest = build_manifest(Recorder(), command="characterize",
                                  argv=["repro", "characterize"])
        assert manifest["command"] == "characterize"
        assert manifest["argv"] == ["repro", "characterize"]
        assert manifest["python"] == os.sys.version.split()[0]
        sha = git_sha()
        assert manifest["git_sha"] == sha
        if sha is not None:  # this repo is git-managed
            assert len(sha) == 40

    def test_write_manifest_round_trips(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(path, _recorder_with_work(), command="x",
                       extra={"wall_seconds": 1.5})
        document = json.loads(path.read_text())
        assert document["wall_seconds"] == 1.5
        assert document["totals"]["cache.hits"] == 5


def _args(**overrides):
    base = dict(command="delay", trace=None, metrics=None, manifest=None,
                gate="nand2", workers=2, func=print)
    base.update(overrides)
    return argparse.Namespace(**base)


class TestRunContext:
    def test_no_flags_means_no_telemetry(self):
        context = RunContext.from_args(_args())
        context.arm()
        try:
            assert not context.wants_telemetry
            assert not get_recorder().enabled
        finally:
            assert context.finalize() == []

    def test_flags_publish_env_and_pin_recorder(self, tmp_path):
        trace = str(tmp_path / "trace.json")
        context = RunContext.from_args(_args(trace=trace))
        context.arm()
        try:
            assert os.environ[TRACE_ENV_VAR] == trace
            assert get_recorder().enabled
            with context.root_span("repro.delay"):
                get_recorder().counter("cache.hits").inc()
        finally:
            written = context.finalize()
        assert written == [trace]
        assert json.loads(open(trace).read())["traceEvents"]
        # Env and recorder state restored for the next in-process run.
        assert TRACE_ENV_VAR not in os.environ
        assert not get_recorder().enabled

    def test_cli_args_skip_unpicklable_entries(self):
        context = RunContext.from_args(_args())
        assert "func" not in context.cli_args
        assert context.cli_args["gate"] == "nand2"

    def test_env_only_activation_writes_env_named_paths(self, tmp_path,
                                                        monkeypatch):
        metrics = str(tmp_path / "metrics.json")
        monkeypatch.setenv(METRICS_ENV_VAR, metrics)
        context = RunContext.from_args(_args())
        context.arm()
        try:
            assert context.wants_telemetry
            get_recorder().counter("cache.hits").inc()
        finally:
            written = context.finalize()
        assert written == [metrics]
        assert json.loads(open(metrics).read())["counters"]["cache.hits"] == 1
        assert os.environ[METRICS_ENV_VAR] == metrics  # caller's var kept

    def test_manifest_records_wall_time_and_args(self, tmp_path):
        manifest = str(tmp_path / "manifest.json")
        context = RunContext.from_args(_args(manifest=manifest))
        context.arm()
        try:
            assert os.environ[MANIFEST_ENV_VAR] == manifest
        finally:
            context.finalize()
        document = json.loads(open(manifest).read())
        assert document["command"] == "delay"
        assert document["args"]["gate"] == "nand2"
        assert document["wall_seconds"] >= 0
        assert MANIFEST_ENV_VAR not in os.environ

    def test_obs_env_enables_without_paths(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        context = RunContext.from_args(_args())
        context.arm()
        try:
            assert context.wants_telemetry
            assert get_recorder().enabled
        finally:
            assert context.finalize() == []  # nothing to write, state clean
