"""CLI live observability: ``--live`` runs, ``repro top``, ``stats --trend``."""

import json
import os
import threading

import pytest

from repro.cli import main
from repro.obs import LIVE_ENV_VAR, get_recorder
from repro.obs.flight import FLIGHT_DIR_ENV_VAR
from repro.obs.live import OPENMETRICS_NAME, SNAPSHOT_NAME, read_snapshot

VTC_ARGV = ["vtc", "--gate", "inv"]


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    """A cache hit would serve the VTC with zero Newton solves -- these
    tests assert live counters, so force real solves every run."""
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")


class TestLiveFlag:
    def test_live_run_writes_snapshot_pair(self, tmp_path, capsys):
        live = tmp_path / "live"
        assert main(VTC_ARGV + ["--live", str(live)]) == 0
        document = read_snapshot(str(live / SNAPSHOT_NAME))
        assert document is not None
        assert document["counters"].get("spice.newton.solves", 0) > 0
        prom = (live / OPENMETRICS_NAME).read_text()
        assert "repro_spice_newton_solves_total" in prom
        assert prom.endswith("# EOF\n")
        assert "vil" in capsys.readouterr().out  # command output intact

    def test_live_env_var_equivalent(self, tmp_path, capsys, monkeypatch):
        live = tmp_path / "env-live"
        monkeypatch.setenv(LIVE_ENV_VAR, str(live))
        assert main(VTC_ARGV) == 0
        assert read_snapshot(str(live / SNAPSHOT_NAME)) is not None

    def test_live_points_flight_dumps_at_live_dir(self, tmp_path, capsys):
        """``--live`` routes flight postmortems next to the snapshots
        (REPRO_FLIGHT_DIR defaulted, then restored after the run)."""
        live = tmp_path / "live"
        assert FLIGHT_DIR_ENV_VAR not in os.environ
        assert main(VTC_ARGV + ["--live", str(live)]) == 0
        assert FLIGHT_DIR_ENV_VAR not in os.environ

    def test_no_live_leaves_no_thread_or_files(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(VTC_ARGV) == 0
        assert not (tmp_path / "live").exists()
        names = [t.name for t in threading.enumerate()]
        assert "repro-live-snapshotter" not in names
        assert not get_recorder().enabled  # recorder state restored


class TestTopCommand:
    def _snapshot_dir(self, tmp_path, capsys):
        live = tmp_path / "live"
        assert main(VTC_ARGV + ["--live", str(live)]) == 0
        capsys.readouterr()
        return live

    def test_top_once_renders_snapshot(self, tmp_path, capsys):
        live = self._snapshot_dir(tmp_path, capsys)
        assert main(["top", str(live), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "solves" in out

    def test_top_accepts_direct_json_path(self, tmp_path, capsys):
        live = self._snapshot_dir(tmp_path, capsys)
        assert main(["top", str(live / SNAPSHOT_NAME), "--once"]) == 0

    def test_top_once_without_snapshot_exits_1(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nowhere"), "--once"]) == 1
        assert "no live snapshot" in capsys.readouterr().out


def _bench_record(name, wall, phases):
    return {
        "kind": "repro-bench",
        "name": name,
        "wall_seconds": wall,
        "tests": {
            "test_case": {
                "wall_seconds": wall,
                "scale": 1.0,
                "phases": phases,
            },
        },
    }


class TestStatsTrend:
    def _write(self, directory, name, wall, phases=None):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{name}.json"
        path.write_text(json.dumps(_bench_record(name, wall, phases or {})))

    def test_trend_without_current_lists_baselines(self, tmp_path, capsys):
        base = tmp_path / "baseline"
        self._write(base, "solver", 1.0)
        assert main(["stats", "--trend", "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "bench trend" in out
        assert "no current record" in out
        assert "no regressions flagged" in out

    def test_trend_flags_regression_with_phase_attribution(self, tmp_path,
                                                           capsys):
        base, cur = tmp_path / "baseline", tmp_path / "current"
        self._write(base, "solver", 1.0,
                    {"dense": {"assembly": 0.2, "factorize": 0.2}})
        self._write(cur, "solver", 1.6,
                    {"dense": {"assembly": 0.2, "factorize": 0.8}})
        assert main(["stats", "--trend", "--baseline", str(base),
                     "--current", str(cur)]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "+60%" in out
        assert "factorize" in out  # the phase that moved the most
        assert "1 regression(s) flagged" in out

    def test_trend_within_threshold_is_ok(self, tmp_path, capsys):
        base, cur = tmp_path / "baseline", tmp_path / "current"
        self._write(base, "solver", 1.0)
        self._write(cur, "solver", 1.1)
        assert main(["stats", "--trend", "--baseline", str(base),
                     "--current", str(cur)]) == 0
        out = capsys.readouterr().out
        assert "ok solver/test_case" in out
        assert "no regressions flagged" in out

    def test_trend_custom_threshold(self, tmp_path, capsys):
        base, cur = tmp_path / "baseline", tmp_path / "current"
        self._write(base, "solver", 1.0)
        self._write(cur, "solver", 1.1)
        assert main(["stats", "--trend", "--baseline", str(base),
                     "--current", str(cur), "--threshold", "0.05"]) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_trend_on_committed_baselines(self, capsys):
        """The in-repo baseline directory must always render."""
        assert main(["stats", "--trend"]) == 0
        out = capsys.readouterr().out
        assert "bench trend" in out
        assert "BENCH" in out or "no baseline" not in out

    def test_stats_without_file_or_trend_errors(self, capsys):
        assert main(["stats"]) == 1
