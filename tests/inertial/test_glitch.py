"""Glitch measurement and macromodels (paper Section 6)."""

import pytest

from repro.errors import MeasurementError
from repro.inertial import (
    GlitchGrid,
    SimulatorGlitchModel,
    TableGlitchModel,
    characterize_glitch,
    glitch_response,
    pulse_response,
)
from repro.inertial.glitch import _causing_direction
from repro.charlib.cache import CharacterizationCache
from repro.waveform import FALL, RISE


class TestCausingDirection:
    def test_nand_causing_rises(self, nand3):
        assert _causing_direction(nand3, "b", "a") == RISE

    def test_nor_causing_falls(self, nor2):
        assert _causing_direction(nor2, "b", "a") == FALL


class TestGlitchResponse:
    def test_blocked_when_close(self, nand3, thresholds):
        shot = glitch_response(
            nand3, "b", "a", tau_causing=100e-12, tau_blocking=500e-12,
            sep=0.0, thresholds=thresholds)
        assert not shot.completed
        assert shot.extremum > thresholds.vil

    def test_completes_when_separated(self, nand3, thresholds):
        shot = glitch_response(
            nand3, "b", "a", tau_causing=100e-12, tau_blocking=500e-12,
            sep=800e-12, thresholds=thresholds)
        assert shot.completed
        assert shot.extremum < thresholds.vil

    def test_monotone_in_separation(self, nand3, thresholds):
        """Figure 6-1(b): vmin decreases as the blocker arrives later."""
        vmins = [
            glitch_response(
                nand3, "b", "a", tau_causing=100e-12, tau_blocking=500e-12,
                sep=sep, thresholds=thresholds).extremum
            for sep in (-100e-12, 150e-12, 400e-12, 800e-12)
        ]
        assert all(v2 < v1 for v1, v2 in zip(vmins, vmins[1:]))

    def test_slower_causing_needs_more_separation(self, nand3, thresholds):
        """At a fixed mid-range separation a slower causing edge leaves a
        shallower glitch (the paper's three-curve family ordering)."""
        fast = glitch_response(
            nand3, "b", "a", tau_causing=100e-12, tau_blocking=500e-12,
            sep=300e-12, thresholds=thresholds).extremum
        slow = glitch_response(
            nand3, "b", "a", tau_causing=1000e-12, tau_blocking=500e-12,
            sep=300e-12, thresholds=thresholds).extremum
        assert slow > fast

    def test_same_pin_rejected(self, nand3, thresholds):
        with pytest.raises(MeasurementError):
            glitch_response(nand3, "a", "a", tau_causing=1e-10,
                            tau_blocking=1e-10, sep=0.0,
                            thresholds=thresholds)

    def test_unknown_pin_rejected(self, nand3, thresholds):
        with pytest.raises(MeasurementError):
            glitch_response(nand3, "x", "a", tau_causing=1e-10,
                            tau_blocking=1e-10, sep=0.0,
                            thresholds=thresholds)


class TestPulseResponse:
    def test_wide_pulse_completes(self, nand3, thresholds):
        shot = pulse_response(
            nand3, "b", width=2e-9, tau_first=100e-12, tau_second=100e-12,
            first_direction=RISE, thresholds=thresholds)
        assert shot.completed

    def test_narrow_pulse_filtered(self, nand3, thresholds):
        shot = pulse_response(
            nand3, "b", width=210e-12, tau_first=100e-12, tau_second=100e-12,
            first_direction=RISE, thresholds=thresholds)
        assert not shot.completed

    def test_overlapping_edges_rejected(self, nand3, thresholds):
        with pytest.raises(MeasurementError):
            pulse_response(
                nand3, "b", width=50e-12, tau_first=200e-12,
                tau_second=200e-12, first_direction=RISE,
                thresholds=thresholds)

    def test_nonpositive_width_rejected(self, nand3, thresholds):
        with pytest.raises(MeasurementError):
            pulse_response(
                nand3, "b", width=0.0, tau_first=1e-10, tau_second=1e-10,
                first_direction=RISE, thresholds=thresholds)


class TestModels:
    def test_simulator_model_matches_response(self, nand3, thresholds):
        model = SimulatorGlitchModel(nand3, "b", "a", thresholds)
        direct = glitch_response(
            nand3, "b", "a", tau_causing=100e-12, tau_blocking=500e-12,
            sep=250e-12, thresholds=thresholds)
        assert model.extremum(100e-12, 500e-12, 250e-12) == pytest.approx(
            direct.extremum, rel=1e-9)

    def test_table_model_characterization(self, nand3, thresholds,
                                          tmp_path_factory):
        cache = CharacterizationCache(tmp_path_factory.mktemp("glitch"))
        grid = GlitchGrid(
            tau_causings=(100e-12, 800e-12),
            a2=(1.0, 4.0),
            a3=(-1.0, 0.0, 1.0, 2.5, 4.0),
        )
        model = characterize_glitch(nand3, "b", "a", thresholds,
                                    grid=grid, cache=cache)
        assert isinstance(model, TableGlitchModel)
        single_delay = 1.3e-10  # approximate Delta1 of 'b' at 100ps
        near = model.extremum(100e-12, 500e-12, 0.0, delta1=single_delay)
        far = model.extremum(100e-12, 500e-12, 5e-10, delta1=single_delay)
        assert near > far  # blocked glitch stays high

    def test_table_payload_roundtrip(self, nand3, thresholds,
                                     tmp_path_factory):
        cache = CharacterizationCache(tmp_path_factory.mktemp("glitch2"))
        grid = GlitchGrid(
            tau_causings=(100e-12, 800e-12),
            a2=(1.0, 4.0),
            a3=(-1.0, 0.0, 1.0, 2.5),
        )
        model = characterize_glitch(nand3, "b", "a", thresholds,
                                    grid=grid, cache=cache)
        clone = TableGlitchModel.from_payload(model.to_payload())
        assert clone.extremum(1e-10, 5e-10, 0.0, delta1=1.3e-10) == \
            pytest.approx(model.extremum(1e-10, 5e-10, 0.0, delta1=1.3e-10))
