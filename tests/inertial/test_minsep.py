"""Minimum-separation / minimum-pulse-width solvers."""

import pytest

from repro.errors import MeasurementError
from repro.inertial import SimulatorGlitchModel, minimum_separation
from repro.inertial.minsep import bisect_threshold, minimum_pulse_width
from repro.waveform import RISE


class TestBisect:
    def test_increasing(self):
        root = bisect_threshold(lambda x: x * x, 4.0, lo=0.0, hi=10.0,
                                increasing=True, tol=1e-9)
        assert root == pytest.approx(2.0, abs=1e-6)

    def test_decreasing(self):
        root = bisect_threshold(lambda x: 10.0 - x, 4.0, lo=0.0, hi=10.0,
                                increasing=False, tol=1e-9)
        assert root == pytest.approx(6.0, abs=1e-6)

    def test_unbracketed_raises(self):
        with pytest.raises(MeasurementError):
            bisect_threshold(lambda x: x, 100.0, lo=0.0, hi=1.0,
                             increasing=True)
        with pytest.raises(MeasurementError):
            bisect_threshold(lambda x: x, -1.0, lo=0.0, hi=1.0,
                             increasing=True)


class TestMinimumSeparation:
    @pytest.fixture(scope="class")
    def model(self, nand3, thresholds):
        return SimulatorGlitchModel(nand3, "b", "a", thresholds)

    def test_solution_is_on_threshold(self, model, nand3, thresholds):
        min_sep = minimum_separation(model, 100e-12, 500e-12, thresholds)
        v_at = model.extremum(100e-12, 500e-12, min_sep)
        assert v_at == pytest.approx(thresholds.vil, abs=0.05)

    def test_separating_more_completes(self, model, nand3, thresholds):
        min_sep = minimum_separation(model, 100e-12, 500e-12, thresholds)
        assert model.extremum(100e-12, 500e-12, min_sep + 200e-12) < \
            thresholds.vil

    def test_slower_causing_edge_needs_more_separation(self, model,
                                                       thresholds):
        fast = minimum_separation(model, 100e-12, 500e-12, thresholds)
        slow = minimum_separation(model, 1000e-12, 500e-12, thresholds)
        assert slow > fast


class TestMinimumPulseWidth:
    def test_value_and_filtering(self, nand3, thresholds):
        from repro.inertial.glitch import pulse_response
        width = minimum_pulse_width(
            nand3, "b", tau_first=100e-12, tau_second=100e-12,
            first_direction=RISE, thresholds=thresholds)
        assert width > 0.0
        wide = pulse_response(
            nand3, "b", width=width + 100e-12, tau_first=100e-12,
            tau_second=100e-12, first_direction=RISE, thresholds=thresholds)
        assert wide.completed
