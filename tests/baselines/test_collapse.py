"""Series/parallel collapsing and the equivalent-inverter baseline."""

import pytest

from repro.baselines import CollapsedInverterBaseline, collapse_strengths
from repro.baselines.collapse import equivalent_inverter_gate, onset_input
from repro.errors import ModelError
from repro.gates import Leaf, Parallel, Series
from repro.waveform import Edge, FALL, RISE


class TestCollapseStrengths:
    STRENGTHS = {"a": 2.0, "b": 2.0, "c": 4.0}

    def test_series(self):
        tree = Series(Leaf("a"), Leaf("b"))
        k = collapse_strengths(tree, self.STRENGTHS, {"a": True, "b": True})
        assert k == pytest.approx(1.0)  # 1/(1/2 + 1/2)

    def test_parallel(self):
        tree = Parallel(Leaf("a"), Leaf("c"))
        k = collapse_strengths(tree, self.STRENGTHS, {"a": True, "c": True})
        assert k == pytest.approx(6.0)

    def test_nonconducting_leaf_zero(self):
        tree = Parallel(Leaf("a"), Leaf("b"))
        k = collapse_strengths(tree, self.STRENGTHS, {"a": True, "b": False})
        assert k == pytest.approx(2.0)

    def test_series_with_open_is_zero(self):
        tree = Series(Leaf("a"), Leaf("b"))
        k = collapse_strengths(tree, self.STRENGTHS, {"a": True, "b": False})
        assert k == 0.0

    def test_nested(self):
        tree = Parallel(Series(Leaf("a"), Leaf("b")), Leaf("c"))
        k = collapse_strengths(tree, self.STRENGTHS,
                               {"a": True, "b": True, "c": True})
        assert k == pytest.approx(1.0 + 4.0)

    def test_nonpositive_strength_rejected(self):
        with pytest.raises(ModelError):
            collapse_strengths(Leaf("a"), {"a": 0.0}, {"a": True})


class TestOnsetInput:
    def test_parallel_onset_is_earliest(self):
        tree = Parallel(Leaf("a"), Leaf("b"))
        assert onset_input(tree, {}, ["b", "a"]) == "b"

    def test_series_onset_is_latest(self):
        tree = Series(Leaf("a"), Leaf("b"))
        assert onset_input(tree, {}, ["b", "a"]) == "a"

    def test_stable_conduction_counts(self):
        tree = Series(Leaf("a"), Leaf("b"))
        assert onset_input(tree, {"b": True}, ["a"]) == "a"

    def test_never_conducts_raises(self):
        tree = Series(Leaf("a"), Leaf("b"))
        with pytest.raises(ModelError):
            onset_input(tree, {"b": False}, ["a"])


class TestEquivalentInverter:
    def test_nand3_falling_inputs(self, nand3):
        """Two falling inputs: pull-up = 2 parallel PMOS; pull-down = the
        full 3-stack of (widened) NMOS."""
        inv = equivalent_inverter_gate(nand3, ("a", "b"), FALL)
        kp_expected = nand3.strength_p("a") + nand3.strength_p("b")
        kn_expected = 1.0 / sum(
            1.0 / nand3.strength_n(x) for x in ("a", "b", "c"))
        assert inv.strength_p("a") == pytest.approx(kp_expected, rel=1e-6)
        assert inv.strength_n("a") == pytest.approx(kn_expected, rel=1e-6)

    def test_rising_inputs(self, nand3):
        inv = equivalent_inverter_gate(nand3, ("a", "b", "c"), RISE)
        kn_expected = 1.0 / sum(
            1.0 / nand3.strength_n(x) for x in ("a", "b", "c"))
        assert inv.strength_n("a") == pytest.approx(kn_expected, rel=1e-6)

    def test_single_rising_input_cannot_drive_nand(self, nand3):
        """One rising input of a NAND cannot conduct the stack alone...
        but the sensitizing levels hold the others high, so the stack
        does conduct; verify a NOR's parallel pull-up instead."""
        inv = equivalent_inverter_gate(nand3, ("a",), RISE)
        assert inv.strength_n("a") > 0


class TestBaselineEstimator:
    def test_bad_policy_rejected(self, nand3, thresholds):
        with pytest.raises(ModelError):
            CollapsedInverterBaseline(nand3, thresholds,
                                      waveform_policy="psychic")

    def test_empty_edges_rejected(self, nand3, thresholds):
        baseline = CollapsedInverterBaseline(nand3, thresholds)
        with pytest.raises(ModelError):
            baseline.estimate({})

    def test_mixed_directions_rejected(self, nand3, thresholds):
        baseline = CollapsedInverterBaseline(nand3, thresholds)
        with pytest.raises(ModelError):
            baseline.estimate({
                "a": Edge(FALL, 0.0, 1e-10),
                "b": Edge(RISE, 0.0, 1e-10),
            })

    def test_estimate_is_deterministic_and_memoized(self, nand3, thresholds):
        import time
        baseline = CollapsedInverterBaseline(nand3, thresholds)
        edges = {
            "a": Edge(FALL, 0.0, 400e-12),
            "b": Edge(FALL, 100e-12, 200e-12),
        }
        first = baseline.estimate(edges)
        t0 = time.time()
        second = baseline.estimate(edges)
        assert time.time() - t0 < 0.02
        assert first.output_crossing == pytest.approx(second.output_crossing)

    def test_extreme_policy_picks_onset_edge(self, nand3, thresholds):
        baseline = CollapsedInverterBaseline(nand3, thresholds,
                                             waveform_policy="extreme")
        edges = {
            "a": Edge(FALL, 300e-12, 400e-12),
            "b": Edge(FALL, 0.0, 200e-12),
        }
        est = baseline.estimate(edges)
        # Falling NAND inputs -> parallel pull-up -> earliest edge (b).
        assert est.equivalent_edge.t_cross == pytest.approx(0.0)

    def test_weighted_policy_averages(self, nand3, thresholds):
        baseline = CollapsedInverterBaseline(nand3, thresholds,
                                             waveform_policy="weighted")
        edges = {
            "a": Edge(FALL, 0.0, 400e-12),
            "b": Edge(FALL, 200e-12, 200e-12),
        }
        est = baseline.estimate(edges)
        assert 0.0 < est.equivalent_edge.t_cross < 200e-12

    def test_in_right_ballpark(self, nand3, thresholds, calculator):
        """The baseline is crude but must produce a positive delay of
        the right order of magnitude for a benign configuration."""
        edges = {
            "a": Edge(FALL, 0.0, 300e-12),
            "b": Edge(FALL, 0.0, 300e-12),
            "c": Edge(FALL, 0.0, 300e-12),
        }
        baseline = CollapsedInverterBaseline(nand3, thresholds)
        est = baseline.estimate(edges)
        ours = calculator.explain(edges)
        ref_edge = edges[ours.reference]
        assert 0.0 < est.delay_from(ref_edge) < 5 * ours.delay
