"""Macromodels of gate delay and output transition time.

Two model families, each with a *table* backend (built by
:mod:`repro.charlib`) and a *simulator* backend (the paper itself used
HSPICE as the dual-input macromodel in its Section-5 validation):

* **Single-input** (eq. 3.7/3.8): normalized delay ``Delta/tau`` and
  transition time ``tau_out/tau`` as 1-D functions of the dimensionless
  drive factor ``u = C_L / (K_n * V_dd * tau)``.
* **Dual-input** (eq. 3.11/3.12): delay ratio ``Delta2/Delta1`` and
  transition-time ratio ``tau2/tau1`` as 3-D functions of the normalized
  temporal parameters ``(tau_i/Delta1, tau_j/Delta1, s_ij/Delta1)`` (and
  the ``tau1``-normalized analogue for transition time).
"""

from .base import SingleInputModel, DualInputModel
from .single import TableSingleInputModel, SimulatorSingleInputModel
from .dual import TableDualInputModel, SimulatorDualInputModel

__all__ = [
    "SingleInputModel",
    "DualInputModel",
    "TableSingleInputModel",
    "SimulatorSingleInputModel",
    "TableDualInputModel",
    "SimulatorDualInputModel",
]
