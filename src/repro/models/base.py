"""Abstract interfaces of the two macromodel families.

The Section-4 algorithm is written against these interfaces only, so the
table-backed production models and the simulator-backed oracle models
(used to reproduce the paper's validation methodology) are freely
interchangeable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional


class SingleInputModel(ABC):
    """Delay and output transition time when one input switches alone.

    Implementations are specific to a (gate, input pin, input direction)
    triple; the load dependence is carried through the dimensionless
    drive factor, so ``load`` may differ from the characterization load.
    """

    #: Input pin this model describes.
    input_name: str
    #: Input transition direction ("rise"/"fall").
    direction: str
    #: Sweep outcome accounting (:class:`repro.resilience.HealthReport`)
    #: for table-backed models built by a degraded characterization run;
    #: ``None`` for oracle models and pre-resilience payloads.
    health = None

    @abstractmethod
    def delay(self, tau: float, load: Optional[float] = None) -> float:
        """Propagation delay ``Delta^(1)`` in seconds for input
        transition time ``tau`` (full-swing seconds) into ``load``
        farads (``None`` = the gate's characterization load)."""

    @abstractmethod
    def ttime(self, tau: float, load: Optional[float] = None) -> float:
        """Output transition time ``tau^(1)`` in seconds (full-swing)."""


class DualInputModel(ABC):
    """The paper's three-argument dual-input proximity macromodel.

    Implementations are specific to an *ordered* pair ``(reference,
    other)`` of input pins and a shared transition direction.  The
    reference must be the **dominant** input (its single-input output
    crossing is earliest); enforcing dominance is the caller's job (see
    :mod:`repro.core.dominance`).
    """

    #: Reference (dominant) input pin.
    reference: str
    #: The other switching pin.
    other: str
    #: Shared input transition direction.
    direction: str
    #: Sweep outcome accounting (:class:`repro.resilience.HealthReport`);
    #: see :class:`SingleInputModel.health`.
    health = None

    @abstractmethod
    def delay_ratio(self, tau_ref: float, tau_other: float, sep: float, *,
                    delta1: float, load: Optional[float] = None) -> float:
        """``Delta^(2) / Delta^(1)`` (eq. 3.11).

        Arguments are *physical* (seconds); ``delta1`` is the reference
        input's single-input delay used for normalization.  Returns the
        dimensionless delay ratio.
        """

    @abstractmethod
    def ttime_ratio(self, tau_ref: float, tau_other: float, sep: float, *,
                    tau1: float, delta1: float,
                    load: Optional[float] = None) -> float:
        """``tau^(2) / tau^(1)`` (eq. 3.12).

        ``tau1`` is the reference input's single-input output transition
        time (the ratio's denominator); ``delta1`` its single-input
        delay, passed so table backends can share the delay model's
        normalized coordinate system (see :mod:`repro.models.dual`).
        """
