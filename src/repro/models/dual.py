"""Dual-input proximity macromodels (paper eq. 3.11 / 3.12).

The delay form is

    Delta^(2)/Delta^(1) = D^(2)( tau_i/Delta1, tau_j/Delta1, s_ij/Delta1 )

with *i* the dominant (reference) input; the transition-time form
returns ``tau^(2)/tau^(1)``.  The table backend stores rectangular grids
**in normalized coordinates** -- this is exactly the dimensional-analysis
collapse, and it is what lets a table built at the characterization load
serve other loads.

One deliberate deviation from the paper's notation: eq. 3.12 normalizes
the transition-time model's *arguments* by ``tau^(1)``; we normalize the
arguments of both tables by ``Delta^(1)`` (the returned ratio is still
``tau2/tau1``).  Any fixed time scale gives an equally valid
three-argument reduction, and sharing one coordinate system lets a
single simulation sweep fill both tables.  DESIGN.md records this.

The simulator backend plays the role HSPICE played in the paper's own
validation: it answers each query with a two-input transient simulation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from ..errors import ModelError
from ..parallel import parallel_map
from ..waveform import Edge
from .base import DualInputModel

__all__ = ["TableDualInputModel", "SimulatorDualInputModel"]


def _clamped_interpolator(axes, table):
    """Trilinear interpolation that clamps queries to the grid hull.

    Clamping (rather than extrapolating) is the right behaviour at the
    grid edges: beyond the proximity window the ratios saturate at 1, and
    the grids are built to cover the window with margin.
    """
    interp = RegularGridInterpolator(
        axes, table, method="linear", bounds_error=False, fill_value=None,
    )
    lows = np.array([axis[0] for axis in axes])
    highs = np.array([axis[-1] for axis in axes])

    def evaluate(point: np.ndarray) -> float:
        clamped = np.minimum(np.maximum(point, lows), highs)
        return float(interp(clamped[None, :])[0])

    return evaluate


class TableDualInputModel(DualInputModel):
    """Trilinear interpolation over one normalized (a1, a2, a3) grid.

    ``axes`` are the ``tau_ref/Delta1``, ``tau_other/Delta1`` and
    ``sep/Delta1`` axis arrays shared by both tables; ``delay_table``
    holds ``Delta2/Delta1`` and ``ttime_table`` holds ``tau2/tau1``.
    """

    def __init__(self, reference: str, other: str, direction: str,
                 axes: Tuple[np.ndarray, np.ndarray, np.ndarray],
                 delay_table: np.ndarray, ttime_table: np.ndarray) -> None:
        self.reference = reference
        self.other = other
        self.direction = direction
        self.axes = tuple(np.asarray(a, dtype=float) for a in axes)
        self._delay_table = np.asarray(delay_table, dtype=float)
        self._ttime_table = np.asarray(ttime_table, dtype=float)
        shape = tuple(len(a) for a in self.axes)
        for table, label in ((self._delay_table, "delay"), (self._ttime_table, "ttime")):
            if table.shape != shape:
                raise ModelError(
                    f"{label} table shape {table.shape} does not match axes {shape}"
                )
        for axis in self.axes:
            if axis.size < 2 or np.any(np.diff(axis) <= 0):
                raise ModelError("axes must be strictly increasing with >= 2 points")
        self._delay_eval = _clamped_interpolator(self.axes, self._delay_table)
        self._ttime_eval = _clamped_interpolator(self.axes, self._ttime_table)

    def _point(self, tau_ref: float, tau_other: float, sep: float,
               delta1: float) -> np.ndarray:
        if delta1 <= 0.0:
            raise ModelError(f"delta1 must be positive, got {delta1}")
        return np.array([tau_ref / delta1, tau_other / delta1, sep / delta1])

    def delay_ratio(self, tau_ref: float, tau_other: float, sep: float, *,
                    delta1: float, load: Optional[float] = None) -> float:
        return self._delay_eval(self._point(tau_ref, tau_other, sep, delta1))

    def ttime_ratio(self, tau_ref: float, tau_other: float, sep: float, *,
                    tau1: float, delta1: float,
                    load: Optional[float] = None) -> float:
        if tau1 <= 0.0:
            raise ModelError(f"tau1 must be positive, got {tau1}")
        return self._ttime_eval(self._point(tau_ref, tau_other, sep, delta1))

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The clamped-interpolator closures are not picklable; drop them
        # and rebuild on unpickling (process-pool tasks ship models).
        state = dict(self.__dict__)
        state.pop("_delay_eval", None)
        state.pop("_ttime_eval", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._delay_eval = _clamped_interpolator(self.axes, self._delay_table)
        self._ttime_eval = _clamped_interpolator(self.axes, self._ttime_table)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "reference": self.reference,
            "other": self.other,
            "direction": self.direction,
            "axes": [a.tolist() for a in self.axes],
            "delay_table": self._delay_table.tolist(),
            "ttime_table": self._ttime_table.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TableDualInputModel":
        return cls(
            payload["reference"], payload["other"], payload["direction"],
            tuple(np.asarray(a) for a in payload["axes"]),
            np.asarray(payload["delay_table"]),
            np.asarray(payload["ttime_table"]),
        )


def _oracle_query_task(task) -> Tuple[float, float]:
    """Worker: one memoizable oracle query as a two-input transient."""
    from ..charlib.simulate import multi_input_response

    gate, reference, other, direction, thresholds, tau_ref, tau_other, \
        sep, cl = task
    edges = {
        reference: Edge(direction, 0.0, tau_ref),
        other: Edge(direction, sep, tau_other),
    }
    shot = multi_input_response(
        gate, edges, thresholds, reference=reference, load=cl,
    )
    return shot.delay, shot.out_ttime


class SimulatorDualInputModel(DualInputModel):
    """Answers dual-input queries with two-input transient simulations.

    This reproduces the paper's Section-5 setup verbatim: "We used HSPICE
    as the macromodel for processing the dual-input case."  Queries are
    memoized on femtosecond-rounded arguments; :meth:`prefetch` fills
    the memo for a batch of queries in parallel.
    """

    def __init__(self, gate, reference: str, other: str, direction: str,
                 thresholds) -> None:
        self.gate = gate
        self.reference = reference
        self.other = other
        self.direction = direction
        self.thresholds = thresholds
        self._memo: Dict[Tuple[int, int, int, int], Tuple[float, float]] = {}

    def _key(self, tau_ref: float, tau_other: float, sep: float,
             cl: float) -> Tuple[int, int, int, int]:
        return (
            round(tau_ref * 1e15), round(tau_other * 1e15),
            round(sep * 1e15), round(cl * 1e18),
        )

    def _task(self, tau_ref: float, tau_other: float, sep: float,
              cl: float) -> tuple:
        return (self.gate, self.reference, self.other, self.direction,
                self.thresholds, tau_ref, tau_other, sep, cl)

    def _simulate(self, tau_ref: float, tau_other: float, sep: float,
                  load: Optional[float]) -> Tuple[float, float]:
        cl = self.gate.load if load is None else float(load)
        key = self._key(tau_ref, tau_other, sep, cl)
        if key not in self._memo:
            self._memo[key] = _oracle_query_task(
                self._task(tau_ref, tau_other, sep, cl)
            )
        return self._memo[key]

    def prefetch(self, queries: Sequence[Sequence[float]], *,
                 workers: Optional[int] = None) -> int:
        """Run a batch of oracle queries, filling the memo in parallel.

        Each query is ``(tau_ref, tau_other, sep)`` or
        ``(tau_ref, tau_other, sep, load)``; duplicates (after the
        memo's femtosecond rounding) and already-memoized entries are
        simulated once.  Results land in the memo in query order, so
        later :meth:`delay_ratio` / :meth:`ttime_ratio` calls are pure
        lookups with values identical to on-demand simulation.  Returns
        the number of fresh simulations performed.
        """
        pending: list[tuple] = []
        keys: list[Tuple[int, int, int, int]] = []
        seen = set(self._memo)
        for query in queries:
            tau_ref, tau_other, sep = (float(v) for v in query[:3])
            cl = self.gate.load if len(query) < 4 else float(query[3])
            key = self._key(tau_ref, tau_other, sep, cl)
            if key in seen:
                continue
            seen.add(key)
            keys.append(key)
            pending.append(self._task(tau_ref, tau_other, sep, cl))
        results = parallel_map(_oracle_query_task, pending, workers=workers)
        self._memo.update(zip(keys, results))
        return len(pending)

    def delay_ratio(self, tau_ref: float, tau_other: float, sep: float, *,
                    delta1: float, load: Optional[float] = None) -> float:
        if delta1 <= 0.0:
            raise ModelError(f"delta1 must be positive, got {delta1}")
        delay2, _ = self._simulate(tau_ref, tau_other, sep, load)
        return delay2 / delta1

    def ttime_ratio(self, tau_ref: float, tau_other: float, sep: float, *,
                    tau1: float, delta1: float,
                    load: Optional[float] = None) -> float:
        if tau1 <= 0.0:
            raise ModelError(f"tau1 must be positive, got {tau1}")
        _, ttime2 = self._simulate(tau_ref, tau_other, sep, load)
        return ttime2 / tau1
