"""Single-input macromodels (paper eq. 3.7 / 3.8).

Dimensional analysis collapses the single-input delay of a cell-based
gate to one curve per pin and direction:

    Delta^(1) / tau = D^(1)( u ),    u = C_L / (K_n * V_dd * tau)

and likewise for the output transition time.  The table backend stores
samples of those curves (built by
:func:`repro.charlib.single.characterize_single_input`) and interpolates
monotonically in ``log u``; the simulator backend answers every query
with a fresh (memoized) transient simulation and serves as the oracle in
paper-methodology experiments.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.interpolate import PchipInterpolator

from ..errors import ModelError
from .base import SingleInputModel

__all__ = ["TableSingleInputModel", "SimulatorSingleInputModel"]


class TableSingleInputModel(SingleInputModel):
    """PCHIP-interpolated normalized delay/transition-time curves.

    Parameters
    ----------
    input_name, direction:
        The pin and edge direction the model describes.
    u, delay_norm, ttime_norm:
        Samples of the drive factor and the normalized responses
        ``Delta/tau`` and ``tau_out/tau``.  ``u`` need not be sorted but
        must be positive and free of duplicates.
    k_drive:
        The strength (paper K) of the switching network driving the
        output for this direction -- ``K_n`` of the pin's NMOS for a
        falling output, ``K_p`` for a rising output.  Used to recompute
        ``u`` for query loads.
    vdd:
        Supply voltage.
    char_load:
        The load used during characterization (the default query load).
    c_par:
        Fitted effective output parasitic capacitance added to the load
        inside the drive factor (see :mod:`repro.charlib.single` -- it
        restores the one-argument collapse that raw eq. 3.7 loses to
        non-scaling parasitics).
    """

    def __init__(self, input_name: str, direction: str,
                 u: np.ndarray, delay_norm: np.ndarray, ttime_norm: np.ndarray,
                 *, k_drive: float, vdd: float, char_load: float,
                 c_par: float = 0.0) -> None:
        self.input_name = input_name
        self.direction = direction
        order = np.argsort(np.asarray(u, dtype=float))
        self._u = np.asarray(u, dtype=float)[order]
        self._d = np.asarray(delay_norm, dtype=float)[order]
        self._t = np.asarray(ttime_norm, dtype=float)[order]
        if self._u.size < 2:
            raise ModelError("single-input table needs at least 2 samples")
        if np.any(self._u <= 0.0):
            raise ModelError("drive factor samples must be positive")
        if np.any(np.diff(self._u) <= 0.0):
            raise ModelError("drive factor samples must be distinct")
        self.k_drive = float(k_drive)
        self.vdd = float(vdd)
        self.char_load = float(char_load)
        self.c_par = float(c_par)
        log_u = np.log(self._u)
        self._delay_interp = PchipInterpolator(log_u, self._d, extrapolate=True)
        self._ttime_interp = PchipInterpolator(log_u, self._t, extrapolate=True)

    # ------------------------------------------------------------------
    def drive_factor(self, tau: float, load: Optional[float] = None) -> float:
        """``u = (C_L + C_par) / (K * V_dd * tau)`` for a query point."""
        if tau <= 0.0:
            raise ModelError(f"input transition time must be positive, got {tau}")
        cl = self.char_load if load is None else float(load)
        if cl <= 0.0:
            raise ModelError(f"load must be positive, got {cl}")
        return (cl + self.c_par) / (self.k_drive * self.vdd * tau)

    def delay(self, tau: float, load: Optional[float] = None) -> float:
        u = self.drive_factor(tau, load)
        return float(self._delay_interp(np.log(u))) * tau

    def ttime(self, tau: float, load: Optional[float] = None) -> float:
        u = self.drive_factor(tau, load)
        return float(self._ttime_interp(np.log(u))) * tau

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_payload`)."""
        return {
            "input": self.input_name,
            "direction": self.direction,
            "u": self._u.tolist(),
            "delay_norm": self._d.tolist(),
            "ttime_norm": self._t.tolist(),
            "k_drive": self.k_drive,
            "vdd": self.vdd,
            "char_load": self.char_load,
            "c_par": self.c_par,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TableSingleInputModel":
        return cls(
            payload["input"], payload["direction"],
            np.asarray(payload["u"]), np.asarray(payload["delay_norm"]),
            np.asarray(payload["ttime_norm"]),
            k_drive=payload["k_drive"], vdd=payload["vdd"],
            char_load=payload["char_load"],
            c_par=payload.get("c_par", 0.0),
        )


class SimulatorSingleInputModel(SingleInputModel):
    """Answers single-input queries by direct transient simulation.

    Used wherever the reproduction follows the paper's methodology of
    treating the circuit simulator as the ground-truth macromodel.
    Results are memoized on ``(tau, load)`` rounded to femtoseconds /
    attofarads, so repeated algorithm invocations do not re-simulate.
    """

    def __init__(self, gate, input_name: str, direction: str, thresholds) -> None:
        self.gate = gate
        self.input_name = input_name
        self.direction = direction
        self.thresholds = thresholds
        self._memo: Dict[Tuple[int, int], Tuple[float, float]] = {}

    def _response(self, tau: float, load: Optional[float]) -> Tuple[float, float]:
        from ..charlib.simulate import single_input_response

        cl = self.gate.load if load is None else float(load)
        key = (round(tau * 1e15), round(cl * 1e18))
        if key not in self._memo:
            shot = single_input_response(
                self.gate, self.input_name, self.direction, tau,
                self.thresholds, load=cl,
            )
            self._memo[key] = (shot.delay, shot.out_ttime)
        return self._memo[key]

    def delay(self, tau: float, load: Optional[float] = None) -> float:
        return self._response(tau, load)[0]

    def ttime(self, tau: float, load: Optional[float] = None) -> float:
        return self._response(tau, load)[1]
