"""Engineering-notation quantity parsing and formatting.

The EDA world writes quantities as ``500ps``, ``100f``, ``4.2u`` or
``2MEG`` (SPICE style).  This module converts between such strings and
floats in SI base units, and formats floats back into readable
engineering notation for reports.

Parsing rules
-------------
* A quantity is ``<number><prefix?><unit?>``, e.g. ``"1.2ns"``,
  ``"50p"``, ``"3.3V"``, ``"0.18um"``.
* SI prefixes (case-sensitive where ambiguous): ``a f p n u m k x/meg
  g t`` -- SPICE tradition maps ``u`` to micro and accepts ``MEG`` for
  1e6 because ``m`` already means milli.  ``M`` alone is treated as
  SPICE mega only when spelled ``MEG``; a lone ``m``/``M`` is milli,
  matching SPICE's case-insensitive behaviour.
* The trailing unit (``s``, ``V``, ``F``, ``A``, ``Hz``, ``m``, ``Ohm``)
  is validated when the caller supplies ``unit=...`` and otherwise
  ignored.

>>> parse_quantity("500ps")
5e-10
>>> parse_quantity("100f", unit="F")
1e-13
>>> format_quantity(5e-10, "s")
'500ps'
"""

from __future__ import annotations

import math
import re
from typing import Optional

from .errors import UnitError

__all__ = [
    "parse_quantity",
    "format_quantity",
    "seconds",
    "volts",
    "farads",
    "amps",
]

#: Multipliers for SPICE/SI engineering prefixes.  Keys are lower-case;
#: the parser lower-cases its input first (SPICE is case-insensitive).
_PREFIXES = {
    "a": 1e-18,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,  # micro sign
    "m": 1e-3,
    "k": 1e3,
    "meg": 1e6,
    "x": 1e6,  # SPICE alias for MEG
    "g": 1e9,
    "t": 1e12,
}

#: Units we recognise (lower-cased).  Maps alias -> canonical unit.
_UNITS = {
    "s": "s",
    "sec": "s",
    "v": "V",
    "f": "F",
    "a": "A",
    "hz": "Hz",
    "m": "m",
    "ohm": "Ohm",
    "ohms": "Ohm",
    "%": "%",
}

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Zµ%]*)\s*$"
)

# Suffix interpretations, tried in order: (prefix, unit) pairs.  Built
# lazily because the table is small and the logic is subtle enough to
# keep in one place.


def _split_suffix(suffix: str) -> tuple[float, Optional[str]]:
    """Interpret the alphabetic tail of a quantity string.

    Returns ``(multiplier, canonical_unit_or_None)``.

    The tail may be empty (plain number), a bare prefix (``"p"``), a bare
    unit (``"V"``), or prefix+unit (``"ps"``, ``"uF"``, ``"megohm"``).
    Letters that are both prefix and unit (``f``, ``m``, ``a``) resolve
    as prefixes, per SPICE convention: ``100f`` is always 100 femto.
    """
    if not suffix:
        return 1.0, None
    low = suffix.lower()

    # MEG special-case first -- it would otherwise parse as milli + "eg".
    if low.startswith("meg"):
        rest = low[3:]
        if not rest:
            return _PREFIXES["meg"], None
        if rest in _UNITS:
            return _PREFIXES["meg"], _UNITS[rest]
        raise UnitError(f"unknown unit {rest!r} in quantity suffix {suffix!r}")

    # Prefix first (SPICE convention: the scale letter always wins, so
    # "100f" is 100 femto even when farads are expected; write "100fF"
    # for clarity -- never a bare "F" meaning farad).
    head, rest = low[0], low[1:]
    if head in _PREFIXES and (rest == "" or rest in _UNITS):
        return _PREFIXES[head], _UNITS[rest] if rest else None

    # Unit-only suffix ("V", "Hz", "ohm", "s").
    if low in _UNITS:
        return 1.0, _UNITS[low]

    raise UnitError(f"cannot interpret quantity suffix {suffix!r}")


def parse_quantity(text: str | float | int, unit: Optional[str] = None) -> float:
    """Parse ``text`` into a float in SI base units.

    ``text`` may already be a number, in which case it is returned
    unchanged (convenient for APIs that accept either).  When ``unit`` is
    given (canonical spelling, e.g. ``"s"``, ``"F"``) a mismatching
    explicit unit raises :class:`~repro.errors.UnitError`.
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text)
    if not isinstance(text, str):
        raise UnitError(f"cannot parse quantity of type {type(text).__name__}")
    match = _NUMBER_RE.match(text)
    if match is None:
        raise UnitError(f"malformed quantity {text!r}")
    value = float(match.group(1))
    multiplier, found_unit = _split_suffix(match.group(2))
    if unit is not None and found_unit is not None and found_unit != unit:
        raise UnitError(
            f"quantity {text!r} has unit {found_unit!r}, expected {unit!r}"
        )
    return value * multiplier


#: Formatting prefixes from large to small, chosen so that the mantissa
#: lands in [1, 1000).
_FORMAT_STEPS = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "MEG"),  # SPICE-safe: a lone "M" would re-parse as milli
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def format_quantity(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` in engineering notation, e.g. ``format_quantity(5e-10, 's') == '500ps'``.

    ``digits`` bounds the number of significant digits; trailing zeros and
    a trailing decimal point are stripped.
    """
    if not math.isfinite(value):
        return f"{value}{unit}"
    if value == 0.0:
        return f"0{unit}"
    magnitude = abs(value)
    for scale, prefix in _FORMAT_STEPS:
        if magnitude >= scale * (1 - 1e-12):
            mantissa = value / scale
            break
    else:
        scale, prefix = _FORMAT_STEPS[-1]
        mantissa = value / scale
    text = f"{mantissa:.{digits}g}"
    # Avoid scientific notation leaking through for mantissas in
    # [100, 1000) with few significant digits: round to the requested
    # significant figures and print positionally.
    if "e" in text or "E" in text:
        exponent = math.floor(math.log10(abs(mantissa)))
        factor = 10.0 ** (digits - 1 - exponent)
        rounded = round(mantissa * factor) / factor
        decimals = max(digits - 1 - exponent, 0)
        text = f"{rounded:.{decimals}f}"
        if "." in text:
            text = text.rstrip("0").rstrip(".")
    return f"{text}{prefix}{unit}"


def seconds(text: str | float) -> float:
    """Parse a time quantity (``'500ps'`` -> ``5e-10``)."""
    return parse_quantity(text, unit="s")


def volts(text: str | float) -> float:
    """Parse a voltage quantity (``'3.3V'`` -> ``3.3``)."""
    return parse_quantity(text, unit="V")


def farads(text: str | float) -> float:
    """Parse a capacitance quantity (``'100f'`` -> ``1e-13``)."""
    return parse_quantity(text, unit="F")


def amps(text: str | float) -> float:
    """Parse a current quantity (``'10uA'`` -> ``1e-5``)."""
    return parse_quantity(text, unit="A")
