"""Single-input macromodel characterization (paper eq. 3.7 / 3.8).

For each (pin, direction) the sweep varies the input transition time and
the output load, measures delay and output transition time by
simulation, and stores the responses *normalized by tau* against the
dimensionless drive factor ``u = (C_L + C_par)/(K V_dd tau)``.

The paper's eq. 3.7 uses ``u = C_L/(K V_dd tau)``; that exact
one-argument collapse holds for the idealized device but breaks by tens
of percent once output parasitics (junction/overlap capacitance, which
do not scale with C_L) enter -- they add a second dimensionless group
``C_par/C_L``.  Characterization therefore *fits* an effective parasitic
capacitance ``C_par`` that minimizes the spread between the per-load
curves, restoring a single-argument model to a few percent over a 4x
load range.  With one swept load, ``C_par = 0`` (the model is exact at
the characterization load anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from time import monotonic

from ..errors import CharacterizationError
from ..gates import Gate
from ..models.single import TableSingleInputModel
from ..obs import get_recorder
from ..parallel import resolve_batch
from ..resilience import faults
from ..resilience.health import FailedPoint, HealthReport
from ..resilience.runtime import (
    resilient_chunked_map,
    resilient_map,
    resolve_resume,
)
from ..waveform import RISE, Thresholds, normalize_direction
from .cache import CharacterizationCache, default_cache
from .simulate import single_input_response, single_input_response_batch

__all__ = ["SingleInputGrid", "characterize_single_input", "drive_strength"]


@dataclass(frozen=True)
class SingleInputGrid:
    """Sweep grid for single-input characterization.

    ``taus`` are full-swing input transition times (seconds);
    ``load_factors`` multiply the gate's nominal load.  The defaults
    cover the paper's 50 ps - 2000 ps range with margin.
    """

    taus: Tuple[float, ...] = tuple(
        float(t) for t in np.geomspace(40e-12, 3000e-12, 8)
    )
    load_factors: Tuple[float, ...] = (0.5, 1.0, 2.0)

    def __post_init__(self) -> None:
        if not self.taus or any(t <= 0 for t in self.taus):
            raise CharacterizationError("taus must be positive and non-empty")
        if not self.load_factors or any(f <= 0 for f in self.load_factors):
            raise CharacterizationError("load_factors must be positive and non-empty")

    @classmethod
    def fast(cls) -> "SingleInputGrid":
        """A small grid for tests and quick demos."""
        return cls(
            taus=tuple(float(t) for t in np.geomspace(50e-12, 2000e-12, 5)),
            load_factors=(1.0,),
        )

    def key(self) -> dict:
        return {"taus": list(self.taus), "load_factors": list(self.load_factors)}


def drive_strength(gate: Gate, input_name: str, direction: str) -> float:
    """The strength K of the network that drives the output for this edge.

    A rising input fires the pull-down (NMOS) network; a falling input
    fires the pull-up (PMOS) network.  This is the K in the drive factor
    ``u = C_L/(K V_dd tau)``.
    """
    if normalize_direction(direction) == RISE:
        return gate.strength_n(input_name)
    return gate.strength_p(input_name)


def _sample_task(task):
    """Worker: one (load, tau) sweep sample, normalized by tau."""
    index, gate, input_name, direction, tau, thresholds, load = task
    faults.fire_point("single", index)
    recorder = get_recorder()
    if not recorder.enabled:
        shot = single_input_response(
            gate, input_name, direction, tau, thresholds, load=load,
        )
        return shot.delay / tau, shot.out_ttime / tau
    start = monotonic()
    with recorder.span("charlib.point", scope="single", index=index,
                       tau=tau, load=load):
        shot = single_input_response(
            gate, input_name, direction, tau, thresholds, load=load,
        )
    recorder.histogram("charlib.point_seconds",
                       scope="single").observe(monotonic() - start)
    return shot.delay / tau, shot.out_ttime / tau


def _sample_chunk_task(task):
    """Worker: one batch of (load, tau) samples through the lockstep kernel.

    Returns one envelope per point -- ``("ok", (delay_norm, ttime_norm))``
    or ``("err", kind, message, error_type)`` -- so a failing point
    degrades exactly like its scalar :func:`_sample_task` would (same
    kind and message in the health report) without losing its
    chunk-mates.
    """
    gate, input_name, direction, thresholds, pairs = task
    envelopes: list = [None] * len(pairs)
    live = []
    points = []
    for pos, (index, (load, tau)) in enumerate(pairs):
        try:
            faults.fire_point("single", index)
        except Exception as exc:
            envelopes[pos] = ("err", "error", str(exc), type(exc).__name__)
            continue
        live.append((pos, tau))
        points.append((load, tau))
    if points:
        recorder = get_recorder()
        if not recorder.enabled:
            shots = single_input_response_batch(
                gate, input_name, direction, points, thresholds,
            )
        else:
            start = monotonic()
            with recorder.span("charlib.chunk", scope="single",
                               lanes=len(points)):
                shots = single_input_response_batch(
                    gate, input_name, direction, points, thresholds,
                )
            recorder.histogram("charlib.chunk_seconds",
                               scope="single").observe(monotonic() - start)
        for (pos, tau), shot in zip(live, shots):
            if isinstance(shot, Exception):
                envelopes[pos] = ("err", "error", str(shot),
                                  type(shot).__name__)
            else:
                envelopes[pos] = ("ok", (shot.delay / tau,
                                         shot.out_ttime / tau))
    return envelopes


def characterize_single_input(
    gate: Gate, input_name: str, direction: str, thresholds: Thresholds, *,
    grid: Optional[SingleInputGrid] = None,
    cache: Optional[CharacterizationCache] = None,
    workers: Optional[int] = None,
    batch: Optional[int] = None,
) -> TableSingleInputModel:
    """Build the single-input macromodel table for one pin and direction.

    Results are cached on the full (process, gate, thresholds, grid)
    content key.  ``workers`` fans the independent (load, tau) sweep
    points over a process pool; samples merge back in sweep order, so
    the table is bit-identical to a serial run.  ``batch`` (default:
    ``REPRO_BATCH``, else scalar) runs that many sweep points per task
    through the vectorized lockstep kernel -- inside each pooled worker
    when both are enabled -- and is equally bit-identical; the cache key
    is deliberately batch-blind.

    The sweep **degrades gracefully**: a point whose simulation fails
    (convergence loss past the retry ladder, a crashed worker, a task
    timeout) becomes a NaN sample that the table build drops, and the
    loss is recorded in the model's :class:`HealthReport`
    (``model.health``) and in the cached payload's ``failed_points``.
    Completed points are journaled as the sweep runs; under ``--resume``
    (``REPRO_RESUME=1``) an interrupted or degraded sweep recomputes
    only its missing points.
    """
    direction = normalize_direction(direction)
    if input_name not in gate.inputs:
        raise CharacterizationError(f"{input_name!r} is not an input of {gate.name!r}")
    grid = grid or SingleInputGrid()
    cache = cache or default_cache()
    key = {
        **gate.cache_key(),
        "input": input_name,
        "direction": direction,
        "vil": thresholds.vil,
        "vih": thresholds.vih,
        **grid.key(),
    }
    key["schema_single"] = 2  # c_par-fitted drive factor
    points = [(gate.load * factor, tau)
              for factor in grid.load_factors for tau in grid.taus]

    def compute() -> dict:
        k_drive = drive_strength(gate, input_name, direction)
        batch_size = resolve_batch(batch)
        if batch_size > 1:
            shots, task_failures = resilient_chunked_map(
                _sample_chunk_task, points,
                batch=batch_size,
                make_chunk=lambda pairs: (gate, input_name, direction,
                                          thresholds, pairs),
                journal_kind="single", journal_key=key,
                directory=cache.directory, workers=workers, decode=tuple,
            )
        else:
            shots, task_failures = resilient_map(
                _sample_task,
                [(index, gate, input_name, direction, tau, thresholds, load)
                 for index, (load, tau) in enumerate(points)],
                journal_kind="single", journal_key=key,
                directory=cache.directory, workers=workers, decode=tuple,
            )
        failed = []
        for failure in task_failures:
            load, tau = points[failure.index]
            shots[failure.index] = (float("nan"), float("nan"))
            get_recorder().counter("charlib.points.failed",
                                   kind=failure.kind).inc()
            failed.append({
                "index": failure.index, "kind": failure.kind,
                "message": failure.message,
                "coords": {"load": load, "tau": tau},
            })
        if len(failed) == len(points):
            raise CharacterizationError(
                f"single-input sweep for {gate.name!r} "
                f"({input_name}/{direction}) lost all {len(points)} points"
            )
        samples = [  # (load, tau, delay_norm, ttime_norm)
            (load, tau, delay_norm, ttime_norm)
            for (load, tau), (delay_norm, ttime_norm) in zip(points, shots)
        ]
        finite = [s for s in samples if np.isfinite(s[2])]
        c_par = _fit_effective_parasitic(
            finite, k_drive, gate.process.vdd,
        ) if len(grid.load_factors) > 1 else 0.0
        denominator = k_drive * gate.process.vdd
        return {
            "u": [(load + c_par) / (denominator * tau)
                  for load, tau, _, _ in samples],
            "delay_norm": [d for _, _, d, _ in samples],
            "ttime_norm": [t for _, _, _, t in samples],
            "k_drive": k_drive,
            "c_par": c_par,
            "failed_points": failed,
        }

    payload = cache.get_or_compute("single", key, compute)
    if payload.get("failed_points") and resolve_resume():
        # A degraded cached sweep + --resume: recompute just the missing
        # points (the journal still holds the completed ones) and
        # replace the cache entry with the repaired payload.
        payload = compute()
        cache.store("single", key, payload)

    u = np.asarray(payload["u"])
    d = np.asarray(payload["delay_norm"])
    t = np.asarray(payload["ttime_norm"])
    keep = np.isfinite(d) & np.isfinite(t)
    if keep.sum() < 2:
        raise CharacterizationError(
            f"single-input sweep for {gate.name!r} ({input_name}/{direction}) "
            f"has fewer than 2 surviving points; re-run with --resume"
        )
    u, d, t = _merge_duplicates(u[keep], d[keep], t[keep])
    model = TableSingleInputModel(
        input_name, direction, u, d, t,
        k_drive=float(payload["k_drive"]), vdd=gate.process.vdd,
        char_load=gate.load, c_par=float(payload.get("c_par", 0.0)),
    )
    model.health = HealthReport(
        label=f"single {gate.name}:{input_name}/{direction}",
        total_points=len(points),
        failed=tuple(
            FailedPoint(index=int(f["index"]), kind=f["kind"],
                        message=f["message"], coords=dict(f["coords"]))
            for f in payload.get("failed_points", ())
        ),
    )
    return model


def _fit_effective_parasitic(samples, k_drive: float, vdd: float) -> float:
    """Effective output parasitic minimizing the per-load curve spread.

    Scans c_par over [0, 3x the largest swept load]; the objective is
    the worst relative disagreement between per-load normalized-delay
    curves interpolated onto a common log-u grid.
    """
    loads = sorted({load for load, *_ in samples})
    if len(loads) < 2:
        return 0.0

    def spread(c_par: float) -> float:
        curves = []
        for load in loads:
            pts = sorted(
                (np.log((load + c_par) / (k_drive * vdd * tau)), d)
                for sample_load, tau, d, _ in samples
                if sample_load == load
            )
            x = np.array([p[0] for p in pts])
            y = np.array([p[1] for p in pts])
            curves.append((x, y))
        lo = max(c[0][0] for c in curves)
        hi = min(c[0][-1] for c in curves)
        if hi <= lo:
            return float("inf")
        grid_x = np.linspace(lo, hi, 25)
        values = np.array([np.interp(grid_x, x, y) for x, y in curves])
        return float(np.max(
            (values.max(axis=0) - values.min(axis=0))
            / np.maximum(values.mean(axis=0), 1e-12)
        ))

    candidates = np.linspace(0.0, 3.0 * loads[-1], 61)
    spreads = [spread(float(c)) for c in candidates]
    return float(candidates[int(np.argmin(spreads))])


def _merge_duplicates(u: np.ndarray, d: np.ndarray, t: np.ndarray,
                      rel_tol: float = 1e-6) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort by u and average samples whose u coincide (different
    (tau, load) pairs can land on the same drive factor)."""
    order = np.argsort(u)
    u, d, t = u[order], d[order], t[order]
    merged_u, merged_d, merged_t = [u[0]], [d[0]], [t[0]]
    counts = [1]
    for i in range(1, len(u)):
        if abs(u[i] - merged_u[-1]) <= rel_tol * merged_u[-1]:
            n = counts[-1]
            merged_d[-1] = (merged_d[-1] * n + d[i]) / (n + 1)
            merged_t[-1] = (merged_t[-1] * n + t[i]) / (n + 1)
            counts[-1] += 1
        else:
            merged_u.append(u[i])
            merged_d.append(d[i])
            merged_t.append(t[i])
            counts.append(1)
    return np.asarray(merged_u), np.asarray(merged_d), np.asarray(merged_t)
