"""Characterization: turning circuit simulations into macromodels.

This package is the bridge between the :mod:`repro.spice` substrate and
the :mod:`repro.models` macromodels.  It knows how to

* drive a gate with precisely-placed PWL edges and measure delay /
  output transition time under the paper's conventions
  (:mod:`~repro.charlib.simulate`),
* sweep those simulations over normalized grids to build the
  single-input (eq. 3.7/3.8) and dual-input (eq. 3.11/3.12) tables
  (:mod:`~repro.charlib.single`, :mod:`~repro.charlib.dual`),
* cache every expensive result on disk keyed by a content hash of the
  process, gate and grid (:mod:`~repro.charlib.cache`), and
* assemble everything into a :class:`~repro.charlib.library.GateLibrary`
  ready for the Section-4 algorithm.
"""

from .cache import CharacterizationCache, default_cache
from .simulate import SingleShot, MultiShot, single_input_response, multi_input_response
from .single import characterize_single_input, SingleInputGrid
from .dual import characterize_dual_input, DualInputGrid
from .library import GateLibrary
from .liberty import to_liberty, write_liberty

__all__ = [
    "CharacterizationCache",
    "default_cache",
    "SingleShot",
    "MultiShot",
    "single_input_response",
    "multi_input_response",
    "characterize_single_input",
    "SingleInputGrid",
    "characterize_dual_input",
    "DualInputGrid",
    "GateLibrary",
    "to_liberty",
    "write_liberty",
]
