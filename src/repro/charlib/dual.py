"""Dual-input macromodel characterization (paper eq. 3.11 / 3.12).

The sweep grid is rectangular **in the normalized coordinates** of the
macromodel: for each reference transition time ``tau_ref`` the
single-input delay ``Delta1(tau_ref)`` is measured first, then the other
input's transition time and the separation are chosen as multiples of
``Delta1``.  Each grid point is one two-input transient simulation; the
measured ``Delta2/Delta1`` and ``tau2/tau1`` ratios fill the two tables
of a :class:`~repro.models.dual.TableDualInputModel`.

The separation axis is chosen to bracket the proximity window: ratios
saturate at 1 for ``s > Delta1`` (delay window) and the model clamps
beyond the grid, so the default axis spans ``[-3, +1.5]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from time import monotonic

from ..errors import CharacterizationError
from ..gates import Gate
from ..models.dual import TableDualInputModel
from ..obs import get_recorder
from ..parallel import parallel_map, resolve_batch
from ..resilience import faults
from ..resilience.health import FailedPoint, HealthReport, neighbor_fill
from ..resilience.runtime import (
    resilient_chunked_map,
    resilient_map,
    resolve_resume,
)
from ..waveform import Edge, Thresholds, normalize_direction
from .cache import CharacterizationCache, default_cache
from .simulate import (
    multi_input_response,
    multi_input_response_batch,
    single_input_response,
)

__all__ = ["DualInputGrid", "characterize_dual_input"]


@dataclass(frozen=True)
class DualInputGrid:
    """Sweep grid for dual-input characterization.

    ``tau_refs`` are physical reference transition times; ``a2`` and
    ``a3`` are the normalized other-input transition time
    (``tau_other/Delta1``) and separation (``sep/Delta1``) axes.
    """

    tau_refs: Tuple[float, ...] = tuple(
        float(t) for t in np.geomspace(50e-12, 2000e-12, 5)
    )
    a2: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    a3: Tuple[float, ...] = (-3.0, -2.0, -1.0, -0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5)

    def __post_init__(self) -> None:
        if len(self.tau_refs) < 2 or any(t <= 0 for t in self.tau_refs):
            raise CharacterizationError("tau_refs must be >= 2 positive values")
        if len(self.a2) < 2 or any(a <= 0 for a in self.a2):
            raise CharacterizationError("a2 axis must be >= 2 positive values")
        if len(self.a3) < 2:
            raise CharacterizationError("a3 axis must have >= 2 values")
        for name in ("tau_refs", "a2", "a3"):
            axis = np.asarray(getattr(self, name))
            if np.any(np.diff(axis) <= 0):
                raise CharacterizationError(f"{name} must be strictly increasing")

    @classmethod
    def fast(cls) -> "DualInputGrid":
        """A coarse grid for tests and quick demos."""
        return cls(
            tau_refs=(100e-12, 500e-12, 2000e-12),
            a2=(0.5, 1.5, 5.0),
            a3=(-2.0, -1.0, 0.0, 0.5, 1.0),
        )

    def key(self) -> dict:
        return {"tau_refs": list(self.tau_refs), "a2": list(self.a2),
                "a3": list(self.a3)}

    @property
    def n_points(self) -> int:
        return len(self.tau_refs) * len(self.a2) * len(self.a3)


def _single_ref_task(task) -> Tuple[float, float]:
    """Worker: the single-input response for one reference tau."""
    gate, reference, direction, tau_ref, thresholds = task
    single = single_input_response(gate, reference, direction, tau_ref,
                                   thresholds)
    return single.delay, single.out_ttime


def _grid_point_task(task) -> Tuple[float, float]:
    """Worker: one two-input transient of the characterization grid."""
    index, gate, reference, edges, thresholds = task
    faults.fire_point("dual", index)
    recorder = get_recorder()
    if not recorder.enabled:
        shot = multi_input_response(gate, edges, thresholds,
                                    reference=reference)
        return shot.delay, shot.out_ttime
    start = monotonic()
    with recorder.span("charlib.point", scope="dual", index=index):
        shot = multi_input_response(gate, edges, thresholds,
                                    reference=reference)
    recorder.histogram("charlib.point_seconds",
                       scope="dual").observe(monotonic() - start)
    return shot.delay, shot.out_ttime


def _grid_chunk_task(task):
    """Worker: one batch of grid transients through the lockstep kernel.

    Returns one envelope per point -- ``("ok", (delay, ttime))`` or
    ``("err", kind, message, error_type)`` -- mirroring what the scalar
    :func:`_grid_point_task` path records for the same point.
    """
    gate, reference, thresholds, pairs = task
    envelopes: list = [None] * len(pairs)
    live = []
    requests = []
    for pos, (index, edges) in enumerate(pairs):
        try:
            faults.fire_point("dual", index)
        except Exception as exc:
            envelopes[pos] = ("err", "error", str(exc), type(exc).__name__)
            continue
        live.append(pos)
        requests.append((edges, reference, None))
    if requests:
        recorder = get_recorder()
        if not recorder.enabled:
            shots = multi_input_response_batch(gate, requests, thresholds)
        else:
            start = monotonic()
            with recorder.span("charlib.chunk", scope="dual",
                               lanes=len(requests)):
                shots = multi_input_response_batch(gate, requests, thresholds)
            recorder.histogram("charlib.chunk_seconds",
                               scope="dual").observe(monotonic() - start)
        for pos, shot in zip(live, shots):
            if isinstance(shot, Exception):
                envelopes[pos] = ("err", "error", str(shot),
                                  type(shot).__name__)
            else:
                envelopes[pos] = ("ok", (shot.delay, shot.out_ttime))
    return envelopes


def characterize_dual_input(
    gate: Gate, reference: str, other: str, direction: str,
    thresholds: Thresholds, *,
    grid: Optional[DualInputGrid] = None,
    cache: Optional[CharacterizationCache] = None,
    workers: Optional[int] = None,
    batch: Optional[int] = None,
) -> TableDualInputModel:
    """Build the dual-input proximity table for an ordered input pair.

    ``reference`` must differ from ``other``; both must be gate inputs.
    The table's first axis is ``tau_ref/Delta1(tau_ref)``, which is
    strictly increasing in ``tau_ref`` for CMOS gates (delay grows
    sublinearly with input slew); a violation raises, as it would break
    interpolation.

    ``workers`` fans the grid's independent transients over a process
    pool (see :mod:`repro.parallel`); grid points are merged back in
    sweep order, so the resulting table is bit-identical to a serial
    run.  ``batch`` (default: ``REPRO_BATCH``, else scalar) runs that
    many grid points per task through the vectorized lockstep kernel,
    composing with ``workers`` and equally bit-identical; the cache key
    is deliberately batch-blind.

    A grid point whose transient fails (convergence loss past the retry
    ladder, crashed worker, task timeout) becomes a NaN cell: the loss
    is recorded in the payload's ``failed_points`` and the model's
    :class:`HealthReport` (``model.health``), and the interpolation
    tables are repaired by :func:`neighbor_fill` before the model is
    built -- surviving cells are untouched.  Completed points are
    journaled, so ``--resume`` (``REPRO_RESUME=1``) recomputes only the
    missing ones.  (The per-``tau_ref`` single-input stage still fails
    hard: it defines the grid's normalization, so nothing downstream is
    meaningful without it.)
    """
    direction = normalize_direction(direction)
    if reference == other:
        raise CharacterizationError("reference and other input must differ")
    for name in (reference, other):
        if name not in gate.inputs:
            raise CharacterizationError(f"{name!r} is not an input of {gate.name!r}")
    grid = grid or DualInputGrid()
    cache = cache or default_cache()
    key = {
        **gate.cache_key(),
        "reference": reference,
        "other": other,
        "direction": direction,
        "vil": thresholds.vil,
        "vih": thresholds.vih,
        **grid.key(),
    }

    def compute() -> dict:
        # Stage 1: the per-tau_ref single-input responses (the grid's
        # normalization constants), themselves independent transients.
        singles = parallel_map(
            _single_ref_task,
            [(gate, reference, direction, tau_ref, thresholds)
             for tau_ref in grid.tau_refs],
            workers=workers,
        )
        a1_axis = []
        for tau_ref, (delta1, tau1) in zip(grid.tau_refs, singles):
            if delta1 <= 0 or tau1 <= 0:
                raise CharacterizationError(
                    f"non-positive single-input response at tau={tau_ref:g}s "
                    f"(delay={delta1:g}, ttime={tau1:g})"
                )
            a1_axis.append(tau_ref / delta1)

        # Stage 2: every grid point is one independent two-input
        # transient; fan out and merge back in sweep order.
        edge_sets = []
        coords = []
        for tau_ref, (delta1, _tau1) in zip(grid.tau_refs, singles):
            for a2 in grid.a2:
                for a3 in grid.a3:
                    edge_sets.append({
                        reference: Edge(direction, 0.0, tau_ref),
                        other: Edge(direction, a3 * delta1, a2 * delta1),
                    })
                    coords.append({"tau_ref": tau_ref, "a2": a2, "a3": a3})
        batch_size = resolve_batch(batch)
        if batch_size > 1:
            shots, task_failures = resilient_chunked_map(
                _grid_chunk_task, edge_sets,
                batch=batch_size,
                make_chunk=lambda pairs: (gate, reference, thresholds, pairs),
                journal_kind="dual", journal_key=key,
                directory=cache.directory, workers=workers, decode=tuple,
            )
        else:
            shots, task_failures = resilient_map(
                _grid_point_task,
                [(index, gate, reference, edges, thresholds)
                 for index, edges in enumerate(edge_sets)],
                journal_kind="dual", journal_key=key,
                directory=cache.directory, workers=workers, decode=tuple,
            )
        failed = []
        for failure in task_failures:
            shots[failure.index] = (float("nan"), float("nan"))
            get_recorder().counter("charlib.points.failed",
                                   kind=failure.kind).inc()
            failed.append({
                "index": failure.index, "kind": failure.kind,
                "message": failure.message,
                "coords": coords[failure.index],
            })
        if len(failed) == len(edge_sets):
            raise CharacterizationError(
                f"dual-input sweep for {gate.name!r} "
                f"({reference}->{other}/{direction}) lost all "
                f"{len(edge_sets)} grid points"
            )

        delay_table = np.empty((len(grid.tau_refs), len(grid.a2), len(grid.a3)))
        ttime_table = np.empty_like(delay_table)
        flat = iter(shots)
        for i, (delta1, tau1) in enumerate(singles):
            for j in range(len(grid.a2)):
                for k in range(len(grid.a3)):
                    delay, ttime = next(flat)
                    delay_table[i, j, k] = delay / delta1
                    ttime_table[i, j, k] = ttime / tau1
        if np.any(np.diff(a1_axis) <= 0):
            raise CharacterizationError(
                "tau_ref/Delta1 axis is not increasing; widen the tau_refs "
                "spacing or check the single-input responses"
            )
        return {
            "a1": a1_axis,
            "a2": list(grid.a2),
            "a3": list(grid.a3),
            "delay_table": delay_table.tolist(),
            "ttime_table": ttime_table.tolist(),
            "failed_points": failed,
        }

    payload = cache.get_or_compute("dual", key, compute)
    if payload.get("failed_points") and resolve_resume():
        # A degraded cached sweep + --resume: the journal still holds
        # every completed point, so only the failed cells recompute.
        payload = compute()
        cache.store("dual", key, payload)

    axes = (
        np.asarray(payload["a1"]),
        np.asarray(payload["a2"]),
        np.asarray(payload["a3"]),
    )
    delay_table = np.asarray(payload["delay_table"], dtype=float)
    ttime_table = np.asarray(payload["ttime_table"], dtype=float)
    delay_table, filled_d = neighbor_fill(delay_table)
    ttime_table, filled_t = neighbor_fill(ttime_table)
    if filled_d or filled_t:
        get_recorder().counter("charlib.cells.filled").inc(filled_d + filled_t)
    model = TableDualInputModel(
        reference, other, direction, axes, delay_table, ttime_table,
    )
    model.health = HealthReport(
        label=f"dual {gate.name}:{reference}->{other}/{direction}",
        total_points=grid.n_points,
        failed=tuple(
            FailedPoint(index=int(f["index"]), kind=f["kind"],
                        message=f["message"], coords=dict(f["coords"]))
            for f in payload.get("failed_points", ())
        ),
        filled=filled_d + filled_t,
    )
    return model
