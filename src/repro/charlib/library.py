"""The :class:`GateLibrary`: a fully characterized gate.

A library bundles, for one gate:

* the Section-2 measurement :class:`~repro.waveform.Thresholds`
  (min V_il / max V_ih over the cached VTC family),
* a single-input macromodel per (pin, direction),
* a dual-input macromodel per ordered pin pair and direction.

Two modes mirror the paper:

* ``mode="table"`` -- models are interpolation tables built by
  simulation sweeps (the deployable form; 2n + 2n models as the paper's
  Figure 4-2 storage analysis counts them, or all ordered pairs when
  ``pairs="all"``).
* ``mode="oracle"`` -- models answer queries with memoized simulations,
  reproducing the paper's Section-5 methodology ("we used HSPICE as the
  macromodel for processing the dual-input case").

Table libraries serialize to JSON with :meth:`GateLibrary.save` /
:meth:`GateLibrary.load`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CharacterizationError, ModelError
from ..gates import Gate
from ..obs import degradation_summary, get_recorder
from ..models import (
    DualInputModel,
    SimulatorDualInputModel,
    SimulatorSingleInputModel,
    SingleInputModel,
    TableDualInputModel,
    TableSingleInputModel,
)
from ..resilience import HealthReport
from ..vtc import select_thresholds, vtc_family
from ..vtc.thresholds import VtcCurve, analyze_vtc
from ..waveform import FALL, RISE, Thresholds, normalize_direction
from .cache import CharacterizationCache, default_cache
from .dual import DualInputGrid, characterize_dual_input
from .single import SingleInputGrid, characterize_single_input

__all__ = ["GateLibrary", "cached_thresholds", "cached_vtc_family"]


def cached_vtc_family(gate: Gate, *, cache: Optional[CharacterizationCache] = None,
                      coarse_points: int = 41, dense_points: int = 161) -> List[VtcCurve]:
    """The gate's VTC family, via the characterization cache."""
    cache = cache or default_cache()
    key = {**gate.cache_key(), "coarse": coarse_points, "dense": dense_points}

    def compute() -> dict:
        family = vtc_family(gate, coarse_points=coarse_points,
                            dense_points=dense_points)
        return {
            "curves": [
                {
                    "switching": list(curve.switching),
                    "vin": curve.vin.tolist(),
                    "vout": curve.vout.tolist(),
                }
                for curve in family
            ]
        }

    payload = cache.get_or_compute("vtc", key, compute)
    return [
        analyze_vtc(entry["vin"], entry["vout"], entry["switching"])
        for entry in payload["curves"]
    ]


def cached_thresholds(gate: Gate, *,
                      cache: Optional[CharacterizationCache] = None) -> Thresholds:
    """Section-2 thresholds from the cached VTC family."""
    family = cached_vtc_family(gate, cache=cache)
    return select_thresholds(family, gate.process.vdd)


class GateLibrary:
    """A characterized gate, ready for the Section-4 algorithm."""

    def __init__(self, gate: Gate, thresholds: Thresholds,
                 singles: Dict[Tuple[str, str], SingleInputModel],
                 duals: Dict[Tuple[str, str, str], DualInputModel],
                 *, mode: str = "table") -> None:
        if mode not in ("table", "oracle"):
            raise CharacterizationError(f"unknown library mode {mode!r}")
        self.gate = gate
        self.thresholds = thresholds
        self._singles = dict(singles)
        self._duals = dict(duals)
        self.mode = mode

    # ------------------------------------------------------------------
    # Model lookup
    # ------------------------------------------------------------------
    def single(self, input_name: str, direction: str) -> SingleInputModel:
        direction = normalize_direction(direction)
        try:
            return self._singles[(input_name, direction)]
        except KeyError:
            raise ModelError(
                f"library for {self.gate.name!r} has no single-input model "
                f"for ({input_name!r}, {direction!r})"
            ) from None

    def dual(self, reference: str, other: str, direction: str) -> DualInputModel:
        """Dual-input model for an ordered pair, with sharing fallbacks.

        Exact pair first; then any model with the same reference pin
        (the paper's observation that n dual models suffice -- models
        are shared across the 'other' pin); then any model for the
        direction.
        """
        direction = normalize_direction(direction)
        model = self._duals.get((reference, other, direction))
        if model is not None:
            return model
        for (ref, _other, direc), candidate in self._duals.items():
            if ref == reference and direc == direction:
                return candidate
        for (_ref, _other, direc), candidate in self._duals.items():
            if direc == direction:
                return candidate
        raise ModelError(
            f"library for {self.gate.name!r} has no dual-input model for "
            f"direction {direction!r}"
        )

    @property
    def single_keys(self) -> List[Tuple[str, str]]:
        return sorted(self._singles)

    @property
    def dual_keys(self) -> List[Tuple[str, str, str]]:
        return sorted(self._duals)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health_reports(self) -> List[HealthReport]:
        """The per-sweep :class:`~repro.resilience.HealthReport` s.

        One report per table-backed model that carries one (degraded or
        clean); oracle models and models loaded from pre-resilience
        payloads contribute nothing.
        """
        reports = []
        for key in self.single_keys:
            model = self._singles[key]
            if getattr(model, "health", None) is not None:
                reports.append(model.health)
        for key in self.dual_keys:
            model = self._duals[key]
            if getattr(model, "health", None) is not None:
                reports.append(model.health)
        return reports

    @property
    def healthy(self) -> bool:
        """True when no characterization sweep lost a grid point."""
        return all(report.ok for report in self.health_reports())

    def health_summary(self) -> str:
        """A printable summary of every sweep's outcome (CLI uses this).

        With telemetry enabled, a registry-derived accounting line
        (solver retries, per-kind fault counts, neighbor-filled cells)
        is appended -- the same totals the run manifest reports, so
        degradation shows up in one place.
        """
        summary = HealthReport.summarize(self.health_reports())
        extra = degradation_summary()
        return f"{summary}\n{extra}" if extra else summary

    # ------------------------------------------------------------------
    # Characterization
    # ------------------------------------------------------------------
    @classmethod
    def characterize(
        cls, gate: Gate, *,
        mode: str = "table",
        directions: Sequence[str] = (RISE, FALL),
        single_grid: Optional[SingleInputGrid] = None,
        dual_grid: Optional[DualInputGrid] = None,
        pairs: str | Iterable[Tuple[str, str]] = "reference",
        thresholds: Optional[Thresholds] = None,
        cache: Optional[CharacterizationCache] = None,
        workers: Optional[int] = None,
        batch: Optional[int] = None,
    ) -> "GateLibrary":
        """Characterize ``gate`` into a ready-to-use library.

        ``pairs`` selects which ordered pin pairs get dual models in
        table mode: ``"all"`` (n^2 - n models -- the paper's Figure 4-2
        matrix), ``"reference"`` (n models, one per reference pin paired
        with a neighbour -- the paper's practical choice), or an explicit
        iterable of ``(reference, other)`` tuples.  Oracle mode always
        covers all pairs (simulator models are free).

        ``workers`` parallelizes the table-mode characterization sweeps
        over a process pool (default: serial; see :mod:`repro.parallel`).
        ``batch`` runs that many sweep points per task through the
        vectorized lockstep kernel (default: ``REPRO_BATCH``, else
        scalar); the two compose, lanes x processes.  Tables are
        deterministic regardless of the worker count or batch size.
        """
        with get_recorder().span("charlib.characterize", gate=gate.name,
                                 mode=mode):
            return cls._characterize(
                gate, mode=mode, directions=directions,
                single_grid=single_grid, dual_grid=dual_grid, pairs=pairs,
                thresholds=thresholds, cache=cache, workers=workers,
                batch=batch,
            )

    @classmethod
    def _characterize(
        cls, gate: Gate, *, mode, directions, single_grid, dual_grid,
        pairs, thresholds, cache, workers, batch,
    ) -> "GateLibrary":
        cache = cache or default_cache()
        thr = thresholds or cached_thresholds(gate, cache=cache)
        dirs = [normalize_direction(d) for d in directions]
        inputs = gate.inputs

        singles: Dict[Tuple[str, str], SingleInputModel] = {}
        duals: Dict[Tuple[str, str, str], DualInputModel] = {}
        if mode == "oracle":
            for name in inputs:
                for direction in dirs:
                    singles[(name, direction)] = SimulatorSingleInputModel(
                        gate, name, direction, thr,
                    )
            for ref in inputs:
                for other in inputs:
                    if ref == other:
                        continue
                    for direction in dirs:
                        duals[(ref, other, direction)] = SimulatorDualInputModel(
                            gate, ref, other, direction, thr,
                        )
            return cls(gate, thr, singles, duals, mode="oracle")

        if mode != "table":
            raise CharacterizationError(f"unknown library mode {mode!r}")
        for name in inputs:
            for direction in dirs:
                singles[(name, direction)] = characterize_single_input(
                    gate, name, direction, thr, grid=single_grid, cache=cache,
                    workers=workers, batch=batch,
                )
        for ref, other in cls._select_pairs(inputs, pairs):
            for direction in dirs:
                duals[(ref, other, direction)] = characterize_dual_input(
                    gate, ref, other, direction, thr,
                    grid=dual_grid, cache=cache, workers=workers, batch=batch,
                )
        return cls(gate, thr, singles, duals, mode="table")

    @staticmethod
    def _select_pairs(inputs: Tuple[str, ...],
                      pairs: str | Iterable[Tuple[str, str]]) -> List[Tuple[str, str]]:
        if len(inputs) < 2:
            return []
        if pairs == "all":
            return [(r, o) for r in inputs for o in inputs if r != o]
        if pairs == "reference":
            # One model per reference pin, paired with its nearest
            # neighbour in declaration (stack) order.
            out = []
            for idx, ref in enumerate(inputs):
                other = inputs[idx + 1] if idx + 1 < len(inputs) else inputs[idx - 1]
                out.append((ref, other))
            return out
        explicit = list(pairs)  # type: ignore[arg-type]
        for ref, other in explicit:
            if ref == other or ref not in inputs or other not in inputs:
                raise CharacterizationError(f"invalid dual pair ({ref!r}, {other!r})")
        return explicit

    # ------------------------------------------------------------------
    # Serialization (table mode only)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A table-mode library as a plain-JSON payload.

        The same document :meth:`save` writes (and :meth:`load` reads);
        the serve daemon returns it directly from ``/characterize``
        without touching the filesystem.
        """
        if self.mode != "table":
            raise CharacterizationError("only table-mode libraries are serializable")
        return {
            "gate": self.gate.cache_key(),
            "thresholds": {
                "vil": self.thresholds.vil,
                "vih": self.thresholds.vih,
                "vdd": self.thresholds.vdd,
                "vm": self.thresholds.vm,
            },
            "singles": [m.to_payload() for m in self._singles.values()],
            "duals": [m.to_payload() for m in self._duals.values()],
        }

    def save(self, path: str | Path) -> None:
        """Write a table-mode library to a JSON file."""
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle)

    @classmethod
    def load(cls, path: str | Path, gate: Gate) -> "GateLibrary":
        """Load a table-mode library saved by :meth:`save`.

        The caller supplies the (re-built) :class:`~repro.gates.Gate`;
        a topology mismatch against the stored key raises.
        """
        with open(path) as handle:
            payload = json.load(handle)
        stored = payload["gate"]
        current = gate.cache_key()
        if stored.get("topology") != current.get("topology"):
            raise CharacterizationError(
                f"library file was characterized for topology "
                f"{stored.get('topology')!r}, not {current.get('topology')!r}"
            )
        thr = Thresholds(**payload["thresholds"])
        singles = {}
        for entry in payload["singles"]:
            model = TableSingleInputModel.from_payload(entry)
            singles[(model.input_name, model.direction)] = model
        duals = {}
        for entry in payload["duals"]:
            model = TableDualInputModel.from_payload(entry)
            duals[(model.reference, model.other, model.direction)] = model
        return cls(gate, thr, singles, duals, mode="table")
