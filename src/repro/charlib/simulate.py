"""Gate stimulus construction, transient runs and measurements.

These are the "lab bench" routines of the reproduction: they place PWL
edges on a gate's inputs with exact threshold-crossing times, run the
transient engine, and measure delay / output transition time / extremum
voltage under the paper's conventions.  Everything higher up
(characterization grids, the validation experiment, the oracle models)
funnels through :func:`single_input_response` and
:func:`multi_input_response`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConvergenceError, MeasurementError
from ..gates import Gate
from ..spice import transient, transient_batch
from ..units import parse_quantity
from ..waveform import (
    Edge,
    Pwl,
    Thresholds,
    gate_delay,
    normalize_direction,
    opposite,
    transition_time,
)

__all__ = [
    "SingleShot",
    "MultiShot",
    "estimate_settle_time",
    "single_input_response",
    "multi_input_response",
    "single_input_response_batch",
    "multi_input_response_batch",
    "set_shot_router",
    "get_shot_router",
]

#: The installed shot router (see :func:`set_shot_router`), or ``None``.
_SHOT_ROUTER = None


def set_shot_router(router):
    """Install ``router`` as the process-wide shot router; returns the
    previous one (``None`` clears).

    A router intercepts :func:`multi_input_response` calls: its
    ``route(gate, edges, thresholds, *, reference, load, max_retries,
    retry)`` method either returns the :class:`MultiShot` (or raises the
    exception the scalar path would have raised), or returns ``None`` to
    decline, in which case the call proceeds scalar as usual.  The serve
    daemon's coalescing broker uses this seam to gather concurrent
    requests into lanes of :func:`multi_input_response_batch` -- which
    is bit-identical per lane -- without the measurement call sites
    knowing.
    """
    global _SHOT_ROUTER
    previous = _SHOT_ROUTER
    _SHOT_ROUTER = router
    return previous


def get_shot_router():
    """The currently installed shot router, or ``None``."""
    return _SHOT_ROUTER


@dataclass(frozen=True)
class SingleShot:
    """Measured response to a single switching input."""

    input_name: str
    direction: str
    tau: float
    load: float
    delay: float
    out_ttime: float
    output: Pwl


@dataclass(frozen=True)
class MultiShot:
    """Measured response to multiple switching inputs.

    ``delay`` is measured from ``reference`` (the paper measures delay
    "relative to input x_i, the reference input").  ``vmin``/``vmax``
    record the output extrema after the first edge -- the Section-6
    glitch observables.
    """

    reference: str
    delay: float
    out_ttime: float
    output: Pwl
    vmin: float
    vmax: float


def estimate_settle_time(gate: Gate, load: float) -> float:
    """A generous upper bound on how long the output takes to finish.

    Uses the weakest saturated drive through either network:
    ``t = C_L * Vdd / I_min``, padded by an order of magnitude.  The
    transient window logic retries with doubled windows, so this only
    needs to be the right magnitude.
    """
    vdd = gate.process.vdd
    i_n = min(
        gate.process.nmos.strength(gate.nmos_width(x), gate.sizing.length)
        for x in gate.inputs
    ) * (vdd - gate.process.nmos.vt0) ** 2
    i_p = min(
        gate.process.pmos.strength(gate.pmos_width(x), gate.sizing.length)
        for x in gate.inputs
    ) * (vdd + gate.process.pmos.vt0) ** 2
    slew = load * vdd / min(i_n, i_p)
    return 10.0 * slew


def _edge_ramps(gate: Gate, edges: Mapping[str, Edge],
                thresholds: Thresholds) -> tuple[Dict[str, Pwl], float, float]:
    """Lower edges to ramps, shifting so every ramp starts after t=0.

    Returns ``(ramps, shift, last_ramp_end)`` where ``shift`` was added
    to every edge time (measurements are differences, so the shift
    cancels; callers that need absolute times subtract it).
    """
    margin = 50e-12
    starts = []
    for edge in edges.values():
        pwl = edge.to_pwl(thresholds)
        starts.append(pwl.t_start)
    shift = max(0.0, margin - min(starts)) if starts else 0.0
    ramps: Dict[str, Pwl] = {}
    last_end = 0.0
    for name, edge in edges.items():
        pwl = edge.shifted(shift).to_pwl(thresholds)
        ramps[name] = pwl
        last_end = max(last_end, pwl.t_end)
    return ramps, shift, last_end


@dataclass
class _ShotPlan:
    """Everything one multi-input measurement needs, prepared up front.

    The scalar and batched drivers share this preparation so a batched
    run makes exactly the scalar run's decisions -- same circuit, same
    window schedule, same error text.  ``attempt`` is the window-doubling
    state the batched driver advances per lane.
    """

    edges: Mapping[str, Edge]
    ref: str
    ref_edge: Edge
    out_dir: str
    cl: float
    ramps: Dict[str, Pwl]
    shift: float
    last_end: float
    settle: float
    circuit: object
    attempt: int = 0

    def t_stop(self) -> float:
        return self.last_end + self.settle * (2.0 ** self.attempt)


def _prepare_shot(gate: Gate, edges: Mapping[str, Edge],
                  thresholds: Thresholds,
                  reference: Optional[str],
                  load: Optional[float | str]) -> _ShotPlan:
    """Validate one measurement request and build its circuit."""
    if not edges:
        raise MeasurementError("multi_input_response needs at least one edge")
    for name in edges:
        if name not in gate.inputs:
            raise MeasurementError(f"{name!r} is not an input of {gate.name!r}")
    ref = reference or min(edges, key=lambda n: edges[n].t_cross)
    if ref not in edges:
        raise MeasurementError(f"reference {ref!r} has no edge")

    cl = gate.load if load is None else parse_quantity(load, unit="F")
    ramps, shift, last_end = _edge_ramps(gate, edges, thresholds)
    settle = estimate_settle_time(gate, cl) + max(e.tau for e in edges.values())

    ref_edge = edges[ref]
    out_dir = gate.output_direction(ref_edge.direction)
    circuit = gate.build(ramps, load=cl, switching=list(edges))
    return _ShotPlan(edges=edges, ref=ref, ref_edge=ref_edge, out_dir=out_dir,
                     cl=cl, ramps=ramps, shift=shift, last_end=last_end,
                     settle=settle, circuit=circuit)


def _enrich_convergence(gate: Gate, plan: _ShotPlan,
                        exc: ConvergenceError) -> ConvergenceError:
    """The scalar path's gate/edges-enriched convergence error."""
    edges_text = ", ".join(
        f"{name}:{edge.direction}@tau={edge.tau:g}s"
        for name, edge in plan.edges.items()
    )
    return ConvergenceError(
        f"simulation of {gate.name!r} ({edges_text}) failed: {exc}",
        iterations=exc.iterations, residual=exc.residual,
    )


def _measure_shot(gate: Gate, plan: _ShotPlan, result,
                  thresholds: Thresholds) -> Union[MultiShot, MeasurementError]:
    """Measure one transient result.

    An incomplete output transition comes back as the
    :class:`MeasurementError` itself (the window-doubling trigger);
    any other failure propagates, exactly as the scalar path's narrow
    ``try`` block behaves.
    """
    output = result.node(gate.output)
    try:
        delay = gate_delay(
            plan.ramps[plan.ref], plan.ref_edge.direction, output,
            plan.out_dir, thresholds,
        )
        ttime = transition_time(output, plan.out_dir, thresholds)
    except MeasurementError as exc:
        return exc
    first_start = min(p.t_start for p in plan.ramps.values())
    window = output.windowed(first_start, output.t_end)
    return MultiShot(
        reference=plan.ref,
        delay=delay,
        out_ttime=ttime,
        output=output.shifted(-plan.shift),
        vmin=window.min(),
        vmax=window.max(),
    )


def _exhausted_error(gate: Gate, plan: _ShotPlan, max_retries: int,
                     last_error: Optional[MeasurementError]) -> MeasurementError:
    return MeasurementError(
        f"output of {gate.name!r} never completed its {plan.out_dir} "
        f"transition within {max_retries} window doublings: {last_error}"
    )


def multi_input_response(gate: Gate, edges: Mapping[str, Edge],
                         thresholds: Thresholds, *,
                         reference: Optional[str] = None,
                         load: Optional[float | str] = None,
                         max_retries: int = 3,
                         retry=None) -> MultiShot:
    """Simulate the gate with the given edges and measure the response.

    All edges must share one direction (the proximity case); opposite
    directions are legal too (the Section-6 glitch case), in which case
    ``delay``/``out_ttime`` are measured for the *completed* output
    transition caused by the reference input and may raise
    :class:`~repro.errors.MeasurementError` if the output never completes
    it (that is precisely the inertial-delay phenomenon, and callers of
    the glitch experiment catch it).

    Undriven inputs sit at levels that sensitize the output to the driven
    set.  The transient window is sized from
    :func:`estimate_settle_time` and doubled on incomplete measurements,
    up to ``max_retries`` times.

    ``retry`` is forwarded to :func:`repro.spice.transient` as its
    solver retry ladder (see :class:`~repro.resilience.RetryPolicy`); a
    solve that exhausts the ladder re-raises its
    :class:`~repro.errors.ConvergenceError` enriched with which gate and
    edges were being measured, so a health report can name the point.
    """
    router = _SHOT_ROUTER
    if router is not None:
        routed = router.route(gate, edges, thresholds, reference=reference,
                              load=load, max_retries=max_retries, retry=retry)
        if routed is not None:
            return routed
    plan = _prepare_shot(gate, edges, thresholds, reference, load)
    last_error: Optional[MeasurementError] = None
    for attempt in range(max_retries):
        plan.attempt = attempt
        try:
            result = transient(plan.circuit, plan.t_stop(),
                               record=[gate.output], retry=retry)
        except ConvergenceError as exc:
            raise _enrich_convergence(gate, plan, exc) from exc
        shot = _measure_shot(gate, plan, result, thresholds)
        if isinstance(shot, MeasurementError):
            last_error = shot
            continue
        return shot
    raise _exhausted_error(gate, plan, max_retries, last_error)


def single_input_response(gate: Gate, input_name: str, direction: str,
                          tau: float | str, thresholds: Thresholds, *,
                          load: Optional[float | str] = None,
                          retry=None) -> SingleShot:
    """Simulate one switching input (others sensitizing) and measure.

    The edge's threshold crossing is placed at a comfortable margin after
    t=0; the reported delay/transition time are position-independent.
    ``retry`` forwards the solver retry ladder, as in
    :func:`multi_input_response`.
    """
    tau_s = parse_quantity(tau, unit="s")
    edge = Edge(direction, t_cross=0.0, tau=tau_s)
    shot = multi_input_response(
        gate, {input_name: edge}, thresholds, reference=input_name, load=load,
        retry=retry,
    )
    cl = gate.load if load is None else parse_quantity(load, unit="F")
    return SingleShot(
        input_name=input_name,
        direction=edge.direction,
        tau=tau_s,
        load=cl,
        delay=shot.delay,
        out_ttime=shot.out_ttime,
        output=shot.output,
    )


#: One batched measurement request: (edges, reference, load) with the
#: same semantics as the :func:`multi_input_response` keyword arguments.
ShotRequest = Tuple[Mapping[str, Edge], Optional[str], Optional[float]]

#: What a batched driver hands back per request: the measured shot, or
#: the exception the scalar path would have raised for that request.
ShotOutcome = Union[MultiShot, ConvergenceError, MeasurementError]


def multi_input_response_batch(gate: Gate, requests: Sequence[ShotRequest],
                               thresholds: Thresholds, *,
                               max_retries: int = 3,
                               retry=None) -> List[ShotOutcome]:
    """Measure many independent edge configurations in lockstep.

    Each request runs the *same* per-point state machine as
    :func:`multi_input_response` -- circuit built once, transient window
    doubled up to ``max_retries`` times on incomplete measurements --
    but the transients of all still-pending requests execute together
    through :func:`repro.spice.transient_batch`, whose lockstep kernel
    is bit-identical per lane to the scalar engine.  Results are
    therefore bit-identical to calling :func:`multi_input_response` per
    request, for any batch size.

    Failures are isolated per request: instead of raising, the slot
    holds the exception the scalar call would have raised, carrying the
    same message (the health reports downstream record ``str(exc)``).
    """
    results: List[Optional[ShotOutcome]] = [None] * len(requests)
    plans: Dict[int, _ShotPlan] = {}
    errors: Dict[int, Optional[MeasurementError]] = {}
    for i, (edges, reference, load) in enumerate(requests):
        try:
            plans[i] = _prepare_shot(gate, edges, thresholds, reference, load)
            errors[i] = None
        except MeasurementError as exc:
            results[i] = exc

    pending = sorted(plans)
    while pending:
        outcomes = transient_batch(
            [plans[i].circuit for i in pending],
            [plans[i].t_stop() for i in pending],
            record=[gate.output], retry=retry,
        )
        retrying: List[int] = []
        for i, outcome in zip(pending, outcomes):
            plan = plans[i]
            if isinstance(outcome, ConvergenceError):
                error = _enrich_convergence(gate, plan, outcome)
                error.__cause__ = outcome
                results[i] = error
                continue
            shot = _measure_shot(gate, plan, outcome, thresholds)
            if isinstance(shot, MeasurementError):
                errors[i] = shot
                plan.attempt += 1
                if plan.attempt >= max_retries:
                    results[i] = _exhausted_error(
                        gate, plan, max_retries, errors[i])
                else:
                    retrying.append(i)
                continue
            results[i] = shot
        pending = retrying
    return results


def single_input_response_batch(gate: Gate, input_name: str, direction: str,
                                points: Sequence[Tuple[float, float]],
                                thresholds: Thresholds, *,
                                retry=None) -> List[Union[SingleShot,
                                                          ConvergenceError,
                                                          MeasurementError]]:
    """Batched :func:`single_input_response` over ``(load, tau)`` points.

    All points share the pin and direction (one characterization sweep),
    so their circuits are structurally congruent and the lockstep kernel
    engages.  Slots of failed points hold the exception the scalar call
    would have raised, as in :func:`multi_input_response_batch`.
    """
    requests: List[ShotRequest] = []
    taus: List[float] = []
    loads: List[float] = []
    for load, tau in points:
        tau_s = parse_quantity(tau, unit="s")
        edge = Edge(direction, t_cross=0.0, tau=tau_s)
        requests.append(({input_name: edge}, input_name, load))
        taus.append(tau_s)
        loads.append(gate.load if load is None else parse_quantity(load, unit="F"))
    outcomes = multi_input_response_batch(gate, requests, thresholds,
                                          retry=retry)
    direction = normalize_direction(direction)
    results: List[Union[SingleShot, ConvergenceError, MeasurementError]] = []
    for tau_s, cl, outcome in zip(taus, loads, outcomes):
        if isinstance(outcome, MultiShot):
            results.append(SingleShot(
                input_name=input_name,
                direction=direction,
                tau=tau_s,
                load=cl,
                delay=outcome.delay,
                out_ttime=outcome.out_ttime,
                output=outcome.output,
            ))
        else:
            results.append(outcome)
    return results
