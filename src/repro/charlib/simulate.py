"""Gate stimulus construction, transient runs and measurements.

These are the "lab bench" routines of the reproduction: they place PWL
edges on a gate's inputs with exact threshold-crossing times, run the
transient engine, and measure delay / output transition time / extremum
voltage under the paper's conventions.  Everything higher up
(characterization grids, the validation experiment, the oracle models)
funnels through :func:`single_input_response` and
:func:`multi_input_response`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import ConvergenceError, MeasurementError
from ..gates import Gate
from ..spice import transient
from ..units import parse_quantity
from ..waveform import (
    Edge,
    Pwl,
    Thresholds,
    gate_delay,
    opposite,
    transition_time,
)

__all__ = [
    "SingleShot",
    "MultiShot",
    "estimate_settle_time",
    "single_input_response",
    "multi_input_response",
]


@dataclass(frozen=True)
class SingleShot:
    """Measured response to a single switching input."""

    input_name: str
    direction: str
    tau: float
    load: float
    delay: float
    out_ttime: float
    output: Pwl


@dataclass(frozen=True)
class MultiShot:
    """Measured response to multiple switching inputs.

    ``delay`` is measured from ``reference`` (the paper measures delay
    "relative to input x_i, the reference input").  ``vmin``/``vmax``
    record the output extrema after the first edge -- the Section-6
    glitch observables.
    """

    reference: str
    delay: float
    out_ttime: float
    output: Pwl
    vmin: float
    vmax: float


def estimate_settle_time(gate: Gate, load: float) -> float:
    """A generous upper bound on how long the output takes to finish.

    Uses the weakest saturated drive through either network:
    ``t = C_L * Vdd / I_min``, padded by an order of magnitude.  The
    transient window logic retries with doubled windows, so this only
    needs to be the right magnitude.
    """
    vdd = gate.process.vdd
    i_n = min(
        gate.process.nmos.strength(gate.nmos_width(x), gate.sizing.length)
        for x in gate.inputs
    ) * (vdd - gate.process.nmos.vt0) ** 2
    i_p = min(
        gate.process.pmos.strength(gate.pmos_width(x), gate.sizing.length)
        for x in gate.inputs
    ) * (vdd + gate.process.pmos.vt0) ** 2
    slew = load * vdd / min(i_n, i_p)
    return 10.0 * slew


def _edge_ramps(gate: Gate, edges: Mapping[str, Edge],
                thresholds: Thresholds) -> tuple[Dict[str, Pwl], float, float]:
    """Lower edges to ramps, shifting so every ramp starts after t=0.

    Returns ``(ramps, shift, last_ramp_end)`` where ``shift`` was added
    to every edge time (measurements are differences, so the shift
    cancels; callers that need absolute times subtract it).
    """
    margin = 50e-12
    starts = []
    for edge in edges.values():
        pwl = edge.to_pwl(thresholds)
        starts.append(pwl.t_start)
    shift = max(0.0, margin - min(starts)) if starts else 0.0
    ramps: Dict[str, Pwl] = {}
    last_end = 0.0
    for name, edge in edges.items():
        pwl = edge.shifted(shift).to_pwl(thresholds)
        ramps[name] = pwl
        last_end = max(last_end, pwl.t_end)
    return ramps, shift, last_end


def multi_input_response(gate: Gate, edges: Mapping[str, Edge],
                         thresholds: Thresholds, *,
                         reference: Optional[str] = None,
                         load: Optional[float | str] = None,
                         max_retries: int = 3,
                         retry=None) -> MultiShot:
    """Simulate the gate with the given edges and measure the response.

    All edges must share one direction (the proximity case); opposite
    directions are legal too (the Section-6 glitch case), in which case
    ``delay``/``out_ttime`` are measured for the *completed* output
    transition caused by the reference input and may raise
    :class:`~repro.errors.MeasurementError` if the output never completes
    it (that is precisely the inertial-delay phenomenon, and callers of
    the glitch experiment catch it).

    Undriven inputs sit at levels that sensitize the output to the driven
    set.  The transient window is sized from
    :func:`estimate_settle_time` and doubled on incomplete measurements,
    up to ``max_retries`` times.

    ``retry`` is forwarded to :func:`repro.spice.transient` as its
    solver retry ladder (see :class:`~repro.resilience.RetryPolicy`); a
    solve that exhausts the ladder re-raises its
    :class:`~repro.errors.ConvergenceError` enriched with which gate and
    edges were being measured, so a health report can name the point.
    """
    if not edges:
        raise MeasurementError("multi_input_response needs at least one edge")
    for name in edges:
        if name not in gate.inputs:
            raise MeasurementError(f"{name!r} is not an input of {gate.name!r}")
    ref = reference or min(edges, key=lambda n: edges[n].t_cross)
    if ref not in edges:
        raise MeasurementError(f"reference {ref!r} has no edge")

    cl = gate.load if load is None else parse_quantity(load, unit="F")
    ramps, shift, last_end = _edge_ramps(gate, edges, thresholds)
    settle = estimate_settle_time(gate, cl) + max(e.tau for e in edges.values())

    ref_edge = edges[ref]
    out_dir = gate.output_direction(ref_edge.direction)
    circuit = gate.build(ramps, load=cl, switching=list(edges))

    last_error: Optional[MeasurementError] = None
    for attempt in range(max_retries):
        t_stop = last_end + settle * (2.0 ** attempt)
        try:
            result = transient(circuit, t_stop, record=[gate.output],
                               retry=retry)
        except ConvergenceError as exc:
            edges_text = ", ".join(
                f"{name}:{edge.direction}@tau={edge.tau:g}s"
                for name, edge in edges.items()
            )
            raise ConvergenceError(
                f"simulation of {gate.name!r} ({edges_text}) failed: {exc}",
                iterations=exc.iterations, residual=exc.residual,
            ) from exc
        output = result.node(gate.output)
        try:
            delay = gate_delay(
                ramps[ref], ref_edge.direction, output, out_dir, thresholds,
            )
            ttime = transition_time(output, out_dir, thresholds)
        except MeasurementError as exc:
            last_error = exc
            continue
        first_start = min(p.t_start for p in ramps.values())
        window = output.windowed(first_start, output.t_end)
        return MultiShot(
            reference=ref,
            delay=delay,
            out_ttime=ttime,
            output=output.shifted(-shift),
            vmin=window.min(),
            vmax=window.max(),
        )
    raise MeasurementError(
        f"output of {gate.name!r} never completed its {out_dir} transition "
        f"within {max_retries} window doublings: {last_error}"
    )


def single_input_response(gate: Gate, input_name: str, direction: str,
                          tau: float | str, thresholds: Thresholds, *,
                          load: Optional[float | str] = None,
                          retry=None) -> SingleShot:
    """Simulate one switching input (others sensitizing) and measure.

    The edge's threshold crossing is placed at a comfortable margin after
    t=0; the reported delay/transition time are position-independent.
    ``retry`` forwards the solver retry ladder, as in
    :func:`multi_input_response`.
    """
    tau_s = parse_quantity(tau, unit="s")
    edge = Edge(direction, t_cross=0.0, tau=tau_s)
    shot = multi_input_response(
        gate, {input_name: edge}, thresholds, reference=input_name, load=load,
        retry=retry,
    )
    cl = gate.load if load is None else parse_quantity(load, unit="F")
    return SingleShot(
        input_name=input_name,
        direction=edge.direction,
        tau=tau_s,
        load=cl,
        delay=shot.delay,
        out_ttime=shot.out_ttime,
        output=shot.output,
    )
