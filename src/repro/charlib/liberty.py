"""Liberty-format (NLDM) export of characterized gate libraries.

Downstream STA tools speak Liberty: per-arc ``cell_rise``/``cell_fall``
delay tables and ``rise_transition``/``fall_transition`` slew tables
indexed by input slew and output load.  :func:`to_liberty` samples a
:class:`~repro.charlib.GateLibrary`'s single-input macromodels onto such
grids and writes a syntactically conventional ``.lib`` text.

Scope notes:

* NLDM has no notion of the proximity effect -- this export is the
  *classic single-input view* of the characterized gate, i.e. exactly
  what a conventional flow would use, and therefore also what the A3
  benchmark's "classic STA" corresponds to.  The proximity models have
  no Liberty encoding; they stay in this library's own JSON format
  (:meth:`~repro.charlib.GateLibrary.save`).
* Timing sense and the related-pin logic function come from the gate's
  network expression; all single-stage CMOS cells are
  ``negative_unate``.
* Values are exported in the library units declared in the header
  (ns, pF).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import CharacterizationError
from ..gates.topology import Leaf, Network, Series
from ..waveform import FALL, RISE
from .library import GateLibrary

__all__ = ["to_liberty", "write_liberty"]

_NS = 1e9   # seconds -> ns
_PF = 1e12  # farads -> pF


def _fmt_row(values: Sequence[float]) -> str:
    return ", ".join(f"{v:.5f}" for v in values)


def _logic_function(tree: Network) -> str:
    """Liberty boolean of the pull-down network's complement."""
    def render(node: Network) -> str:
        if isinstance(node, Leaf):
            return node.name.upper()
        op = "*" if isinstance(node, Series) else "+"
        return "(" + op.join(render(c) for c in node.children) + ")"

    return f"!{render(tree)}"


def _table(name: str, template: str, rows: List[List[float]],
           slews_ns: Sequence[float], loads_pf: Sequence[float],
           indent: str) -> List[str]:
    lines = [f"{indent}{name} ({template}) {{"]
    lines.append(f'{indent}  index_1 ("{_fmt_row(slews_ns)}");')
    lines.append(f'{indent}  index_2 ("{_fmt_row(loads_pf)}");')
    lines.append(f"{indent}  values ( \\")
    for i, row in enumerate(rows):
        tail = ", \\" if i + 1 < len(rows) else " \\"
        lines.append(f'{indent}    "{_fmt_row(row)}"{tail}')
    lines.append(f"{indent}  );")
    lines.append(f"{indent}}}")
    return lines


def to_liberty(library: GateLibrary, *,
               library_name: str = "repro_lib",
               slews: Optional[Sequence[float]] = None,
               loads: Optional[Sequence[float]] = None) -> str:
    """Render the library's single-input timing as Liberty text.

    ``slews`` (input transition times, seconds) and ``loads`` (farads)
    set the NLDM grid; defaults cover the paper's 50 ps - 2 ns range and
    0.5x-2x the characterization load.
    """
    if library.mode != "table":
        raise CharacterizationError(
            "Liberty export needs a table-mode library (oracle models "
            "would trigger simulations per table cell; characterize with "
            "mode='table' first)"
        )
    gate = library.gate
    slew_grid = list(slews) if slews is not None else [
        float(x) for x in np.geomspace(50e-12, 2000e-12, 5)
    ]
    load_grid = list(loads) if loads is not None else [
        gate.load * f for f in (0.5, 1.0, 1.5, 2.0)
    ]
    slews_ns = [s * _NS for s in slew_grid]
    loads_pf = [c * _PF for c in load_grid]
    template = f"delay_template_{len(slew_grid)}x{len(load_grid)}"

    out: List[str] = []
    out.append(f"library ({library_name}) {{")
    out.append('  delay_model : "table_lookup";')
    out.append('  time_unit : "1ns";')
    out.append('  voltage_unit : "1V";')
    out.append('  capacitive_load_unit (1, pf);')
    out.append(f"  nom_voltage : {gate.process.vdd:.2f};")
    out.append(f"  lu_table_template ({template}) {{")
    out.append('    variable_1 : input_net_transition;')
    out.append('    variable_2 : total_output_net_capacitance;')
    out.append(f'    index_1 ("{_fmt_row(slews_ns)}");')
    out.append(f'    index_2 ("{_fmt_row(loads_pf)}");')
    out.append("  }")

    out.append(f"  cell ({gate.name}) {{")
    out.append(f"    area : {gate.n_inputs * 2.0:.1f};")
    for pin in gate.inputs:
        # Input capacitance: gate caps of the pin's transistors.
        cap = (gate.process.nmos.cgs_per_width + gate.process.nmos.cgd_per_width) \
            * gate.nmos_width(pin)
        cap += (gate.process.pmos.cgs_per_width + gate.process.pmos.cgd_per_width) \
            * gate.pmos_width(pin)
        out.append(f"    pin ({pin.upper()}) {{")
        out.append("      direction : input;")
        out.append(f"      capacitance : {cap * _PF:.5f};")
        out.append("    }")

    out.append(f"    pin ({gate.output.upper()}) {{")
    out.append("      direction : output;")
    out.append(f'      function : "{_logic_function(gate.pulldown)}";')
    for pin in gate.inputs:
        arcs = []
        for direction, delay_kw, slew_kw in (
            (FALL, "cell_rise", "rise_transition"),   # input falls -> z rises
            (RISE, "cell_fall", "fall_transition"),   # input rises -> z falls
        ):
            try:
                model = library.single(pin, direction)
            except Exception:
                continue
            delay_rows, slew_rows = [], []
            for slew in slew_grid:
                delay_rows.append([model.delay(slew, c) * _NS for c in load_grid])
                slew_rows.append([model.ttime(slew, c) * _NS for c in load_grid])
            arcs.append((delay_kw, delay_rows))
            arcs.append((slew_kw, slew_rows))
        if not arcs:
            continue
        out.append("      timing () {")
        out.append(f'        related_pin : "{pin.upper()}";')
        out.append("        timing_sense : negative_unate;")
        for keyword, rows in arcs:
            out.extend(_table(keyword, template, rows, slews_ns, loads_pf,
                              indent="        "))
        out.append("      }")
    out.append("    }")
    out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"


def write_liberty(library: GateLibrary, path, **kwargs) -> None:
    """Write :func:`to_liberty` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_liberty(library, **kwargs))
