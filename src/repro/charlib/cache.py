"""Disk cache for characterization results.

Characterizing a dual-input macromodel takes hundreds of transient
simulations, so every expensive computation in :mod:`repro.charlib` runs
through this JSON-file cache.  Entries are keyed by the SHA-256 of a
canonical-JSON *key object* that includes the process card, gate
topology, grids and code-schema version -- any change invalidates the
entry automatically.

The cache directory is resolved, in order, from:

1. an explicit ``directory`` argument,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``.repro_cache/`` under the current working directory.

Set ``REPRO_CACHE_DIR=off`` to disable caching entirely.

A cache entry is never trusted blindly: an entry that fails to parse is
**quarantined** (renamed to ``<name>.corrupt`` for post-mortem, with a
logged warning) and treated as a miss, and :meth:`get_or_compute`
validates that a hit actually carries the keys its ``kind`` requires
(:data:`REQUIRED_PAYLOAD_KEYS`) before returning it -- a stale or
hand-edited payload falls through to a recompute instead of crashing an
analysis downstream.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence

from ..errors import CharacterizationError
from ..obs import get_recorder
from ..resilience import faults

__all__ = ["CharacterizationCache", "default_cache", "reset_default_cache",
           "REQUIRED_PAYLOAD_KEYS"]

_log = logging.getLogger(__name__)

#: Bump when the stored schema of any characterization artifact changes.
SCHEMA_VERSION = 3

#: Keys a payload of each kind must carry to count as a cache hit.
#: Kinds not listed here are accepted as-is (forward compatibility for
#: new artifact kinds that have not declared a contract yet).
REQUIRED_PAYLOAD_KEYS: Dict[str, Sequence[str]] = {
    "single": ("u", "delay_norm", "ttime_norm", "k_drive"),
    "dual": ("a1", "a2", "a3", "delay_table", "ttime_table"),
    "vtc": ("curves",),
}


def _canonical_hash(key: Dict[str, Any]) -> str:
    try:
        blob = json.dumps(key, sort_keys=True, separators=(",", ":"), default=_jsonify)
    except TypeError as exc:
        raise CharacterizationError(f"cache key is not JSON-serializable: {exc}") from exc
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _jsonify(value: Any) -> Any:
    """Fallback serializer for numpy arrays and scalars.

    ``tolist`` handles both (a numpy scalar's ``tolist`` returns the
    plain Python number), so it is checked first -- arrays also expose
    ``item``, which would raise for size > 1.
    """
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"unserializable cache-key value of type {type(value).__name__}")


class CharacterizationCache:
    """A directory of JSON blobs addressed by content-hashed keys."""

    def __init__(self, directory: Optional[str | Path] = None) -> None:
        if directory is None:
            env = os.environ.get("REPRO_CACHE_DIR", "")
            if env.lower() == "off":
                self._dir: Optional[Path] = None
                return
            directory = env or ".repro_cache"
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self._dir is not None

    @property
    def directory(self) -> Optional[Path]:
        return self._dir

    def _path(self, kind: str, key: Dict[str, Any]) -> Path:
        assert self._dir is not None
        digest = _canonical_hash({"schema": SCHEMA_VERSION, "kind": kind, **key})
        return self._dir / f"{kind}-{digest}.json"

    def load(self, kind: str, key: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Fetch a cached payload, or ``None`` on miss/corruption.

        An entry that fails to parse is quarantined: renamed to
        ``<name>.corrupt`` (atomically, keeping the most recent corpse
        for post-mortem) with a logged warning, then treated as a miss
        so the caller recomputes and rewrites it.
        """
        if self._dir is None:
            return None
        recorder = get_recorder()
        path = self._path(kind, key)
        if not path.exists():
            recorder.counter("cache.misses").inc()
            return None
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            quarantine = path.with_suffix(".corrupt")
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantine = path  # rename failed; report the original
            _log.warning(
                "quarantined corrupt cache entry %s -> %s (%s); recomputing",
                path.name, quarantine.name, exc,
            )
            recorder.counter("cache.quarantined").inc()
            recorder.counter("cache.misses").inc()
            return None
        except OSError:
            # Unreadable (permissions, races): a miss, but nothing to move.
            recorder.counter("cache.misses").inc()
            return None
        recorder.counter("cache.hits").inc()
        return payload

    def store(self, kind: str, key: Dict[str, Any], payload: Dict[str, Any]) -> None:
        if self._dir is None:
            return
        path = self._path(kind, key)
        # Stage in a *unique* per-writer temp file (a fixed name lets two
        # concurrent writers of the same key interleave into one
        # half-written file); the final rename is atomic, so whichever
        # writer replaces last wins with a complete entry.
        fd, tmp = tempfile.mkstemp(
            dir=self._dir, prefix=f"{path.stem}-", suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, default=_jsonify)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        get_recorder().counter("cache.stores").inc()
        faults.corrupt_after_store(kind, path)

    def get_or_compute(self, kind: str, key: Dict[str, Any],
                       compute: Callable[[], Dict[str, Any]],
                       *, required: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """The main entry point: load on hit, else compute and store.

        A hit must be a JSON object carrying every key its ``kind``
        requires (``required`` argument, else
        :data:`REQUIRED_PAYLOAD_KEYS`); a payload that does not -- a
        stale schema, a hand-edited file, a torn write that still parses
        -- is logged and falls through to a recompute, exactly like a
        miss.
        """
        if required is None:
            required = REQUIRED_PAYLOAD_KEYS.get(kind, ())
        cached = self.load(kind, key)
        if cached is not None:
            if isinstance(cached, dict) and all(k in cached for k in required):
                return cached
            missing = [k for k in required
                       if not isinstance(cached, dict) or k not in cached]
            _log.warning(
                "cached %s payload is invalid (missing %s); recomputing",
                kind, ", ".join(missing) or "expected structure",
            )
            get_recorder().counter("cache.invalid", kind=kind).inc()
        payload = compute()
        self.store(kind, key, payload)
        return payload


_DEFAULT: Optional[CharacterizationCache] = None
_DEFAULT_ORIGIN: Optional[str] = None


def default_cache() -> CharacterizationCache:
    """The process-wide cache instance (honours ``REPRO_CACHE_DIR``).

    The instance is memoized together with the ``REPRO_CACHE_DIR`` value
    it was resolved from; when the environment variable changes (test
    isolation, per-worker redirection) the next call re-resolves instead
    of returning the stale instance.
    """
    global _DEFAULT, _DEFAULT_ORIGIN
    origin = os.environ.get("REPRO_CACHE_DIR", "")
    if _DEFAULT is None or origin != _DEFAULT_ORIGIN:
        _DEFAULT = CharacterizationCache()
        _DEFAULT_ORIGIN = origin
    return _DEFAULT


def reset_default_cache() -> None:
    """Forget the memoized default cache; the next call re-resolves."""
    global _DEFAULT, _DEFAULT_ORIGIN
    _DEFAULT = None
    _DEFAULT_ORIGIN = None
