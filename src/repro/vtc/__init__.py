"""VTC families and delay-threshold selection (paper Section 2).

An n-input gate has ``2^n - 1`` voltage transfer curves, one per
non-empty subset of inputs switching together (the remaining inputs held
at sensitizing levels).  Delay thresholds must be chosen so delay stays
positive for *every* input configuration; the paper's rule -- adopted
here -- is the **minimum V_il and maximum V_ih over the whole family**.
"""

from .extract import extract_vtc, vtc_family
from .thresholds import VtcCurve, analyze_vtc, select_thresholds, threshold_table

__all__ = [
    "extract_vtc",
    "vtc_family",
    "VtcCurve",
    "analyze_vtc",
    "select_thresholds",
    "threshold_table",
]
