"""VTC analysis: V_il / V_ih / V_m extraction and threshold selection.

Definitions follow the paper (and Hodges & Jackson): ``V_il`` and
``V_ih`` are the input voltages where the VTC slope equals -1, and
``V_m`` is the switching threshold where ``V_out = V_in``.  For a static
CMOS gate the VTC is monotonically decreasing, so the slope dips below
-1 once and recovers once: the first -1 crossing is ``V_il``, the last
is ``V_ih``, and ``V_il < V_m < V_ih`` always holds on a sane curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..waveform import Thresholds

__all__ = ["VtcCurve", "analyze_vtc", "select_thresholds", "threshold_table"]


@dataclass(frozen=True)
class VtcCurve:
    """One member of a gate's VTC family.

    ``switching`` names the inputs swept together; ``vin``/``vout`` are
    the curve samples; ``vil``, ``vih`` and ``vm`` are the analyzed
    thresholds.
    """

    switching: Tuple[str, ...]
    vin: np.ndarray
    vout: np.ndarray
    vil: float
    vih: float
    vm: float

    @property
    def label(self) -> str:
        """Compact subset label, e.g. ``"ab"`` for inputs a and b."""
        return "".join(self.switching)

    def gain_at(self, vin: float) -> float:
        """Numerical VTC slope at ``vin`` (central difference)."""
        return float(np.interp(vin, self.vin, np.gradient(self.vout, self.vin)))


def _slope_crossings(vin: np.ndarray, slope: np.ndarray, level: float) -> List[float]:
    """Input voltages where the slope curve crosses ``level`` (linear
    interpolation between samples)."""
    hits: List[float] = []
    for i in range(len(vin) - 1):
        s0, s1 = slope[i] - level, slope[i + 1] - level
        if s0 == 0.0:
            hits.append(float(vin[i]))
        elif s0 * s1 < 0.0:
            frac = s0 / (s0 - s1)
            hits.append(float(vin[i] + frac * (vin[i + 1] - vin[i])))
    if slope[-1] == level:
        hits.append(float(vin[-1]))
    return hits


def analyze_vtc(vin: Sequence[float] | np.ndarray, vout: Sequence[float] | np.ndarray,
                switching: Sequence[str] = ()) -> VtcCurve:
    """Analyze a sampled VTC into a :class:`VtcCurve`.

    Raises :class:`~repro.errors.MeasurementError` when the curve has no
    unity-gain points or no ``V_out = V_in`` crossing (i.e. it is not a
    CMOS-like inverting transfer curve).
    """
    x = np.asarray(vin, dtype=float)
    y = np.asarray(vout, dtype=float)
    if x.ndim != 1 or x.shape != y.shape or x.size < 5:
        raise MeasurementError("VTC analysis needs matching 1-D arrays (>= 5 points)")
    if not np.all(np.diff(x) > 0):
        raise MeasurementError("VTC input grid must be strictly increasing")

    slope = np.gradient(y, x)
    crossings = _slope_crossings(x, slope, -1.0)
    if len(crossings) < 2:
        raise MeasurementError(
            "VTC slope never passes through -1 twice; curve is not an "
            "inverting CMOS transfer curve (or the sweep is too coarse)"
        )
    vil, vih = crossings[0], crossings[-1]

    # V_m: vout - vin changes sign exactly once on a monotone curve.
    diff = y - x
    vm = None
    for i in range(len(x) - 1):
        if diff[i] == 0.0:
            vm = float(x[i])
            break
        if diff[i] * diff[i + 1] < 0.0:
            frac = diff[i] / (diff[i] - diff[i + 1])
            vm = float(x[i] + frac * (x[i + 1] - x[i]))
            break
    if vm is None:
        raise MeasurementError("VTC has no V_out = V_in crossing")

    return VtcCurve(tuple(switching), x, y, vil=vil, vih=vih, vm=vm)


def select_thresholds(family: Iterable[VtcCurve], vdd: float) -> Thresholds:
    """The paper's Section-2 rule: min V_il and max V_ih over the family.

    This guarantees ``V_il < V_m < V_ih`` for the V_m of *any* family
    member, hence positive delay regardless of which inputs switch and
    how far apart they are.  The returned ``vm`` is the median switching
    threshold, recorded for diagnostics only.
    """
    curves = list(family)
    if not curves:
        raise MeasurementError("cannot select thresholds from an empty VTC family")
    vil = min(curve.vil for curve in curves)
    vih = max(curve.vih for curve in curves)
    vm = float(np.median([curve.vm for curve in curves]))
    return Thresholds(vil=vil, vih=vih, vdd=vdd, vm=vm)


def threshold_table(family: Iterable[VtcCurve]) -> List[dict]:
    """Rows of the paper's Figure 2-1(c) table: one dict per VTC with the
    subset label and its V_il / V_m / V_ih."""
    rows = []
    for curve in sorted(family, key=lambda c: (len(c.switching), c.label)):
        rows.append({
            "switching": curve.label,
            "vil": round(curve.vil, 4),
            "vm": round(curve.vm, 4),
            "vih": round(curve.vih, 4),
        })
    return rows
