"""VTC extraction by DC sweep.

:func:`extract_vtc` sweeps a chosen subset of a gate's inputs together
(remaining inputs at sensitizing levels) and analyzes the resulting
curve; :func:`vtc_family` enumerates all ``2^n - 1`` subsets to build the
full family of paper Figure 2-1(b).

A two-stage sweep keeps this fast *and* accurate: a coarse uniform scan
locates the transition region, then a dense scan resolves the slope = -1
points within it.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

import numpy as np

from ..errors import MeasurementError
from ..gates import Gate
from ..spice import dc_sweep
from ..waveform import Thresholds
from .thresholds import VtcCurve, analyze_vtc, select_thresholds

__all__ = ["extract_vtc", "vtc_family", "gate_thresholds"]


def extract_vtc(gate: Gate, switching: Sequence[str], *,
                coarse_points: int = 41, dense_points: int = 161) -> VtcCurve:
    """Extract the VTC for the inputs in ``switching`` driven together.

    The sweep drives every switching input with the same voltage (the
    paper's "k inputs switching at the same time" VTC) while the other
    inputs sit at sensitizing levels found from the gate's logic.
    """
    switching = list(switching)
    if not switching:
        raise MeasurementError("extract_vtc needs at least one switching input")
    vdd = gate.process.vdd
    circuit = gate.build({name: 0.0 for name in switching}, switching=switching)
    sources = [f"v{name}" for name in switching]

    coarse_grid = np.linspace(0.0, vdd, coarse_points)
    coarse = dc_sweep(circuit, sources, coarse_grid, record=[gate.output])
    vout = coarse.node(gate.output)

    # Transition region: where the output leaves its rails by > 2 % Vdd.
    swing = np.abs(vout - vout[0]) > 0.02 * vdd
    interior = np.abs(vout - vout[-1]) > 0.02 * vdd
    active = np.nonzero(swing & interior)[0]
    if active.size == 0:
        # Degenerate (near-step) curve: densify the largest jump.
        jump = int(np.argmax(np.abs(np.diff(vout))))
        lo, hi = coarse_grid[max(jump - 1, 0)], coarse_grid[min(jump + 2, coarse_points - 1)]
    else:
        lo = coarse_grid[max(int(active[0]) - 1, 0)]
        hi = coarse_grid[min(int(active[-1]) + 1, coarse_points - 1)]
    margin = 0.05 * vdd
    lo = max(0.0, lo - margin)
    hi = min(vdd, hi + margin)

    dense_grid = np.unique(np.concatenate([
        np.linspace(0.0, vdd, coarse_points),
        np.linspace(lo, hi, dense_points),
    ]))
    dense = dc_sweep(circuit, sources, dense_grid, record=[gate.output])
    return analyze_vtc(dense_grid, dense.node(gate.output), switching)


def vtc_family(gate: Gate, *, coarse_points: int = 41,
               dense_points: int = 161) -> List[VtcCurve]:
    """All ``2^n - 1`` VTCs of the gate, ordered by subset size then label."""
    curves: List[VtcCurve] = []
    names = gate.inputs
    for size in range(1, len(names) + 1):
        for subset in itertools.combinations(names, size):
            curves.append(
                extract_vtc(gate, subset, coarse_points=coarse_points,
                            dense_points=dense_points)
            )
    return curves


def gate_thresholds(gate: Gate, *, family: Optional[List[VtcCurve]] = None,
                    coarse_points: int = 41, dense_points: int = 161) -> Thresholds:
    """Convenience: extract (or reuse) the family and apply the
    min-V_il / max-V_ih selection rule."""
    curves = family if family is not None else vtc_family(
        gate, coarse_points=coarse_points, dense_points=dense_points
    )
    return select_thresholds(curves, gate.process.vdd)
