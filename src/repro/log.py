"""Central logging configuration: one named logger per subsystem.

Every module gets its logger through :func:`get_logger` (or plain
``logging.getLogger(__name__)`` -- the ``repro.*`` namespace is what
matters), and the CLI configures the shared ``repro`` root once per
invocation via :func:`setup_logging`:

* default: warnings and errors to stderr,
* ``-v``: informational progress, ``-vv``: debug detail,
* ``--quiet``: errors only.

The handler resolves ``sys.stderr`` at emit time (not at handler
creation), so output follows stream redirection -- pytest's ``capsys``,
``contextlib.redirect_stderr`` -- instead of writing to a captured-away
file descriptor.  Levels render lowercase (``error: ...``), matching
the style of the CLI's historical error messages.
"""

from __future__ import annotations

import copy
import logging
import sys
from typing import Optional

__all__ = ["ROOT_LOGGER", "get_logger", "setup_logging"]

#: The namespace root every repro subsystem logs under.
ROOT_LOGGER = "repro"


class _StderrHandler(logging.StreamHandler):
    """A stream handler bound to *current* ``sys.stderr`` at emit time."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr


class _LowercaseFormatter(logging.Formatter):
    """``error: message`` rather than ``ERROR: message``."""

    def format(self, record: logging.LogRecord) -> str:
        # Format a copy: the record object is shared with every other
        # handler on the propagation path (pytest's caplog, flight
        # sinks), and mutating ``levelname`` in place would hand them
        # the lowercased name.
        clone = copy.copy(record)
        clone.levelname = clone.levelname.lower()
        return super().format(clone)


def get_logger(name: str) -> logging.Logger:
    """The logger for one subsystem, namespaced under ``repro``.

    ``get_logger("charlib.cache")`` and a module's
    ``logging.getLogger(__name__)`` (when the module lives under
    ``repro``) resolve to the same hierarchy, so one
    :func:`setup_logging` call governs both.
    """
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def setup_logging(verbosity: int = 0, *, quiet: bool = False,
                  level: Optional[int] = None) -> logging.Logger:
    """Configure the shared ``repro`` logger and return it.

    ``verbosity`` counts ``-v`` flags (0 = warnings, 1 = info, 2+ =
    debug); ``quiet`` wins and shows errors only; an explicit ``level``
    overrides both.  Calling again reconfigures in place (the CLI test
    suite invokes ``main()`` repeatedly in one process), so exactly one
    handler is ever installed.
    """
    if level is None:
        if quiet:
            level = logging.ERROR
        elif verbosity <= 0:
            level = logging.WARNING
        elif verbosity == 1:
            level = logging.INFO
        else:
            level = logging.DEBUG
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if isinstance(handler, _StderrHandler):
            logger.removeHandler(handler)
    handler = _StderrHandler()
    handler.setFormatter(_LowercaseFormatter("%(levelname)s: %(message)s"))
    logger.addHandler(handler)
    # The handler above is the single sink; letting records continue to
    # the root logger would double-print under any ambient basicConfig.
    logger.propagate = False
    return logger
