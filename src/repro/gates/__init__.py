"""CMOS gate construction.

Gates are described by a *pull-down network expression* -- a
series/parallel tree over the input names -- from which the complementary
pull-up network is derived as the dual tree.  :class:`Gate` turns the
description plus a :class:`~repro.tech.Process` into simulate-ready
:class:`~repro.spice.Circuit` instances with arbitrary stimuli on each
input.  Constructors for the standard cells (inverter, NAND-n, NOR-n,
AOI/OAI) cover everything the paper uses and more.
"""

from .topology import Leaf, Series, Parallel, dual, leaves, conducts, series_depths
from .gate import Gate

__all__ = [
    "Leaf",
    "Series",
    "Parallel",
    "dual",
    "leaves",
    "conducts",
    "series_depths",
    "Gate",
]
