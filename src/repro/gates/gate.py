"""The :class:`Gate` cell model: topology + process -> circuits.

A :class:`Gate` owns everything needed to characterize a static CMOS
cell: the pull-down network expression, the process, transistor sizing
(with classic series-stack upsizing), and the output load.  Its
:meth:`Gate.build` method instantiates a simulate-ready
:class:`~repro.spice.Circuit` for arbitrary per-input stimuli, defaulting
unspecified inputs to their non-controlling level -- exactly the setup of
every experiment in the paper (e.g. NAND3 with ``c`` tied to Vdd).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import NetlistError
from ..tech import Process, Sizing
from ..units import parse_quantity
from ..waveform import opposite
from ..spice.netlist import Circuit, SourceValue
from .topology import (
    Leaf,
    Network,
    Parallel,
    Series,
    conducts,
    describe,
    dual,
    leaves,
    series_depths,
)

__all__ = ["Gate", "DEFAULT_LOAD"]

#: Default output load (the paper fixes C_L for its NAND3 testbench;
#: 100 fF is a representative multi-fanout load for the default process).
DEFAULT_LOAD = 100e-15

_INPUT_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


class Gate:
    """A static CMOS gate described by its pull-down network.

    Parameters
    ----------
    name:
        Cell name (``"nand3"``); used in reports and cache keys.
    pulldown:
        Series/parallel expression over the input names (NMOS network
        between the output and ground).  The PMOS pull-up network is the
        dual expression.
    process:
        Technology description.
    load:
        Output load capacitance in farads (or a quantity string).
    sizing:
        Reference-inverter geometry; defaults to ``process.sizing``.
    stack_scaling:
        When true (default), each transistor is widened by the length of
        its series path so stacks drive like the reference inverter.
    """

    def __init__(self, name: str, pulldown: Network, process: Process, *,
                 load: float | str = DEFAULT_LOAD,
                 sizing: Optional[Sizing] = None,
                 stack_scaling: bool = True,
                 output: str = "z") -> None:
        self.name = name
        self.pulldown = pulldown
        self.pullup = dual(pulldown)
        self.process = process
        self.load = parse_quantity(load, unit="F")
        if self.load < 0.0:
            raise NetlistError("gate load must be non-negative")
        self.sizing = sizing or process.sizing
        self.stack_scaling = stack_scaling
        self.output = output

        ordered: List[str] = []
        for leaf_name in leaves(pulldown):
            if leaf_name not in ordered:
                ordered.append(leaf_name)
        self.inputs: Tuple[str, ...] = tuple(ordered)
        if output in self.inputs:
            raise NetlistError(f"output node {output!r} collides with an input name")
        reserved = {"vdd", "0", "gnd"}
        for bad in reserved & set(self.inputs):
            raise NetlistError(f"input name {bad!r} is reserved")

        self._depth_n = series_depths(self.pulldown)
        self._depth_p = series_depths(self.pullup)

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    def logic_output(self, assignment: Mapping[str, bool]) -> bool:
        """Boolean output for a full input assignment.

        NMOS transistors conduct on a high input, so the output is low
        exactly when the pull-down network conducts.  The dual pull-up
        conducts complementarily by De Morgan duality.
        """
        return not conducts(self.pulldown, assignment)

    def sensitizing_levels(self, switching: Sequence[str]) -> Dict[str, bool]:
        """Stable-input levels that put the output under the control of
        ``switching``.

        Finds an assignment of the non-switching inputs such that driving
        every switching input low versus high toggles the output.  For a
        NAND this is all-high side inputs; for a NOR all-low.  Raises
        :class:`~repro.errors.NetlistError` when the switching set cannot
        control the output (e.g. it is empty).
        """
        switching_set = list(dict.fromkeys(switching))
        for name in switching_set:
            if name not in self.inputs:
                raise NetlistError(f"{name!r} is not an input of gate {self.name!r}")
        if not switching_set:
            raise NetlistError("switching set must be non-empty")
        stable = [name for name in self.inputs if name not in switching_set]
        for bits in itertools.product((True, False), repeat=len(stable)):
            assignment = dict(zip(stable, bits))
            low = dict(assignment, **{s: False for s in switching_set})
            high = dict(assignment, **{s: True for s in switching_set})
            if self.logic_output(low) != self.logic_output(high):
                return assignment
        raise NetlistError(
            f"inputs {switching_set!r} cannot control the output of {self.name!r}"
        )

    def output_direction(self, input_direction: str) -> str:
        """Direction of the (sensitized) output for a given input edge.

        All single-stage static CMOS gates are inverting, so the output
        moves opposite to the causing input.
        """
        return opposite(input_direction)

    def level_voltage(self, high: bool) -> float:
        return self.process.vdd if high else 0.0

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def nmos_width(self, input_name: str) -> float:
        factor = self._depth_n[input_name] if self.stack_scaling else 1
        return self.sizing.wn * factor

    def pmos_width(self, input_name: str) -> float:
        factor = self._depth_p[input_name] if self.stack_scaling else 1
        return self.sizing.wp * factor

    def strength_n(self, input_name: Optional[str] = None) -> float:
        """Paper-convention NMOS strength K_n of (one transistor of) the gate."""
        name = input_name or self.inputs[0]
        return self.process.nmos.strength(self.nmos_width(name), self.sizing.length)

    def strength_p(self, input_name: Optional[str] = None) -> float:
        name = input_name or self.inputs[0]
        return self.process.pmos.strength(self.pmos_width(name), self.sizing.length)

    # ------------------------------------------------------------------
    # Circuit construction
    # ------------------------------------------------------------------
    def build(self, stimuli: Optional[Mapping[str, SourceValue]] = None, *,
              load: Optional[float | str] = None,
              switching: Optional[Sequence[str]] = None,
              with_parasitics: bool = True) -> Circuit:
        """Instantiate the gate as a :class:`~repro.spice.Circuit`.

        ``stimuli`` maps input names to source values (numbers, quantity
        strings, :class:`~repro.waveform.Pwl` waveforms or callables).
        Inputs absent from ``stimuli`` are tied to the level that
        sensitizes the output to the driven inputs (``switching``
        defaults to the keys of ``stimuli``).
        """
        stimuli = dict(stimuli or {})
        driven = list(stimuli)
        switching_list = list(switching) if switching is not None else driven
        circuit = Circuit(self.name)
        vdd = self.process.vdd
        circuit.add_vsource("vvdd", "vdd", vdd)

        if switching_list:
            stable_levels = self.sensitizing_levels(switching_list)
        else:
            stable_levels = {name: True for name in self.inputs}
        for name in self.inputs:
            if name in stimuli:
                circuit.add_vsource(f"v{name}", name, stimuli[name])
            else:
                level = stable_levels.get(name)
                if level is None:
                    # Driven-but-not-switching inputs keep their stimulus;
                    # anything else defaults high (non-controlling for the
                    # NAND-class gates this path serves).
                    level = True
                circuit.add_vsource(f"v{name}", name, self.level_voltage(level))

        self._emit_network(
            circuit, self.pulldown, top=self.output, bottom="0",
            params=self.process.nmos, prefix="mn", node_prefix="pd",
            bulk="0", width_fn=self.nmos_width, with_parasitics=with_parasitics,
        )
        self._emit_network(
            circuit, self.pullup, top="vdd", bottom=self.output,
            params=self.process.pmos, prefix="mp", node_prefix="pu",
            bulk="vdd", width_fn=self.pmos_width, with_parasitics=with_parasitics,
        )

        cl = self.load if load is None else parse_quantity(load, unit="F")
        circuit.add_capacitor("cload", self.output, "0", cl)
        return circuit

    def instantiate_into(self, circuit: Circuit, instance: str,
                         nets: Mapping[str, str], *,
                         with_parasitics: bool = True) -> None:
        """Emit this gate's transistors into an existing circuit.

        ``nets`` maps every input pin and the output pin to circuit net
        names (``vdd``/ground are global).  Internal stack nodes and
        device names are prefixed with ``instance`` so several instances
        coexist.  No sources or load capacitors are added -- that is the
        caller's (e.g. :mod:`repro.timing.flatten`) responsibility.
        """
        missing = [p for p in (*self.inputs, self.output) if p not in nets]
        if missing:
            raise NetlistError(f"instantiate_into missing nets for pins {missing!r}")
        self._emit_network(
            circuit, self.pulldown, top=nets[self.output], bottom="0",
            params=self.process.nmos, prefix=f"{instance}.mn",
            node_prefix=f"{instance}.pd", bulk="0", width_fn=self.nmos_width,
            with_parasitics=with_parasitics, pin_nets=nets,
        )
        self._emit_network(
            circuit, self.pullup, top="vdd", bottom=nets[self.output],
            params=self.process.pmos, prefix=f"{instance}.mp",
            node_prefix=f"{instance}.pu", bulk="vdd", width_fn=self.pmos_width,
            with_parasitics=with_parasitics, pin_nets=nets,
        )

    def _emit_network(self, circuit: Circuit, tree: Network, *, top: str,
                      bottom: str, params, prefix: str, node_prefix: str,
                      bulk: str, width_fn, with_parasitics: bool,
                      pin_nets: Optional[Mapping[str, str]] = None) -> None:
        """Recursively instantiate a series/parallel network of MOSFETs."""
        counter = itertools.count(1)
        device_counter = itertools.count(1)

        def emit(node: Network, hi: str, lo: str) -> None:
            if isinstance(node, Leaf):
                gate_net = pin_nets[node.name] if pin_nets else node.name
                circuit.add_mosfet(
                    f"{prefix}{next(device_counter)}_{node.name}",
                    drain=hi, gate=gate_net, source=lo, bulk=bulk,
                    params=params,
                    width=width_fn(node.name), length=self.sizing.length,
                    with_parasitics=with_parasitics,
                )
                return
            if isinstance(node, Series):
                rail_points = [hi]
                for _ in node.children[:-1]:
                    rail_points.append(f"{node_prefix}{next(counter)}")
                rail_points.append(lo)
                for child, (a, b) in zip(node.children, zip(rail_points, rail_points[1:])):
                    emit(child, a, b)
                return
            for child in node.children:  # Parallel
                emit(child, hi, lo)

        emit(tree, top, bottom)

    # ------------------------------------------------------------------
    # Identification
    # ------------------------------------------------------------------
    def cache_key(self) -> Dict[str, Union[str, float, bool]]:
        """Stable mapping identifying this gate for characterization caches."""
        key: Dict[str, Union[str, float, bool]] = {
            "gate": self.name,
            "topology": describe(self.pulldown),
            "load": self.load,
            "stack_scaling": self.stack_scaling,
            "wn": self.sizing.wn,
            "wp": self.sizing.wp,
            "length": self.sizing.length,
        }
        for pname, pvalue in self.process.cache_key().items():
            key[f"process.{pname}"] = pvalue
        return key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gate({self.name!r}, pd={describe(self.pulldown)}, inputs={self.inputs})"

    # ------------------------------------------------------------------
    # Standard cells
    # ------------------------------------------------------------------
    @classmethod
    def inverter(cls, process: Process, **kwargs) -> "Gate":
        return cls(kwargs.pop("name", "inv"), Leaf("a"), process, **kwargs)

    @classmethod
    def nand(cls, n_inputs: int, process: Process, **kwargs) -> "Gate":
        """NAND-n: series pull-down.  Input ``a`` is adjacent to the
        output; the last input is adjacent to ground (the paper's 'input
        closest to the ground')."""
        names = cls._input_names(n_inputs)
        tree = Series(*(Leaf(x) for x in names)) if n_inputs > 1 else Leaf(names[0])
        return cls(kwargs.pop("name", f"nand{n_inputs}"), tree, process, **kwargs)

    @classmethod
    def nor(cls, n_inputs: int, process: Process, **kwargs) -> "Gate":
        """NOR-n: parallel pull-down, series pull-up.  Input ``a`` is
        adjacent to the power rail (the paper's 'input closest to the
        power rail'); the last input is adjacent to the output."""
        names = cls._input_names(n_inputs)
        tree = Parallel(*(Leaf(x) for x in names)) if n_inputs > 1 else Leaf(names[0])
        return cls(kwargs.pop("name", f"nor{n_inputs}"), tree, process, **kwargs)

    @classmethod
    def aoi21(cls, process: Process, **kwargs) -> "Gate":
        """AND-OR-INVERT: ``z = not(a*b + c)``."""
        tree = Parallel(Series(Leaf("a"), Leaf("b")), Leaf("c"))
        return cls(kwargs.pop("name", "aoi21"), tree, process, **kwargs)

    @classmethod
    def oai21(cls, process: Process, **kwargs) -> "Gate":
        """OR-AND-INVERT: ``z = not((a + b) * c)``."""
        tree = Series(Parallel(Leaf("a"), Leaf("b")), Leaf("c"))
        return cls(kwargs.pop("name", "oai21"), tree, process, **kwargs)

    @classmethod
    def aoi22(cls, process: Process, **kwargs) -> "Gate":
        """``z = not(a*b + c*d)``."""
        tree = Parallel(Series(Leaf("a"), Leaf("b")), Series(Leaf("c"), Leaf("d")))
        return cls(kwargs.pop("name", "aoi22"), tree, process, **kwargs)

    @staticmethod
    def _input_names(n_inputs: int) -> List[str]:
        if not 1 <= n_inputs <= len(_INPUT_ALPHABET):
            raise NetlistError(f"unsupported input count {n_inputs}")
        return list(_INPUT_ALPHABET[:n_inputs])
