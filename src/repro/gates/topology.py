"""Series/parallel transistor-network expressions.

A static CMOS gate is fully described by its pull-down network: a tree
whose leaves are input names and whose internal nodes are ``Series`` or
``Parallel`` compositions.  The pull-up network is the *dual* tree
(series and parallel swapped), which guarantees the two networks conduct
complementarily for every input assignment -- a property the test suite
checks by brute force.

Examples
--------
>>> nand3_pd = Series(Leaf("a"), Leaf("b"), Leaf("c"))
>>> dual(nand3_pd)
Parallel(Leaf('a'), Leaf('b'), Leaf('c'))
>>> aoi21_pd = Parallel(Series(Leaf("a"), Leaf("b")), Leaf("c"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Union

from ..errors import NetlistError

__all__ = [
    "Leaf",
    "Series",
    "Parallel",
    "Network",
    "dual",
    "leaves",
    "conducts",
    "series_depths",
    "describe",
]


@dataclass(frozen=True)
class Leaf:
    """A single transistor gated by input ``name``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("Leaf input name must be non-empty")

    def __repr__(self) -> str:
        return f"Leaf({self.name!r})"


class _Composite:
    """Shared behaviour of ``Series`` and ``Parallel``."""

    __slots__ = ("children",)

    def __init__(self, *children: "Network") -> None:
        if len(children) < 1:
            raise NetlistError(f"{type(self).__name__} requires at least one child")
        flat: List[Network] = []
        for child in children:
            if not isinstance(child, (Leaf, Series, Parallel)):
                raise NetlistError(
                    f"network children must be Leaf/Series/Parallel, got "
                    f"{type(child).__name__}"
                )
            # Flatten nested composites of the same kind: Series(Series(a,b),c)
            # == Series(a,b,c).  Keeps equality and naming canonical.
            if type(child) is type(self):
                flat.extend(child.children)  # type: ignore[attr-defined]
            else:
                flat.append(child)
        self.children = tuple(flat)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}({inner})"


class Series(_Composite):
    """Conducts iff *all* children conduct (a transistor stack)."""


class Parallel(_Composite):
    """Conducts iff *any* child conducts."""


Network = Union[Leaf, Series, Parallel]


def dual(tree: Network) -> Network:
    """Swap series and parallel composition (pull-down -> pull-up)."""
    if isinstance(tree, Leaf):
        return tree
    swapped = Parallel if isinstance(tree, Series) else Series
    return swapped(*(dual(child) for child in tree.children))


def leaves(tree: Network) -> List[str]:
    """Input names in left-to-right traversal order (with duplicates)."""
    if isinstance(tree, Leaf):
        return [tree.name]
    out: List[str] = []
    for child in tree.children:
        out.extend(leaves(child))
    return out


def conducts(tree: Network, assignment: Mapping[str, bool]) -> bool:
    """Whether the network conducts when ``assignment[name]`` marks each
    transistor as on (``True``) or off."""
    if isinstance(tree, Leaf):
        try:
            return bool(assignment[tree.name])
        except KeyError:
            raise NetlistError(f"no assignment for input {tree.name!r}") from None
    if isinstance(tree, Series):
        return all(conducts(child, assignment) for child in tree.children)
    return any(conducts(child, assignment) for child in tree.children)


def series_depths(tree: Network) -> Dict[str, int]:
    """Maximum series-path length through each input's transistor.

    Used for classic stack upsizing: a transistor on a series path of
    length *d* is widened by *d* so the stack drives like the reference
    inverter.  For inputs appearing several times, the worst (longest)
    path wins.
    """
    depths: Dict[str, int] = {}

    def visit(node: Network, depth_so_far: int) -> None:
        if isinstance(node, Leaf):
            depths[node.name] = max(depths.get(node.name, 0), depth_so_far)
            return
        if isinstance(node, Series):
            # Crude but standard: every member of an n-long series chain
            # counts the full chain length (plus any enclosing series).
            extra = len(node.children) - 1
            for child in node.children:
                visit(child, depth_so_far + extra)
        else:
            for child in node.children:
                visit(child, depth_so_far)

    visit(tree, 1)
    return depths


def describe(tree: Network) -> str:
    """Canonical compact string, usable in cache keys: ``(a.b.c)`` for
    series, ``(a|b|c)`` for parallel."""
    if isinstance(tree, Leaf):
        return tree.name
    sep = "." if isinstance(tree, Series) else "|"
    return "(" + sep.join(describe(c) for c in tree.children) + ")"
