"""Deterministic fault injection for the characterization runtime.

Every recovery path in :mod:`repro` -- the solver retry ladder, the
fault-tolerant process pool, cache quarantine, checkpoint/resume -- is
only trustworthy if it can be *exercised on demand*.  This module plants
hooks at the failure-prone seams and fires them according to a fault
plan described by the ``REPRO_FAULTS`` environment variable, so the
plan reaches worker processes (which inherit the environment) exactly
like ``REPRO_WORKERS`` and ``REPRO_CACHE_DIR`` do.

Fault plan grammar
------------------

``REPRO_FAULTS`` is a comma-separated list of ``kind@selector[:times]``
clauses:

``point@INDEX[:times]`` / ``point@SCOPE/INDEX[:times]``
    Raise a :class:`~repro.errors.ConvergenceError` inside the
    characterization task for grid point ``INDEX``.  ``SCOPE`` narrows
    the fault to one sweep family (``single`` or ``dual``); a bare index
    matches every scope.
``crash@INDEX[:times]``
    Kill the worker process (``os._exit``) that picks up parallel task
    ``INDEX`` -- models a segfaulting or OOM-killed worker.
``hang@INDEX[:times]``
    Make parallel task ``INDEX`` sleep for ``REPRO_FAULT_HANG`` seconds
    (default 30) -- models a hung solve, for exercising task timeouts.
``transient@*[:times]``
    Raise a :class:`~repro.errors.ConvergenceError` at the start of a
    transient-analysis attempt -- exercises the solver retry ladder.
``corrupt@KIND[:times]``
    Scribble garbage over the cache entry of the given kind (``vtc``,
    ``single``, ``dual``, ...) right after it is stored -- exercises
    quarantine and recompute-on-corruption.
``sparse@factorize[:times]``
    Raise :class:`numpy.linalg.LinAlgError` from the sparse backend's
    SuperLU factorization -- the exact error a singular matrix
    produces -- exercising the diagonal-nudge rung and the homotopy
    ladder above it on sparse-dispatched solves.  (``sparse@*`` also
    matches, for symmetry with the other wildcard clauses.)
``lane@INDEX[:times]`` / ``lane@*[:times]``
    Mark lane ``INDEX`` (the 0-based plan index within one batched
    call) of the lockstep batch kernel as faulted: the lane is evicted
    from the batch and retried solo through the scalar solver --
    exercises the eviction/solo-retry path without needing a genuinely
    diverging lane.

``times`` is how often the clause fires (default ``1``); ``always``
never exhausts.  Counted clauses claim *marker files* in the directory
named by ``REPRO_FAULTS_STATE`` with ``O_EXCL`` atomicity, so a budget
of ``N`` firings holds across any number of worker processes -- and a
worker that crashed still leaves its claim behind, which is what lets a
resubmitted task succeed.  Setting ``REPRO_FAULTS`` without
``REPRO_FAULTS_STATE`` is an error for counted clauses (a stale state
directory would silently disarm the plan); :class:`FaultInjection`
manages a fresh state directory for you.

Every hook is a no-op when ``REPRO_FAULTS`` is unset, and the check is
one environment lookup, so production paths pay nothing.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import ConvergenceError, ReproError

__all__ = [
    "FAULTS_ENV_VAR", "STATE_ENV_VAR", "HANG_ENV_VAR",
    "FaultSpec", "FaultInjection", "parse_faults",
    "fire_point", "fire_task", "fire_transient", "corrupt_after_store",
    "fire_sparse_factorize", "fire_batch_lane",
]

#: The fault plan (see module docstring for the grammar).
FAULTS_ENV_VAR = "REPRO_FAULTS"
#: Directory holding the cross-process firing-count marker files.
STATE_ENV_VAR = "REPRO_FAULTS_STATE"
#: How long an injected hang sleeps, in seconds.
HANG_ENV_VAR = "REPRO_FAULT_HANG"

_KINDS = ("point", "crash", "hang", "transient", "corrupt", "sparse",
          "lane")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind@selector[:times]`` clause of a fault plan."""

    kind: str
    selector: str
    times: Optional[int]  # None means "always"

    @property
    def fault_id(self) -> str:
        """A filesystem-safe identifier for marker files."""
        raw = f"{self.kind}@{self.selector}"
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", raw)
        digest = hashlib.sha256(raw.encode()).hexdigest()[:8]
        return f"{safe}-{digest}"


def parse_faults(spec: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` plan string into :class:`FaultSpec` s."""
    faults = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "@" not in clause:
            raise ReproError(
                f"fault clause {clause!r} must look like kind@selector[:times]"
            )
        kind, _, rest = clause.partition("@")
        kind = kind.strip().lower()
        if kind not in _KINDS:
            raise ReproError(
                f"unknown fault kind {kind!r}; expected one of {', '.join(_KINDS)}"
            )
        selector, _, times_text = rest.partition(":")
        selector = selector.strip()
        if not selector:
            raise ReproError(f"fault clause {clause!r} has an empty selector")
        times_text = times_text.strip().lower()
        if not times_text:
            times: Optional[int] = 1
        elif times_text == "always":
            times = None
        else:
            try:
                times = int(times_text)
            except ValueError:
                raise ReproError(
                    f"fault count in {clause!r} must be an integer or 'always'"
                ) from None
            if times < 1:
                raise ReproError(f"fault count in {clause!r} must be >= 1")
        faults.append(FaultSpec(kind=kind, selector=selector, times=times))
    return tuple(faults)


class _Plan:
    """A resolved, active fault plan bound to its marker directory."""

    def __init__(self, specs: Tuple[FaultSpec, ...], state_dir: Optional[Path]):
        self.specs = specs
        self.state_dir = state_dir
        if state_dir is None and any(s.times is not None for s in specs):
            raise ReproError(
                f"{FAULTS_ENV_VAR} has counted clauses but {STATE_ENV_VAR} "
                f"is unset; point it at a fresh directory (or use "
                f"repro.resilience.FaultInjection, which manages one)"
            )

    def try_fire(self, spec: FaultSpec) -> bool:
        """Claim one firing slot for ``spec``; True when the fault fires.

        Counted clauses claim ``O_EXCL`` marker files, which is atomic
        across processes; ``always`` clauses fire unconditionally.
        """
        if spec.times is None:
            return True
        assert self.state_dir is not None
        for slot in range(1, spec.times + 1):
            marker = self.state_dir / f"{spec.fault_id}.{slot}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def matches(self, kind: str, *selectors: str):
        for spec in self.specs:
            if spec.kind == kind and spec.selector in selectors:
                yield spec


_PLAN_CACHE: Dict[Tuple[str, str], Optional[_Plan]] = {}


def _active_plan() -> Optional[_Plan]:
    spec = os.environ.get(FAULTS_ENV_VAR, "")
    if not spec.strip():
        return None
    state = os.environ.get(STATE_ENV_VAR, "")
    cache_key = (spec, state)
    if cache_key not in _PLAN_CACHE:
        state_dir: Optional[Path] = None
        if state.strip():
            state_dir = Path(state)
            state_dir.mkdir(parents=True, exist_ok=True)
        _PLAN_CACHE[cache_key] = _Plan(parse_faults(spec), state_dir)
    return _PLAN_CACHE[cache_key]


# ----------------------------------------------------------------------
# Hook points.  Each is called from exactly one seam in the library.
# ----------------------------------------------------------------------

def fire_point(scope: str, index: int) -> None:
    """Characterization-task hook: fail grid point ``index`` on demand.

    Called at the top of the per-point worker functions in
    :mod:`repro.charlib.single` / :mod:`repro.charlib.dual` with the
    sweep family as ``scope``.  Raises
    :class:`~repro.errors.ConvergenceError` when a matching ``point``
    clause fires, imitating a grid corner where the solver gives up.
    """
    plan = _active_plan()
    if plan is None:
        return
    for spec in plan.matches("point", str(index), f"{scope}/{index}"):
        if plan.try_fire(spec):
            raise ConvergenceError(
                f"injected convergence fault at {scope} grid point {index}",
                iterations=0, residual=float("inf"),
            )


def fire_task(index: int) -> None:
    """Worker-process hook: crash or hang parallel task ``index``.

    Called by the process-pool task wrapper in :mod:`repro.parallel`
    (never on the serial path -- these model *worker* faults).  A
    ``crash`` clause terminates the worker with ``os._exit`` so not even
    ``finally`` blocks run, exactly like a segfault; a ``hang`` clause
    sleeps for ``REPRO_FAULT_HANG`` seconds.
    """
    plan = _active_plan()
    if plan is None:
        return
    for spec in plan.matches("crash", str(index)):
        if plan.try_fire(spec):
            os._exit(3)
    for spec in plan.matches("hang", str(index)):
        if plan.try_fire(spec):
            time.sleep(float(os.environ.get(HANG_ENV_VAR, "") or 30.0))


def fire_transient() -> None:
    """Solver hook: fail one transient-analysis attempt.

    Called at the start of every attempt inside
    :func:`repro.spice.transient.transient`, *inside* the retry ladder,
    so a counted ``transient@*`` clause proves the ladder recovers.
    """
    plan = _active_plan()
    if plan is None:
        return
    for spec in plan.matches("transient", "*"):
        if plan.try_fire(spec):
            raise ConvergenceError(
                "injected transient-analysis fault",
                iterations=0, residual=float("inf"),
            )


def fire_sparse_factorize() -> None:
    """Sparse-backend hook: fail one SuperLU factorization.

    Called at the top of
    :meth:`repro.spice.sparse.SparsePlan.factorize`.  Raises the same
    :class:`numpy.linalg.LinAlgError` a singular matrix produces, so
    the solve walks the genuine recovery ladder: diagonal nudge first,
    then (if the clause keeps firing) the homotopy rungs and the
    NaN-cell degradation path.
    """
    plan = _active_plan()
    if plan is None:
        return
    for spec in plan.matches("sparse", "factorize", "*"):
        if plan.try_fire(spec):
            import numpy as np

            raise np.linalg.LinAlgError(
                "injected sparse-factorization fault")


def fire_batch_lane(lane: int) -> bool:
    """Lockstep-kernel hook: mark batch lane ``lane`` as faulted.

    Called by :mod:`repro.spice.batch` when a lane loads a new solve.
    Returns ``True`` when a matching ``lane`` clause fires; the kernel
    evicts the lane from the stacked iteration and retries it solo
    through the scalar solver (a boolean rather than a raise: eviction
    is recovery behavior of the *driver*, not a solver error).
    """
    plan = _active_plan()
    if plan is None:
        return False
    for spec in plan.matches("lane", str(lane), "*"):
        if plan.try_fire(spec):
            return True
    return False


def corrupt_after_store(kind: str, path: os.PathLike) -> None:
    """Cache hook: corrupt the just-stored entry of the given kind.

    Called by :meth:`repro.charlib.cache.CharacterizationCache.store`
    after its atomic rename, imitating a torn write / bad disk.  The
    next load of the entry must quarantine it and recompute.
    """
    plan = _active_plan()
    if plan is None:
        return
    for spec in plan.matches("corrupt", kind):
        if plan.try_fire(spec):
            with open(path, "w") as handle:
                handle.write('{"truncated by injected corruption fault"')


class FaultInjection:
    """Context manager that arms a fault plan for the enclosed block.

    Sets ``REPRO_FAULTS`` (and a fresh ``REPRO_FAULTS_STATE`` marker
    directory, unless one is supplied) so the plan reaches both the
    current process and any worker processes spawned inside the block;
    restores the previous environment on exit.

    >>> with FaultInjection("point@dual/3:always,crash@2"):
    ...     characterize_dual_input(...)   # doctest: +SKIP
    """

    def __init__(self, spec: str, *, state_dir: Optional[str | Path] = None,
                 hang_seconds: Optional[float] = None) -> None:
        parse_faults(spec)  # validate eagerly, before arming
        self.spec = spec
        self._given_state_dir = state_dir
        self._hang_seconds = hang_seconds
        self.state_dir: Optional[Path] = None
        self._saved: Dict[str, Optional[str]] = {}

    def __enter__(self) -> "FaultInjection":
        self._saved = {
            name: os.environ.get(name)
            for name in (FAULTS_ENV_VAR, STATE_ENV_VAR, HANG_ENV_VAR)
        }
        if self._given_state_dir is not None:
            self.state_dir = Path(self._given_state_dir)
            self.state_dir.mkdir(parents=True, exist_ok=True)
        else:
            self.state_dir = Path(tempfile.mkdtemp(prefix="repro-faults-"))
        os.environ[FAULTS_ENV_VAR] = self.spec
        os.environ[STATE_ENV_VAR] = str(self.state_dir)
        if self._hang_seconds is not None:
            os.environ[HANG_ENV_VAR] = str(self._hang_seconds)
        return self

    def __exit__(self, *exc_info) -> None:
        for name, value in self._saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        if self._given_state_dir is None and self.state_dir is not None:
            import shutil

            shutil.rmtree(self.state_dir, ignore_errors=True)

    def fired_count(self, kind: Optional[str] = None) -> int:
        """How many counted firings have been claimed so far.

        Counts marker files in the state directory, optionally filtered
        by fault kind; useful for asserting that an injected fault
        actually triggered.  ``always`` clauses leave no markers.
        """
        if self.state_dir is None or not self.state_dir.exists():
            return 0
        prefix = "" if kind is None else kind
        return sum(
            1 for p in self.state_dir.iterdir()
            if p.name.startswith(prefix)
        )
