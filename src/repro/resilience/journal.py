"""Per-point progress journaling for long characterization sweeps.

A dual-input characterization is hundreds of transient solves; losing
the whole sweep to a Ctrl-C, an OOM kill or a power cut is exactly the
failure mode a production characterization farm cannot afford.  The
journal is the fix: as each sweep point completes, its (index, result)
pair is appended to a JSON-lines file in the cache directory, keyed by
the same content hash as the sweep's cache entry -- so a journal can
never be replayed against a different grid, process card or schema.

On a ``--resume`` run the journal is read back (tolerating a torn final
line, the normal consequence of being killed mid-append) and only the
missing points are recomputed.  On a fresh run any stale journal for
the key is truncated first.  Once the sweep completes cleanly, the
journal is deleted -- the cache entry supersedes it.

Results must round-trip through JSON; the sweeps store plain float
tuples, and ``json`` serializes floats by ``repr``, so the replayed
values are bit-identical to the originals.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Optional

__all__ = ["ProgressJournal"]


def _digest(key: Dict[str, Any]) -> str:
    """Content hash of a journal key (canonical JSON, numpy-tolerant)."""

    def jsonify(value: Any) -> Any:
        if hasattr(value, "tolist"):
            return value.tolist()
        if hasattr(value, "item"):
            return value.item()
        raise TypeError(f"unserializable journal-key value {type(value).__name__}")

    blob = json.dumps(key, sort_keys=True, separators=(",", ":"), default=jsonify)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class ProgressJournal:
    """An append-only (index, result) log for one keyed sweep."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @classmethod
    def for_key(cls, directory: str | Path, kind: str,
                key: Dict[str, Any]) -> "ProgressJournal":
        """The journal for a sweep identified by its cache kind + key."""
        return cls(Path(directory) / f"journal-{kind}-{_digest(key)}.jsonl")

    # ------------------------------------------------------------------
    def load(self, decode: Optional[Callable[[Any], Any]] = None) -> Dict[int, Any]:
        """Completed points recorded so far: flat index -> result.

        Corrupt or truncated lines (the tail of a killed run) are
        skipped; later records for the same index win, which makes
        replay idempotent.  The file is read as *bytes* and decoded per
        line: a partial append can tear mid-UTF-8-sequence, and
        text-mode iteration would raise ``UnicodeDecodeError`` for the
        whole file instead of just dropping the torn record.
        """
        done: Dict[int, Any] = {}
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return done
        except OSError:
            return {}
        for line_bytes in raw.split(b"\n"):
            try:
                line = line_bytes.decode().strip()
                if not line:
                    continue
                entry = json.loads(line)
                index = int(entry["i"])
                value = entry["v"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                    TypeError, ValueError):
                continue  # torn write; the point just reruns
            done[index] = decode(value) if decode is not None else value
        return done

    def record(self, index: int, value: Any) -> None:
        """Append one completed point, durably (flush + fsync)."""
        line = json.dumps({"i": index, "v": value}) + "\n"
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Delete the journal (the sweep completed, or a fresh start)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    @property
    def completed_count(self) -> int:
        """Number of distinct points currently recorded."""
        return len(self.load())
