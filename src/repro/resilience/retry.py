"""The solver retry ladder: deterministic escalation on convergence loss.

Production SPICE flows survive hard operating points by re-running the
failed analysis on a *numerically easier* problem -- the HSPICE-style
gmin/source-stepping escalation the paper's own Section-5 validation
relied on.  :class:`RetryPolicy` captures that discipline for this
library's solvers: when a DC or transient solve raises
:class:`~repro.errors.ConvergenceError`, the analysis re-runs with

* a raised convergence-aid ``gmin`` (each escalation multiplies it by
  ``gmin_step``),
* a larger Newton iteration budget (``iteration_step``),
* stronger per-iteration voltage damping (``damping_step`` shrinks
  ``max_step``), and
* a halved initial timestep for transients (``timestep_step``).

The schedule is a pure function of the attempt number, so a retried run
is exactly reproducible; every engaged escalation is accounted for in
:class:`~repro.spice.engine.NewtonStats` (``retries``) and, for
transients, in the per-attempt :class:`AttemptRecord` log attached to
the result.

The default ladder is on everywhere (``DEFAULT_MAX_ATTEMPTS`` attempts
per solve).  ``REPRO_RETRY`` overrides the attempt budget process-wide
(workers inherit it); ``REPRO_RETRY=1`` disables escalation.  Fault-free
solves converge on attempt 0 with unmodified options, so enabling the
ladder never changes a healthy result.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Union

from ..errors import ReproError

__all__ = [
    "RETRY_ENV_VAR", "DEFAULT_MAX_ATTEMPTS", "AttemptRecord", "RetryPolicy",
]

#: Environment variable overriding the per-solve attempt budget.
RETRY_ENV_VAR = "REPRO_RETRY"

#: Attempts per solve when neither an argument nor the env var says more.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class AttemptRecord:
    """Accounting for one failed solve attempt inside the retry ladder.

    Mirrors the diagnostics a :class:`~repro.errors.ConvergenceError`
    carries, plus which rung of the ladder failed; transient results
    expose the full log as ``retry_attempts``.
    """

    attempt: int
    message: str
    iterations: Optional[int] = None
    residual: Optional[float] = None


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic escalation schedule for failed solves.

    ``max_attempts`` counts the *total* tries including the first;
    attempt 0 always runs with the caller's unmodified options.  The
    ``*_step`` factors compound per escalation: attempt ``k`` runs with
    ``gmin * gmin_step**k``, ``max_iterations * iteration_step**k``,
    ``max_step * damping_step**k`` and (for transients)
    ``h_initial_ratio * timestep_step**k``.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    gmin_step: float = 100.0
    iteration_step: float = 2.0
    damping_step: float = 0.5
    timestep_step: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("RetryPolicy.max_attempts must be >= 1")

    @classmethod
    def resolve(cls, retry: Union["RetryPolicy", int, None] = None) -> "RetryPolicy":
        """The effective policy for a solve call.

        Resolution order: an explicit :class:`RetryPolicy`, an explicit
        integer attempt budget, the ``REPRO_RETRY`` environment variable,
        then the default ladder.
        """
        if isinstance(retry, RetryPolicy):
            return retry
        if retry is not None:
            return cls(max_attempts=int(retry))
        env = os.environ.get(RETRY_ENV_VAR, "").strip()
        if env:
            try:
                return cls(max_attempts=int(env))
            except ValueError:
                raise ReproError(
                    f"{RETRY_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        return cls()

    # ------------------------------------------------------------------
    # Escalation.  Both helpers are generic over any frozen dataclass
    # exposing the named fields, which keeps this module free of imports
    # from repro.spice (and therefore cycle-free).
    # ------------------------------------------------------------------
    def escalate_newton(self, options, attempt: int):
        """Newton options for ladder rung ``attempt`` (0 = unchanged)."""
        if attempt <= 0:
            return options
        return replace(
            options,
            gmin=options.gmin * self.gmin_step ** attempt,
            max_iterations=max(1, int(round(
                options.max_iterations * self.iteration_step ** attempt))),
            max_step=options.max_step * self.damping_step ** attempt,
        )

    def escalate_transient(self, options, attempt: int):
        """Transient options for ladder rung ``attempt`` (0 = unchanged)."""
        if attempt <= 0:
            return options
        return replace(
            options,
            h_initial_ratio=options.h_initial_ratio * self.timestep_step ** attempt,
            newton=self.escalate_newton(options.newton, attempt),
        )
