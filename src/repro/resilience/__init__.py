"""Resilient characterization runtime: retry ladders, fault injection,
checkpoint/resume and graceful degradation.

A production characterization farm runs tens of thousands of transient
solves across many worker processes; at that scale convergence failures,
crashed workers, hung solves and torn cache writes are routine, not
exceptional.  This package concentrates the recovery machinery:

:mod:`~repro.resilience.retry`
    :class:`RetryPolicy` -- the deterministic gmin/damping/timestep
    escalation ladder the DC and transient solvers re-run under after a
    :class:`~repro.errors.ConvergenceError`.
:mod:`~repro.resilience.health`
    :class:`FailedPoint` / :class:`HealthReport` -- per-sweep accounting
    of lost grid points, and :func:`neighbor_fill` which repairs the
    interpolation tables those losses puncture.
:mod:`~repro.resilience.journal`
    :class:`ProgressJournal` -- the per-point JSON-lines checkpoint that
    lets an interrupted sweep resume instead of restarting.
:mod:`~repro.resilience.faults`
    :class:`FaultInjection` and the ``REPRO_FAULTS`` plan grammar --
    deterministic injection of convergence failures, worker crashes,
    task hangs and cache corruption, so every recovery path above is
    testable on demand.
:mod:`~repro.resilience.runtime`
    :func:`~repro.resilience.runtime.resilient_map` -- the journaled,
    failure-collecting fan-out the characterization sweeps are built on.
    Import it as ``repro.resilience.runtime`` (not re-exported here:
    it sits above :mod:`repro.parallel`, which imports this package's
    fault hooks, and re-exporting it would close that cycle).
"""

from .faults import (
    FAULTS_ENV_VAR,
    HANG_ENV_VAR,
    STATE_ENV_VAR,
    FaultInjection,
    FaultSpec,
    parse_faults,
)
from .health import FailedPoint, HealthReport, neighbor_fill
from .journal import ProgressJournal
from .retry import (
    DEFAULT_MAX_ATTEMPTS,
    RETRY_ENV_VAR,
    AttemptRecord,
    RetryPolicy,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "STATE_ENV_VAR",
    "HANG_ENV_VAR",
    "RETRY_ENV_VAR",
    "DEFAULT_MAX_ATTEMPTS",
    "FaultSpec",
    "FaultInjection",
    "parse_faults",
    "AttemptRecord",
    "RetryPolicy",
    "FailedPoint",
    "HealthReport",
    "neighbor_fill",
    "ProgressJournal",
]
