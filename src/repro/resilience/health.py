"""Graceful-degradation bookkeeping: failed grid points and table health.

When a characterization sweep loses grid points (persistent convergence
failure, a crashed worker past its resubmission budget, a task timeout),
the sweep no longer aborts: the lost cells become NaN, the interpolator
input is repaired by :func:`neighbor_fill`, and a :class:`HealthReport`
listing exactly what was lost rides along on the built model.  Callers
that need hard guarantees check ``report.ok``; callers that prefer a
degraded table over no table read the filled values knowing which cells
are first-class measurements and which are neighbor estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import CharacterizationError

__all__ = ["FailedPoint", "HealthReport", "neighbor_fill"]


@dataclass(frozen=True)
class FailedPoint:
    """One characterization grid point that produced no measurement.

    ``index`` is the flat sweep index (the order points were submitted
    in); ``coords`` names the physical/normalized coordinates of the
    point (``tau``/``load`` for single-input sweeps, ``tau_ref``/``a2``/
    ``a3`` for dual); ``kind`` is the failure class recorded by the
    parallel runtime (``error``, ``timeout`` or ``crash``).
    """

    index: int
    kind: str
    message: str
    coords: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One line: where the point sits and why it was lost."""
        where = ", ".join(f"{k}={v:g}" for k, v in self.coords.items())
        return f"point {self.index} ({where}): {self.kind}: {self.message}"


@dataclass(frozen=True)
class HealthReport:
    """Outcome accounting for one characterization sweep.

    Attached to built tables as ``model.health``; aggregated per library
    by :meth:`repro.charlib.GateLibrary.health_reports`.  ``filled`` is
    the number of table cells replaced by neighbor estimates (for a
    dual-input sweep each failed point fills one cell in two tables, so
    ``filled == 2 * len(failed)`` there).
    """

    label: str
    total_points: int
    failed: Tuple[FailedPoint, ...] = ()
    filled: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def n_failed(self) -> int:
        return len(self.failed)

    def describe(self) -> str:
        """A human-readable summary, one line per failed point."""
        head = (
            f"{self.label}: {self.total_points - self.n_failed}/"
            f"{self.total_points} points ok"
        )
        if self.ok:
            return head
        lines = [head + f", {self.n_failed} failed"
                 + (f", {self.filled} cells neighbor-filled" if self.filled else "")]
        lines.extend("  " + point.describe() for point in self.failed)
        return "\n".join(lines)

    @staticmethod
    def summarize(reports: Sequence["HealthReport"]) -> str:
        """A multi-sweep summary (used by the CLI after characterize)."""
        if not reports:
            return "characterization health: no sweeps recorded"
        failed = sum(r.n_failed for r in reports)
        total = sum(r.total_points for r in reports)
        if failed == 0:
            return (f"characterization health: OK "
                    f"({total} points over {len(reports)} sweeps)")
        lines = [f"characterization health: {failed}/{total} points failed"]
        lines.extend(r.describe() for r in reports if not r.ok)
        return "\n".join(lines)


def neighbor_fill(table: np.ndarray) -> Tuple[np.ndarray, int]:
    """Replace NaN cells by iterated means of their axis neighbors.

    Returns ``(filled_copy, n_filled)``.  Each pass replaces every NaN
    that has at least one finite neighbor along any axis with the mean
    of those neighbors; passes repeat until no NaN remains, so isolated
    holes fill from all sides in one pass and larger gaps flood-fill
    inward deterministically.  A table with no finite cell at all cannot
    be repaired and raises :class:`~repro.errors.CharacterizationError`.
    """
    filled = np.array(table, dtype=float)
    n_missing = int(np.isnan(filled).sum())
    if n_missing == 0:
        return filled, 0
    if not np.isfinite(filled).any():
        raise CharacterizationError(
            "cannot neighbor-fill a table with no finite cells"
        )
    while True:
        nan_mask = np.isnan(filled)
        if not nan_mask.any():
            break
        sums = np.zeros_like(filled)
        counts = np.zeros_like(filled)
        for axis in range(filled.ndim):
            for shift in (1, -1):
                shifted = np.roll(filled, shift, axis=axis)
                edge = [slice(None)] * filled.ndim
                edge[axis] = 0 if shift == 1 else -1
                shifted[tuple(edge)] = np.nan  # cancel the wrap-around
                valid = ~np.isnan(shifted)
                sums[valid] += shifted[valid]
                counts[valid] += 1.0
        fillable = nan_mask & (counts > 0)
        filled[fillable] = sums[fillable] / counts[fillable]
    return filled, n_missing
