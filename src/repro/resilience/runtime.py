"""The journaled, failure-collecting fan-out under every long sweep.

:func:`resilient_map` composes the two lower layers -- the fault-tolerant
:func:`repro.parallel.parallel_map` and the per-point
:class:`~repro.resilience.journal.ProgressJournal` -- into the execution
primitive the characterization sweeps and experiments actually call:

* every completed point is journaled as it lands, so an interrupted run
  (Ctrl-C, OOM kill, power cut) can **resume** and recompute only the
  missing points;
* failures come back as ordered
  :class:`~repro.parallel.TaskFailure` records instead of aborting, so
  a sweep **degrades** (NaN cell + health report) rather than dies.

This module imports :mod:`repro.parallel`, which imports the fault hooks
from :mod:`repro.resilience.faults`; keeping it out of the package
``__init__`` is what keeps that import chain acyclic.

Resume is opt-in per run: pass ``resume=True`` or set ``REPRO_RESUME=1``
(the CLI's ``--resume`` flag does the latter, so worker processes and
nested sweeps inherit it).  A fresh (non-resume) run truncates any stale
journal for its key first, so two back-to-back runs of the same sweep
stay independent and bit-identical.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..obs import get_recorder
from ..parallel import TaskFailure, parallel_map
from .journal import ProgressJournal

__all__ = ["RESUME_ENV_VAR", "resolve_resume", "resilient_map",
           "resilient_chunked_map"]

#: Set to a truthy value ("1", "true", "yes", "on") to resume journaled sweeps.
RESUME_ENV_VAR = "REPRO_RESUME"


def resolve_resume(resume: Optional[bool] = None) -> bool:
    """The effective resume flag: explicit argument, then ``REPRO_RESUME``."""
    if resume is not None:
        return bool(resume)
    env = os.environ.get(RESUME_ENV_VAR, "").strip().lower()
    if not env:
        return False
    if env in ("1", "true", "yes", "on"):
        return True
    if env in ("0", "false", "no", "off"):
        return False
    raise ReproError(f"{RESUME_ENV_VAR} must be a boolean flag, got {env!r}")


def resilient_map(fn: Callable[[Any], Any], items: Sequence[Any], *,
                  journal_kind: str,
                  journal_key: Dict[str, Any],
                  directory: Optional[Union[str, Path]],
                  workers: Optional[int] = None,
                  timeout: Optional[float] = None,
                  on_error: str = "collect",
                  resume: Optional[bool] = None,
                  encode: Optional[Callable[[Any], Any]] = None,
                  decode: Optional[Callable[[Any], Any]] = None,
                  ) -> Tuple[List[Any], List[TaskFailure]]:
    """Journaled fault-tolerant map; returns ``(results, failures)``.

    ``results`` is input-ordered with one entry per item: the computed
    (or journal-replayed) value, or the :class:`TaskFailure` that lost
    it (``on_error="collect"``).  ``failures`` lists those records
    separately for health reporting.  With ``on_error="raise"`` the
    first failure propagates -- but the journal still holds every point
    completed before it, which is what makes resume-after-abort work.

    The journal lives in ``directory`` (the sweep's cache directory),
    keyed by ``journal_kind`` + the content hash of ``journal_key`` --
    the same identity discipline as the result cache, so a journal can
    never replay against a different grid or process card.  A ``None``
    directory (caching disabled) runs without journaling; resume then
    has nothing to read and every point computes.  ``encode`` maps a
    result to its JSON form before journaling; ``decode`` maps the JSON
    form back on replay (e.g. ``tuple``, since JSON round-trips tuples
    as lists).  Values must otherwise be JSON-representable.

    When every item succeeds the journal is deleted -- the sweep's cache
    entry supersedes it.  While failures remain the journal is kept, so
    a later ``--resume`` run retries only the failed/missing points.
    """
    items = list(items)
    journal: Optional[ProgressJournal] = None
    if directory is not None:
        journal = ProgressJournal.for_key(directory, journal_kind, journal_key)
    done: Dict[int, Any] = {}
    if journal is not None:
        if resolve_resume(resume):
            done = journal.load(decode=decode)
            if done:
                get_recorder().counter("charlib.journal.resumed_points",
                                       kind=journal_kind).inc(len(done))
        else:
            journal.clear()

    todo = [i for i in range(len(items)) if i not in done]
    index_map = dict(enumerate(todo))  # local pool index -> global index

    def journal_result(local_index: int, value: Any) -> None:
        payload = encode(value) if encode is not None else value
        journal.record(index_map[local_index], payload)

    computed = parallel_map(
        fn, [items[i] for i in todo],
        workers=workers, timeout=timeout, on_error=on_error,
        on_result=journal_result if journal is not None else None,
    )

    results: List[Any] = [None] * len(items)
    failures: List[TaskFailure] = []
    for global_index, value in done.items():
        if 0 <= global_index < len(items):
            results[global_index] = value
    for local_index, value in enumerate(computed):
        global_index = index_map[local_index]
        if isinstance(value, TaskFailure):
            value = TaskFailure(
                index=global_index, kind=value.kind, message=value.message,
                error_type=value.error_type, attempts=value.attempts,
                exception=value.exception,
            )
            failures.append(value)
        results[global_index] = value
    if journal is not None and not failures:
        journal.clear()
    return results, failures


def resilient_chunked_map(chunk_fn: Callable[[Any], Sequence[Tuple]],
                          items: Sequence[Any], *,
                          batch: int,
                          make_chunk: Callable[[List[Tuple[int, Any]]], Any],
                          journal_kind: str,
                          journal_key: Dict[str, Any],
                          directory: Optional[Union[str, Path]],
                          workers: Optional[int] = None,
                          timeout: Optional[float] = None,
                          resume: Optional[bool] = None,
                          encode: Optional[Callable[[Any], Any]] = None,
                          decode: Optional[Callable[[Any], Any]] = None,
                          ) -> Tuple[List[Any], List[TaskFailure]]:
    """:func:`resilient_map` for sweeps that batch points per task.

    Instead of one task per point, the ``items`` are partitioned into
    chunks of ``batch`` points and ``make_chunk`` builds one picklable
    task from each chunk's ``(global_index, item)`` pairs.  The worker
    ``chunk_fn`` returns one *envelope* per pair, in order:
    ``("ok", value)`` for a completed point, or
    ``("err", kind, message, error_type)`` for a point that failed --
    so a single bad point degrades exactly as it does on the scalar
    path (same :class:`TaskFailure` kind/message in the health report)
    while its chunk-mates survive.

    Journaling, resume and cleanup use the same per-**point** journal as
    :func:`resilient_map` with the same kind/key identity, so a sweep
    can be interrupted under one batch size and resumed under another
    (or scalar) without recomputing completed points.  A chunk task the
    pool loses wholesale (worker crash, timeout) fails all of its
    points with that record's kind and message.
    """
    items = list(items)
    journal: Optional[ProgressJournal] = None
    if directory is not None:
        journal = ProgressJournal.for_key(directory, journal_kind, journal_key)
    done: Dict[int, Any] = {}
    if journal is not None:
        if resolve_resume(resume):
            done = journal.load(decode=decode)
            if done:
                get_recorder().counter("charlib.journal.resumed_points",
                                       kind=journal_kind).inc(len(done))
        else:
            journal.clear()

    todo = [i for i in range(len(items)) if i not in done]
    chunk_indices = [todo[i:i + batch] for i in range(0, len(todo), batch)]
    tasks = [make_chunk([(i, items[i]) for i in chunk])
             for chunk in chunk_indices]

    def journal_chunk(local_index: int, envelopes: Sequence[Tuple]) -> None:
        for global_index, envelope in zip(chunk_indices[local_index],
                                          envelopes):
            if envelope[0] == "ok":
                value = envelope[1]
                journal.record(global_index,
                               encode(value) if encode is not None else value)

    computed = parallel_map(
        chunk_fn, tasks,
        workers=workers, timeout=timeout, on_error="collect",
        on_result=journal_chunk if journal is not None else None,
    )

    results: List[Any] = [None] * len(items)
    failures: List[TaskFailure] = []
    for global_index, value in done.items():
        if 0 <= global_index < len(items):
            results[global_index] = value
    for local_index, outcome in enumerate(computed):
        chunk = chunk_indices[local_index]
        if isinstance(outcome, TaskFailure):
            # The whole chunk task was lost; every point in it fails
            # with the chunk's record.
            for global_index in chunk:
                failure = TaskFailure(
                    index=global_index, kind=outcome.kind,
                    message=outcome.message, error_type=outcome.error_type,
                    attempts=outcome.attempts, exception=outcome.exception,
                )
                failures.append(failure)
                results[global_index] = failure
            continue
        for global_index, envelope in zip(chunk, outcome):
            if envelope[0] == "ok":
                results[global_index] = envelope[1]
            else:
                _tag, kind, message, error_type = envelope
                failure = TaskFailure(index=global_index, kind=kind,
                                      message=message, error_type=error_type)
                failures.append(failure)
                results[global_index] = failure
    failures.sort(key=lambda f: f.index)
    if journal is not None and not failures:
        journal.clear()
    return results, failures
