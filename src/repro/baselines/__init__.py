"""Prior-art baselines: series/parallel collapsing to an equivalent inverter.

The methods the paper improves upon ([8] Jun et al., [13] Nabavi-Lishi &
Rumin) reduce a multi-input gate to an inverter by collapsing series and
parallel transistors, derive a single *equivalent input waveform* from
the switching inputs, and evaluate an inverter delay model.  We
implement that family here -- generously, with our circuit simulator as
the inverter model (stronger than their polynomial fits) -- so the
benchmarks can compare the paper's compositional algorithm against it on
identical inputs.
"""

from .collapse import (
    collapse_strengths,
    equivalent_inverter_gate,
    CollapsedInverterBaseline,
)

__all__ = [
    "collapse_strengths",
    "equivalent_inverter_gate",
    "CollapsedInverterBaseline",
]
