"""Series/parallel collapsing of a gate into an equivalent inverter.

The baseline follows the recipe of the prior art the paper compares
against:

1. **Collapse strengths.**  The network driving the output transition
   (pull-up for a rising output, pull-down for a falling one) is
   collapsed over the *conducting* transistors -- series combine as
   ``1/K_eq = sum 1/K_i``, parallel as ``K_eq = sum K_i``.  The opposing
   network is collapsed with every transistor conducting (its initial
   state).
2. **Equivalent input waveform.**  Two policies:

   * ``"extreme"`` -- the edge whose arrival first makes the driving
     network conduct (the earliest switching input of a parallel
     network, the latest of a series stack), in the spirit of [8];
   * ``"weighted"`` -- strength-weighted mean arrival and transition
     time over the switching inputs, a loading-aware flavour in the
     spirit of [13].

3. **Inverter evaluation.**  The collapsed inverter is simulated
   directly (memoized), which is *more* generous to the baseline than
   the polynomial macromodels of the original papers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ModelError
from ..gates import Gate
from ..gates.topology import Leaf, Network, Series
from ..tech import Sizing
from ..units import parse_quantity
from ..waveform import Edge, RISE, Thresholds
from ..charlib.simulate import single_input_response

__all__ = [
    "collapse_strengths",
    "onset_input",
    "equivalent_inverter_gate",
    "CollapsedInverterBaseline",
    "BaselineEstimate",
]


def collapse_strengths(tree: Network, strengths: Mapping[str, float],
                       conducting: Mapping[str, bool]) -> float:
    """Series/parallel-collapsed strength of a transistor network.

    ``strengths`` maps input name -> K of its transistor in this
    network; ``conducting`` marks which transistors are on.  A
    non-conducting network collapses to strength 0.
    """
    if isinstance(tree, Leaf):
        if not conducting.get(tree.name, False):
            return 0.0
        k = strengths[tree.name]
        if k <= 0.0:
            raise ModelError(f"non-positive strength for input {tree.name!r}")
        return k
    child_ks = [collapse_strengths(c, strengths, conducting) for c in tree.children]
    if isinstance(tree, Series):
        if any(k == 0.0 for k in child_ks):
            return 0.0
        return 1.0 / sum(1.0 / k for k in child_ks)
    return sum(child_ks)  # Parallel


def onset_input(tree: Network, stable_conducting: Mapping[str, bool],
                arrival_order: list[str]) -> str:
    """The switching input whose arrival first makes the network conduct.

    Walks the switching inputs in arrival order, marking each conducting
    in turn; returns the one that completes a conducting path.  For a
    parallel network of switching transistors this is the earliest
    arrival; for a series stack, the latest.
    """
    state = dict(stable_conducting)
    for name in arrival_order:
        state[name] = True
        if _network_conducts(tree, state):
            return name
    raise ModelError(
        "the switching inputs never make the driving network conduct; "
        "check the stable-input levels"
    )


def _network_conducts(tree: Network, state: Mapping[str, bool]) -> bool:
    if isinstance(tree, Leaf):
        return bool(state.get(tree.name, False))
    if isinstance(tree, Series):
        return all(_network_conducts(c, state) for c in tree.children)
    return any(_network_conducts(c, state) for c in tree.children)


def equivalent_inverter_gate(gate: Gate, switching: Tuple[str, ...],
                             direction: str) -> Gate:
    """Collapse ``gate`` for the given switching set into an inverter.

    The inverter's NMOS/PMOS widths are chosen so its strengths equal
    the collapsed driving/opposing strengths.
    """
    out_dir = gate.output_direction(direction)
    n_strengths = {x: gate.strength_n(x) for x in gate.inputs}
    p_strengths = {x: gate.strength_p(x) for x in gate.inputs}
    switching_set = set(switching)
    stable_levels = gate.sensitizing_levels(list(switching))

    # Conduction state of each network once all switching edges are done:
    # NMOS conducts on a high input, PMOS on a low one.
    n_conducting = {}
    p_conducting = {}
    for name in gate.inputs:
        if name in switching_set:
            high = direction == RISE  # final level after the edge
        else:
            high = bool(stable_levels.get(name, True))
        n_conducting[name] = high
        p_conducting[name] = not high

    if out_dir == RISE:
        k_drive = collapse_strengths(gate.pullup, p_strengths, p_conducting)
        # Opposing pull-down: initial state (before the edges) conducts.
        k_oppose = collapse_strengths(
            gate.pulldown, n_strengths, {x: True for x in gate.inputs},
        )
        kp_eq, kn_eq = k_drive, k_oppose
    else:
        k_drive = collapse_strengths(gate.pulldown, n_strengths, n_conducting)
        k_oppose = collapse_strengths(
            gate.pullup, p_strengths, {x: True for x in gate.inputs},
        )
        kn_eq, kp_eq = k_drive, k_oppose
    if kn_eq <= 0.0 or kp_eq <= 0.0:
        raise ModelError(
            f"collapsed strengths must be positive (kn={kn_eq:g}, kp={kp_eq:g}); "
            f"the switching set {sorted(switching_set)!r} may not drive the output"
        )

    length = gate.sizing.length
    wn = 2.0 * kn_eq * length / gate.process.nmos.kp
    wp = 2.0 * kp_eq * length / gate.process.pmos.kp
    sizing = Sizing(wn=wn, wp=wp, length=length)
    return Gate(
        f"{gate.name}-collapsed-{''.join(sorted(switching_set))}-{direction}",
        Leaf("a"), gate.process, load=gate.load, sizing=sizing,
        stack_scaling=False,
    )


@dataclass(frozen=True)
class BaselineEstimate:
    """Result of a collapsed-inverter evaluation."""

    output_crossing: float
    ttime: float
    equivalent_edge: Edge
    inverter_name: str

    def delay_from(self, reference_edge: Edge) -> float:
        """Delay re-referenced to a chosen input edge (for comparing with
        the proximity algorithm, which reports from the dominant input)."""
        return self.output_crossing - reference_edge.t_cross


class CollapsedInverterBaseline:
    """The [8]/[13]-style equivalent-inverter delay estimator."""

    def __init__(self, gate: Gate, thresholds: Thresholds, *,
                 waveform_policy: str = "extreme") -> None:
        if waveform_policy not in ("extreme", "weighted"):
            raise ModelError(
                f"waveform_policy must be 'extreme' or 'weighted', got "
                f"{waveform_policy!r}"
            )
        self.gate = gate
        self.thresholds = thresholds
        self.waveform_policy = waveform_policy
        self._inverters: Dict[Tuple[Tuple[str, ...], str], Gate] = {}
        self._memo: Dict[Tuple, Tuple[float, float]] = {}

    def _inverter(self, switching: Tuple[str, ...], direction: str) -> Gate:
        key = (switching, direction)
        if key not in self._inverters:
            self._inverters[key] = equivalent_inverter_gate(
                self.gate, switching, direction,
            )
        return self._inverters[key]

    def _equivalent_edge(self, edges: Mapping[str, Edge], direction: str) -> Edge:
        names = sorted(edges)
        if self.waveform_policy == "weighted":
            out_dir = self.gate.output_direction(direction)
            strengths = {
                name: (self.gate.strength_p(name) if out_dir == RISE
                       else self.gate.strength_n(name))
                for name in names
            }
            total = sum(strengths.values())
            t_eq = sum(strengths[n] * edges[n].t_cross for n in names) / total
            tau_eq = sum(strengths[n] * edges[n].tau for n in names) / total
            return Edge(direction, t_eq, tau_eq)
        # "extreme": the edge that first makes the driving network conduct.
        out_dir = self.gate.output_direction(direction)
        tree = self.gate.pullup if out_dir == RISE else self.gate.pulldown
        stable_levels = self.gate.sensitizing_levels(list(names))
        stable_conducting = {}
        for name in self.gate.inputs:
            if name in edges:
                continue
            high = bool(stable_levels.get(name, True))
            stable_conducting[name] = (not high) if out_dir == RISE else high
        order = sorted(names, key=lambda n: edges[n].t_cross)
        chosen = onset_input(tree, stable_conducting, order)
        return edges[chosen]

    def estimate(self, edges: Mapping[str, Edge], *,
                 load: Optional[float] = None) -> BaselineEstimate:
        """Collapse, derive the equivalent waveform, evaluate the inverter."""
        if not edges:
            raise ModelError("baseline estimate needs at least one edge")
        directions = {e.direction for e in edges.values()}
        if len(directions) != 1:
            raise ModelError("baseline requires same-direction edges")
        direction = next(iter(directions))
        switching = tuple(sorted(edges))
        inverter = self._inverter(switching, direction)
        eq_edge = self._equivalent_edge(edges, direction)

        cl = self.gate.load if load is None else parse_quantity(load, unit="F")
        memo_key = (switching, direction, round(eq_edge.tau * 1e15),
                    round(cl * 1e18))
        if memo_key not in self._memo:
            shot = single_input_response(
                inverter, "a", direction, eq_edge.tau, self.thresholds, load=cl,
            )
            self._memo[memo_key] = (shot.delay, shot.out_ttime)
        delay, ttime = self._memo[memo_key]
        return BaselineEstimate(
            output_crossing=eq_edge.t_cross + delay,
            ttime=ttime,
            equivalent_edge=eq_edge,
            inverter_name=inverter.name,
        )
