"""Process-pool fan-out for the embarrassingly parallel hot paths.

Characterization sweeps, oracle prefetches and experiment populations
are all lists of independent transient simulations; this module gives
them one shared execution primitive, :func:`parallel_map`, built on
:class:`concurrent.futures.ProcessPoolExecutor`.

Design rules, enforced here so every call site inherits them:

* **Serial by default.**  The worker count resolves from an explicit
  argument first, then the ``REPRO_WORKERS`` environment variable, then
  ``0`` (serial, in-process).  Unless the caller opts in, behavior --
  including cache population order -- is exactly the pre-parallel code
  path.
* **Deterministic merge.**  Results always come back in input order
  regardless of completion order, so a parallel run produces tables
  bit-identical to a serial run of the same work list.
* **Picklable tasks.**  Worker functions must be module-level and their
  arguments picklable; every call site in :mod:`repro` ships plain
  dataclasses (gates, edges, thresholds) that satisfy this.

Worker processes inherit the environment, so ``REPRO_CACHE_DIR``
redirection applies to them too; concurrent cache writes are safe
because :meth:`repro.charlib.cache.CharacterizationCache.store` stages
each write in a unique per-writer temp file before its atomic rename.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from .errors import ReproError

__all__ = ["WORKERS_ENV_VAR", "resolve_workers", "parallel_map"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count for a parallelizable call.

    Resolution order: the explicit ``workers`` argument, then the
    ``REPRO_WORKERS`` environment variable, then ``0``.  ``0`` and ``1``
    both mean serial in-process execution; a negative count means "all
    cores" (:func:`os.cpu_count`).
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not env:
            return 0
        try:
            workers = int(env)
        except ValueError:
            raise ReproError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    if workers < 0:
        workers = os.cpu_count() or 1
    return workers


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 workers: Optional[int] = None,
                 chunksize: int = 1) -> List[R]:
    """Map ``fn`` over ``items``, returning results in input order.

    With a resolved worker count of 0 or 1 (the default), this is a
    plain in-process loop -- same objects, same call order, no pickling.
    Otherwise the items fan out over a process pool; ``fn`` must then be
    a module-level function and every item picklable.  Worker exceptions
    propagate to the caller either way.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(count, len(items))) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))
