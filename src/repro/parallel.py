"""Fault-tolerant process-pool fan-out for the embarrassingly parallel
hot paths.

Characterization sweeps, oracle prefetches and experiment populations
are all lists of independent transient simulations; this module gives
them one shared execution primitive, :func:`parallel_map`, built on
:class:`concurrent.futures.ProcessPoolExecutor` with per-future
submission so that one bad task can no longer take the sweep down.

Design rules, enforced here so every call site inherits them:

* **Serial by default.**  The worker count resolves from an explicit
  argument first, then the ``REPRO_WORKERS`` environment variable, then
  ``0`` (serial, in-process).  Unless the caller opts in, behavior --
  including cache population order -- is exactly the pre-parallel code
  path.
* **Deterministic merge.**  Results always come back in input order
  regardless of completion order, so a parallel run produces tables
  bit-identical to a serial run of the same work list.
* **Fault containment.**  Each item is its own future.  A worker that
  dies (:class:`~concurrent.futures.process.BrokenProcessPool`) triggers
  an automatic pool rebuild and resubmission of the in-flight tasks,
  bounded by ``pool_retries`` per task; a task that exceeds the per-task
  ``timeout`` is abandoned and the pool rebuilt (a hung worker cannot be
  interrupted, only replaced).  With ``on_error="collect"`` every lost
  or failing task yields an ordered :class:`TaskFailure` record in its
  result slot instead of aborting the sweep.
* **Picklable tasks.**  Worker functions must be module-level and their
  arguments picklable; every call site in :mod:`repro` ships plain
  dataclasses (gates, edges, thresholds) that satisfy this.

Worker processes inherit the environment, so ``REPRO_CACHE_DIR``
redirection, the ``REPRO_RETRY`` solver ladder and the ``REPRO_FAULTS``
fault-injection plan (see :mod:`repro.resilience.faults`) all apply to
them too; concurrent cache writes are safe because
:meth:`repro.charlib.cache.CharacterizationCache.store` stages each
write in a unique per-writer temp file before its atomic rename.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import monotonic
from typing import Callable, Dict, Iterable, List, Optional, TypeVar, Union

from .errors import ReproError, TaskError
from .obs import capture_task, get_recorder
from .resilience import faults

__all__ = [
    "WORKERS_ENV_VAR", "TIMEOUT_ENV_VAR", "BATCH_ENV_VAR", "TaskFailure",
    "resolve_workers", "resolve_timeout", "resolve_batch", "parallel_map",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable consulted when no explicit task timeout is given.
TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT"

#: Environment variable consulted when no explicit batch size is given.
BATCH_ENV_VAR = "REPRO_BATCH"

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class TaskFailure:
    """The ordered record of one task the sweep could not complete.

    In ``on_error="collect"`` mode, :func:`parallel_map` puts one of
    these in the failed task's result slot (results stay input-ordered).
    ``kind`` is ``"error"`` (the task raised; ``exception`` holds it),
    ``"timeout"`` (exceeded the per-task timeout) or ``"crash"`` (its
    worker died past the resubmission budget).  ``attempts`` counts pool
    rebuild resubmissions the task consumed.
    """

    index: int
    kind: str
    message: str
    error_type: str = ""
    attempts: int = 1
    exception: Optional[BaseException] = None

    def describe(self) -> str:
        """One line suitable for logs and health reports."""
        label = f"{self.kind}:{self.error_type}" if self.error_type else self.kind
        return f"task {self.index} [{label}] {self.message}"


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count for a parallelizable call.

    Resolution order: the explicit ``workers`` argument, then the
    ``REPRO_WORKERS`` environment variable, then ``0``.  ``0`` and ``1``
    both mean serial in-process execution; a negative count means "all
    cores" (:func:`os.cpu_count`).
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not env:
            return 0
        try:
            workers = int(env)
        except ValueError:
            raise ReproError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    if workers < 0:
        workers = os.cpu_count() or 1
    return workers


def resolve_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """The effective per-task timeout in seconds (``None`` = no limit).

    Resolution order: the explicit ``timeout`` argument, then the
    ``REPRO_TASK_TIMEOUT`` environment variable, then no limit.  Zero
    and negative values disable the limit.
    """
    if timeout is None:
        env = os.environ.get(TIMEOUT_ENV_VAR, "").strip()
        if not env:
            return None
        try:
            timeout = float(env)
        except ValueError:
            raise ReproError(
                f"{TIMEOUT_ENV_VAR} must be a number of seconds, got {env!r}"
            ) from None
    timeout = float(timeout)
    return timeout if timeout > 0 else None


def resolve_batch(batch: Optional[int] = None) -> int:
    """The effective simulation batch size for a characterization sweep.

    Resolution order: the explicit ``batch`` argument, then the
    ``REPRO_BATCH`` environment variable, then ``0``.  ``0`` and ``1``
    both mean the scalar path (one transient per grid point); larger
    values run that many grid points per task through the vectorized
    lockstep kernel (:mod:`repro.spice.batch`).  Batching composes with
    ``workers`` -- each pooled task then carries one whole batch -- and
    never changes results: the kernel is bit-identical to the scalar
    solver for any batch size.
    """
    if batch is None:
        env = os.environ.get(BATCH_ENV_VAR, "").strip()
        if not env:
            return 0
        try:
            batch = int(env)
        except ValueError:
            raise ReproError(
                f"{BATCH_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    batch = int(batch)
    if batch < 0:
        raise ReproError(f"batch size must be >= 0, got {batch}")
    return batch


def _invoke(fn: Callable[[T], R], index: int, item: T):
    """Worker-side task wrapper: the fault-injection and telemetry seam.

    ``crash`` and ``hang`` faults (:mod:`repro.resilience.faults`) fire
    here, addressed by task index -- only on the pool path, since they
    model *worker* failures.  The return value is always the
    ``(result, telemetry)`` envelope of
    :func:`repro.obs.capture_task`: the task records into its worker's
    recorder and ships the metric delta plus its spans back with the
    result, which is what keeps parent-side totals invariant to the
    worker count (``telemetry`` is ``None`` with telemetry disabled).
    """
    faults.fire_task(index)
    return capture_task(fn, item, index)


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 workers: Optional[int] = None,
                 chunksize: int = 1,
                 timeout: Optional[float] = None,
                 on_error: str = "raise",
                 pool_retries: int = 2,
                 on_result: Optional[Callable[[int, R], None]] = None,
                 ) -> List[Union[R, TaskFailure]]:
    """Map ``fn`` over ``items``, returning results in input order.

    With a resolved worker count of 0 or 1 (the default), this is a
    plain in-process loop -- same objects, same call order, no pickling.
    Otherwise each item is submitted as its own future over a process
    pool; ``fn`` must then be a module-level function and every item
    picklable.

    ``timeout`` (or ``REPRO_TASK_TIMEOUT``) bounds each task's run time
    on the pool path; a task past its deadline is abandoned and the pool
    rebuilt, since a hung worker can only be replaced, not interrupted.
    (The serial path cannot preempt a running call, so timeouts apply
    only when fanned out.)  A worker crash rebuilds the pool and
    resubmits the in-flight tasks up to ``pool_retries`` extra attempts
    each.

    ``on_error="raise"`` (the default) propagates the first task
    exception -- or raises :class:`~repro.errors.TaskError` for crashes
    and timeouts, which have no exception object -- exactly like the
    pre-resilience behavior.  ``on_error="collect"`` never aborts: each
    lost task's slot holds an ordered :class:`TaskFailure` record and
    every other slot its real result.

    ``on_result(index, value)`` is called in the parent process as each
    task completes (in completion order); the progress journal hooks in
    here.  ``chunksize`` is accepted for backward compatibility but
    ignored -- per-future submission is what makes fault containment and
    timeouts possible.
    """
    del chunksize  # per-future submission supersedes chunked pool.map
    if on_error not in ("raise", "collect"):
        raise ReproError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
    items = list(items)
    count = resolve_workers(workers)
    limit = resolve_timeout(timeout)
    if count <= 1 or len(items) <= 1:
        return _serial_map(fn, items, on_error, on_result)
    return _pool_map(fn, items, min(count, len(items)), limit, on_error,
                     max(0, int(pool_retries)), on_result)


def _serial_map(fn, items, on_error, on_result):
    recorder = get_recorder()
    results: List = []
    for index, item in enumerate(items):
        try:
            if recorder.enabled:
                start = monotonic()
                with recorder.span("parallel.task", index=index):
                    value = fn(item)
                recorder.histogram("parallel.task_execute_seconds").observe(
                    monotonic() - start)
            else:
                value = fn(item)
        except Exception as exc:
            if on_error == "raise":
                raise
            recorder.counter("parallel.tasks.failed", kind="error").inc()
            results.append(TaskFailure(
                index=index, kind="error", message=str(exc),
                error_type=type(exc).__name__, exception=exc,
            ))
            continue
        recorder.counter("parallel.tasks.completed").inc()
        if on_result is not None:
            on_result(index, value)
        results.append(value)
    return results


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting, terminating stuck workers.

    After a timeout or crash the old pool may hold hung or dying
    processes; ``terminate`` guarantees they release their cores and do
    not stall interpreter exit.  (``_processes`` is executor-internal
    but stable across supported Python versions; degrade gracefully if
    it ever disappears.)
    """
    internal = getattr(pool, "_processes", None)
    processes = list(internal.values()) if isinstance(internal, dict) else []
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


_PENDING = object()


def _pool_map(fn, items, count, limit, on_error, pool_retries, on_result):
    n = len(items)
    recorder = get_recorder()
    recorder.gauge("parallel.workers").set(count)
    results: List = [_PENDING] * n
    attempts = [0] * n
    queue = deque(range(n))  # unsubmitted task indices, ascending
    pool = ProcessPoolExecutor(max_workers=count)
    inflight: Dict[object, int] = {}       # future -> task index
    deadlines: Dict[object, float] = {}    # future -> abs deadline
    submitted: Dict[object, float] = {}    # future -> submission stamp

    def fail(index: int, kind: str, message: str, *,
             error_type: str = "", exception=None, runs: int = 0) -> None:
        if on_error == "raise":
            if exception is not None:
                raise exception
            raise TaskError(f"task {index} {kind}: {message}")
        recorder.counter("parallel.tasks.failed", kind=kind).inc()
        # `attempts[index]` counts crashed runs; an error/timeout failure
        # happened on one further run, a crash failure did not.
        results[index] = TaskFailure(
            index=index, kind=kind, message=message, error_type=error_type,
            attempts=runs or attempts[index] + 1, exception=exception,
        )

    def absorb(future, telemetry) -> None:
        """Fold one task's shipped telemetry into the parent recorder."""
        if telemetry is None or not recorder.enabled:
            return
        try:
            recorder.absorb_task(telemetry)
        except ReproError:
            # The merge is transactional, so a rejected payload left the
            # registry untouched; dropping the delta (and counting it)
            # beats failing the task whose *result* arrived fine.
            recorder.counter("parallel.telemetry.dropped").inc()
            return
        submit = submitted.get(future)
        if submit is not None:
            recorder.histogram("parallel.task_queue_wait_seconds").observe(
                max(0.0, telemetry["start"] - submit))
        recorder.histogram("parallel.task_execute_seconds").observe(
            max(0.0, telemetry["end"] - telemetry["start"]))

    def recycle_inflight(*, broken: bool) -> None:
        """Requeue in-flight tasks around a pool rebuild.

        After a crash (``broken=True``) each resubmission consumes one
        of the task's ``pool_retries`` attempts -- a task that keeps
        killing workers must eventually be declared lost, not retried
        forever.  After a timeout the surviving in-flight tasks are
        innocent bystanders and resubmit for free.
        """
        indices = sorted(inflight.values())
        inflight.clear()
        deadlines.clear()
        submitted.clear()
        for index in reversed(indices):  # appendleft keeps ascending order
            if broken:
                attempts[index] += 1
                if attempts[index] > pool_retries:
                    fail(index, "crash",
                         f"worker process died {attempts[index]} times "
                         f"running this task", runs=attempts[index])
                    continue
            recorder.counter("parallel.tasks.resubmitted").inc()
            queue.appendleft(index)

    try:
        while queue or inflight:
            # Keep exactly `count` tasks in flight: a submitted task
            # starts (almost) immediately, which is what makes the
            # submission-time deadline a faithful per-task timeout.
            rebuild = False
            while queue and len(inflight) < count:
                index = queue.popleft()
                try:
                    future = pool.submit(_invoke, fn, index, items[index])
                except BrokenProcessPool:
                    queue.appendleft(index)
                    rebuild = True
                    break
                inflight[future] = index
                submitted[future] = monotonic()
                if limit is not None:
                    deadlines[future] = monotonic() + limit
            # Worker-health signal for `repro top`: how many tasks the
            # pool currently has in flight (live snapshots read gauges
            # from the parent recorder only, so this is pool-side state,
            # never shipped from workers).
            recorder.gauge("parallel.tasks.inflight").set(len(inflight))
            if rebuild:
                recorder.counter("parallel.pool.rebuilds", cause="crash").inc()
                recycle_inflight(broken=True)
                _shutdown_pool(pool)
                pool = ProcessPoolExecutor(max_workers=count)
                continue

            wait_for = None
            if deadlines:
                wait_for = max(0.0, min(deadlines.values()) - monotonic())
            done, _ = wait(set(inflight), timeout=wait_for,
                           return_when=FIRST_COMPLETED)

            broken = False
            for future in done:
                index = inflight.pop(future)
                deadlines.pop(future, None)
                exc = future.exception()
                if exc is None:
                    value, telemetry = future.result()
                    absorb(future, telemetry)
                    submitted.pop(future, None)
                    recorder.counter("parallel.tasks.completed").inc()
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
                elif isinstance(exc, BrokenProcessPool):
                    # Victim of a died worker; requeue with the rest.
                    inflight[future] = index
                    broken = True
                else:
                    submitted.pop(future, None)
                    fail(index, "error", str(exc),
                         error_type=type(exc).__name__, exception=exc)
            if broken:
                recorder.counter("parallel.pool.rebuilds", cause="crash").inc()
                recycle_inflight(broken=True)
                _shutdown_pool(pool)
                pool = ProcessPoolExecutor(max_workers=count)
                continue

            if limit is not None and deadlines:
                now = monotonic()
                expired = [f for f, deadline in deadlines.items()
                           if deadline <= now]
                if expired:
                    for future in expired:
                        index = inflight.pop(future)
                        deadlines.pop(future, None)
                        fail(index, "timeout",
                             f"exceeded the {limit:g}s task timeout")
                    # The hung workers still occupy pool slots; replace
                    # the pool and resubmit the innocent in-flight tasks.
                    recorder.counter("parallel.pool.rebuilds",
                                     cause="timeout").inc()
                    recycle_inflight(broken=False)
                    _shutdown_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=count)
    finally:
        recorder.gauge("parallel.tasks.inflight").set(0)
        _shutdown_pool(pool)

    assert all(slot is not _PENDING for slot in results)
    return results
