"""A1 -- the paper's accuracy claim against equivalent-inverter methods.

Section 7: "The results are more accurate than previously published
methods of calculating delay for multi-input gates which rely on the
reduction of the gate to an equivalent inverter."  This experiment runs
the Table 5-1 random population through

* the Section-4 proximity algorithm (ours),
* the [8]-style collapsed inverter with the *extreme* equivalent
  waveform, and
* the [13]-flavoured collapsed inverter with a *strength-weighted*
  equivalent waveform,

all referenced to the same dominant input and compared against full
three-input transient simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import traced
from ..baselines import CollapsedInverterBaseline
from ..parallel import parallel_map
from ..tech import Process
from ..waveform import Edge, FALL
from ..charlib.simulate import multi_input_response
from .common import paper_calculator, paper_gate, paper_thresholds
from .report import format_table, stat_row
from .table5_1 import random_cases

__all__ = ["BaselineComparison", "run"]


@dataclass
class BaselineComparison:
    delay_errors: Dict[str, List[float]]
    ttime_errors: Dict[str, List[float]]
    n_configs: int

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for method, errors in self.delay_errors.items():
            rows.append({"metric": "delay", **stat_row(method, errors)})
        for method, errors in self.ttime_errors.items():
            rows.append({"metric": "ttime", **stat_row(method, errors)})
        return rows

    def summary(self) -> str:
        return (
            f"Baseline comparison over {self.n_configs} random configurations\n"
            + format_table(self.rows())
        )

    def worst_abs_error(self, method: str) -> float:
        return max(abs(e) for e in self.delay_errors[method])


def _case_task(task) -> Dict[str, tuple[float, float]]:
    """Worker: every method on one random configuration, as
    method -> (delay error %, ttime error %)."""
    calc, methods, gate, thresholds, direction, config = task
    taus = config["taus"]
    seps = config["seps"]
    edges = {
        "a": Edge(direction, 0.0, taus["a"]),
        "b": Edge(direction, seps["ab"], taus["b"]),
        "c": Edge(direction, seps["ac"], taus["c"]),
    }
    ours = calc.explain(edges)
    ref_edge = edges[ours.reference]
    shot = multi_input_response(gate, edges, thresholds,
                                reference=ours.reference)
    errors = {
        "proximity (ours)": (
            (ours.delay - shot.delay) / shot.delay * 100.0,
            (ours.ttime - shot.out_ttime) / shot.out_ttime * 100.0,
        ),
    }
    for name, baseline in methods.items():
        if baseline is None:
            continue
        estimate = baseline.estimate(edges)
        errors[name] = (
            (estimate.delay_from(ref_edge) - shot.delay) / shot.delay * 100.0,
            (estimate.ttime - shot.out_ttime) / shot.out_ttime * 100.0,
        )
    return errors


@traced("experiment.baselines_exp")
def run(process: Optional[Process] = None, *,
        n_configs: int = 30,
        seed: int = 1996,
        direction: str = FALL,
        load: float = 100e-15,
        workers: Optional[int] = None) -> BaselineComparison:
    gate = paper_gate(process, load=load)
    thresholds = paper_thresholds(process, load=load)
    calc = paper_calculator(process, mode="oracle", load=load)
    methods = {
        "proximity (ours)": None,
        "collapsed extreme [8]": CollapsedInverterBaseline(
            gate, thresholds, waveform_policy="extreme"),
        "collapsed weighted [13]": CollapsedInverterBaseline(
            gate, thresholds, waveform_policy="weighted"),
    }
    delay_errors: Dict[str, List[float]] = {m: [] for m in methods}
    ttime_errors: Dict[str, List[float]] = {m: [] for m in methods}

    outcomes = parallel_map(
        _case_task,
        [(calc, methods, gate, thresholds, direction, config)
         for config in random_cases(n_configs, seed)],
        workers=workers,
    )
    for errors in outcomes:
        for name, (delay_err, ttime_err) in errors.items():
            delay_errors[name].append(delay_err)
            ttime_errors[name].append(ttime_err)
    return BaselineComparison(
        delay_errors=delay_errors, ttime_errors=ttime_errors,
        n_configs=n_configs,
    )
