"""E4 -- paper Figure 3-3: the dual-input proximity effect on delay,
with the dominance crossover.

Setup (paper Section 3): NAND3 with ``c`` tied to Vdd; ``a`` falls with
tau = 500 ps, ``b`` falls with tau in {100, 500, 1000} ps; the
separation ``s_ab`` sweeps from ``-(Delta_b + tau_b)`` to
``(Delta_a + tau_a)``.  Delay is measured from the **dominant** input,
so the curve shows a discontinuity at the crossover separation
``s = Delta_a^(1) - Delta_b^(1)`` where the reference changes ("there is
a discontinuity in the delay value when the dominant input changes.
This is because our reference for measuring delay also changes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import traced
from ..core import dominance_crossover
from ..tech import Process
from ..units import parse_quantity
from ..waveform import Edge, FALL
from ..charlib.simulate import multi_input_response
from .common import paper_calculator, paper_gate, paper_thresholds
from .report import format_table, series_plot

__all__ = ["Fig33Curve", "Fig33Result", "run"]


@dataclass
class Fig33Curve:
    tau_b: float
    crossover_sep: float
    separations: List[float]
    model_delays: List[float]
    sim_delays: List[float]
    references: List[str]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "sep_ps": s * 1e12,
                "model_ps": m * 1e12,
                "sim_ps": g * 1e12,
                "err_pct": (m - g) / g * 100.0,
                "reference": r,
            }
            for s, m, g, r in zip(self.separations, self.model_delays,
                                  self.sim_delays, self.references)
        ]

    def discontinuity(self) -> float:
        """Largest jump between adjacent model-delay samples (the
        crossover discontinuity the paper points out)."""
        deltas = np.abs(np.diff(self.model_delays))
        return float(deltas.max()) if deltas.size else 0.0


@dataclass
class Fig33Result:
    tau_a: float
    curves: List[Fig33Curve]

    def rows(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for curve in self.curves:
            for row in curve.rows():
                out.append({"tau_b_ps": curve.tau_b * 1e12, **row})
        return out

    def summary(self) -> str:
        parts = [
            f"Figure 3-3: proximity effect on delay "
            f"(tau_a = {self.tau_a*1e12:.0f}ps falling, c at Vdd)"
        ]
        for curve in self.curves:
            parts.append(
                f"\n-- tau_b = {curve.tau_b*1e12:.0f}ps "
                f"(dominance crossover at s_ab = {curve.crossover_sep*1e12:.1f}ps, "
                f"model jump {curve.discontinuity()*1e12:.1f}ps)"
            )
            parts.append(format_table(curve.rows()))
            parts.append(series_plot(
                [s * 1e12 for s in curve.separations],
                {
                    "model": [d * 1e12 for d in curve.model_delays],
                    "sim": [d * 1e12 for d in curve.sim_delays],
                },
                x_label="s_ab (ps)", y_label="delay (ps)",
            ))
        return "\n".join(parts)


@traced("experiment.fig3_3")
def run(process: Optional[Process] = None, *,
        tau_a: float | str = 500e-12,
        tau_bs: Sequence[float] = (100e-12, 500e-12, 1000e-12),
        points_per_curve: int = 13,
        mode: str = "oracle",
        load: float = 100e-15) -> Fig33Result:
    """Sweep s_ab for each tau_b; model delay (measured from the dominant
    input) against ground-truth simulation."""
    gate = paper_gate(process, load=load)
    thresholds = paper_thresholds(process, load=load)
    calc = paper_calculator(process, mode=mode, load=load)
    tau_a_s = parse_quantity(tau_a, unit="s")

    curves: List[Fig33Curve] = []
    delta_a = calc.single_delay("a", FALL, tau_a_s)
    tau_a_out = calc.single_ttime("a", FALL, tau_a_s)
    for tau_b in tau_bs:
        tau_b_s = float(tau_b)
        delta_b = calc.single_delay("b", FALL, tau_b_s)
        tau_b_out = calc.single_ttime("b", FALL, tau_b_s)
        lo = -(delta_b + tau_b_out)
        hi = delta_a + tau_a_out
        crossover = dominance_crossover(delta_a, delta_b)
        seps = np.unique(np.concatenate([
            np.linspace(lo, hi, points_per_curve),
            # Bracket the crossover tightly so the jump is visible.
            [crossover - 5e-12, crossover + 5e-12],
        ]))
        model_delays, sim_delays, refs = [], [], []
        for sep in seps:
            edges = {
                "a": Edge(FALL, 0.0, tau_a_s),
                "b": Edge(FALL, float(sep), tau_b_s),
            }
            result = calc.explain(edges)
            shot = multi_input_response(
                gate, edges, thresholds, reference=result.reference,
            )
            model_delays.append(result.delay)
            sim_delays.append(shot.delay)
            refs.append(result.reference)
        curves.append(Fig33Curve(
            tau_b=tau_b_s, crossover_sep=crossover,
            separations=[float(s) for s in seps],
            model_delays=model_delays, sim_delays=sim_delays,
            references=refs,
        ))
    return Fig33Result(tau_a=tau_a_s, curves=curves)
