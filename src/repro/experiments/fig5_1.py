"""E7 -- paper Figure 5-1: the error-distribution histograms.

Renders the Table 5-1 error populations as bar-chart histograms: delay
errors in 2 % bins, transition-time errors in 5 % bins (matching the
granularity visible in the paper's charts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..obs import traced
from ..tech import Process
from .report import ascii_histogram
from .table5_1 import Table51Result, run as run_table51

__all__ = ["Fig51Result", "run"]


@dataclass
class Fig51Result:
    validation: Table51Result
    delay_bin_pct: float = 2.0
    ttime_bin_pct: float = 5.0

    def delay_histogram(self) -> Dict[str, int]:
        return _bins(self.validation.delay_errors, self.delay_bin_pct)

    def ttime_histogram(self) -> Dict[str, int]:
        return _bins(self.validation.ttime_errors, self.ttime_bin_pct)

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for label, count in self.delay_histogram().items():
            rows.append({"quantity": "delay", "bin_pct": label, "count": count})
        for label, count in self.ttime_histogram().items():
            rows.append({"quantity": "ttime", "bin_pct": label, "count": count})
        return rows

    def summary(self) -> str:
        return "\n\n".join([
            ascii_histogram(self.validation.delay_errors,
                            bin_width=self.delay_bin_pct,
                            label="Figure 5-1(a): delay error (%)"),
            ascii_histogram(self.validation.ttime_errors,
                            bin_width=self.ttime_bin_pct,
                            label="Figure 5-1(b): output transition-time error (%)"),
        ])


def _bins(values: List[float], width: float) -> Dict[str, int]:
    data = np.asarray(values)
    lo = np.floor(data.min() / width) * width
    hi = np.ceil(data.max() / width) * width
    if hi <= lo:
        hi = lo + width
    edges = np.arange(lo, hi + 0.5 * width, width)
    counts, _ = np.histogram(data, bins=edges)
    return {
        f"[{edges[i]:+.0f},{edges[i+1]:+.0f})": int(c)
        for i, c in enumerate(counts)
    }


@traced("experiment.fig5_1")
def run(process: Optional[Process] = None, *,
        validation: Optional[Table51Result] = None,
        **table51_kwargs) -> Fig51Result:
    """Histogram the Table 5-1 population (reusing it when provided)."""
    result = validation or run_table51(process, **table51_kwargs)
    return Fig51Result(validation=result)
