"""E6 -- paper Table 5-1: model-vs-simulation error statistics.

The paper's validation protocol, reproduced verbatim on our substrate:

* 3-input NAND (Figure 1-1), fixed transistor sizes and load;
* 100 randomly generated configurations: fall times of the three inputs
  uniform in [50 ps, 2000 ps]; separations ``s_ab`` and ``s_ac`` uniform
  in [-500 ps, 500 ps] ("note that this automatically varies the
  separation between b and c as well");
* the circuit simulator serves as the dual-input macromodel ("we used
  HSPICE as the macromodel for processing the dual-input case");
* delay and output rise time from the algorithm are compared against
  full three-input transient simulations, in percent.

Paper's numbers (their process/HSPICE):

====================  =======  ==========
quantity              delay    rise time
====================  =======  ==========
mean error            1.4 %    -1.33 %
std-dev               2.46 %   4.82 %
max error             8.54 %   11.51 %
min error             -6.94 %  -13.15 %
====================  =======  ==========
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import degradation_summary, traced
from ..charlib.cache import default_cache
from ..core import DelayCalculator
from ..core.algorithm import CorrectionPolicy
from ..resilience.runtime import resilient_map
from ..tech import Process
from ..waveform import Edge, FALL
from ..charlib.simulate import multi_input_response
from .common import paper_calculator, paper_gate, paper_thresholds
from .report import format_table, stat_row

__all__ = ["PAPER_STATS", "ValidationCase", "Table51Result", "run", "random_cases"]

#: The paper's reported statistics, for side-by-side display.
PAPER_STATS = {
    "delay": {"mean": 1.4, "std": 2.46, "max": 8.54, "min": -6.94},
    "rise_time": {"mean": -1.33, "std": 4.82, "max": 11.51, "min": -13.15},
}


@dataclass(frozen=True)
class ValidationCase:
    """One random input configuration and its measured outcomes."""

    taus: Dict[str, float]
    seps: Dict[str, float]
    reference: str
    model_delay: float
    model_ttime: float
    sim_delay: float
    sim_ttime: float

    @property
    def delay_error_pct(self) -> float:
        return (self.model_delay - self.sim_delay) / self.sim_delay * 100.0

    @property
    def ttime_error_pct(self) -> float:
        return (self.model_ttime - self.sim_ttime) / self.sim_ttime * 100.0

    def to_payload(self) -> Dict[str, object]:
        """JSON form for the progress journal (floats round-trip by repr)."""
        return {
            "taus": self.taus, "seps": self.seps, "reference": self.reference,
            "model_delay": self.model_delay, "model_ttime": self.model_ttime,
            "sim_delay": self.sim_delay, "sim_ttime": self.sim_ttime,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ValidationCase":
        return cls(
            taus=dict(payload["taus"]), seps=dict(payload["seps"]),
            reference=str(payload["reference"]),
            model_delay=float(payload["model_delay"]),
            model_ttime=float(payload["model_ttime"]),
            sim_delay=float(payload["sim_delay"]),
            sim_ttime=float(payload["sim_ttime"]),
        )


@dataclass
class Table51Result:
    cases: List[ValidationCase]
    direction: str
    mode: str
    correction: str

    @property
    def delay_errors(self) -> List[float]:
        return [c.delay_error_pct for c in self.cases]

    @property
    def ttime_errors(self) -> List[float]:
        return [c.ttime_error_pct for c in self.cases]

    def rows(self) -> List[Dict[str, object]]:
        ttime_label = "rise_time" if self.direction == FALL else "fall_time"
        return [
            stat_row("delay", self.delay_errors),
            stat_row(ttime_label, self.ttime_errors),
        ]

    def summary(self) -> str:
        ttime_label = "rise time" if self.direction == FALL else "fall time"
        lines = [
            f"Table 5-1: {len(self.cases)} random configurations "
            f"(mode={self.mode}, correction={self.correction})",
            format_table(self.rows()),
            "",
            "paper reported: delay mean 1.40 / std 2.46 / max 8.54 / min -6.94 (%)",
            f"                {ttime_label} mean -1.33 / std 4.82 / "
            f"max 11.51 / min -13.15 (%)",
        ]
        extra = degradation_summary()
        if extra:
            lines.append(extra)
        return "\n".join(lines)


def random_cases(n_configs: int, seed: int, *,
                 tau_lo: float = 50e-12, tau_hi: float = 2000e-12,
                 sep_lo: float = -500e-12, sep_hi: float = 500e-12,
                 ) -> List[Dict[str, Dict[str, float]]]:
    """The paper's random configuration generator (deterministic)."""
    rng = random.Random(seed)
    cases = []
    for _ in range(n_configs):
        cases.append({
            "taus": {name: rng.uniform(tau_lo, tau_hi) for name in "abc"},
            "seps": {
                "ab": rng.uniform(sep_lo, sep_hi),
                "ac": rng.uniform(sep_lo, sep_hi),
            },
        })
    return cases


def _evaluate_case(task) -> ValidationCase:
    """Worker: one random configuration -- model prediction vs. full
    three-input transient simulation."""
    calc, gate, thresholds, direction, config = task
    taus = config["taus"]
    seps = config["seps"]
    edges = {
        "a": Edge(direction, 0.0, taus["a"]),
        "b": Edge(direction, seps["ab"], taus["b"]),
        "c": Edge(direction, seps["ac"], taus["c"]),
    }
    model = calc.explain(edges)
    shot = multi_input_response(
        gate, edges, thresholds, reference=model.reference,
    )
    return ValidationCase(
        taus=dict(taus), seps=dict(seps), reference=model.reference,
        model_delay=model.delay, model_ttime=model.ttime,
        sim_delay=shot.delay, sim_ttime=shot.out_ttime,
    )


@traced("experiment.table5_1")
def run(process: Optional[Process] = None, *,
        n_configs: int = 100,
        seed: int = 1996,
        direction: str = FALL,
        mode: str = "oracle",
        correction: CorrectionPolicy | str = CorrectionPolicy.PAPER,
        load: float = 100e-15,
        characterize_kwargs: Optional[dict] = None,
        calculator: Optional[DelayCalculator] = None,
        workers: Optional[int] = None) -> Table51Result:
    """Run the full validation and return the error statistics.

    ``mode="table"`` evaluates the *deployable* interpolation-table
    models instead of the simulator oracle; ``characterize_kwargs``
    tunes the table grids (see :class:`~repro.charlib.DualInputGrid`).
    ``workers`` fans the independent configurations over a process pool
    (see :mod:`repro.parallel`); cases merge back in generation order,
    so the statistics are bit-identical to a serial run.

    Completed configurations are journaled into the characterization
    cache directory as they land, keyed by the full experiment identity
    (process, load, count, seed, direction, mode, correction): a run
    killed at configuration 70/100 and re-invoked under ``--resume``
    (``REPRO_RESUME=1``) replays the finished 70 and simulates only the
    remaining 30.  A case that fails still aborts the experiment -- a
    validation with holes would misreport the error statistics -- but
    the journal survives the abort, so the fix-and-resume loop is cheap.
    """
    gate = paper_gate(process, load=load)
    thresholds = paper_thresholds(process, load=load)
    calc = calculator or paper_calculator(
        process, mode=mode, load=load, correction=correction,
        characterize_kwargs=characterize_kwargs,
    )
    correction_value = str(CorrectionPolicy(correction).value)
    journal_key = {
        **gate.cache_key(),
        "experiment": "table5_1",
        "n_configs": n_configs,
        "seed": seed,
        "direction": direction,
        "mode": mode,
        "correction": correction_value,
    }
    # A caller-supplied calculator has no content identity to key a
    # journal on; journaling is disabled rather than risking a replay
    # of another calculator's cases.
    journal_dir = None if calculator is not None else default_cache().directory
    results, _failures = resilient_map(
        _evaluate_case,
        [(calc, gate, thresholds, direction, config)
         for config in random_cases(n_configs, seed)],
        journal_kind="exp-table5_1", journal_key=journal_key,
        directory=journal_dir,
        workers=workers, on_error="raise",
        encode=ValidationCase.to_payload,
        decode=ValidationCase.from_payload,
    )
    return Table51Result(
        cases=list(results), direction=direction, mode=mode,
        correction=correction_value,
    )
