"""E1/E2 -- paper Figure 1-2: delay and output transition time versus
input separation.

The paper's motivating observation: on a 3-input NAND with ``c`` stable
at Vdd, sweep the separation between a slow transition on ``a``
(tau = 500 ps) and a fast one on ``b`` (tau = 100 ps).

* (a)/(b): both inputs *fall* -- the output rises; as the separation
  shrinks, the second pull-up path conducts during the transition and
  both delay and rise time drop.
* (c)/(d): both inputs *rise* -- the output falls through the series
  stack; delay and fall time are decreasing functions of separation
  (the later the second input, the longer the stack waits to conduct).

Delay here is measured from input ``a`` (the fixed reference of the
figure), directly off transient simulations -- this experiment
demonstrates the phenomenon; the model enters in Figure 3-3 / Table 5-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import traced
from ..tech import Process
from ..units import parse_quantity
from ..waveform import Edge, FALL, RISE
from ..charlib.simulate import multi_input_response
from .common import paper_gate, paper_thresholds
from .report import format_table, series_plot

__all__ = ["Fig12Result", "run"]


@dataclass
class Fig12Result:
    """Sweep curves for one input direction."""

    direction: str
    tau_a: float
    tau_b: float
    separations: List[float]
    delays: List[float]
    ttimes: List[float]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "sep_ps": s * 1e12,
                "delay_ps": d * 1e12,
                "ttime_ps": t * 1e12,
            }
            for s, d, t in zip(self.separations, self.delays, self.ttimes)
        ]

    def proximity_gain(self) -> float:
        """Relative delay reduction between the widest and closest
        separation -- the headline size of the proximity effect."""
        return (max(self.delays) - min(self.delays)) / max(self.delays)

    def summary(self) -> str:
        ttime_kind = "rise" if self.direction == FALL else "fall"
        in_kind = "falling" if self.direction == FALL else "rising"
        title = (
            f"Figure 1-2 ({'a,b' if self.direction == FALL else 'c,d'}): "
            f"{in_kind} inputs, tau_a={self.tau_a*1e12:.0f}ps, "
            f"tau_b={self.tau_b*1e12:.0f}ps; output {ttime_kind} time"
        )
        plot = series_plot(
            [s * 1e12 for s in self.separations],
            {
                "delay": [d * 1e12 for d in self.delays],
                "ttime": [t * 1e12 for t in self.ttimes],
            },
            x_label="separation s_ab (ps)", y_label="ps",
        )
        return f"{title}\n{format_table(self.rows())}\n{plot}"


@traced("experiment.fig1_2")
def run(process: Optional[Process] = None, *,
        direction: str = FALL,
        tau_a: float | str = 500e-12,
        tau_b: float | str = 100e-12,
        separations: Optional[Sequence[float]] = None,
        load: float = 100e-15) -> Fig12Result:
    """Sweep separation between edges on ``a`` and ``b`` (``c`` stable).

    Delay/transition time come straight from transient simulation.
    """
    gate = paper_gate(process, load=load)
    thresholds = paper_thresholds(process, load=load)
    tau_a_s = parse_quantity(tau_a, unit="s")
    tau_b_s = parse_quantity(tau_b, unit="s")
    if separations is None:
        separations = np.linspace(-200e-12, 700e-12, 13)

    delays: List[float] = []
    ttimes: List[float] = []
    seps: List[float] = []
    for sep in separations:
        edges = {
            "a": Edge(direction, 0.0, tau_a_s),
            "b": Edge(direction, float(sep), tau_b_s),
        }
        shot = multi_input_response(gate, edges, thresholds, reference="a")
        seps.append(float(sep))
        delays.append(shot.delay)
        ttimes.append(shot.out_ttime)
    return Fig12Result(
        direction=direction, tau_a=tau_a_s, tau_b=tau_b_s,
        separations=seps, delays=delays, ttimes=ttimes,
    )


def run_both(process: Optional[Process] = None, **kwargs) -> Dict[str, Fig12Result]:
    """Both panels: falling inputs (a,b) and rising inputs (c,d)."""
    return {
        FALL: run(process, direction=FALL, **kwargs),
        RISE: run(process, direction=RISE, **kwargs),
    }
