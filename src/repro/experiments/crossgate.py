"""A4 -- cross-gate generality of the proximity machinery.

The paper validates on one cell (a 3-input NAND) and claims the method
"is not limited to CMOS technology alone", with NOR-gate threshold rules
derived in Section 2.  This experiment runs the Table-5-1 protocol on
*other* cells -- NOR3 and the complex gate AOI21 -- in both transition
directions, to show the implementation is not NAND-shaped: thresholds,
sensitization, dominance and composition all come from the gate's
network expression.

Scope notes (recorded in EXPERIMENTS.md):

1. Separations are restricted to +/-150 ps -- the in-window proximity
   regime.  For *series-driven* transitions (rising NAND inputs, falling
   NOR inputs) the paper's proximity-window rule ("for s > Delta^(1) the
   transitions on b can be ignored") does not hold: a late series input
   gates the output no matter how late it is.  The paper's own
   validation used falling NAND inputs (a parallel-driven output) only;
   ``tests/core/test_limitations.py`` demonstrates the failure mode.
2. For complex gates (AOI/OAI) the framework assumes the switching
   inputs play *consistent* series/parallel roles; when inputs from
   different branches switch together (all three pins of an AOI21), the
   single-input delays are characterized under mutually inconsistent
   side-input states and the composition degrades.  The experiment
   validates AOI21 on its same-branch pair (a, b) and separately
   *measures* the all-pins case as a documented limitation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..obs import traced
from ..charlib import GateLibrary
from ..charlib.simulate import multi_input_response
from ..core import DelayCalculator
from ..gates import Gate
from ..parallel import parallel_map
from ..tech import Process, default_process
from ..waveform import Edge, FALL, RISE
from .report import format_table, stat_row

__all__ = ["CrossGateResult", "run", "GATE_BUILDERS"]

#: Cells exercised by the experiment: name -> (builder, switching pins).
#: ``None`` means every input switches.
GATE_BUILDERS = {
    "nor3": (lambda process, load: Gate.nor(3, process, load=load), None),
    "aoi21": (lambda process, load: Gate.aoi21(process, load=load),
              ("a", "b")),
    "aoi21-all": (lambda process, load: Gate.aoi21(process, load=load), None),
}


@dataclass
class CrossGateResult:
    delay_errors: Dict[str, List[float]]   # "(gate, direction)" -> errors %
    ttime_errors: Dict[str, List[float]]
    n_configs: int

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label in self.delay_errors:
            rows.append({"metric": "delay", **stat_row(label, self.delay_errors[label])})
            rows.append({"metric": "ttime", **stat_row(label, self.ttime_errors[label])})
        return rows

    def worst_delay_error(self, label: str) -> float:
        return max(abs(e) for e in self.delay_errors[label])

    def summary(self) -> str:
        return (
            f"Cross-gate validation ({self.n_configs} configs per cell/direction)\n"
            + format_table(self.rows())
        )


def _case_task(task) -> tuple[float, float]:
    """Worker: one random configuration on one cell/direction."""
    calc, gate, thresholds, edges = task
    result = calc.explain(edges)
    shot = multi_input_response(
        gate, edges, thresholds, reference=result.reference,
    )
    return ((result.delay - shot.delay) / shot.delay * 100.0,
            (result.ttime - shot.out_ttime) / shot.out_ttime * 100.0)


@traced("experiment.crossgate")
def run(process: Optional[Process] = None, *,
        n_configs: int = 10,
        seed: int = 77,
        gates: Sequence[str] = ("nor3", "aoi21"),
        directions: Sequence[str] = (FALL, RISE),
        max_sep: float = 150e-12,
        load: float = 100e-15,
        workers: Optional[int] = None) -> CrossGateResult:
    """Random in-window proximity configurations on each cell and
    direction, model (oracle mode) versus full simulation.

    The random draws happen up front in a fixed order, so the population
    -- and therefore the statistics -- is identical for any ``workers``
    count; only the evaluation fans out.
    """
    proc = process or default_process()
    rng = random.Random(seed)
    delay_errors: Dict[str, List[float]] = {}
    ttime_errors: Dict[str, List[float]] = {}

    labels: List[str] = []
    tasks: List[tuple] = []
    for gate_name in gates:
        builder, switching = GATE_BUILDERS[gate_name]
        gate = builder(proc, load)
        library = GateLibrary.characterize(gate, mode="oracle")
        calc = DelayCalculator(library)
        pins = list(switching) if switching is not None else list(gate.inputs)
        for direction in directions:
            label = f"{gate_name}/{direction}"
            delay_errors[label] = []
            ttime_errors[label] = []
            for _ in range(n_configs):
                edges = {}
                for idx, pin in enumerate(pins):
                    at = 0.0 if idx == 0 else rng.uniform(-max_sep, max_sep)
                    edges[pin] = Edge(direction, at,
                                      rng.uniform(80e-12, 1500e-12))
                labels.append(label)
                tasks.append((calc, gate, library.thresholds, edges))

    outcomes = parallel_map(_case_task, tasks, workers=workers)
    for label, (delay_err, ttime_err) in zip(labels, outcomes):
        delay_errors[label].append(delay_err)
        ttime_errors[label].append(ttime_err)
    return CrossGateResult(
        delay_errors=delay_errors, ttime_errors=ttime_errors,
        n_configs=n_configs,
    )
