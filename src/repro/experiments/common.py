"""Shared fixtures for the paper experiments.

Every experiment runs on the same testbench as the paper: a 3-input CMOS
NAND gate driving a fixed load (Figure 1-1).  The helpers here build the
gate, its thresholds and libraries once per process (module-level
memoization keyed by process name + load).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..charlib import GateLibrary
from ..charlib.library import cached_thresholds
from ..core import DelayCalculator
from ..gates import Gate
from ..tech import Process, default_process
from ..waveform import Thresholds

__all__ = ["paper_gate", "paper_thresholds", "paper_library", "paper_calculator"]

_GATES: Dict[Tuple[str, float], Gate] = {}
_LIBS: Dict[tuple, GateLibrary] = {}


def paper_gate(process: Optional[Process] = None, *,
               load: float = 100e-15) -> Gate:
    """The paper's Figure 1-1 testbench: a 3-input NAND."""
    proc = process or default_process()
    key = (proc.name, load)
    if key not in _GATES:
        _GATES[key] = Gate.nand(3, proc, load=load)
    return _GATES[key]


def paper_thresholds(process: Optional[Process] = None, *,
                     load: float = 100e-15) -> Thresholds:
    """Section-2 thresholds of the testbench (min V_il / max V_ih)."""
    return cached_thresholds(paper_gate(process, load=load))


def paper_library(process: Optional[Process] = None, *, mode: str = "oracle",
                  load: float = 100e-15, **characterize_kwargs) -> GateLibrary:
    """A characterized library for the testbench.

    ``mode="oracle"`` (default) mirrors the paper's Section-5 use of the
    circuit simulator as the dual-input macromodel; ``mode="table"``
    builds the deployable interpolation tables (slower the first time,
    cached on disk afterwards).  Extra keyword arguments go to
    :meth:`~repro.charlib.GateLibrary.characterize` (grids, pair
    selection, directions); they become part of the memoization key.
    """
    proc = process or default_process()
    key = (proc.name, load, mode, tuple(sorted(
        (k, repr(v)) for k, v in characterize_kwargs.items()
    )))
    if key not in _LIBS:
        _LIBS[key] = GateLibrary.characterize(
            paper_gate(proc, load=load), mode=mode, **characterize_kwargs,
        )
    return _LIBS[key]


def paper_calculator(process: Optional[Process] = None, *,
                     mode: str = "oracle", load: float = 100e-15,
                     characterize_kwargs: Optional[dict] = None,
                     **calculator_kwargs) -> DelayCalculator:
    """A ready :class:`~repro.core.DelayCalculator` on the testbench."""
    library = paper_library(process, mode=mode, load=load,
                            **(characterize_kwargs or {}))
    return DelayCalculator(library, **calculator_kwargs)
