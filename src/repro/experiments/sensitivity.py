"""A6 -- load-transfer sensitivity of the characterized models.

The dimensional-analysis promise of eq. 3.7 is that one characterized
curve serves *any* load through the drive factor.  This experiment
quantifies that promise: table models characterized at the nominal load
(with the fitted effective parasitic) predict single-input delay and the
full proximity algorithm's delay at off-nominal loads, compared against
fresh simulations at those loads.

Expected shape: a few-percent penalty relative to the at-load accuracy,
versus tens of percent without the ``C_par`` correction (DESIGN.md's
effective-parasitic note; the no-correction variant is reported too so
the ablation is visible in one table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import traced
from ..core import DelayCalculator
from ..models.single import TableSingleInputModel
from ..tech import Process
from ..waveform import Edge, FALL
from ..charlib.simulate import multi_input_response, single_input_response
from .common import paper_gate, paper_library, paper_thresholds
from .report import format_table
from .table5_1 import random_cases

__all__ = ["SensitivityResult", "run"]


@dataclass
class SensitivityResult:
    #: label "load_factor x.x / single|proximity / cpar|no-cpar" -> errors %.
    errors: Dict[str, List[float]]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label, errs in self.errors.items():
            data = np.asarray(errs)
            rows.append({
                "case": label,
                "rms_pct": float(np.sqrt(np.mean(data ** 2))),
                "worst_pct": float(np.max(np.abs(data))),
            })
        return rows

    def summary(self) -> str:
        return ("Load-transfer sensitivity of the characterized models\n"
                + format_table(self.rows()))

    def rms(self, label: str) -> float:
        data = np.asarray(self.errors[label])
        return float(np.sqrt(np.mean(data ** 2)))


def _strip_cpar(model: TableSingleInputModel) -> TableSingleInputModel:
    """The same table re-interpreted with the paper's raw drive factor."""
    payload = model.to_payload()
    payload["c_par"] = 0.0
    return TableSingleInputModel.from_payload(payload)


@traced("experiment.sensitivity")
def run(process: Optional[Process] = None, *,
        load_factors: Sequence[float] = (0.6, 1.8),
        n_taus: int = 6,
        n_proximity: int = 6,
        seed: int = 31,
        nominal_load: float = 100e-15) -> SensitivityResult:
    gate = paper_gate(process, load=nominal_load)
    thresholds = paper_thresholds(process, load=nominal_load)
    library = paper_library(process, mode="table", load=nominal_load,
                            directions=("fall",), pairs="all")
    calc = DelayCalculator(library)

    rng = np.random.default_rng(seed)
    taus = rng.uniform(60e-12, 1800e-12, n_taus)
    errors: Dict[str, List[float]] = {}

    for factor in load_factors:
        load = nominal_load * factor
        # Single-input transfer, with and without the fitted parasitic.
        for variant in ("cpar", "no-cpar"):
            label = f"x{factor:g} single {variant}"
            errors[label] = []
            for tau in taus:
                model = library.single("a", FALL)
                if variant == "no-cpar":
                    model = _strip_cpar(model)
                shot = single_input_response(
                    gate, "a", FALL, float(tau), thresholds, load=load,
                )
                predicted = model.delay(float(tau), load)
                errors[label].append(
                    (predicted - shot.delay) / shot.delay * 100.0)

        # Full proximity algorithm at the off-nominal load.
        label = f"x{factor:g} proximity"
        errors[label] = []
        for config in random_cases(n_proximity, seed + int(factor * 10)):
            edges = {
                "a": Edge(FALL, 0.0, config["taus"]["a"]),
                "b": Edge(FALL, config["seps"]["ab"], config["taus"]["b"]),
                "c": Edge(FALL, config["seps"]["ac"], config["taus"]["c"]),
            }
            result = calc.explain(edges, load=load)
            shot = multi_input_response(
                gate, edges, thresholds, reference=result.reference, load=load,
            )
            errors[label].append(
                (result.delay - shot.delay) / shot.delay * 100.0)
    return SensitivityResult(errors=errors)
