"""A3 -- proximity-aware STA versus classic STA versus flat simulation.

Builds a two-level tree of NAND3s (four first-stage gates feeding a
second-stage... trimmed to the 3-input fan-in: three first-stage gates
into one final gate), drives the nine primary inputs with random skews
and slews, and compares three answers for the primary-output arrival:

* **flat** -- transistor-level transient simulation of the whole tree
  (ground truth);
* **proximity STA** -- per-gate Section-4 delays;
* **classic STA** -- per-gate worst single-input delays.

The paper's thesis predicts the proximity analyzer tracks the flat
simulation closely while the classic one overestimates whenever inputs
of a gate switch in close proximity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..obs import traced
from ..tech import Process
from ..timing import ClassicSta, ProximitySta, TimingNetlist, simulate_netlist
from ..waveform import Edge, FALL, timing_threshold
from .common import paper_calculator, paper_thresholds
from .report import format_table

__all__ = ["TimingScenario", "TimingComparison", "build_tree", "run"]


def build_tree(process: Optional[Process] = None, *,
               load: float = 100e-15) -> TimingNetlist:
    """Three NAND3s feeding a final NAND3 (9 primary inputs, depth 2)."""
    calc = paper_calculator(process, mode="oracle", load=load)
    netlist = TimingNetlist("nand3-tree")
    for i in range(9):
        netlist.add_input(f"i{i}")
    for g in range(3):
        pins = {pin: f"i{3 * g + k}" for k, pin in enumerate("abc")}
        netlist.add_gate(f"g{g}", calc, pins, f"w{g}")
    netlist.add_gate("gout", calc, {"a": "w0", "b": "w1", "c": "w2"}, "out")
    return netlist


@dataclass
class TimingScenario:
    """One random stimulus and the three arrival answers (seconds,
    relative to t=0 of the input edges)."""

    seed: int
    input_edges: Dict[str, Edge]
    flat_arrival: float
    proximity_arrival: float
    classic_arrival: float
    glitch_warnings: int

    def row(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "flat_ps": self.flat_arrival * 1e12,
            "proximity_ps": self.proximity_arrival * 1e12,
            "classic_ps": self.classic_arrival * 1e12,
            "prox_err_pct": (self.proximity_arrival - self.flat_arrival)
            / self.flat_arrival * 100.0,
            "classic_err_pct": (self.classic_arrival - self.flat_arrival)
            / self.flat_arrival * 100.0,
        }


@dataclass
class TimingComparison:
    scenarios: List[TimingScenario]

    def rows(self) -> List[Dict[str, object]]:
        return [s.row() for s in self.scenarios]

    def rms_error(self, which: str) -> float:
        key = "prox_err_pct" if which == "proximity" else "classic_err_pct"
        errors = np.asarray([r[key] for r in self.rows()])
        return float(np.sqrt(np.mean(errors ** 2)))

    def summary(self) -> str:
        return (
            "Proximity vs classic STA on a depth-2 NAND3 tree\n"
            + format_table(self.rows())
            + f"\nRMS error: proximity {self.rms_error('proximity'):.2f}% | "
              f"classic {self.rms_error('classic'):.2f}%"
        )


@traced("experiment.timing_exp")
def run(process: Optional[Process] = None, *,
        n_scenarios: int = 4,
        seed: int = 7,
        max_skew: float = 300e-12,
        load: float = 100e-15) -> TimingComparison:
    """Random-skew scenarios: all nine inputs fall within ``max_skew``."""
    netlist = build_tree(process, load=load)
    thresholds = paper_thresholds(process, load=load)
    prox = ProximitySta(netlist)
    classic = ClassicSta(netlist)
    rng = random.Random(seed)

    scenarios: List[TimingScenario] = []
    for k in range(n_scenarios):
        edges = {
            f"i{i}": Edge(FALL, rng.uniform(0.0, max_skew),
                          rng.uniform(80e-12, 800e-12))
            for i in range(9)
        }
        prox_result = prox.analyze(edges)
        classic_result = classic.analyze(edges)

        sim, node_of = simulate_netlist(netlist, edges, thresholds)
        out_wf = sim.node(node_of["out"])
        # Stage 1 outputs rise, the final NAND output falls.
        t_out = out_wf.last_crossing(timing_threshold(FALL, thresholds), FALL)
        # Undo the input-placement shift: recover it from a driven input.
        i0_wf = sim.node(node_of["i0"])
        level = timing_threshold(FALL, thresholds)
        shift = i0_wf.first_crossing(level, FALL) - edges["i0"].t_cross
        flat_arrival = t_out - shift

        scenarios.append(TimingScenario(
            seed=k,
            input_edges=edges,
            flat_arrival=flat_arrival,
            proximity_arrival=prox_result.arrival("out"),
            classic_arrival=classic_result.arrival("out"),
            glitch_warnings=len(prox_result.glitch_warnings),
        ))
    return TimingComparison(scenarios)
