"""Experiment harness: one module per paper table/figure plus ablations.

Every experiment exposes a ``run(...)`` function returning a result
dataclass with ``rows()`` (machine-readable) and ``summary()``
(formatted text mirroring the paper's artifact).  The benchmarks in
``benchmarks/`` wrap these with pytest-benchmark; the index lives in
DESIGN.md and the measured-vs-paper record in EXPERIMENTS.md.

| experiment id | paper artifact | module |
|---------------|----------------|--------|
| E1/E2 | Figure 1-2 (a-d) | :mod:`~repro.experiments.fig1_2` |
| E3 | Figure 2-1 (b,c) | :mod:`~repro.experiments.fig2_1` |
| E4 | Figure 3-3 | :mod:`~repro.experiments.fig3_3` |
| E5 | Figure 4-2 | :mod:`~repro.experiments.fig4_2` |
| E6 | Table 5-1 | :mod:`~repro.experiments.table5_1` |
| E7 | Figure 5-1 | :mod:`~repro.experiments.fig5_1` |
| E8 | Figure 6-1 (b) | :mod:`~repro.experiments.fig6_1` |
| A1 | baseline comparison (Section 5/7 claim) | :mod:`~repro.experiments.baselines_exp` |
| A2 | design-choice ablations | :mod:`~repro.experiments.ablations` |
| A3 | proximity-aware STA | :mod:`~repro.experiments.timing_exp` |
| A4 | cross-gate generality (NOR3/AOI21) | :mod:`~repro.experiments.crossgate` |
| A5 | deployable table-mode validation | :mod:`~repro.experiments.table5_1` (``mode="table"``) |
| A6 | load-transfer sensitivity | :mod:`~repro.experiments.sensitivity` |
"""

from . import (
    ablations,
    baselines_exp,
    crossgate,
    fig1_2,
    fig2_1,
    fig3_3,
    fig4_2,
    fig5_1,
    fig6_1,
    sensitivity,
    table5_1,
    timing_exp,
)
from .report import ascii_histogram, format_table

__all__ = [
    "fig1_2", "fig2_1", "fig3_3", "fig4_2", "fig5_1", "fig6_1",
    "table5_1", "baselines_exp", "ablations", "timing_exp", "crossgate",
    "sensitivity",
    "format_table", "ascii_histogram",
]
