"""E8 -- paper Figure 6-1(b): glitch magnitude versus separation.

NAND3 with ``c`` tied to Vdd; ``a`` falls (tau = 500 ps) while ``b``
rises with tau in {100, 500, 1000} ps.  The minimum output voltage is
plotted against the separation; the dotted ``V_il`` line marks where the
output counts as having completed its transition, and its crossing with
each curve is the minimum valid separation -- the gate's inertial delay
for that slew pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import traced
from ..errors import MeasurementError
from ..inertial import SimulatorGlitchModel, glitch_response, minimum_separation
from ..tech import Process
from ..units import parse_quantity
from .common import paper_gate, paper_thresholds
from .report import format_table, series_plot

__all__ = ["Fig61Curve", "Fig61Result", "run"]


@dataclass
class Fig61Curve:
    tau_rise: float
    separations: List[float]
    vmins: List[float]
    min_valid_separation: Optional[float]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {"sep_ps": s * 1e12, "vmin_V": v}
            for s, v in zip(self.separations, self.vmins)
        ]


@dataclass
class Fig61Result:
    tau_fall: float
    vil: float
    curves: List[Fig61Curve]

    def rows(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for curve in self.curves:
            for row in curve.rows():
                out.append({"tau_rise_ps": curve.tau_rise * 1e12, **row})
        return out

    def summary(self) -> str:
        parts = [
            f"Figure 6-1(b): glitch magnitude vs separation "
            f"(a falls, tau_a={self.tau_fall*1e12:.0f}ps; Vil line at "
            f"{self.vil:.2f}V)"
        ]
        for curve in self.curves:
            ms = ("%.1fps" % (curve.min_valid_separation * 1e12)
                  if curve.min_valid_separation is not None else "not bracketed")
            parts.append(
                f"\n-- tau_b (rise) = {curve.tau_rise*1e12:.0f}ps; "
                f"minimum valid separation (inertial delay): {ms}"
            )
            parts.append(format_table(curve.rows()))
        all_seps = self.curves[0].separations
        parts.append(series_plot(
            [s * 1e12 for s in all_seps],
            {
                f"tau_b={c.tau_rise*1e12:.0f}ps": c.vmins
                for c in self.curves
            },
            x_label="separation (ps)", y_label="Vmin (V)",
        ))
        return "\n".join(parts)


@traced("experiment.fig6_1")
def run(process: Optional[Process] = None, *,
        tau_fall: float | str = 500e-12,
        tau_rises: Sequence[float] = (100e-12, 500e-12, 1000e-12),
        separations: Optional[Sequence[float]] = None,
        load: float = 100e-15) -> Fig61Result:
    """Sweep separation for each rise time and locate the V_il crossing.

    Separation here is ``t_blocking - t_causing`` (the falling ``a``
    relative to the rising ``b``): positive = ``b`` leads, giving the
    output time to fall.
    """
    gate = paper_gate(process, load=load)
    thresholds = paper_thresholds(process, load=load)
    tau_fall_s = parse_quantity(tau_fall, unit="s")
    if separations is None:
        separations = np.linspace(-300e-12, 1200e-12, 11)

    curves: List[Fig61Curve] = []
    for tau_rise in tau_rises:
        tau_rise_s = float(tau_rise)
        vmins = []
        for sep in separations:
            shot = glitch_response(
                gate, causing="b", blocking="a",
                tau_causing=tau_rise_s, tau_blocking=tau_fall_s,
                sep=float(sep), thresholds=thresholds,
            )
            vmins.append(shot.extremum)
        model = SimulatorGlitchModel(gate, "b", "a", thresholds)
        try:
            min_sep = minimum_separation(
                model, tau_rise_s, tau_fall_s, thresholds,
                lo=float(min(separations)), hi=float(max(separations)),
            )
        except MeasurementError:
            min_sep = None
        curves.append(Fig61Curve(
            tau_rise=tau_rise_s,
            separations=[float(s) for s in separations],
            vmins=vmins,
            min_valid_separation=min_sep,
        ))
    return Fig61Result(tau_fall=tau_fall_s, vil=thresholds.vil, curves=curves)
