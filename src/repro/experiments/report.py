"""Plain-text reporting helpers shared by the experiments.

Everything renders to monospaced text so results are readable in a
terminal, in pytest output and in EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

__all__ = ["format_table", "ascii_histogram", "series_plot", "stat_row"]


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 *, floatfmt: str = "{:.4g}") -> str:
    """Align a list of dict rows into a text table.

    Column order follows ``columns`` or the first row's key order.
    Floats are formatted with ``floatfmt``; everything else with
    ``str``.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    rendered = [[cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in rendered
    )
    return f"{header}\n{rule}\n{body}"


def ascii_histogram(values: Iterable[float], *, bin_width: float,
                    lo: Optional[float] = None, hi: Optional[float] = None,
                    width: int = 40, label: str = "") -> str:
    """A horizontal-bar histogram (the paper's Figure 5-1 style).

    ``bin_width`` sets the bucket size in the same unit as ``values``
    (percent, for the error distributions).
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return "(no samples)"
    lo = float(np.floor(data.min() / bin_width) * bin_width) if lo is None else lo
    hi = float(np.ceil(data.max() / bin_width) * bin_width) if hi is None else hi
    if hi <= lo:
        hi = lo + bin_width
    edges = np.arange(lo, hi + 0.5 * bin_width, bin_width)
    counts, _ = np.histogram(data, bins=edges)
    peak = max(int(counts.max()), 1)
    lines = [f"{label} (n={data.size})"] if label else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{edges[i]:+7.1f}, {edges[i+1]:+7.1f})  {count:4d}  {bar}")
    return "\n".join(lines)


def series_plot(x: Sequence[float], series: Mapping[str, Sequence[float]], *,
                width: int = 64, height: int = 16,
                x_label: str = "x", y_label: str = "y") -> str:
    """A crude character-grid scatter of several named series."""
    xs = np.asarray(x, dtype=float)
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if xs.size == 0 or all_y.size == 0:
        return "(no data)"
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for (name, ys), marker in zip(series.items(), markers):
        for xv, yv in zip(xs, np.asarray(ys, dtype=float)):
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = marker
    lines = [f"{y_label}: {y_lo:.4g} .. {y_hi:.4g}"]
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {x_lo:.4g} .. {x_hi:.4g}   " + "  ".join(
        f"{m}={n}" for (n, _), m in zip(series.items(), markers)
    ))
    return "\n".join(lines)


def stat_row(label: str, errors_pct: Sequence[float]) -> Dict[str, object]:
    """Mean/std/max/min row over percent errors (Table 5-1 layout)."""
    data = np.asarray(list(errors_pct), dtype=float)
    return {
        "quantity": label,
        "mean_err_pct": float(np.mean(data)),
        "std_pct": float(np.std(data, ddof=0)),
        "max_err_pct": float(np.max(data)),
        "min_err_pct": float(np.min(data)),
    }
