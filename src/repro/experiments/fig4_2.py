"""E5 -- paper Figure 4-2: storage complexity of the modeling options.

Compares, as a function of fan-in *n* and table resolution *g* (grid
points per argument):

1. **Full model** (eq. 4.1): *n* functions of ``2n - 1`` arguments ->
   ``n * g^(2n-1)`` table entries; impractical beyond tiny *n*.
2. **Compositional, all pairs** (the matrix of Figure 4-2(2a)):
   *n* single-input models (``g`` entries) plus ``n^2 - n`` dual-input
   models (``g^3`` entries each).
3. **Compositional, shared** (the paper's practical observation: "we
   need only n such macromodels"): *n* single + *n* dual models.

Counts cover the delay models; the paper doubles everything for output
transition time, and so do we in the ``*_bytes`` columns (8-byte
entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..obs import traced
from .report import format_table

__all__ = ["StorageRow", "Fig42Result", "run"]


@dataclass(frozen=True)
class StorageRow:
    n_inputs: int
    grid: int
    full_entries: int
    all_pairs_entries: int
    shared_entries: int

    def as_dict(self) -> Dict[str, object]:
        scale = 2 * 8  # delay + transition time, 8 bytes per entry
        return {
            "n": self.n_inputs,
            "g": self.grid,
            "full_entries": self.full_entries,
            "all_pairs_entries": self.all_pairs_entries,
            "shared_entries": self.shared_entries,
            "full_bytes": self.full_entries * scale,
            "all_pairs_bytes": self.all_pairs_entries * scale,
            "shared_bytes": self.shared_entries * scale,
            "full_over_shared": self.full_entries / self.shared_entries,
        }


@dataclass
class Fig42Result:
    rows_data: List[StorageRow]

    def rows(self) -> List[Dict[str, object]]:
        return [r.as_dict() for r in self.rows_data]

    def summary(self) -> str:
        return (
            "Figure 4-2: storage complexity (delay + ttime, 8B entries)\n"
            + format_table(self.rows())
        )


def model_counts(n: int, g: int) -> StorageRow:
    """Entry counts for one (fan-in, grid) point."""
    if n < 2:
        raise ValueError("storage comparison needs n >= 2")
    if g < 2:
        raise ValueError("grid resolution must be >= 2")
    full = n * g ** (2 * n - 1)
    all_pairs = n * g + (n * n - n) * g ** 3
    shared = n * g + n * g ** 3
    return StorageRow(n, g, full, all_pairs, shared)


@traced("experiment.fig4_2")
def run(*, fan_ins: Sequence[int] = (2, 3, 4, 5, 6, 8),
        grid: int = 8) -> Fig42Result:
    return Fig42Result([model_counts(n, grid) for n in fan_ins])
