"""E3 -- paper Figure 2-1: the VTC family and the threshold table.

Reproduces (b) the family of ``2^n - 1 = 7`` voltage transfer curves of
the 3-input NAND and (c) the table of V_il / V_m / V_ih per switching
subset, plus the Section-2 selection: minimum V_il (from the input
closest to ground) and maximum V_ih (from the all-inputs-switching
curve).  Paper values for its process: V_il = 1.25 V, V_ih = 3.37 V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import traced
from ..tech import Process
from ..vtc import select_thresholds, threshold_table
from ..vtc.thresholds import VtcCurve
from ..waveform import Thresholds
from ..charlib.library import cached_vtc_family
from .common import paper_gate
from .report import format_table

__all__ = ["Fig21Result", "run"]

#: The thresholds the paper reports for its (different) process.
PAPER_VIL = 1.25
PAPER_VIH = 3.37


@dataclass
class Fig21Result:
    family: List[VtcCurve]
    selected: Thresholds

    def rows(self) -> List[Dict[str, object]]:
        return threshold_table(self.family)

    def min_vil_curve(self) -> VtcCurve:
        return min(self.family, key=lambda c: c.vil)

    def max_vih_curve(self) -> VtcCurve:
        return max(self.family, key=lambda c: c.vih)

    def summary(self) -> str:
        lines = [
            "Figure 2-1(c): switching thresholds per VTC of the 3-input NAND",
            format_table(self.rows()),
            "",
            f"selected (min Vil / max Vih): vil={self.selected.vil:.3f}V "
            f"vih={self.selected.vih:.3f}V "
            f"(paper's process: vil={PAPER_VIL}V vih={PAPER_VIH}V)",
            f"min Vil comes from subset {self.min_vil_curve().label!r} "
            f"(paper: the input closest to ground)",
            f"max Vih comes from subset {self.max_vih_curve().label!r} "
            f"(paper: all inputs switching together)",
        ]
        return "\n".join(lines)


@traced("experiment.fig2_1")
def run(process: Optional[Process] = None, *, load: float = 100e-15) -> Fig21Result:
    gate = paper_gate(process, load=load)
    family = cached_vtc_family(gate)
    selected = select_thresholds(family, gate.process.vdd)
    return Fig21Result(family=family, selected=selected)
