"""A2 -- ablations of the design choices DESIGN.md calls out.

Four knobs, each evaluated on the same random population against full
simulations:

* **correction policy** -- off / paper / scaled (the Section-4
  corrective term);
* **ttime composition** -- harmonic (ours) vs additive (the literal
  analogue of eq. 4.5);
* **input ordering** -- dominance (paper Step 1) vs naive arrival
  order (what you would do without Section 3's analysis);
* **window semantics** -- stop at the first out-of-window input
  (Figure 4-1's while-loop) vs skipping it and folding later in-window
  inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..obs import traced
from ..core import DelayCalculator
from ..parallel import parallel_map
from ..tech import Process
from ..waveform import Edge, FALL
from ..charlib.simulate import multi_input_response
from .common import paper_gate, paper_library, paper_thresholds
from .report import format_table
from .table5_1 import random_cases

__all__ = ["AblationResult", "run", "VARIANTS"]

#: name -> DelayCalculator keyword overrides.
VARIANTS: Dict[str, Dict[str, object]] = {
    "default (paper corr, harmonic, dominance)": {},
    "correction=off": {"correction": "off"},
    "correction=scaled": {"correction": "scaled"},
    "ttime=additive": {"ttime_composition": "additive"},
    "ordering=arrival": {"ordering": "arrival"},
    "window=skip-outside": {"stop_at_first_outside": False},
}


@dataclass
class AblationResult:
    delay_errors: Dict[str, List[float]]
    ttime_errors: Dict[str, List[float]]
    n_configs: int

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for variant in self.delay_errors:
            d = np.asarray(self.delay_errors[variant])
            t = np.asarray(self.ttime_errors[variant])
            rows.append({
                "variant": variant,
                "delay_rms_pct": float(np.sqrt(np.mean(d ** 2))),
                "delay_worst_pct": float(np.max(np.abs(d))),
                "ttime_rms_pct": float(np.sqrt(np.mean(t ** 2))),
                "ttime_worst_pct": float(np.max(np.abs(t))),
            })
        return rows

    def summary(self) -> str:
        return (
            f"Design-choice ablations over {self.n_configs} configurations\n"
            + format_table(self.rows())
        )

    def rms(self, variant: str, metric: str = "delay") -> float:
        errors = (self.delay_errors if metric == "delay"
                  else self.ttime_errors)[variant]
        return float(np.sqrt(np.mean(np.asarray(errors) ** 2)))


def _case_task(task) -> Dict[str, tuple[float, float]]:
    """Worker: every variant on one random configuration, as
    variant -> (delay error %, ttime error %)."""
    calcs, gate, thresholds, direction, config = task
    taus = config["taus"]
    seps = config["seps"]
    edges = {
        "a": Edge(direction, 0.0, taus["a"]),
        "b": Edge(direction, seps["ab"], taus["b"]),
        "c": Edge(direction, seps["ac"], taus["c"]),
    }
    errors: Dict[str, tuple[float, float]] = {}
    shots: Dict[str, object] = {}
    for name, calc in calcs.items():
        result = calc.explain(edges)
        # Ground truth must be measured from each variant's own
        # reference input (arrival ordering may pick another one).
        if result.reference not in shots:
            shots[result.reference] = multi_input_response(
                gate, edges, thresholds, reference=result.reference,
            )
        shot = shots[result.reference]
        errors[name] = (
            (result.delay - shot.delay) / shot.delay * 100.0,
            (result.ttime - shot.out_ttime) / shot.out_ttime * 100.0,
        )
    return errors


@traced("experiment.ablations")
def run(process: Optional[Process] = None, *,
        n_configs: int = 25,
        seed: int = 404,
        direction: str = FALL,
        load: float = 100e-15,
        variants: Optional[Dict[str, Dict[str, object]]] = None,
        workers: Optional[int] = None) -> AblationResult:
    gate = paper_gate(process, load=load)
    thresholds = paper_thresholds(process, load=load)
    library = paper_library(process, mode="oracle", load=load)
    chosen = variants or VARIANTS
    calcs = {
        name: DelayCalculator(library, **kwargs)  # type: ignore[arg-type]
        for name, kwargs in chosen.items()
    }
    delay_errors: Dict[str, List[float]] = {name: [] for name in calcs}
    ttime_errors: Dict[str, List[float]] = {name: [] for name in calcs}

    outcomes = parallel_map(
        _case_task,
        [(calcs, gate, thresholds, direction, config)
         for config in random_cases(n_configs, seed)],
        workers=workers,
    )
    for errors in outcomes:
        for name, (delay_err, ttime_err) in errors.items():
            delay_errors[name].append(delay_err)
            ttime_errors[name].append(ttime_err)
    return AblationResult(
        delay_errors=delay_errors, ttime_errors=ttime_errors,
        n_configs=n_configs,
    )
