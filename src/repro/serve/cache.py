"""The daemon's response cache: TTL expiry + LRU eviction, thread-safe.

A characterization server's whole value is that repeats are free, but
an unbounded cache in a long-lived process is a slow memory leak and a
stale entry outlives the library files it was computed from.  This
cache bounds both axes: entries expire ``ttl`` seconds after they were
stored (``REPRO_SERVE_TTL``, default 300 s; ``0`` disables expiry) and
the least-recently-used entry is evicted once ``max_entries`` is
reached (``REPRO_SERVE_CACHE_MAX``, default 1024; ``0`` disables
caching entirely).

Values are opaque to the cache -- the server stores fully *encoded*
response bytes, so a hit replays the exact bytes a miss produced and
cached responses stay bit-identical to computed ones.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Optional, Tuple

__all__ = [
    "TTL_ENV_VAR", "CACHE_MAX_ENV_VAR", "DEFAULT_TTL", "DEFAULT_CACHE_MAX",
    "serve_ttl", "serve_cache_max", "TtlLruCache",
]

#: Response time-to-live in seconds (``0`` = never expire).
TTL_ENV_VAR = "REPRO_SERVE_TTL"
#: Maximum cached responses (``0`` disables the cache).
CACHE_MAX_ENV_VAR = "REPRO_SERVE_CACHE_MAX"

DEFAULT_TTL = 300.0
DEFAULT_CACHE_MAX = 1024


def serve_ttl() -> float:
    """The configured TTL (``REPRO_SERVE_TTL``, seconds, default 300)."""
    raw = os.environ.get(TTL_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_TTL
    try:
        ttl = float(raw)
    except ValueError:
        return DEFAULT_TTL
    return max(0.0, ttl)


def serve_cache_max() -> int:
    """The configured entry cap (``REPRO_SERVE_CACHE_MAX``, default 1024)."""
    raw = os.environ.get(CACHE_MAX_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_CACHE_MAX
    try:
        cap = int(raw)
    except ValueError:
        return DEFAULT_CACHE_MAX
    return max(0, cap)


class TtlLruCache:
    """A bounded mapping with per-entry TTL and LRU eviction.

    ``clock`` is injectable (monotonic seconds) so tests drive expiry
    without sleeping.  All operations are O(1) and thread-safe; the
    stat counters (``hits``/``misses``/``expirations``/``evictions``)
    let the server publish cache behaviour as metrics without the cache
    knowing about recorders.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 ttl: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_entries = serve_cache_max() if max_entries is None else max_entries
        self.ttl = serve_ttl() if ttl is None else ttl
        self._clock = clock
        self._data: "OrderedDict[Any, Tuple[float, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def _expired(self, stored_at: float, now: float) -> bool:
        return self.ttl > 0.0 and now - stored_at >= self.ttl

    def get(self, key: Any) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry.

        A hit refreshes LRU recency but *not* the TTL clock: an entry's
        lifetime is counted from when it was stored, so a hot key still
        re-computes every ``ttl`` seconds and cannot serve stale results
        forever.
        """
        now = self._clock()
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_at, value = entry
            if self._expired(stored_at, now):
                del self._data[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        """Store ``value``, evicting the LRU entry past the cap."""
        if self.max_entries <= 0:
            return
        now = self._clock()
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = (now, value)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were dropped."""
        now = self._clock()
        with self._lock:
            dead = [k for k, (stored_at, _) in self._data.items()
                    if self._expired(stored_at, now)]
            for key in dead:
                del self._data[key]
            self.expirations += len(dead)
        return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "expirations": self.expirations,
                "evictions": self.evictions,
            }
