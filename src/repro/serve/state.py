"""Warm server state: gate libraries, calculators and the response cache.

The daemon's latency story is that everything expensive outlives the
request: the characterized :class:`~repro.charlib.GateLibrary` (and its
memoized oracle simulations), the :class:`~repro.core.DelayCalculator`
(and its calibrated step-error terms), and the VTC thresholds all live
in a :class:`GateContext` that is built once per gate configuration and
reused by every subsequent request -- the second query for a gate pays
interpolation, not simulation.  Fully-encoded response bytes are
additionally cached in a :class:`~repro.serve.cache.TtlLruCache`, so an
exact repeat replays identical bytes without touching the solver.

Computation itself is delegated to the same code paths the CLI runs
(:func:`repro.serve.protocol.build_gate`, ``GateLibrary.characterize``,
``DelayCalculator.explain``), which is what keeps served results
bit-identical to ``repro delay`` / ``repro characterize``.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Optional, Tuple

from ..charlib import DualInputGrid, GateLibrary, SingleInputGrid
from ..core import DelayCalculator
from ..obs import get_recorder
from .cache import TtlLruCache
from .protocol import (
    CharacterizeQuery,
    DelayQuery,
    delay_result_payload,
    build_gate,
    format_delay_report,
)

__all__ = ["GateContext", "ServeState"]


class GateContext:
    """One gate configuration's warm artifacts (library + calculators)."""

    def __init__(self, query: DelayQuery) -> None:
        self.gate = build_gate(query.gate, query.process, query.load)
        self.library = GateLibrary.characterize(self.gate, mode=query.mode)
        self._calculators: Dict[str, DelayCalculator] = {}
        self._lock = threading.Lock()

    def calculator(self, correction: str) -> DelayCalculator:
        """The warm calculator for one correction policy.

        Calculators are per-correction because the policy is a
        constructor argument; they share the library, so the memoized
        oracle responses and the disk-cached tables are paid once.
        """
        with self._lock:
            calc = self._calculators.get(correction)
            if calc is None:
                calc = DelayCalculator(self.library, correction=correction)
                self._calculators[correction] = calc
            return calc


class ServeState:
    """Everything the daemon keeps warm across requests."""

    def __init__(self, *, ttl: Optional[float] = None,
                 cache_max: Optional[int] = None) -> None:
        self.responses = TtlLruCache(max_entries=cache_max, ttl=ttl)
        self._contexts: Dict[str, GateContext] = {}
        self._context_locks: Dict[str, threading.Lock] = {}
        self._lock = threading.Lock()

    # -- warm contexts --------------------------------------------------
    def context_for(self, query: DelayQuery) -> GateContext:
        """The (possibly just-built) warm context for a configuration.

        Creation is single-flight per configuration: concurrent first
        requests for the same gate block on one per-key lock while a
        single thread characterizes, instead of duplicating the work.
        """
        key = query.config_signature()
        with self._lock:
            context = self._contexts.get(key)
            if context is not None:
                return context
            lock = self._context_locks.setdefault(key, threading.Lock())
        with lock:
            with self._lock:
                context = self._contexts.get(key)
            if context is None:
                context = GateContext(query)
                recorder = get_recorder()
                if recorder.enabled:
                    recorder.counter("serve.contexts.built",
                                     gate=query.gate, mode=query.mode).inc()
                with self._lock:
                    self._contexts[key] = context
            return context

    @property
    def context_count(self) -> int:
        with self._lock:
            return len(self._contexts)

    # -- computation ----------------------------------------------------
    def delay_response(self, query: DelayQuery) -> Dict[str, Any]:
        """Compute one delay query (the ``repro delay`` code path)."""
        context = self.context_for(query)
        calc = context.calculator(query.correction)
        result = calc.explain(dict(query.edges))
        return {
            "ok": True,
            "signature": query.signature(),
            "result": delay_result_payload(result),
            "report": format_delay_report(result),
        }

    def characterize_response(self, query: CharacterizeQuery) -> Dict[str, Any]:
        """Compute one table-mode characterization (CLI ``characterize``)."""
        gate = build_gate(query.gate, query.process, query.load)
        kwargs: Dict[str, Any] = {}
        if query.fast:
            kwargs["single_grid"] = SingleInputGrid.fast()
            kwargs["dual_grid"] = DualInputGrid.fast()
        library = GateLibrary.characterize(gate, mode="table", **kwargs)
        return {
            "ok": True,
            "signature": query.signature(),
            "library": library.to_payload(),
            "health": library.health_summary(),
        }

    # -- the response cache ---------------------------------------------
    def cached_or_compute(self, signature: str,
                          compute) -> Tuple[bytes, bool]:
        """Encoded response bytes for ``signature``; ``(body, hit)``.

        The cache stores fully-encoded bytes, so a hit replays the exact
        bytes the original computation produced -- bit-identity of
        cached responses is structural, not a property of re-encoding.
        """
        body = self.responses.get(signature)
        if body is not None:
            return body, True
        document = compute()
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self.responses.put(signature, body)
        return body, False

    def publish_cache_metrics(self) -> None:
        """Mirror cache counters into ``serve.cache.*`` gauges."""
        recorder = get_recorder()
        if not recorder.enabled:
            return
        stats = self.responses.stats()
        for name, value in stats.items():
            recorder.gauge(f"serve.cache.{name}").set(float(value))
