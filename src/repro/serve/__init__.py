"""Characterization-as-a-service: the long-lived ``repro serve`` daemon.

The paper's macromodel is a table downstream timing tools query millions
of times; paying CLI startup (library load, thresholds, calibration) per
query is the wrong shape for that traffic.  This package keeps all of it
warm in one process and serves JSON over HTTP and unix sockets:

* :mod:`repro.serve.protocol` -- the request language (the CLI's gate
  and edge specs), validation, and the shared report renderer that makes
  served results bit-identical to ``repro delay``;
* :mod:`repro.serve.cache` -- the TTL + LRU response cache
  (``REPRO_SERVE_TTL`` / ``REPRO_SERVE_CACHE_MAX``);
* :mod:`repro.serve.coalesce` -- the :class:`ShotBroker` that merges
  concurrent simulations into lanes of the batched lockstep kernel
  (``REPRO_SERVE_COALESCE`` / ``REPRO_SERVE_GATHER`` /
  ``REPRO_SERVE_LANES``);
* :mod:`repro.serve.state` -- warm gate libraries and calculators;
* :mod:`repro.serve.server` -- the HTTP/unix listeners, ``/metrics``
  (OpenMetrics) and the SIGTERM drain;
* :mod:`repro.serve.client` -- a stdlib client for tests and load
  generation.
"""

from .cache import (
    CACHE_MAX_ENV_VAR,
    TTL_ENV_VAR,
    TtlLruCache,
    serve_cache_max,
    serve_ttl,
)
from .client import ServeClient, ServeError
from .coalesce import (
    COALESCE_ENV_VAR,
    GATHER_ENV_VAR,
    LANES_ENV_VAR,
    ShotBroker,
    coalescing_enabled,
    serve_gather,
    serve_lanes,
)
from .protocol import (
    BadRequest,
    CharacterizeQuery,
    DelayQuery,
    build_gate,
    format_delay_report,
    parse_characterize_request,
    parse_delay_request,
    parse_edge_spec,
)
from .server import ReproServer, ServeApp
from .state import GateContext, ServeState

__all__ = [
    "TTL_ENV_VAR", "CACHE_MAX_ENV_VAR", "COALESCE_ENV_VAR",
    "GATHER_ENV_VAR", "LANES_ENV_VAR",
    "TtlLruCache", "serve_ttl", "serve_cache_max",
    "ShotBroker", "coalescing_enabled", "serve_gather", "serve_lanes",
    "BadRequest", "DelayQuery", "CharacterizeQuery",
    "parse_delay_request", "parse_characterize_request",
    "parse_edge_spec", "build_gate", "format_delay_report",
    "GateContext", "ServeState", "ServeApp", "ReproServer",
    "ServeClient", "ServeError",
]
