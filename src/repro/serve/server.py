"""The ``repro serve`` daemon: JSON over HTTP and unix-domain sockets.

Endpoints
---------
``GET  /healthz``      -- liveness + warm-state summary (JSON).
``GET  /metrics``      -- the process metric registry as OpenMetrics
                          text (the PR-8 renderer), including the
                          ``serve.*`` counters and histograms.
``POST /delay``        -- one delay query (the ``repro delay`` code
                          path), or ``{"queries": [...]}`` for several;
                          multi-query requests fan out over the warm
                          worker pool so their simulations coalesce.
``POST /characterize`` -- a table-mode library build; returns the
                          library JSON ``repro characterize`` writes.

Responses repeat byte-for-byte from the TTL+LRU cache (the
``X-Repro-Cache`` header says ``hit`` or ``miss``; bodies never differ),
and cache misses compute through exactly the CLI's code paths, so a
served result is bit-identical to the equivalent CLI run.  Shutdown is
drain-first: listeners stop accepting, in-flight requests complete and
flush, then sockets close.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..log import get_logger
from ..obs import get_recorder
from ..obs.live import render_openmetrics
from .coalesce import ShotBroker, coalescing_enabled, serve_lanes
from .protocol import (
    BadRequest,
    parse_characterize_request,
    parse_delay_request,
)
from .state import ServeState

__all__ = ["ServeApp", "ReproServer", "OPENMETRICS_CONTENT_TYPE"]

_log = get_logger("serve")

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")

#: Request bodies past this size are rejected with 400 (not a DoS door).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Latency histogram edges (seconds): sub-ms cache hits to multi-second
#: characterizations.
LATENCY_EDGES = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                 10.0, 60.0)


class ServeApp:
    """The transport-independent application behind every listener."""

    def __init__(self, state: Optional[ServeState] = None, *,
                 coalesce: Optional[bool] = None,
                 broker: Optional[ShotBroker] = None,
                 pool_size: Optional[int] = None) -> None:
        self.state = state or ServeState()
        if coalesce is None:
            coalesce = coalescing_enabled()
        self.broker = broker if broker is not None else (
            ShotBroker() if coalesce else None)
        self.pool = ThreadPoolExecutor(
            max_workers=pool_size or serve_lanes(),
            thread_name_prefix="repro-serve-worker")
        self.started = time.monotonic()
        self._in_flight = 0
        self._flight_cond = threading.Condition()
        self._draining = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self.broker is not None:
            self.broker.install()

    def close(self) -> None:
        self.pool.shutdown(wait=True)
        if self.broker is not None:
            self.broker.remove()

    # -- in-flight accounting (the SIGTERM drain) -----------------------
    def request_started(self) -> bool:
        """Register one request; ``False`` once draining (answer 503)."""
        with self._flight_cond:
            if self._draining:
                return False
            self._in_flight += 1
            return True

    def request_finished(self) -> None:
        with self._flight_cond:
            self._in_flight = max(0, self._in_flight - 1)
            self._flight_cond.notify_all()

    def drain(self, timeout: float = 30.0) -> bool:
        """Refuse new requests and wait for in-flight ones to finish."""
        deadline = time.monotonic() + timeout
        with self._flight_cond:
            self._draining = True
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._flight_cond.wait(remaining)
        return True

    @property
    def in_flight(self) -> int:
        with self._flight_cond:
            return self._in_flight

    # -- metrics helpers ------------------------------------------------
    def _observe(self, endpoint: str, status: int, t0: float) -> None:
        recorder = get_recorder()
        if not recorder.enabled:
            return
        recorder.counter("serve.requests", endpoint=endpoint,
                         status=str(status)).inc()
        recorder.histogram("serve.request.latency", edges=LATENCY_EDGES,
                           endpoint=endpoint).observe(time.monotonic() - t0)

    def _count_cache(self, hit: bool) -> None:
        recorder = get_recorder()
        if recorder.enabled:
            recorder.counter("serve.cache.requests",
                             result="hit" if hit else "miss").inc()

    # -- endpoint logic --------------------------------------------------
    def _compute_delay(self, query) -> Dict[str, Any]:
        if self.broker is not None:
            with self.broker.active():
                return self.state.delay_response(query)
        return self.state.delay_response(query)

    def _delay_one(self, query) -> Tuple[bytes, bool]:
        body, hit = self.state.cached_or_compute(
            query.signature(), lambda: self._compute_delay(query))
        self._count_cache(hit)
        return body, hit

    def handle_delay(self, obj: Any) -> Tuple[int, bytes, Dict[str, str]]:
        if isinstance(obj, dict) and "queries" in obj:
            raw = obj["queries"]
            if not isinstance(raw, list) or not raw:
                raise BadRequest("field 'queries' must be a non-empty list")
            queries = [parse_delay_request(item) for item in raw]
            futures = [self.pool.submit(self._delay_one, q) for q in queries]
            outcomes = [f.result() for f in futures]
            documents = [json.loads(body) for body, _ in outcomes]
            hits = sum(1 for _, hit in outcomes if hit)
            body = (json.dumps({"ok": True, "results": documents},
                               sort_keys=True) + "\n").encode("utf-8")
            cache = ("hit" if hits == len(outcomes)
                     else "miss" if hits == 0 else "mixed")
            return 200, body, {"X-Repro-Cache": cache}
        query = parse_delay_request(obj)
        body, hit = self._delay_one(query)
        return 200, body, {"X-Repro-Cache": "hit" if hit else "miss"}

    def handle_characterize(self, obj: Any) -> Tuple[int, bytes, Dict[str, str]]:
        query = parse_characterize_request(obj)

        def compute() -> Dict[str, Any]:
            if self.broker is not None:
                with self.broker.active():
                    return self.state.characterize_response(query)
            return self.state.characterize_response(query)

        body, hit = self.state.cached_or_compute(query.signature(), compute)
        self._count_cache(hit)
        return 200, body, {"X-Repro-Cache": "hit" if hit else "miss"}

    def handle_healthz(self) -> Tuple[int, bytes, Dict[str, str]]:
        document = {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "pid": os.getpid(),
            "uptime": time.monotonic() - self.started,
            "contexts": self.state.context_count,
            "coalescing": self.broker is not None,
            "cache": self.state.responses.stats(),
            "in_flight": self.in_flight,
        }
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        return 200, body, {}

    def handle_metrics(self) -> Tuple[int, bytes, Dict[str, str]]:
        self.state.publish_cache_metrics()
        text = render_openmetrics(get_recorder().metrics_payload())
        return 200, text.encode("utf-8"), {"_content_type":
                                           OPENMETRICS_CONTENT_TYPE}


class _ServeHandler(BaseHTTPRequestHandler):
    """One HTTP connection; routes to the owning server's ``app``."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"
    timeout = 60.0

    def setup(self) -> None:
        super().setup()
        # Headers and body go out as separate writes; without
        # TCP_NODELAY, Nagle + delayed ACK stalls every localhost round
        # trip ~40 ms.  (AF_UNIX sockets have no Nagle to disable.)
        if self.connection.family in (socket.AF_INET, socket.AF_INET6):
            self.connection.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, True)

    # -- plumbing -------------------------------------------------------
    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        _log.debug("%s", format % args)

    def _send(self, status: int, body: bytes,
              headers: Optional[Dict[str, str]] = None) -> None:
        headers = dict(headers or {})
        content_type = headers.pop("_content_type", "application/json")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        body = (json.dumps({"ok": False, "error": message},
                           sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body)

    def _read_json(self) -> Any:
        length = self.headers.get("Content-Length")
        try:
            n = int(length or "")
        except ValueError:
            raise BadRequest("request needs a Content-Length header")
        if n > MAX_BODY_BYTES:
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(n)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    # -- routing --------------------------------------------------------
    def _route(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        t0 = time.monotonic()
        if not self.app.request_started():
            self._send_error_json(503, "server is draining")
            return
        status = 500
        try:
            try:
                if method == "GET" and path == "/healthz":
                    status, body, headers = self.app.handle_healthz()
                elif method == "GET" and path == "/metrics":
                    status, body, headers = self.app.handle_metrics()
                elif method == "POST" and path == "/delay":
                    status, body, headers = self.app.handle_delay(
                        self._read_json())
                elif method == "POST" and path == "/characterize":
                    status, body, headers = self.app.handle_characterize(
                        self._read_json())
                elif path in ("/delay", "/characterize", "/healthz",
                              "/metrics"):
                    # The request body (if any) was never consumed, so
                    # the connection cannot be reused.
                    self.close_connection = True
                    status = 405
                    self._send_error_json(405, f"{path} does not allow {method}")
                    return
                else:
                    self.close_connection = True
                    status = 404
                    self._send_error_json(404, f"unknown endpoint {path!r}")
                    return
                self._send(status, body, headers)
            except BadRequest as exc:
                # The body may be unread or half-read; drop the
                # connection rather than let the remainder masquerade as
                # the next request.
                self.close_connection = True
                status = 400
                self._send_error_json(400, str(exc))
            except ReproError as exc:
                # A well-formed request whose computation failed (e.g. a
                # solver convergence loss): not the client's fault, not a
                # server crash -- report it as a structured 422.
                status = 422
                self._send_error_json(422, str(exc))
            except Exception as exc:  # pragma: no cover - defensive
                status = 500
                _log.exception("unhandled serve error")
                self._send_error_json(500, f"internal error: {exc}")
        finally:
            self.app.request_finished()
            self.app._observe(path.lstrip("/") or "root", status, t0)

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")


class _ReproHTTPServer(ThreadingHTTPServer):
    """TCP listener; handler threads are daemonic (drain is app-level).

    The SIGTERM drain is implemented by :meth:`ServeApp.drain` (which
    counts *requests*, not connections), so an idle keep-alive
    connection can never hold shutdown hostage the way joining handler
    threads would.
    """

    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True

    def __init__(self, address, app: ServeApp) -> None:
        super().__init__(address, _ServeHandler)
        self.app = app


class _ReproUnixServer(_ReproHTTPServer):
    """The same HTTP protocol over a unix-domain socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        try:
            os.unlink(self.server_address)  # type: ignore[arg-type]
        except OSError:
            pass
        socketserver.TCPServer.server_bind(self)
        self.server_name = "localhost"
        self.server_port = 0

    def get_request(self):
        request, _ = super().get_request()
        # BaseHTTPRequestHandler indexes client_address; AF_UNIX peers
        # have none, so synthesize a stable placeholder.
        return request, ("unix", 0)


class ReproServer:
    """A running daemon: one app behind HTTP and/or unix listeners."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 socket_path: Optional[str] = None, *,
                 state: Optional[ServeState] = None,
                 coalesce: Optional[bool] = None,
                 pool_size: Optional[int] = None) -> None:
        self.app = ServeApp(state, coalesce=coalesce, pool_size=pool_size)
        self.socket_path = socket_path
        self._http = _ReproHTTPServer((host, port), self.app)
        self._unix = (_ReproUnixServer(socket_path, self.app)
                      if socket_path else None)
        self._threads: List[threading.Thread] = []
        self._stopped = False

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def http_endpoint(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def unix_endpoint(self) -> Optional[str]:
        return f"unix:{self.socket_path}" if self.socket_path else None

    def start(self) -> "ReproServer":
        self.app.start()
        for server, name in ((self._http, "http"), (self._unix, "unix")):
            if server is None:
                continue
            thread = threading.Thread(target=server.serve_forever,
                                      kwargs={"poll_interval": 0.1},
                                      daemon=True,
                                      name=f"repro-serve-{name}")
            thread.start()
            self._threads.append(thread)
        _log.info("serving on %s%s", self.http_endpoint,
                  f" and {self.unix_endpoint}" if self._unix else "")
        return self

    def stop(self, drain_timeout: float = 30.0) -> bool:
        """Drain-first shutdown; ``True`` when no request was cut off."""
        if self._stopped:
            return True
        self._stopped = True
        for server in (self._http, self._unix):
            if server is not None:
                server.shutdown()
        drained = self.app.drain(drain_timeout)
        for server in (self._http, self._unix):
            if server is not None:
                server.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.app.close()
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        _log.info("serve shutdown complete (drained=%s)", drained)
        return drained

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
