"""A small stdlib client for the serve daemon (tests, bench, CI).

Endpoints are the strings the server prints: ``http://host:port`` for
TCP or ``unix:/path/to.sock`` for the unix-domain listener.  The client
keeps its connection alive across calls (the daemon speaks HTTP/1.1),
which is what makes a load generator measure the server rather than TCP
handshakes.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError

__all__ = ["ServeError", "ServeClient"]


class ServeError(ReproError):
    """A non-2xx response from the daemon; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


class ServeClient:
    """One persistent connection to a running daemon."""

    def __init__(self, endpoint: str, timeout: float = 120.0) -> None:
        self.endpoint = endpoint
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.endpoint.startswith("unix:"):
                self._conn = _UnixHTTPConnection(
                    self.endpoint[len("unix:"):], timeout=self.timeout)
            elif self.endpoint.startswith("http://"):
                rest = self.endpoint[len("http://"):].rstrip("/")
                host, _, port = rest.partition(":")
                self._conn = http.client.HTTPConnection(
                    host, int(port or "80"), timeout=self.timeout)
                # Connect eagerly so Nagle can be switched off: requests
                # go out as several small writes, and Nagle + delayed
                # ACK turns each round trip into a ~40 ms stall.
                self._conn.connect()
                self._conn.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            else:
                raise ReproError(
                    f"endpoint {self.endpoint!r} must look like "
                    "'http://host:port' or 'unix:/path.sock'")
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw request ----------------------------------------------------
    def request(self, method: str, path: str,
                body: Optional[Any] = None) -> Tuple[int, Dict[str, str], bytes]:
        """One round trip; returns ``(status, headers, body_bytes)``.

        Retries once on a dropped keep-alive connection (the server may
        have timed an idle connection out between calls).
        """
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                return (response.status,
                        {k.lower(): v for k, v in response.getheaders()},
                        data)
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _json(self, method: str, path: str,
              body: Optional[Any] = None) -> Dict[str, Any]:
        status, _, data = self.request(method, path, body)
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            document = {"error": data.decode("utf-8", "replace")}
        if status >= 400:
            raise ServeError(status, str(document.get("error", document)))
        return document

    # -- endpoints ------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        status, _, data = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    def delay(self, query: Dict[str, Any]) -> Dict[str, Any]:
        return self._json("POST", "/delay", query)

    def delay_raw(self, query: Dict[str, Any]) -> Tuple[int, Dict[str, str], bytes]:
        """The unparsed ``/delay`` round trip (bit-identity checks)."""
        return self.request("POST", "/delay", query)

    def characterize(self, query: Dict[str, Any]) -> Dict[str, Any]:
        return self._json("POST", "/characterize", query)
