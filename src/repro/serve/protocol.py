"""The serve wire protocol: request validation, signatures, rendering.

The request language is deliberately *the CLI's language*: a gate is
named exactly as ``repro delay --gate`` names it, an edge is the same
``PIN:DIR:TAU[:AT]`` spec (or an equivalent JSON object), and the
response embeds the same report text ``repro delay`` prints.  The CLI
imports its gate/edge parsing and report rendering from here, so a
served response is bit-identical to the CLI run by construction -- one
parser, one renderer, one solver.

Malformed requests raise :class:`BadRequest`, which the server maps to
HTTP 400 with the message in the JSON error body.  Every valid query
exposes a canonical content signature (:meth:`DelayQuery.signature`)
that keys the server's TTL+LRU response cache; the signature hashes the
*parsed* values (seconds, farads, normalized directions), so ``500ps``
and ``0.5ns`` are the same cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..charlib.cache import _canonical_hash
from ..core.algorithm import ProximityResult
from ..errors import ReproError
from ..gates import Gate
from ..tech.presets import PROCESSES
from ..units import format_quantity, parse_quantity
from ..waveform import Edge

__all__ = [
    "BadRequest", "build_gate", "parse_edge_spec", "DelayQuery",
    "CharacterizeQuery", "parse_delay_request", "parse_characterize_request",
    "delay_result_payload", "format_delay_report",
]

MODES = ("oracle", "table")
CORRECTIONS = ("paper", "scaled", "off")


class BadRequest(ReproError):
    """A malformed or invalid request (server answers HTTP 400)."""


def build_gate(kind: str, process_name: str, load: Any) -> Gate:
    """Build the gate a ``--gate/--process/--load`` triple names.

    This is the CLI's cell-naming rule (``nandN``, ``norN``, ``inv``,
    ``aoi21``, ``oai21``, ``aoi22``); the serve protocol accepts exactly
    the same names.
    """
    process = PROCESSES[process_name]()
    kind = kind.lower()
    load_f = parse_quantity(load, unit="F")
    if kind.startswith("nand"):
        return Gate.nand(int(kind[4:] or 2), process, load=load_f)
    if kind.startswith("nor"):
        return Gate.nor(int(kind[3:] or 2), process, load=load_f)
    if kind in ("inv", "inverter"):
        return Gate.inverter(process, load=load_f)
    if kind == "aoi21":
        return Gate.aoi21(process, load=load_f)
    if kind == "oai21":
        return Gate.oai21(process, load=load_f)
    if kind == "aoi22":
        return Gate.aoi22(process, load=load_f)
    raise ReproError(f"unknown gate {kind!r} (try nand3, nor2, inv, aoi21)")


def parse_edge_spec(spec: str) -> Tuple[str, Edge]:
    """One ``PIN:DIR:TAU[:AT]`` edge spec (the CLI's ``--edge`` syntax)."""
    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise ReproError(
            f"edge spec {spec!r} must be PIN:DIR:TAU or PIN:DIR:TAU:AT")
    pin, direction, tau = parts[:3]
    at = parts[3] if len(parts) == 4 else "0s"
    return pin, Edge(direction, parse_quantity(at, unit="s"),
                     parse_quantity(tau, unit="s"))


def _require(obj: Any, field: str, kind: type, default: Any = None) -> Any:
    value = obj.get(field, default)
    if value is None:
        raise BadRequest(f"request is missing required field {field!r}")
    if not isinstance(value, kind):
        raise BadRequest(
            f"field {field!r} must be {kind.__name__}, got {type(value).__name__}")
    return value


def _parse_request_edge(item: Any) -> Tuple[str, Edge]:
    """An edge as either a CLI spec string or a JSON object."""
    try:
        if isinstance(item, str):
            return parse_edge_spec(item)
        if isinstance(item, dict):
            pin = _require(item, "input", str)
            direction = _require(item, "direction", str)
            tau = item.get("tau")
            if tau is None:
                raise BadRequest("edge object is missing required field 'tau'")
            at = item.get("at", "0s")
            return pin, Edge(direction, parse_quantity(at, unit="s"),
                             parse_quantity(tau, unit="s"))
    except BadRequest:
        raise
    except (ReproError, ValueError, TypeError) as exc:
        raise BadRequest(f"bad edge {item!r}: {exc}") from exc
    raise BadRequest(
        f"each edge must be a 'PIN:DIR:TAU[:AT]' string or an object, "
        f"got {type(item).__name__}")


def _parse_gate_fields(obj: Dict[str, Any]) -> Tuple[str, str, float, Gate]:
    kind = _require(obj, "gate", str, "nand3").lower()
    process = _require(obj, "process", str, "default")
    if process not in PROCESSES:
        raise BadRequest(
            f"unknown process {process!r} (known: {', '.join(sorted(PROCESSES))})")
    load = obj.get("load", "100f")
    if not isinstance(load, (str, int, float)) or isinstance(load, bool):
        raise BadRequest(f"field 'load' must be a quantity, got {load!r}")
    try:
        load_f = parse_quantity(load, unit="F")
        gate = build_gate(kind, process, load_f)
    except (ReproError, ValueError) as exc:
        raise BadRequest(str(exc)) from exc
    return kind, process, load_f, gate


@dataclass(frozen=True)
class DelayQuery:
    """One validated ``/delay`` request (the CLI's ``repro delay``)."""

    gate: str
    process: str
    load: float
    mode: str
    correction: str
    edges: Tuple[Tuple[str, Edge], ...]

    def config_signature(self) -> str:
        """Hash of the warm-context key (gate, process, load, mode)."""
        return _canonical_hash({
            "kind": "serve-context", "gate": self.gate,
            "process": self.process, "load": self.load, "mode": self.mode,
        })

    def signature(self) -> str:
        """Canonical content hash keying the response cache."""
        return _canonical_hash({
            "kind": "serve-delay", "gate": self.gate, "process": self.process,
            "load": self.load, "mode": self.mode, "correction": self.correction,
            "edges": [[pin, e.direction, e.tau, e.t_cross]
                      for pin, e in self.edges],
        })


@dataclass(frozen=True)
class CharacterizeQuery:
    """One validated ``/characterize`` request (table-mode library)."""

    gate: str
    process: str
    load: float
    fast: bool

    def signature(self) -> str:
        return _canonical_hash({
            "kind": "serve-characterize", "gate": self.gate,
            "process": self.process, "load": self.load, "fast": self.fast,
        })


def parse_delay_request(obj: Any) -> DelayQuery:
    """Validate one delay-request object into a :class:`DelayQuery`."""
    if not isinstance(obj, dict):
        raise BadRequest(
            f"delay request must be a JSON object, got {type(obj).__name__}")
    kind, process, load_f, gate = _parse_gate_fields(obj)
    mode = _require(obj, "mode", str, "oracle")
    if mode not in MODES:
        raise BadRequest(f"unknown mode {mode!r} (known: {', '.join(MODES)})")
    correction = _require(obj, "correction", str, "paper")
    if correction not in CORRECTIONS:
        raise BadRequest(
            f"unknown correction {correction!r} "
            f"(known: {', '.join(CORRECTIONS)})")
    raw_edges = obj.get("edges")
    if not isinstance(raw_edges, list) or not raw_edges:
        raise BadRequest("field 'edges' must be a non-empty list")
    edges: List[Tuple[str, Edge]] = []
    seen = set()
    for item in raw_edges:
        pin, edge = _parse_request_edge(item)
        if pin not in gate.inputs:
            raise BadRequest(
                f"{pin!r} is not an input of {gate.name!r} "
                f"(inputs: {', '.join(gate.inputs)})")
        if pin in seen:
            raise BadRequest(f"duplicate edge for input {pin!r}")
        seen.add(pin)
        edges.append((pin, edge))
    return DelayQuery(gate=kind, process=process, load=load_f, mode=mode,
                      correction=correction, edges=tuple(edges))


def parse_characterize_request(obj: Any) -> CharacterizeQuery:
    """Validate one characterize-request object."""
    if not isinstance(obj, dict):
        raise BadRequest(
            f"characterize request must be a JSON object, "
            f"got {type(obj).__name__}")
    kind, process, load_f, _ = _parse_gate_fields(obj)
    fast = obj.get("fast", False)
    if not isinstance(fast, bool):
        raise BadRequest(f"field 'fast' must be a boolean, got {fast!r}")
    return CharacterizeQuery(gate=kind, process=process, load=load_f,
                             fast=fast)


def delay_result_payload(result: ProximityResult) -> Dict[str, Any]:
    """A :class:`ProximityResult` as plain JSON (raw float seconds)."""
    return {
        "reference": result.reference,
        "order": list(result.order),
        "delay": result.delay,
        "ttime": result.ttime,
        "raw_delay": result.raw_delay,
        "raw_ttime": result.raw_ttime,
        "delay_correction": result.delay_correction,
        "ttime_correction": result.ttime_correction,
        "steps": [
            {
                "input": step.input_name,
                "separation": step.separation,
                "delay_ratio": step.delay_ratio,
                "ttime_ratio": step.ttime_ratio,
                "in_delay_window": step.in_delay_window,
                "in_ttime_window": step.in_ttime_window,
            }
            for step in result.steps
        ],
    }


def format_delay_report(result: ProximityResult) -> str:
    """The ``repro delay`` report text (exactly what the CLI prints)."""
    lines = [
        f"reference (dominant) input: {result.reference}",
        f"dominance order:            {' > '.join(result.order)}",
        f"delay:                      {format_quantity(result.delay, 's')}"
        f"  (raw {format_quantity(result.raw_delay, 's')}, "
        f"correction {format_quantity(result.delay_correction, 's')})",
        f"output transition time:     {format_quantity(result.ttime, 's')}",
    ]
    for fold in result.steps:
        windows = []
        if fold.in_delay_window:
            windows.append("delay")
        if fold.in_ttime_window:
            windows.append("ttime")
        lines.append(
            f"  folded {fold.input_name}: sep="
            f"{format_quantity(fold.separation, 's')} "
            f"D2={fold.delay_ratio:.3f} T2={fold.ttime_ratio:.3f} "
            f"({'+'.join(windows)})")
    return "\n".join(lines)
