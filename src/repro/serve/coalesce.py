"""Request coalescing: concurrent shot requests merged into batch lanes.

Every delay query the server computes bottoms out in one or more
:func:`repro.charlib.simulate.multi_input_response` transients.  Run
serially those dominate the request latency; run *together* through
:func:`repro.charlib.simulate.multi_input_response_batch` they share
the lockstep Newton kernel, which is bit-identical per lane to the
scalar engine (see ``benchmarks/bench_batch.py``) -- so coalescing
changes throughput, never results.

The :class:`ShotBroker` is the shot router the server installs via
:func:`repro.charlib.simulate.set_shot_router`: handler threads that
hit the seam block while a dispatcher thread gathers their requests,
groups them by compatibility (same gate/threshold objects, same retry
configuration -- only identical solver settings may share a batch), and
flushes a group when every active request is already waiting *and*
arrivals have quiesced for the dwell window (half the gather window by
default), when a group reaches the lane cap (``REPRO_SERVE_LANES``,
default 16), or when the oldest entry has waited out the gather window
(``REPRO_SERVE_GATHER`` seconds, default 2 ms -- the deadlock-safety
net).  Failures stay per-lane: the slot's exception is re-raised in the
submitting thread, exactly as the scalar call would have raised it.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..charlib.simulate import multi_input_response_batch, set_shot_router
from ..obs import get_recorder

__all__ = [
    "COALESCE_ENV_VAR", "GATHER_ENV_VAR", "LANES_ENV_VAR",
    "DEFAULT_GATHER", "DEFAULT_LANES",
    "coalescing_enabled", "serve_gather", "serve_lanes", "ShotBroker",
]

#: Set to 0/false/off to disable request coalescing (scalar fallback).
COALESCE_ENV_VAR = "REPRO_SERVE_COALESCE"
#: Gather window in seconds before a partial lane group flushes.
GATHER_ENV_VAR = "REPRO_SERVE_GATHER"
#: Maximum requests coalesced into one batch-kernel call.
LANES_ENV_VAR = "REPRO_SERVE_LANES"

DEFAULT_GATHER = 0.002
DEFAULT_LANES = 16

#: Histogram edges for lane fill (requests per flushed batch).
LANE_FILL_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def coalescing_enabled() -> bool:
    """Whether coalescing is on (``REPRO_SERVE_COALESCE``, default on)."""
    raw = os.environ.get(COALESCE_ENV_VAR, "").strip().lower()
    return raw not in ("0", "false", "no", "off")


def serve_gather() -> float:
    """The gather window (``REPRO_SERVE_GATHER`` seconds, default 2 ms)."""
    raw = os.environ.get(GATHER_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_GATHER
    try:
        gather = float(raw)
    except ValueError:
        return DEFAULT_GATHER
    return max(0.0, gather)


def serve_lanes() -> int:
    """The lane cap per batch (``REPRO_SERVE_LANES``, default 16)."""
    raw = os.environ.get(LANES_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_LANES
    try:
        lanes = int(raw)
    except ValueError:
        return DEFAULT_LANES
    return max(1, lanes)


class _PendingShot:
    """One blocked scalar request waiting for its batch lane."""

    __slots__ = ("key", "gate", "edges", "thresholds", "reference", "load",
                 "max_retries", "retry", "event", "outcome", "arrived")

    def __init__(self, key, gate, edges, thresholds, reference, load,
                 max_retries, retry) -> None:
        self.key = key
        self.gate = gate
        self.edges = edges
        self.thresholds = thresholds
        self.reference = reference
        self.load = load
        self.max_retries = max_retries
        self.retry = retry
        self.event = threading.Event()
        self.outcome: Any = None
        self.arrived = time.monotonic()


class ShotBroker:
    """Gathers concurrent shot requests and flushes them as batch lanes.

    Use :meth:`install` / :meth:`remove` to hook the simulate seam, and
    wrap each server-side computation in :meth:`active` so the broker
    knows how many threads could still submit: the moment every active
    computation is blocked in :meth:`route`, waiting any longer cannot
    grow the lane, so the group flushes immediately -- a lone request
    coalesces with nobody and pays (almost) no gather latency.
    """

    def __init__(self, *, gather: Optional[float] = None,
                 max_lanes: Optional[int] = None,
                 dwell: Optional[float] = None) -> None:
        self.gather = serve_gather() if gather is None else gather
        self.max_lanes = serve_lanes() if max_lanes is None else max(1, max_lanes)
        # The all-waiting flush debounces on arrival quiescence: under a
        # client stampede, requests trickle in over several GIL slices,
        # and flushing the instant the *current* arrivals are all blocked
        # would shred the stampede into tiny lanes.  Waiting until no new
        # request has arrived for ``dwell`` seconds (default: half the
        # gather window) lets the pile-up complete; a lone client pays at
        # most the dwell on top of its solve.
        self.dwell = (self.gather / 2.0) if dwell is None else max(0.0, dwell)
        self._cond = threading.Condition()
        self._pending: List[_PendingShot] = []
        self._active = 0
        self._stopped = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ShotBroker":
        with self._cond:
            if not self._stopped:
                return self
            self._stopped = False
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-broker")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop gathering; pending requests are flushed, not dropped."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def install(self) -> "ShotBroker":
        """Start and hook :func:`set_shot_router`; returns self."""
        self.start()
        set_shot_router(self)
        return self

    def remove(self) -> None:
        """Unhook the router seam (if we own it) and stop."""
        from ..charlib.simulate import get_shot_router
        if get_shot_router() is self:
            set_shot_router(None)
        self.stop()

    # -- server bookkeeping --------------------------------------------
    def enter_active(self) -> None:
        with self._cond:
            self._active += 1

    def exit_active(self) -> None:
        with self._cond:
            self._active = max(0, self._active - 1)
            self._cond.notify_all()

    def active(self):
        """Context manager bracketing one server-side computation."""
        broker = self

        class _Active:
            def __enter__(self):
                broker.enter_active()
                return broker

            def __exit__(self, *exc_info):
                broker.exit_active()

        return _Active()

    # -- the router seam ------------------------------------------------
    def route(self, gate, edges: Mapping[str, Any], thresholds, *,
              reference: Optional[str], load, max_retries: int,
              retry) -> Optional[Any]:
        """Block until a batch lane computed this request; None declines.

        Compatibility is by object identity on (gate, thresholds) plus
        the retry configuration -- the warm server state shares one gate
        and thresholds object per configuration, so identity grouping is
        exact and can never merge requests whose solves would differ.
        """
        if threading.current_thread() is self._thread:
            return None  # the dispatcher itself must run scalar
        key = (id(gate), id(thresholds), max_retries, id(retry))
        entry = _PendingShot(key, gate, edges, thresholds, reference, load,
                             max_retries, retry)
        with self._cond:
            if self._stopped:
                return None
            self._pending.append(entry)
            self._cond.notify_all()
        entry.event.wait()
        recorder = get_recorder()
        if recorder.enabled:
            recorder.histogram("serve.queue.wait").observe(
                time.monotonic() - entry.arrived)
        if isinstance(entry.outcome, Exception):
            raise entry.outcome
        return entry.outcome

    # -- the dispatcher --------------------------------------------------
    def _ready_reason(self, now: float) -> Optional[str]:
        """Why the oldest group should flush now, or ``None`` to wait."""
        if not self._pending:
            return None
        if self._stopped:
            return "drain"
        counts: Dict[Tuple, int] = {}
        for entry in self._pending:
            counts[entry.key] = counts.get(entry.key, 0) + 1
        if max(counts.values()) >= self.max_lanes:
            return "lane_cap"
        if (len(self._pending) >= max(1, self._active)
                and now - self._pending[-1].arrived >= self.dwell):
            return "all_waiting"
        if now - self._pending[0].arrived >= self.gather:
            return "gather_timeout"
        return None

    def _take_group(self) -> List[_PendingShot]:
        """Remove and return the largest compatible group (lane-capped)."""
        counts: Dict[Tuple, int] = {}
        for entry in self._pending:
            counts[entry.key] = counts.get(entry.key, 0) + 1
        key = max(counts, key=lambda k: counts[k])
        group: List[_PendingShot] = []
        keep: List[_PendingShot] = []
        for entry in self._pending:
            if entry.key == key and len(group) < self.max_lanes:
                group.append(entry)
            else:
                keep.append(entry)
        self._pending = keep
        return group

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopped and not self._pending:
                    return
                now = time.monotonic()
                reason = self._ready_reason(now)
                if reason is None:
                    if self._pending:
                        remaining = self.gather - (now - self._pending[0].arrived)
                        if len(self._pending) >= max(1, self._active):
                            remaining = min(
                                remaining,
                                self.dwell - (now - self._pending[-1].arrived))
                        self._cond.wait(max(1e-4, min(remaining, 0.05)))
                    else:
                        self._cond.wait(0.1)
                    continue
                group = self._take_group()
            self._flush(group, reason)

    def _flush(self, group: List[_PendingShot], reason: str) -> None:
        first = group[0]
        requests = [(e.edges, e.reference, e.load) for e in group]
        try:
            outcomes = multi_input_response_batch(
                first.gate, requests, first.thresholds,
                max_retries=first.max_retries, retry=first.retry)
        except Exception as exc:  # defensive: batch isolates per-lane errors
            for entry in group:
                entry.outcome = exc
                entry.event.set()
        else:
            for entry, outcome in zip(group, outcomes):
                entry.outcome = outcome
                entry.event.set()
        recorder = get_recorder()
        if recorder.enabled:
            recorder.counter("serve.coalesce.flushes", reason=reason).inc()
            recorder.histogram("serve.coalesce.lane_fill",
                               edges=LANE_FILL_EDGES).observe(len(group))
