"""Transition-direction vocabulary and the :class:`Edge` descriptor.

An :class:`Edge` is the abstract timing view of a signal transition: a
direction, the time it crosses its *timing threshold* (``V_il`` for
rising, ``V_ih`` for falling -- the onset of the transition, matching the
paper's measurement rule), and a full-swing transition time.  The
characterization and timing layers pass edges around instead of whole
waveforms; :func:`Edge.to_pwl` lowers an edge to a concrete PWL ramp when
a circuit simulation needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..errors import MeasurementError
from ..units import parse_quantity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .measure import Thresholds
    from .pwl import Pwl

__all__ = ["RISE", "FALL", "opposite", "normalize_direction", "Edge"]

#: Canonical direction tokens.
RISE = "rise"
FALL = "fall"

_ALIASES = {
    "rise": RISE,
    "rising": RISE,
    "r": RISE,
    "up": RISE,
    "fall": FALL,
    "falling": FALL,
    "f": FALL,
    "down": FALL,
}


def normalize_direction(direction: str) -> str:
    """Map any accepted alias to ``RISE``/``FALL``; raise otherwise."""
    try:
        return _ALIASES[direction.lower()]
    except (KeyError, AttributeError):
        raise MeasurementError(f"unknown transition direction {direction!r}") from None


def opposite(direction: str) -> str:
    """The inverse direction (what an inverting gate's output does)."""
    return FALL if normalize_direction(direction) == RISE else RISE


@dataclass(frozen=True)
class Edge:
    """A single transition on a signal.

    Parameters
    ----------
    direction:
        ``"rise"`` or ``"fall"`` (aliases accepted).
    t_cross:
        Time (s) at which the transition crosses its timing threshold:
        ``V_il`` when rising, ``V_ih`` when falling.  This is the paper's
        reference point for both delays and separations.
    tau:
        Full-swing (rail-to-rail) transition time in seconds.
    """

    direction: str
    t_cross: float
    tau: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "direction", normalize_direction(self.direction))
        object.__setattr__(self, "t_cross", parse_quantity(self.t_cross, unit="s"))
        object.__setattr__(self, "tau", parse_quantity(self.tau, unit="s"))
        if self.tau <= 0.0:
            raise MeasurementError(f"edge transition time must be positive, got {self.tau}")

    @property
    def is_rising(self) -> bool:
        return self.direction == RISE

    def shifted(self, dt: float) -> "Edge":
        """The same edge translated by ``dt`` seconds."""
        return replace(self, t_cross=self.t_cross + dt)

    def separation_from(self, other: "Edge") -> float:
        """Separation ``s_self,other = other.t_cross - self.t_cross``.

        Matches the paper's ``s_ij``: the separation between inputs *i*
        and *j* "measured from input x_i"; positive when *other* switches
        later than *self*.
        """
        return other.t_cross - self.t_cross

    def to_pwl(self, thresholds: "Thresholds", *, t_end: float | None = None) -> "Pwl":
        """Lower this edge to a full-swing PWL ramp.

        The ramp is positioned so that it crosses this edge's timing
        threshold (``V_il`` rising / ``V_ih`` falling, from
        ``thresholds``) exactly at ``t_cross``.
        """
        from .measure import timing_threshold
        from .pwl import ramp_crossing_at

        level = timing_threshold(self.direction, thresholds)
        if self.is_rising:
            v0, v1 = 0.0, thresholds.vdd
        else:
            v0, v1 = thresholds.vdd, 0.0
        return ramp_crossing_at(
            self.t_cross, level, v0=v0, v1=v1, tau=self.tau, t_end=t_end
        )

    def describe(self) -> str:
        """Short human-readable summary for logs and reports."""
        from ..units import format_quantity

        return (
            f"{self.direction} @ {format_quantity(self.t_cross, 's')} "
            f"(tau={format_quantity(self.tau, 's')})"
        )
