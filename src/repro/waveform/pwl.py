"""The :class:`Pwl` piecewise-linear waveform type.

A :class:`Pwl` is an immutable sampled signal ``v(t)`` defined by
breakpoints ``(t_k, v_k)`` with strictly increasing times, linearly
interpolated between breakpoints and held constant beyond the ends.  It
is used both for *inputs* (ideal ramps built by :func:`ramp`) and for
*outputs* (dense samples captured from transient simulation).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import MeasurementError
from ..units import parse_quantity

__all__ = ["Pwl", "ramp", "step", "ramp_crossing_at"]


class Pwl:
    """An immutable piecewise-linear waveform.

    Parameters
    ----------
    times, values:
        Breakpoint arrays of equal length (>= 1).  ``times`` must be
        strictly increasing.  Values before ``times[0]`` and after
        ``times[-1]`` are held at the first/last breakpoint value.
    """

    __slots__ = ("_t", "_v", "_t_list", "_v_list")

    def __init__(self, times: Iterable[float], values: Iterable[float]) -> None:
        t = np.asarray(list(times) if not isinstance(times, np.ndarray) else times,
                       dtype=float)
        v = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=float)
        if t.ndim != 1 or v.ndim != 1:
            raise MeasurementError("Pwl breakpoints must be one-dimensional")
        if t.size != v.size:
            raise MeasurementError(
                f"Pwl times ({t.size}) and values ({v.size}) differ in length"
            )
        if t.size == 0:
            raise MeasurementError("Pwl requires at least one breakpoint")
        if t.size > 1 and not np.all(np.diff(t) > 0.0):
            raise MeasurementError("Pwl breakpoint times must be strictly increasing")
        if not (np.all(np.isfinite(t)) and np.all(np.isfinite(v))):
            raise MeasurementError("Pwl breakpoints must be finite")
        self._t = t
        self._v = v
        self._t.setflags(write=False)
        self._v.setflags(write=False)
        # Breakpoints as plain Python floats, materialized on the first
        # scalar evaluation (the transient hot path).
        self._t_list: list[float] | None = None
        self._v_list: list[float] | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Breakpoint times (read-only view)."""
        return self._t

    @property
    def values(self) -> np.ndarray:
        """Breakpoint values (read-only view)."""
        return self._v

    @property
    def t_start(self) -> float:
        return float(self._t[0])

    @property
    def t_end(self) -> float:
        return float(self._t[-1])

    def __len__(self) -> int:
        return int(self._t.size)

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the waveform at time(s) ``t`` (clamped extrapolation)."""
        if type(t) is float or type(t) is int:
            return self._eval_scalar(float(t))
        out = np.interp(np.asarray(t, dtype=float), self._t, self._v)
        if np.isscalar(t) or (isinstance(t, np.ndarray) and t.ndim == 0):
            return float(out)
        return out

    def _eval_scalar(self, t: float) -> float:
        """Scalar evaluation, bit-identical to ``np.interp``.

        Mirrors numpy's ``arr_interp`` branch structure exactly -- end
        clamping first, exact breakpoint hits returned untouched, and
        the same slope-anchored-at-the-left-breakpoint formula (with the
        NaN re-anchoring fallbacks) -- so the float result is the same
        bits the array path produces, without the per-call ``np.asarray``
        round-trip.
        """
        ts = self._t_list
        if ts is None:
            ts = self._t_list = self._t.tolist()
            self._v_list = self._v.tolist()
        vs = self._v_list
        assert vs is not None
        if t != t:  # non-finite query: defer to numpy verbatim
            return float(np.interp(t, self._t, self._v))
        if t >= ts[-1]:
            return vs[-1]
        if t < ts[0]:
            return vs[0]
        lo, hi = 0, len(ts) - 1
        while hi - lo > 1:  # largest j with ts[j] <= t
            mid = (lo + hi) // 2
            if ts[mid] <= t:
                lo = mid
            else:
                hi = mid
        tj = ts[lo]
        if tj == t:
            return vs[lo]
        slope = (vs[lo + 1] - vs[lo]) / (ts[lo + 1] - tj)
        res = slope * (t - tj) + vs[lo]
        if res != res:
            res = slope * (t - ts[lo + 1]) + vs[lo + 1]
            if res != res and vs[lo] == vs[lo + 1]:
                res = vs[lo]
        return res

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pwl):
            return NotImplemented
        return (
            self._t.shape == other._t.shape
            and bool(np.array_equal(self._t, other._t))
            and bool(np.array_equal(self._v, other._v))
        )

    def __hash__(self) -> int:
        return hash((self._t.tobytes(), self._v.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pwl({len(self)} points, t in [{self.t_start:.3e}, {self.t_end:.3e}])"

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    def min(self) -> float:
        """Minimum breakpoint value (exact for a PWL signal)."""
        return float(self._v.min())

    def max(self) -> float:
        """Maximum breakpoint value (exact for a PWL signal)."""
        return float(self._v.max())

    def initial_value(self) -> float:
        return float(self._v[0])

    def final_value(self) -> float:
        return float(self._v[-1])

    def derivative_between(self, t0: float, t1: float) -> float:
        """Average slope over ``[t0, t1]``."""
        if t1 <= t0:
            raise MeasurementError("derivative_between requires t1 > t0")
        return (self(t1) - self(t0)) / (t1 - t0)

    # ------------------------------------------------------------------
    # Transformations (all return new Pwl instances)
    # ------------------------------------------------------------------
    def shifted(self, dt: float | str) -> "Pwl":
        """Translate in time by ``dt`` (seconds or a quantity string)."""
        delta = parse_quantity(dt, unit="s")
        return Pwl(self._t + delta, self._v)

    def scaled(self, gain: float, offset: float = 0.0) -> "Pwl":
        """Return ``gain * v(t) + offset``."""
        return Pwl(self._t, gain * self._v + offset)

    def clipped(self, lo: float, hi: float) -> "Pwl":
        """Clamp values into ``[lo, hi]`` (breakpoints only; adequate for
        rail clamping of simulated waveforms)."""
        if hi < lo:
            raise MeasurementError("clipped() requires hi >= lo")
        return Pwl(self._t, np.clip(self._v, lo, hi))

    def windowed(self, t0: float, t1: float) -> "Pwl":
        """Restrict to ``[t0, t1]``, inserting interpolated endpoints."""
        if t1 <= t0:
            raise MeasurementError("windowed() requires t1 > t0")
        inside = (self._t > t0) & (self._t < t1)
        t = np.concatenate(([t0], self._t[inside], [t1]))
        v = np.concatenate(([self(t0)], self._v[inside], [self(t1)]))
        return Pwl(t, v)

    def resampled(self, times: Sequence[float]) -> "Pwl":
        """Resample onto an explicit strictly-increasing time grid."""
        grid = np.asarray(times, dtype=float)
        return Pwl(grid, self(grid))

    # ------------------------------------------------------------------
    # Crossings
    # ------------------------------------------------------------------
    def crossings(self, level: float, direction: str | None = None) -> list[float]:
        """All times at which the waveform crosses ``level``.

        ``direction`` may be ``"rise"``, ``"fall"`` or ``None`` (both).
        A crossing is detected per linear segment; exact-touch points
        (segment endpoint equal to ``level``) count as crossings when the
        signal actually passes through the level.  Times are returned in
        increasing order.
        """
        from .edges import normalize_direction

        want = None if direction is None else normalize_direction(direction)
        t, v = self._t, self._v
        if t.size < 2:
            return []
        dv = v[1:] - v[:-1]
        lo = v[:-1] - level
        hi = v[1:] - level
        hits: list[float] = []
        rising = (lo < 0.0) & (hi >= 0.0)
        falling = (lo > 0.0) & (hi <= 0.0)
        if want in (None, "rise"):
            for idx in np.nonzero(rising)[0]:
                frac = (level - v[idx]) / dv[idx]
                hits.append(float(t[idx] + frac * (t[idx + 1] - t[idx])))
        if want in (None, "fall"):
            for idx in np.nonzero(falling)[0]:
                frac = (level - v[idx]) / dv[idx]
                hits.append(float(t[idx] + frac * (t[idx + 1] - t[idx])))
        hits.sort()
        return hits

    def first_crossing(self, level: float, direction: str | None = None) -> float:
        """First crossing time, raising :class:`MeasurementError` if none."""
        hits = self.crossings(level, direction)
        if not hits:
            raise MeasurementError(
                f"waveform never crosses {level:.4g} "
                f"({'any direction' if direction is None else direction})"
            )
        return hits[0]

    def last_crossing(self, level: float, direction: str | None = None) -> float:
        """Last crossing time, raising :class:`MeasurementError` if none."""
        hits = self.crossings(level, direction)
        if not hits:
            raise MeasurementError(
                f"waveform never crosses {level:.4g} "
                f"({'any direction' if direction is None else direction})"
            )
        return hits[-1]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def ramp(t_start: float | str, v0: float, v1: float, tau: float | str,
         *, t_end: float | None = None) -> Pwl:
    """A flat-ramp-flat waveform.

    Holds ``v0`` until ``t_start``, ramps linearly to ``v1`` over ``tau``
    seconds, then holds ``v1`` (until ``t_end`` if given, which merely
    appends a final breakpoint for plotting convenience).
    """
    t0 = parse_quantity(t_start, unit="s")
    width = parse_quantity(tau, unit="s")
    if width <= 0.0:
        raise MeasurementError(f"ramp transition time must be positive, got {width}")
    # Constant extrapolation beyond the ends makes the two transition
    # breakpoints sufficient; the flat head/tail are implicit.
    times = [t0, t0 + width]
    values = [v0, v1]
    if t_end is not None:
        end = parse_quantity(t_end, unit="s")
        if end > times[-1]:
            times.append(end)
            values.append(v1)
    return Pwl(times, values)


def step(t_step: float | str, v0: float, v1: float, *, tau: float | str = 1e-13) -> Pwl:
    """A near-ideal step: a ramp with a very small transition time.

    True discontinuities break the strictly-increasing-time invariant, so
    a step is represented by a 0.1 fs ramp -- far below any delay this
    library resolves.
    """
    return ramp(t_step, v0, v1, tau)


def ramp_crossing_at(t_cross: float | str, level: float, *, v0: float, v1: float,
                     tau: float | str, t_end: float | None = None) -> Pwl:
    """A ramp positioned so that it crosses ``level`` exactly at ``t_cross``.

    This is how edges with paper-convention arrival times (measured at
    ``V_il``/``V_ih``) are lowered to concrete stimuli.
    """
    t_at = parse_quantity(t_cross, unit="s")
    width = parse_quantity(tau, unit="s")
    if width <= 0.0:
        raise MeasurementError(f"ramp transition time must be positive, got {width}")
    if (v1 - v0) == 0.0:
        raise MeasurementError("ramp_crossing_at requires v0 != v1")
    frac = (level - v0) / (v1 - v0)
    if not 0.0 <= frac <= 1.0:
        raise MeasurementError(
            f"threshold {level:.4g} lies outside the ramp range [{v0:.4g}, {v1:.4g}]"
        )
    t_start = t_at - frac * width
    return ramp(t_start, v0, v1, width, t_end=t_end)
