"""Piecewise-linear waveforms and timing measurements.

The paper drives gates with piecewise-linear (PWL) inputs "in order to
precisely control the separations and rise times of the inputs"
(Section 5) and measures delays, transition times and separations at the
``V_il`` / ``V_ih`` thresholds selected in Section 2.  This package
provides the :class:`Pwl` waveform type, ramp builders with exact
threshold-crossing placement, and the measurement conventions.
"""

from .pwl import Pwl, ramp, step, ramp_crossing_at
from .edges import Edge, RISE, FALL, opposite, normalize_direction
from .synthesis import edge_to_waveform, events_to_waveform
from .measure import (
    Thresholds,
    timing_threshold,
    crossing_time,
    crossing_times,
    transition_time,
    gate_delay,
    separation,
    extremum_voltage,
)

__all__ = [
    "Pwl",
    "ramp",
    "step",
    "ramp_crossing_at",
    "Edge",
    "RISE",
    "FALL",
    "opposite",
    "normalize_direction",
    "Thresholds",
    "timing_threshold",
    "crossing_time",
    "crossing_times",
    "transition_time",
    "gate_delay",
    "separation",
    "extremum_voltage",
    "edge_to_waveform",
    "events_to_waveform",
]
