"""Timing measurements with the paper's threshold conventions.

Section 2 of the paper fixes the measurement rules this module
implements:

* A transition is **timed at its onset threshold**: ``V_il`` when rising,
  ``V_ih`` when falling.  This single rule covers the paper's three uses:

  - *input threshold* for delay ("V_il (V_ih) for the input threshold ...
    in case of rising (falling) inputs"),
  - *output threshold* for delay ("V_ih (V_il) for the output threshold"
    -- the falling output produced by a rising input is timed at
    ``V_ih``, i.e. its own onset),
  - *separations* ("we measure separation between two inputs by using
    V_ih for falling inputs and V_il for rising inputs").

* **Transition times** are measured between ``V_il`` and ``V_ih``
  ("these two thresholds also provide a logical choice for measuring
  input and output transition times") and, by default, rescaled to an
  equivalent full-swing time so they are commensurable with the
  full-swing ramp times used to specify inputs.

* For a multi-input gate, ``V_il`` is the minimum and ``V_ih`` the
  maximum over the gate's whole VTC family, which guarantees positive
  delay for any input configuration (the paper's central Section-2
  result).  Computing that family lives in :mod:`repro.vtc`; this module
  only consumes the resulting :class:`Thresholds`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MeasurementError
from ..units import parse_quantity
from .edges import FALL, RISE, normalize_direction
from .pwl import Pwl

__all__ = [
    "Thresholds",
    "timing_threshold",
    "crossing_time",
    "crossing_times",
    "transition_time",
    "gate_delay",
    "separation",
    "extremum_voltage",
]


@dataclass(frozen=True)
class Thresholds:
    """The measurement thresholds of a gate.

    ``vil`` and ``vih`` are the delay-measurement thresholds chosen by
    the Section-2 rule (min ``V_il`` / max ``V_ih`` over the VTC family);
    ``vdd`` is the supply.  ``vm`` optionally records a representative
    switching threshold for diagnostics.
    """

    vil: float
    vih: float
    vdd: float
    vm: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.vil < self.vih < self.vdd:
            raise MeasurementError(
                f"thresholds must satisfy 0 < vil < vih < vdd, got "
                f"vil={self.vil}, vih={self.vih}, vdd={self.vdd}"
            )
        if self.vm is not None and not self.vil <= self.vm <= self.vih:
            raise MeasurementError(
                f"vm={self.vm} must lie within [vil, vih]=[{self.vil}, {self.vih}]"
            )

    @property
    def swing(self) -> float:
        """The measured swing ``vih - vil``."""
        return self.vih - self.vil

    def full_swing_factor(self) -> float:
        """Multiplier converting a vil->vih time into a full-swing time."""
        return self.vdd / self.swing

    def describe(self) -> str:
        vm = "" if self.vm is None else f", vm={self.vm:.3g}V"
        return f"Thresholds(vil={self.vil:.3g}V, vih={self.vih:.3g}V{vm}, vdd={self.vdd:.3g}V)"


def timing_threshold(direction: str, thresholds: Thresholds) -> float:
    """The onset threshold for a transition: ``vil`` rising, ``vih`` falling."""
    return thresholds.vil if normalize_direction(direction) == RISE else thresholds.vih


def crossing_times(waveform: Pwl, level: float, direction: str | None = None) -> list[float]:
    """All crossing times of ``level`` (thin wrapper over :meth:`Pwl.crossings`)."""
    return waveform.crossings(level, direction)


def crossing_time(waveform: Pwl, level: float, direction: str | None = None,
                  occurrence: str = "first") -> float:
    """A single crossing time; ``occurrence`` is ``"first"`` or ``"last"``."""
    if occurrence == "first":
        return waveform.first_crossing(level, direction)
    if occurrence == "last":
        return waveform.last_crossing(level, direction)
    raise MeasurementError(f"occurrence must be 'first' or 'last', got {occurrence!r}")


def transition_time(waveform: Pwl, direction: str, thresholds: Thresholds,
                    *, scale_to_full_swing: bool = True,
                    occurrence: str = "last") -> float:
    """Transition time between ``vil`` and ``vih``.

    For a rising transition this is the time from the *last* upward
    ``vil`` crossing's matching segment to the subsequent ``vih``
    crossing (``occurrence="last"`` tolerates glitches before the final
    transition; pass ``"first"`` to measure the first excursion).

    With ``scale_to_full_swing=True`` (default) the vil->vih time is
    multiplied by ``vdd / (vih - vil)`` so that it is directly comparable
    to the full-swing ramp times used for inputs.
    """
    direction = normalize_direction(direction)
    if direction == RISE:
        t_lo_hits = waveform.crossings(thresholds.vil, RISE)
        if not t_lo_hits:
            raise MeasurementError("no rising vil crossing: transition never started")
        t_lo = t_lo_hits[-1] if occurrence == "last" else t_lo_hits[0]
        hi_hits = [t for t in waveform.crossings(thresholds.vih, RISE) if t >= t_lo]
        if not hi_hits:
            raise MeasurementError("rising transition never reached vih (incomplete)")
        t_hi = hi_hits[0]
        span = t_hi - t_lo
    else:
        t_hi_hits = waveform.crossings(thresholds.vih, FALL)
        if not t_hi_hits:
            raise MeasurementError("no falling vih crossing: transition never started")
        t_hi = t_hi_hits[-1] if occurrence == "last" else t_hi_hits[0]
        lo_hits = [t for t in waveform.crossings(thresholds.vil, FALL) if t >= t_hi]
        if not lo_hits:
            raise MeasurementError("falling transition never reached vil (incomplete)")
        t_lo = lo_hits[0]
        span = t_lo - t_hi
    if scale_to_full_swing:
        span *= thresholds.full_swing_factor()
    return span


def gate_delay(input_wf: Pwl, input_direction: str,
               output_wf: Pwl, output_direction: str,
               thresholds: Thresholds, *,
               input_occurrence: str = "first",
               output_occurrence: str = "last") -> float:
    """Propagation delay under the paper's convention.

    The input is timed at its onset threshold; the output is timed at its
    own onset threshold (``V_ih`` when falling, ``V_il`` when rising),
    which is the paper's "V_ih (V_il) for the output threshold in case of
    rising (falling) inputs" rule.  ``output_occurrence="last"`` measures
    the final, completed transition (robust to proximity glitches).
    """
    in_level = timing_threshold(input_direction, thresholds)
    out_level = timing_threshold(output_direction, thresholds)
    t_in = crossing_time(input_wf, in_level, input_direction, input_occurrence)
    t_out = crossing_time(output_wf, out_level, output_direction, output_occurrence)
    return t_out - t_in


def separation(first_wf: Pwl, first_direction: str,
               second_wf: Pwl, second_direction: str,
               thresholds: Thresholds) -> float:
    """Separation ``s_12`` between two input transitions.

    Each input is timed at its onset threshold; positive means the second
    input switches later (matching ``s_ij`` measured from input *i*).
    """
    t1 = crossing_time(first_wf, timing_threshold(first_direction, thresholds),
                       first_direction, "first")
    t2 = crossing_time(second_wf, timing_threshold(second_direction, thresholds),
                       second_direction, "first")
    return t2 - t1


def extremum_voltage(waveform: Pwl, *, kind: str, t0: float | str | None = None,
                     t1: float | str | None = None) -> float:
    """Minimum or maximum voltage, optionally restricted to a window.

    Section 6 of the paper models the *minimum output voltage* of a glitch
    as a function of input separation; this helper performs that
    measurement on simulated waveforms.
    """
    wf = waveform
    if t0 is not None or t1 is not None:
        start = waveform.t_start if t0 is None else parse_quantity(t0, unit="s")
        end = waveform.t_end if t1 is None else parse_quantity(t1, unit="s")
        wf = waveform.windowed(start, end)
    if kind == "min":
        return wf.min()
    if kind == "max":
        return wf.max()
    raise MeasurementError(f"kind must be 'min' or 'max', got {kind!r}")
