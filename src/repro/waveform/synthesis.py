"""Synthesizing concrete output waveforms from timing quantities.

The macromodels produce two numbers per transition -- delay and output
transition time.  For plotting, for chaining into measurement code, or
for handing to an external tool, it is often useful to lower those back
into a concrete waveform.  :func:`edge_to_waveform` builds the
saturated-ramp approximation of a single transition;
:func:`events_to_waveform` stitches a whole
:class:`~repro.timing.eventsim.NetWaveform`-style edge train into one
PWL, which is also how the event simulator's results become plottable.
"""

from __future__ import annotations

from typing import Optional, Sequence


from ..errors import MeasurementError
from .edges import Edge, FALL
from .measure import Thresholds
from .pwl import Pwl

__all__ = ["edge_to_waveform", "events_to_waveform"]


def edge_to_waveform(edge: Edge, thresholds: Thresholds, *,
                     t_end: Optional[float] = None) -> Pwl:
    """The saturated-ramp waveform of one edge (full swing, linear).

    This is exactly :meth:`repro.waveform.Edge.to_pwl`, re-exported here
    for symmetry with :func:`events_to_waveform`.
    """
    return edge.to_pwl(thresholds, t_end=t_end)


def events_to_waveform(initial_high: bool, edges: Sequence[Edge],
                       thresholds: Thresholds, *,
                       t_start: Optional[float] = None,
                       t_end: Optional[float] = None) -> Pwl:
    """Stitch an alternating edge train into one PWL waveform.

    Each edge becomes a linear ramp positioned by its onset-threshold
    crossing (the library's timing convention); overlapping consecutive
    ramps are resolved by clipping the earlier ramp at the point where
    the next one takes over (a saturated-ramp approximation of a runt).

    Raises :class:`~repro.errors.MeasurementError` if the edges are not
    time-ordered or do not alternate with the initial level.
    """
    vdd = thresholds.vdd
    level = initial_high
    prev_t = float("-inf")
    start_v = vdd if initial_high else 0.0
    if not edges:
        t0 = 0.0 if t_start is None else t_start
        t1 = t0 + 1e-12 if t_end is None else max(t_end, t0 + 1e-12)
        return Pwl([t0, t1], [start_v, start_v])

    # Each ramp as (t0, t1, v0, v1); validate ordering/alternation.
    ramps: list[tuple[float, float, float, float]] = []
    for edge in edges:
        expected = FALL if level else "rise"
        if edge.direction != expected:
            raise MeasurementError(
                f"edge at {edge.t_cross:g}s does not alternate with the "
                f"running level"
            )
        if edge.t_cross <= prev_t:
            raise MeasurementError("edges must be strictly time-ordered")
        pwl = edge.to_pwl(thresholds)
        ramps.append((float(pwl.times[0]), float(pwl.times[-1]),
                      float(pwl.values[0]), float(pwl.values[-1])))
        prev_t = edge.t_cross
        level = not level

    times: list[float] = [ramps[0][0], ramps[0][1]]
    values: list[float] = [ramps[0][2], ramps[0][3]]
    for t0, t1, v0, v1 in ramps[1:]:
        if t0 > times[-1]:
            times.extend((t0, t1))
            values.extend((v0, v1))
            continue
        # Overlap: the new ramp starts before the previous one finished.
        # Follow the previous ramp's line until it meets the new ramp's
        # line (the saturated-runt crossover), then follow the new ramp.
        pt0, pt1 = times[-2], times[-1]
        pv0, pv1 = values[-2], values[-1]
        prev_slope = (pv1 - pv0) / (pt1 - pt0)
        new_slope = (v1 - v0) / (t1 - t0)
        denominator = prev_slope - new_slope
        if denominator == 0.0:
            t_x = t0
        else:
            # v_prev(t) = pv0 + prev_slope (t - pt0);
            # v_new(t)  = v0 + new_slope (t - t0).
            t_x = (v0 - pv0 + prev_slope * pt0 - new_slope * t0) / denominator
        t_x = min(max(t_x, max(pt0, t0)), min(pt1, t1))
        v_x = pv0 + prev_slope * (t_x - pt0)
        # Truncate the previous ramp at the crossover.
        times[-1] = t_x
        values[-1] = v_x
        if t1 > t_x:
            times.append(t1)
            values.append(v1)

    # De-duplicate any coincident breakpoints introduced by truncation.
    clean_t: list[float] = []
    clean_v: list[float] = []
    for t, v in zip(times, values):
        if clean_t and t <= clean_t[-1]:
            t = clean_t[-1] + 1e-16
        clean_t.append(t)
        clean_v.append(v)

    if t_start is not None and t_start < clean_t[0]:
        clean_t.insert(0, t_start)
        clean_v.insert(0, start_v)
    if t_end is not None and t_end > clean_t[-1]:
        clean_t.append(t_end)
        clean_v.append(clean_v[-1])
    return Pwl(clean_t, clean_v)
