"""Built-in process presets.

``default_process()`` is a synthetic 0.8 um-class CMOS process chosen to
land in the same regime as the paper's testbed: Vdd = 5 V, |Vt| around
0.7-0.8 V, NMOS roughly 2.5x stronger than PMOS per width, gate delays of
tens to hundreds of picoseconds into a 100 fF load.  The exact numbers do
not matter for reproduction (the paper's own numbers are unpublished);
what matters is that V_il / V_ih / V_m of the resulting VTCs sit in the
same range as the paper's Figure 2-1(c) table.
"""

from __future__ import annotations

from .process import MosfetParams, Process, Sizing

__all__ = ["default_process", "fast_process", "slow_process", "submicron_process", "PROCESSES"]


def default_process() -> Process:
    """The 0.8 um-like process used by all paper-reproduction experiments."""
    nmos = MosfetParams(
        polarity="nmos",
        vt0=0.7,
        kp=60e-6,        # mu_n * Cox  [A/V^2]
        lam=0.05,
        cgs_per_width=0.35e-9,   # F/m  (~0.35 fF/um)
        cgd_per_width=0.25e-9,
        cj_per_width=0.6e-9,
    )
    pmos = MosfetParams(
        polarity="pmos",
        vt0=-0.8,
        kp=25e-6,        # mu_p * Cox
        lam=0.06,
        cgs_per_width=0.35e-9,
        cgd_per_width=0.25e-9,
        cj_per_width=0.6e-9,
    )
    # Reference inverter: 4 um NMOS, 8 um PMOS, 0.8 um channels.
    sizing = Sizing(wn=4e-6, wp=8e-6, length=0.8e-6)
    return Process(name="generic-0.8um", vdd=5.0, nmos=nmos, pmos=pmos, sizing=sizing)


def fast_process() -> Process:
    """A smaller/faster synthetic process (0.35 um-like, 3.3 V).

    Used by tests to show the macromodels are not tied to one process.
    """
    nmos = MosfetParams(
        polarity="nmos",
        vt0=0.55,
        kp=170e-6,
        lam=0.08,
        cgs_per_width=0.4e-9,
        cgd_per_width=0.3e-9,
        cj_per_width=0.7e-9,
    )
    pmos = MosfetParams(
        polarity="pmos",
        vt0=-0.6,
        kp=60e-6,
        lam=0.1,
        cgs_per_width=0.4e-9,
        cgd_per_width=0.3e-9,
        cj_per_width=0.7e-9,
    )
    sizing = Sizing(wn=2e-6, wp=5e-6, length=0.35e-6)
    return Process(name="generic-0.35um", vdd=3.3, nmos=nmos, pmos=pmos, sizing=sizing)


def slow_process() -> Process:
    """A long-channel, high-voltage process (2 um-like, 5 V) for contrast."""
    nmos = MosfetParams(
        polarity="nmos",
        vt0=0.9,
        kp=40e-6,
        lam=0.02,
        cgs_per_width=0.5e-9,
        cgd_per_width=0.35e-9,
        cj_per_width=0.9e-9,
    )
    pmos = MosfetParams(
        polarity="pmos",
        vt0=-0.9,
        kp=15e-6,
        lam=0.03,
        cgs_per_width=0.5e-9,
        cgd_per_width=0.35e-9,
        cj_per_width=0.9e-9,
    )
    sizing = Sizing(wn=6e-6, wp=14e-6, length=2e-6)
    return Process(name="generic-2um", vdd=5.0, nmos=nmos, pmos=pmos, sizing=sizing)


def submicron_process() -> Process:
    """A velocity-saturated process using the alpha-power-law model.

    Same geometry/supply regime as :func:`fast_process` but with the
    Sakurai-Newton channel model at alpha = 1.3 -- the model the paper's
    reference [14] proposes for short channels.  Used to show the
    proximity machinery is not tied to the square-law device.
    """
    nmos = MosfetParams(
        polarity="nmos",
        vt0=0.55,
        kp=170e-6,
        lam=0.08,
        cgs_per_width=0.4e-9,
        cgd_per_width=0.3e-9,
        cj_per_width=0.7e-9,
        model="alpha",
        alpha=1.3,
    )
    pmos = MosfetParams(
        polarity="pmos",
        vt0=-0.6,
        kp=60e-6,
        lam=0.1,
        cgs_per_width=0.4e-9,
        cgd_per_width=0.3e-9,
        cj_per_width=0.7e-9,
        model="alpha",
        alpha=1.4,
    )
    sizing = Sizing(wn=2e-6, wp=5e-6, length=0.35e-6)
    return Process(name="alpha-0.35um", vdd=3.3, nmos=nmos, pmos=pmos,
                   sizing=sizing)


#: Registry used by the CLI (`repro ... --process NAME`).
PROCESSES = {
    "default": default_process,
    "generic-0.8um": default_process,
    "fast": fast_process,
    "generic-0.35um": fast_process,
    "slow": slow_process,
    "generic-2um": slow_process,
    "submicron": submicron_process,
    "alpha-0.35um": submicron_process,
}
