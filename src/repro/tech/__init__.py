"""Technology description: process parameters and device geometries.

The paper characterizes a 3-input CMOS NAND gate in a 0.8 um-class
process simulated with HSPICE.  We describe the process with Level-1
(Shichman-Hodges) parameters, which capture every effect the paper's
models depend on: drive-strength ratios, threshold voltages, series-stack
resistance and parasitic capacitance.
"""

from .process import MosfetParams, Process, Sizing
from .presets import default_process, fast_process, submicron_process, PROCESSES

__all__ = [
    "MosfetParams",
    "Process",
    "Sizing",
    "default_process",
    "fast_process",
    "submicron_process",
    "PROCESSES",
]
