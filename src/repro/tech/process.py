"""Process and device-parameter dataclasses.

The transistor *strength* used throughout the paper is

    K = (1/2) * mu * Cox * (W / L)                                 [A/V^2]

(footnote 1 of the paper).  :class:`MosfetParams` carries the per-unit
process numbers (``kp = mu * Cox``); :meth:`MosfetParams.strength`
computes K for a given geometry.  :class:`Process` bundles NMOS and PMOS
parameters with the supply voltage and default geometries, and is the
single object the rest of the library passes around.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import NetlistError
from ..units import parse_quantity

__all__ = ["MosfetParams", "Sizing", "Process"]


@dataclass(frozen=True)
class MosfetParams:
    """MOSFET model card: Level-1 or alpha-power law.

    Parameters
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    vt0:
        Zero-bias threshold voltage in volts.  Positive for NMOS,
        negative for PMOS (SPICE convention).
    kp:
        Transconductance parameter ``mu * Cox`` in A/V^2.
    lam:
        Channel-length modulation coefficient (1/V).
    cgs_per_width / cgd_per_width:
        Gate-source and gate-drain overlap capacitance per metre of
        channel width (F/m).  The gate-drain term produces the Miller
        coupling responsible for the small output bumps visible in
        simulated proximity waveforms.
    cj_per_width:
        Lumped source/drain junction capacitance per metre of width
        (F/m), treated as bias-independent.
    model:
        ``"level1"`` (Shichman-Hodges square law, the default) or
        ``"alpha"`` (Sakurai-Newton alpha-power law, the paper's
        reference [14], for velocity-saturated short channels).
    alpha:
        Velocity-saturation index for ``model="alpha"``; 2.0 reproduces
        the square law exactly, ~1.3 is typical for submicron devices.
    """

    polarity: str
    vt0: float
    kp: float
    lam: float = 0.0
    cgs_per_width: float = 0.0
    cgd_per_width: float = 0.0
    cj_per_width: float = 0.0
    model: str = "level1"
    alpha: float = 2.0

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise NetlistError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")
        if self.kp <= 0.0:
            raise NetlistError(f"kp must be positive, got {self.kp}")
        if self.polarity == "nmos" and self.vt0 <= 0.0:
            raise NetlistError(f"NMOS vt0 must be positive, got {self.vt0}")
        if self.polarity == "pmos" and self.vt0 >= 0.0:
            raise NetlistError(f"PMOS vt0 must be negative, got {self.vt0}")
        if self.lam < 0.0:
            raise NetlistError(f"lambda must be non-negative, got {self.lam}")
        if self.model not in ("level1", "alpha"):
            raise NetlistError(f"model must be 'level1' or 'alpha', got {self.model!r}")
        if not 1.0 <= self.alpha <= 2.0:
            raise NetlistError(f"alpha must lie in [1, 2], got {self.alpha}")

    @property
    def is_nmos(self) -> bool:
        return self.polarity == "nmos"

    def strength(self, width: float, length: float) -> float:
        """Paper-convention strength ``K = kp/2 * W/L`` in A/V^2."""
        if width <= 0.0 or length <= 0.0:
            raise NetlistError(
                f"transistor geometry must be positive (W={width}, L={length})"
            )
        return 0.5 * self.kp * width / length


@dataclass(frozen=True)
class Sizing:
    """Default transistor geometry for a gate family.

    Widths/lengths are metres.  ``wn``/``wp`` are the widths of NMOS and
    PMOS devices in a *reference inverter*; gate builders may scale them
    (e.g. widen series NMOS stacks).
    """

    wn: float
    wp: float
    length: float

    def __post_init__(self) -> None:
        for name in ("wn", "wp", "length"):
            if getattr(self, name) <= 0.0:
                raise NetlistError(f"Sizing.{name} must be positive")

    def scaled(self, n_factor: float = 1.0, p_factor: float = 1.0) -> "Sizing":
        """Return a copy with NMOS/PMOS widths multiplied by the factors."""
        if n_factor <= 0.0 or p_factor <= 0.0:
            raise NetlistError("sizing scale factors must be positive")
        return replace(self, wn=self.wn * n_factor, wp=self.wp * p_factor)


@dataclass(frozen=True)
class Process:
    """A complete technology description.

    Attributes
    ----------
    name:
        Human-readable process name, used in cache keys.
    vdd:
        Supply voltage (V).
    nmos / pmos:
        Level-1 model cards.
    sizing:
        Default reference-inverter geometry.
    temperature:
        Informational only (the Level-1 card is pre-baked at temperature).
    """

    name: str
    vdd: float
    nmos: MosfetParams
    pmos: MosfetParams
    sizing: Sizing
    temperature: float = 300.0

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise NetlistError(f"vdd must be positive, got {self.vdd}")
        if not self.nmos.is_nmos:
            raise NetlistError("Process.nmos must be an NMOS model card")
        if self.pmos.is_nmos:
            raise NetlistError("Process.pmos must be a PMOS model card")
        if self.nmos.vt0 >= self.vdd:
            raise NetlistError("NMOS threshold above the supply: gate can never turn on")
        if -self.pmos.vt0 >= self.vdd:
            raise NetlistError("PMOS threshold magnitude above the supply")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def kn(self, width: float | None = None, length: float | None = None) -> float:
        """NMOS strength K_n for the given (default) geometry."""
        return self.nmos.strength(width or self.sizing.wn, length or self.sizing.length)

    def kp_strength(self, width: float | None = None, length: float | None = None) -> float:
        """PMOS strength K_p for the given (default) geometry."""
        return self.pmos.strength(width or self.sizing.wp, length or self.sizing.length)

    def beta_ratio(self) -> float:
        """Pull-up to pull-down strength ratio K_p / K_n of the reference inverter."""
        return self.kp_strength() / self.kn()

    def cache_key(self) -> Dict[str, float | str]:
        """Stable scalar mapping identifying this process for cache hashing."""
        return {
            "name": self.name,
            "vdd": self.vdd,
            "n_vt0": self.nmos.vt0,
            "n_kp": self.nmos.kp,
            "n_lam": self.nmos.lam,
            "n_model": self.nmos.model,
            "n_alpha": self.nmos.alpha,
            "n_cgs": self.nmos.cgs_per_width,
            "n_cgd": self.nmos.cgd_per_width,
            "n_cj": self.nmos.cj_per_width,
            "p_vt0": self.pmos.vt0,
            "p_kp": self.pmos.kp,
            "p_lam": self.pmos.lam,
            "p_model": self.pmos.model,
            "p_alpha": self.pmos.alpha,
            "p_cgs": self.pmos.cgs_per_width,
            "p_cgd": self.pmos.cgd_per_width,
            "p_cj": self.pmos.cj_per_width,
            "wn": self.sizing.wn,
            "wp": self.sizing.wp,
            "length": self.sizing.length,
        }

    def with_vdd(self, vdd: float | str) -> "Process":
        """Return a copy of the process at a different supply voltage."""
        return replace(self, vdd=parse_quantity(vdd, unit="V"))
