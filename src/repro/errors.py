"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the major failure classes:

* :class:`UnitError` -- malformed engineering-notation quantities.
* :class:`NetlistError` -- ill-formed circuit descriptions.
* :class:`ConvergenceError` -- Newton / transient solver failures.
* :class:`MeasurementError` -- a waveform never crosses a requested
  threshold, a transition is incomplete, etc.
* :class:`CharacterizationError` -- macromodel construction failures
  (empty grids, non-monotonic sweeps, cache corruption).
* :class:`ModelError` -- macromodel evaluation outside its valid region.
* :class:`TimingError` -- gate-level timing graph problems (combinational
  cycles, dangling pins).
* :class:`TaskError` -- a parallel task was lost to a crash or timeout
  (raised only in ``on_error="raise"`` mode, see :mod:`repro.parallel`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnitError(ReproError, ValueError):
    """A quantity string could not be parsed or formatted."""


class NetlistError(ReproError, ValueError):
    """A circuit description is structurally invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """A nonlinear or transient solve failed to converge.

    Attributes
    ----------
    iterations:
        Number of Newton iterations performed before giving up, when
        applicable (``None`` otherwise).
    residual:
        Final residual norm, when applicable.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual

    def __reduce__(self):
        """Preserve the diagnostic attributes across pickling.

        The default exception reduction re-invokes ``__init__`` with
        ``args`` only, which silently drops the keyword-only
        ``iterations``/``residual`` payload whenever the error crosses a
        process-pool boundary.  Ship them as explicit state instead.
        """
        state = {"iterations": self.iterations, "residual": self.residual}
        return (self.__class__, self.args, state)


class MeasurementError(ReproError, ValueError):
    """A waveform measurement (crossing, delay, transition time) failed."""


class CharacterizationError(ReproError, RuntimeError):
    """Macromodel characterization could not be completed."""


class ModelError(ReproError, ValueError):
    """A macromodel was evaluated with invalid or out-of-domain arguments."""


class TimingError(ReproError, ValueError):
    """A gate-level timing analysis problem (cycles, unknown nets...)."""


class TaskError(ReproError, RuntimeError):
    """A parallel task was lost to a worker crash or a task timeout.

    Raised by :func:`repro.parallel.parallel_map` in ``on_error="raise"``
    mode when a task has no ordinary exception to propagate: the worker
    process died (repeatedly, past the bounded resubmission budget) or
    the task exceeded its per-task timeout.  In ``on_error="collect"``
    mode the same condition is reported as a
    :class:`~repro.parallel.TaskFailure` record instead.
    """
