"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the major failure classes:

* :class:`UnitError` -- malformed engineering-notation quantities.
* :class:`NetlistError` -- ill-formed circuit descriptions.
* :class:`ConvergenceError` -- Newton / transient solver failures.
* :class:`MeasurementError` -- a waveform never crosses a requested
  threshold, a transition is incomplete, etc.
* :class:`CharacterizationError` -- macromodel construction failures
  (empty grids, non-monotonic sweeps, cache corruption).
* :class:`ModelError` -- macromodel evaluation outside its valid region.
* :class:`TimingError` -- gate-level timing graph problems (combinational
  cycles, dangling pins).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnitError(ReproError, ValueError):
    """A quantity string could not be parsed or formatted."""


class NetlistError(ReproError, ValueError):
    """A circuit description is structurally invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """A nonlinear or transient solve failed to converge.

    Attributes
    ----------
    iterations:
        Number of Newton iterations performed before giving up, when
        applicable (``None`` otherwise).
    residual:
        Final residual norm, when applicable.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class MeasurementError(ReproError, ValueError):
    """A waveform measurement (crossing, delay, transition time) failed."""


class CharacterizationError(ReproError, RuntimeError):
    """Macromodel characterization could not be completed."""


class ModelError(ReproError, ValueError):
    """A macromodel was evaluated with invalid or out-of-domain arguments."""


class TimingError(ReproError, ValueError):
    """A gate-level timing analysis problem (cycles, unknown nets...)."""
