"""High-level delay calculation: :class:`DelayCalculator`.

This is the class a downstream timing tool instantiates per gate: it
owns a characterized :class:`~repro.charlib.GateLibrary`, calibrates the
Section-4 corrective term lazily (one all-inputs fast-step simulation
per direction), and exposes delay / output transition time for
arbitrary multi-input switching configurations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..charlib.library import GateLibrary
from ..charlib.simulate import multi_input_response
from ..errors import ModelError
from ..units import parse_quantity
from ..waveform import Edge
from .algorithm import CorrectionPolicy, ProximityResult, proximity_delay
from .dominance import order_by_dominance

__all__ = ["DelayCalculator"]


class DelayCalculator:
    """Proximity-aware delay and transition-time calculation for a gate.

    Parameters
    ----------
    library:
        A characterized :class:`~repro.charlib.GateLibrary` (table or
        oracle mode).
    correction:
        The Section-4 corrective-term policy.
    step_tau:
        Transition time standing in for the paper's "step signal" when
        calibrating the corrective bound.  Defaults to 50 ps, the
        fastest input of the paper's validation sweep (and the fastest
        edge the macromodel grids cover).
    stop_at_first_outside:
        Figure 4-1 loop semantics; see
        :func:`~repro.core.algorithm.proximity_delay`.
    ttime_composition:
        Transition-time composition law, ``"harmonic"`` (default) or
        ``"additive"``; see :mod:`repro.core.algorithm`.
    """

    def __init__(self, library: GateLibrary, *,
                 correction: CorrectionPolicy | str = CorrectionPolicy.PAPER,
                 step_tau: float | str = 50e-12,
                 stop_at_first_outside: bool = True,
                 ttime_composition: str = "harmonic",
                 ordering: str = "dominance") -> None:
        self.library = library
        self.correction = CorrectionPolicy(correction)
        self.step_tau = parse_quantity(step_tau, unit="s")
        self.stop_at_first_outside = stop_at_first_outside
        self.ttime_composition = ttime_composition
        self.ordering = ordering
        self._step_error_memo: Dict[Tuple[str, int], Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Single-input conveniences
    # ------------------------------------------------------------------
    @property
    def gate(self):
        return self.library.gate

    @property
    def thresholds(self):
        return self.library.thresholds

    def single_delay(self, input_name: str, direction: str, tau: float | str,
                     *, load: Optional[float] = None) -> float:
        """``Delta^(1)`` of one pin (seconds)."""
        tau_s = parse_quantity(tau, unit="s")
        return self.library.single(input_name, direction).delay(tau_s, load)

    def single_ttime(self, input_name: str, direction: str, tau: float | str,
                     *, load: Optional[float] = None) -> float:
        """``tau^(1)`` of one pin (seconds, full swing)."""
        tau_s = parse_quantity(tau, unit="s")
        return self.library.single(input_name, direction).ttime(tau_s, load)

    # ------------------------------------------------------------------
    # The proximity calculation
    # ------------------------------------------------------------------
    def _response_maps(self, edges: Mapping[str, Edge],
                       load: Optional[float]) -> Tuple[Dict[str, float], Dict[str, float]]:
        delta1, tau1 = {}, {}
        for name, edge in edges.items():
            model = self.library.single(name, edge.direction)
            delta1[name] = model.delay(edge.tau, load)
            tau1[name] = model.ttime(edge.tau, load)
        return delta1, tau1

    def explain(self, edges: Mapping[str, Edge], *,
                load: Optional[float] = None) -> ProximityResult:
        """Full :class:`~repro.core.algorithm.ProximityResult` for a
        switching configuration (delay, ttime, dominance order, folded
        steps, corrections)."""
        if not edges:
            raise ModelError("explain() needs at least one switching edge")
        for name in edges:
            if name not in self.gate.inputs:
                raise ModelError(f"{name!r} is not an input of {self.gate.name!r}")
        delta1, tau1 = self._response_maps(edges, load)
        direction = next(iter(edges.values())).direction
        step_error = (0.0, 0.0)
        if self.correction is not CorrectionPolicy.OFF and len(edges) >= 2:
            step_error = self.step_error(direction, load=load)
        return proximity_delay(
            edges, delta1, tau1, self.library.dual,
            step_error=step_error,
            total_inputs=self.gate.n_inputs,
            correction=self.correction,
            stop_at_first_outside=self.stop_at_first_outside,
            ttime_composition=self.ttime_composition,
            ordering=self.ordering,
            load=load,
        )

    def delay(self, edges: Mapping[str, Edge], *,
              load: Optional[float] = None) -> float:
        """Proximity-aware delay (seconds, from the dominant input)."""
        return self.explain(edges, load=load).delay

    def ttime(self, edges: Mapping[str, Edge], *,
              load: Optional[float] = None) -> float:
        """Proximity-aware output transition time (seconds, full swing)."""
        return self.explain(edges, load=load).ttime

    def output_crossing_time(self, edges: Mapping[str, Edge], *,
                             load: Optional[float] = None) -> float:
        """Absolute time the output crosses its delay threshold."""
        result = self.explain(edges, load=load)
        return edges[result.reference].t_cross + result.delay

    # ------------------------------------------------------------------
    # Corrective-term calibration
    # ------------------------------------------------------------------
    def step_error(self, direction: str, *,
                   load: Optional[float] = None) -> Tuple[float, float]:
        """(algorithm - simulation) on the all-inputs simultaneous step.

        The paper: "We recorded the absolute difference between the
        delay value computed by our method and the actual delay value,
        when a step signal is applied to all the inputs at the same
        time."  We keep the sign so the correction also fixes
        under-estimates.  Memoized per (direction, load).
        """
        cl = self.gate.load if load is None else float(load)
        memo_key = (direction, round(cl * 1e18))
        if memo_key in self._step_error_memo:
            return self._step_error_memo[memo_key]

        edges = {
            name: Edge(direction, 0.0, self.step_tau)
            for name in self.gate.inputs
        }
        delta1, tau1 = self._response_maps(edges, load)
        raw = proximity_delay(
            edges, delta1, tau1, self.library.dual,
            correction=CorrectionPolicy.OFF,
            stop_at_first_outside=self.stop_at_first_outside,
            ttime_composition=self.ttime_composition,
            ordering=self.ordering,
            load=load,
        )
        reference = order_by_dominance(edges, delta1)[0]
        shot = multi_input_response(
            self.gate, edges, self.thresholds, reference=reference, load=cl,
        )
        error = (raw.raw_delay - shot.delay, raw.raw_ttime - shot.out_ttime)
        self._step_error_memo[memo_key] = error
        return error
