"""The paper's primary contribution: the proximity delay calculator.

* :mod:`~repro.core.dominance` -- identifying the dominant input
  (Section 3, Figure 3-2) and ordering inputs by dominance.
* :mod:`~repro.core.algorithm` -- the ``ProximityDelay`` composition
  algorithm (Section 4, Figure 4-1) for delay and output transition
  time, including the equivalent-waveform shift and the linear
  corrective term.
* :mod:`~repro.core.api` -- :class:`~repro.core.api.DelayCalculator`,
  the high-level entry point tying a characterized
  :class:`~repro.charlib.GateLibrary` to the algorithm.
"""

from .dominance import alone_crossing, order_by_dominance, dominance_crossover
from .algorithm import (
    CorrectionPolicy,
    ProximityResult,
    ProximityStep,
    proximity_delay,
)
from .api import DelayCalculator

__all__ = [
    "alone_crossing",
    "order_by_dominance",
    "dominance_crossover",
    "CorrectionPolicy",
    "ProximityResult",
    "ProximityStep",
    "proximity_delay",
    "DelayCalculator",
]
