"""Dominant-input identification (paper Section 3, Figure 3-2).

The dominant input is *not* the one that switches first: it is the input
whose **single-input output response crosses the delay threshold
first**.  In the paper's figure, input *a* (slow, early) loses dominance
to input *b* (fast, late) because ``z_b`` reaches ``V_il`` before
``z_a`` does; the crossover happens at separation
``s_ab = Delta_a^(1) - Delta_b^(1)``.

With arrival times measured at the paper's onset thresholds, the
"alone-output crossing" of input *x* is simply ``t_x + Delta_x^(1)``,
and dominance ordering is ascending order of that quantity.  This also
encodes the series-stack position automatically, since ``Delta^(1)``
differs per pin.
"""

from __future__ import annotations

from typing import List, Mapping

from ..errors import ModelError
from ..waveform import Edge

__all__ = ["alone_crossing", "order_by_dominance", "dominance_crossover"]


def alone_crossing(edge: Edge, delta1: float) -> float:
    """When the output would cross the delay threshold if this input
    switched alone: ``t_cross + Delta^(1)``."""
    return edge.t_cross + delta1


def order_by_dominance(edges: Mapping[str, Edge],
                       delta1: Mapping[str, float]) -> List[str]:
    """Input names ordered most-dominant first.

    This realizes Step 1 of the paper's algorithm: relabel inputs
    ``y_1..y_n`` such that ``i < j`` iff ``s_{y_i y_j} >
    Delta_{y_i}^(1) - Delta_{y_j}^(1)`` -- equivalently, ascending
    alone-output crossing times ``t + Delta^(1)``.  Ties break toward
    the earlier-arriving input, then lexicographically, so the ordering
    is deterministic (the paper notes that with identical simultaneous
    inputs "our algorithm will identify one of the inputs as the
    dominant one and proceed").
    """
    if not edges:
        raise ModelError("order_by_dominance needs at least one edge")
    missing = [name for name in edges if name not in delta1]
    if missing:
        raise ModelError(f"missing single-input delays for {missing!r}")
    return sorted(
        edges,
        key=lambda name: (
            alone_crossing(edges[name], delta1[name]),
            edges[name].t_cross,
            name,
        ),
    )


def dominance_crossover(delta1_first: float, delta1_second: float) -> float:
    """The separation at which dominance flips back to the earlier input.

    For inputs *a* (arrives first) and *b*: *b* dominates while
    ``s_ab < Delta_a^(1) - Delta_b^(1)``; at larger separations *a* is
    dominant.  This is the discontinuity location visible in the paper's
    Figure 3-3.
    """
    return delta1_first - delta1_second
