"""The ``ProximityDelay`` algorithm (paper Section 4, Figure 4-1).

Inputs are folded in one at a time, most dominant first.  At iteration
*i* the cumulative effect of ``y_1..y_{i-1}`` is represented by the
*equivalent waveform* ``y*`` -- a copy of ``y_1`` shifted so its alone
output crossing lands at the cumulative delay (eq. 4.3):

    y*(t) = y_1(t + Delta1 - Delta_cum)

so the separation seen by the dual-input model is

    s* = s_{y1,yi} + Delta1 - Delta_cum

and, re-referencing eq. 4.4 back to ``y_1`` (eq. 4.5):

    Delta_cum' = Delta_cum + Delta1 * (D2(tau_y1/Delta1,
                                          tau_yi/Delta1,
                                          s*/Delta1) - 1)

The transition time is computed in the same pass ("a slight modification
of the algorithm allows it to be used for output transition time
computation"): the same equivalent waveform drives the ``T2`` model, but
with the wider proximity window ``Delta_cum + tau_cum`` (the paper's
"only when s_ab > Delta_a^(1) + tau_a^(1) can the effect of b be
ignored", generalized to the cumulative values).  The paper does not
spell out the transition-time update rule, so two composition laws are
provided:

* ``"harmonic"`` (default) -- transition *rates* add, mirroring the
  physics of parallel conduction paths whose currents superpose:

      1/tau_cum' = 1/tau_cum + 1/(T2 * tau1) - 1/tau1

* ``"additive"`` -- the literal analogue of the delay recursion
  (eq. 4.5), ``tau_cum' = tau_cum + tau1 * (T2 - 1)``; it over-corrects
  when the ratios are far from one (see the ablation benchmark).

The loop runs while inputs fall inside the transition-time window (the
wider one); inputs outside the *delay* window leave the delay unchanged
but may still reshape the output transition.  Figure 4-1's while-loop
stops at the first out-of-window input in dominance order; pass
``stop_at_first_outside=False`` to skip such inputs instead (ablation).

Two known failure modes (simultaneous identical inputs; a dominant input
arriving very late in the window) are patched by the paper's **linear
corrective term**, bounded by the all-inputs-simultaneous-step error and
ramped to zero across the window -- see :func:`apply_correction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Mapping, Optional, Tuple

from ..errors import ModelError
from ..waveform import Edge
from .dominance import order_by_dominance

__all__ = [
    "CorrectionPolicy",
    "ProximityStep",
    "ProximityResult",
    "proximity_delay",
    "apply_correction",
]


class CorrectionPolicy(str, Enum):
    """How the Section-4 corrective term is applied.

    * ``PAPER`` -- the bound measured on the all-inputs simultaneous
      step is applied in full whenever at least two inputs merged
      (faithful to the paper's description).
    * ``SCALED`` -- the bound is additionally scaled by
      ``(m-1)/(n-1)`` where *m* is the number of merged inputs,
      softening the correction when fewer inputs are in the window.
    * ``OFF`` -- no correction (the ablation baseline).
    """

    PAPER = "paper"
    SCALED = "scaled"
    OFF = "off"


@dataclass(frozen=True)
class ProximityStep:
    """One folded input in the composition loop (for explainability)."""

    input_name: str
    separation: float
    s_star: float
    in_delay_window: bool
    in_ttime_window: bool
    delay_ratio: float
    ttime_ratio: float
    delay_before: float
    delay_after: float
    ttime_before: float
    ttime_after: float


@dataclass(frozen=True)
class ProximityResult:
    """Everything the algorithm computed for one input configuration.

    ``delay``/``ttime`` are the corrected values (equal to the raw ones
    when the correction is off or inapplicable); times are seconds.
    ``delay`` is measured from the reference (most dominant) input's
    threshold crossing, per the paper's convention.
    """

    reference: str
    order: Tuple[str, ...]
    delay: float
    ttime: float
    raw_delay: float
    raw_ttime: float
    steps: Tuple[ProximityStep, ...]
    delay_correction: float
    ttime_correction: float
    delta1: Mapping[str, float]
    tau1: Mapping[str, float]

    @property
    def merged_inputs(self) -> Tuple[str, ...]:
        """Reference plus every input that affected delay or ttime."""
        return (self.reference,) + tuple(s.input_name for s in self.steps)

    @property
    def delay_steps(self) -> Tuple[ProximityStep, ...]:
        return tuple(s for s in self.steps if s.in_delay_window)

    @property
    def ttime_steps(self) -> Tuple[ProximityStep, ...]:
        return tuple(s for s in self.steps if s.in_ttime_window)


def apply_correction(raw: float, step_error: float, policy: CorrectionPolicy,
                     *, merged_count: int, total_inputs: int,
                     last_separation: float, window: float) -> Tuple[float, float]:
    """The paper's linear corrective term.

    ``step_error`` is (algorithm - simulation) for the all-inputs
    simultaneous-step case; the applied correction is ``w * E`` with
    ``w = 1`` for ``s_{y1,ym} <= 0``, ramping linearly to 0 at
    ``s_{y1,ym} = window`` (the cumulative value before the last merge).
    Returns ``(corrected_value, applied_correction)``.

    The correction targets the error of *repeated composition*, which
    only exists once a third input is folded in: with two switching
    inputs the dual-input macromodel applies directly and needs no
    patching (verified exact in oracle mode).  Hence ``merged_count >=
    3`` gates the correction under every policy.
    """
    if policy is CorrectionPolicy.OFF or merged_count < 3:
        return raw, 0.0
    if last_separation <= 0.0:
        weight = 1.0
    elif window <= 0.0 or last_separation >= window:
        weight = 0.0
    else:
        weight = 1.0 - last_separation / window
    if policy is CorrectionPolicy.SCALED and total_inputs > 2:
        weight *= (merged_count - 1) / (total_inputs - 1)
    correction = weight * step_error
    return raw - correction, correction


def proximity_delay(
    edges: Mapping[str, Edge],
    delta1: Mapping[str, float],
    tau1: Mapping[str, float],
    dual_lookup,
    *,
    step_error: Tuple[float, float] = (0.0, 0.0),
    total_inputs: Optional[int] = None,
    correction: CorrectionPolicy = CorrectionPolicy.PAPER,
    stop_at_first_outside: bool = True,
    ttime_composition: str = "harmonic",
    ordering: str = "dominance",
    load: Optional[float] = None,
) -> ProximityResult:
    """Run ``ProximityDelay`` for one input configuration.

    Parameters
    ----------
    edges:
        One same-direction :class:`~repro.waveform.Edge` per switching
        input.  (Opposite-direction pairs are the Section-6 glitch case,
        handled by :mod:`repro.inertial`.)
    delta1, tau1:
        Single-input delay / output transition time per switching input,
        evaluated at that input's ``tau`` by the single-input models.
    dual_lookup:
        Callable ``(reference, other, direction) -> DualInputModel``.
    step_error:
        ``(delay_error, ttime_error)``: algorithm-minus-simulation on
        the all-inputs simultaneous step (the corrective bound).
    total_inputs:
        Fan-in of the gate (defaults to ``len(edges)``), used by the
        ``SCALED`` policy.
    ttime_composition:
        ``"harmonic"`` (default) or ``"additive"``; see the module
        docstring.
    ordering:
        ``"dominance"`` (paper Step 1, default) or ``"arrival"`` --
        naive earliest-first ordering, provided as the ablation
        showing why dominance matters.
    """
    if ordering not in ("dominance", "arrival"):
        raise ModelError(
            f"ordering must be 'dominance' or 'arrival', got {ordering!r}"
        )
    if ttime_composition not in ("harmonic", "additive"):
        raise ModelError(
            f"ttime_composition must be 'harmonic' or 'additive', got "
            f"{ttime_composition!r}"
        )
    if not edges:
        raise ModelError("proximity_delay needs at least one edge")
    directions = {edge.direction for edge in edges.values()}
    if len(directions) != 1:
        raise ModelError(
            f"all edges must share a direction for the proximity model, got "
            f"{sorted(directions)}; use repro.inertial for opposite transitions"
        )
    direction = next(iter(directions))

    if ordering == "dominance":
        ordered = order_by_dominance(edges, delta1)
    else:
        ordered = sorted(edges, key=lambda n: (edges[n].t_cross, n))
    reference = ordered[0]
    ref_edge = edges[reference]
    base_delay = delta1[reference]
    base_ttime = tau1[reference]
    if base_delay <= 0.0 or base_ttime <= 0.0:
        raise ModelError(
            f"single-input responses of {reference!r} must be positive "
            f"(delta1={base_delay:g}, tau1={base_ttime:g})"
        )

    steps: List[ProximityStep] = []
    delay_cum = base_delay
    ttime_cum = base_ttime
    for other in ordered[1:]:
        sep = edges[other].t_cross - ref_edge.t_cross
        in_delay = sep < delay_cum
        in_ttime = sep < delay_cum + ttime_cum
        if not in_ttime:
            if stop_at_first_outside:
                break
            continue
        s_star = sep + base_delay - delay_cum
        model = dual_lookup(reference, other, direction)
        d_ratio = 1.0
        t_ratio = 1.0
        delay_before, ttime_before = delay_cum, ttime_cum
        if in_delay:
            d_ratio = model.delay_ratio(
                ref_edge.tau, edges[other].tau, s_star,
                delta1=base_delay, load=load,
            )
            delay_cum = delay_cum + base_delay * (d_ratio - 1.0)
        t_ratio = model.ttime_ratio(
            ref_edge.tau, edges[other].tau, s_star,
            tau1=base_ttime, delta1=base_delay, load=load,
        )
        if ttime_composition == "harmonic":
            # Transition rates superpose; clamp the rate to stay positive
            # when a strongly slowing input (T2 >> 1) would drive it
            # through zero.
            rate = (1.0 / ttime_cum
                    + 1.0 / (max(t_ratio, 1e-9) * base_ttime)
                    - 1.0 / base_ttime)
            rate = max(rate, 1e-3 / base_ttime)
            ttime_cum = 1.0 / rate
        else:
            ttime_cum = ttime_cum + base_ttime * (t_ratio - 1.0)
        steps.append(ProximityStep(
            input_name=other,
            separation=sep,
            s_star=s_star,
            in_delay_window=in_delay,
            in_ttime_window=True,
            delay_ratio=d_ratio,
            ttime_ratio=t_ratio,
            delay_before=delay_before,
            delay_after=delay_cum,
            ttime_before=ttime_before,
            ttime_after=ttime_cum,
        ))

    raw_delay, raw_ttime = delay_cum, ttime_cum
    n_total = total_inputs if total_inputs is not None else len(edges)

    delay_steps = [s for s in steps if s.in_delay_window]
    if delay_steps:
        last = delay_steps[-1]
        delay, delay_corr = apply_correction(
            raw_delay, step_error[0], correction,
            merged_count=1 + len(delay_steps), total_inputs=n_total,
            last_separation=last.separation, window=last.delay_before,
        )
    else:
        delay, delay_corr = raw_delay, 0.0
    if steps:
        last = steps[-1]
        ttime, ttime_corr = apply_correction(
            raw_ttime, step_error[1], correction,
            merged_count=1 + len(steps), total_inputs=n_total,
            last_separation=last.separation,
            window=last.delay_before + last.ttime_before,
        )
    else:
        ttime, ttime_corr = raw_ttime, 0.0

    return ProximityResult(
        reference=reference,
        order=tuple(ordered),
        delay=delay,
        ttime=ttime,
        raw_delay=raw_delay,
        raw_ttime=raw_ttime,
        steps=tuple(steps),
        delay_correction=delay_corr,
        ttime_correction=ttime_corr,
        delta1=dict(delta1),
        tau1=dict(tau1),
    )
