"""Glitch measurement and the minimum-output-voltage macromodel.

Conventions (matching the paper's Figure 6-1 experiment on a NAND):

* the **causing** input is the one whose transition would, alone, drive
  the output through a full transition (the rising input ``b`` of a NAND
  pulls the output low -- the paper's "non-controlling input" that the
  macromodel is referenced to);
* the **blocking** input is the one switching the opposite way (the
  falling ``a``), which cuts the transition short;
* ``sep`` is the separation ``s = t_blocking - t_causing`` measured at
  the onset thresholds: large positive ``sep`` gives the causing input
  time to complete the output transition before the blocker acts, small
  or negative ``sep`` blocks it.

For a falling output transition the observable is the **minimum** output
voltage; for a rising one, the **maximum**.  :class:`TableGlitchModel`
stores the extremum normalized to Vdd on a grid normalized by the
causing input's single-input delay -- the same dimensional reduction as
the dual-input proximity model (the paper: "we first find a macromodel
for the minimum voltage at the output which will be similar to (3.9)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from ..errors import CharacterizationError, MeasurementError, ModelError
from ..gates import Gate
from ..spice import transient
from ..units import parse_quantity
from ..waveform import Edge, FALL, RISE, Pwl, Thresholds, opposite
from ..charlib.cache import CharacterizationCache, default_cache
from ..charlib.simulate import estimate_settle_time, single_input_response

__all__ = [
    "GlitchShot",
    "glitch_response",
    "pulse_response",
    "GlitchGrid",
    "TableGlitchModel",
    "SimulatorGlitchModel",
    "characterize_glitch",
]


@dataclass(frozen=True)
class GlitchShot:
    """Measured glitch observables.

    ``extremum`` is the minimum output voltage for a falling output
    attempt (or the maximum for a rising one); ``completed`` says
    whether the output crossed the validity threshold (``V_il`` falling,
    ``V_ih`` rising); ``output`` is the waveform for plotting.
    """

    causing: str
    blocking: str
    sep: float
    extremum: float
    completed: bool
    output: Pwl


def _glitch_simulation(gate: Gate, causing: str, blocking: str,
                       causing_edge: Edge, blocking_edge: Edge,
                       thresholds: Thresholds,
                       load: Optional[float]) -> GlitchShot:
    cl = gate.load if load is None else parse_quantity(load, unit="F")
    out_dir = gate.output_direction(causing_edge.direction)

    margin = 50e-12
    ramp_c = causing_edge.to_pwl(thresholds)
    ramp_b = blocking_edge.to_pwl(thresholds)
    shift = max(0.0, margin - min(ramp_c.t_start, ramp_b.t_start))
    ramp_c = causing_edge.shifted(shift).to_pwl(thresholds)
    ramp_b = blocking_edge.shifted(shift).to_pwl(thresholds)

    settle = estimate_settle_time(gate, cl) + max(causing_edge.tau, blocking_edge.tau)
    t_stop = max(ramp_c.t_end, ramp_b.t_end) + settle
    circuit = gate.build({causing: ramp_c, blocking: ramp_b}, load=cl,
                         switching=[causing, blocking])
    result = transient(circuit, t_stop, record=[gate.output])
    output = result.node(gate.output)

    window = output.windowed(min(ramp_c.t_start, ramp_b.t_start), output.t_end)
    if out_dir == FALL:
        extremum = window.min()
        completed = extremum <= thresholds.vil
    else:
        extremum = window.max()
        completed = extremum >= thresholds.vih
    return GlitchShot(
        causing=causing,
        blocking=blocking,
        sep=blocking_edge.t_cross - causing_edge.t_cross,
        extremum=extremum,
        completed=completed,
        output=output.shifted(-shift),
    )


def glitch_response(gate: Gate, causing: str, blocking: str, *,
                    tau_causing: float | str, tau_blocking: float | str,
                    sep: float | str, thresholds: Thresholds,
                    load: Optional[float] = None) -> GlitchShot:
    """Simulate the opposite-transition glitch and measure its extremum.

    The causing input gets the direction that sensitizes a full output
    transition (rising for a NAND pull-down, i.e. the non-controlling
    -> controlling move); the blocking input switches the opposite way,
    ``sep`` seconds later (negative = earlier).
    """
    if causing == blocking:
        raise MeasurementError("causing and blocking inputs must differ")
    for name in (causing, blocking):
        if name not in gate.inputs:
            raise MeasurementError(f"{name!r} is not an input of {gate.name!r}")
    # For an inverting gate, a rising input can only pull the output low
    # and vice versa; the causing direction is the one that toggles the
    # output given the blocking input's *initial* (pre-transition) level.
    causing_dir = _causing_direction(gate, causing, blocking)
    sep_s = parse_quantity(sep, unit="s")
    causing_edge = Edge(causing_dir, 0.0, parse_quantity(tau_causing, unit="s"))
    blocking_edge = Edge(opposite(causing_dir), sep_s,
                         parse_quantity(tau_blocking, unit="s"))
    return _glitch_simulation(gate, causing, blocking, causing_edge,
                              blocking_edge, thresholds, load)


def _causing_direction(gate: Gate, causing: str, blocking: str) -> str:
    """Direction of the causing input that produces an output transition
    while the blocking input still sits at its initial level.

    For the paper's NAND example: ``b`` rising (with ``a`` initially
    high) pulls the output low, then ``a`` falling blocks it.  Found by
    logic evaluation so it generalizes to NOR/AOI gates.
    """
    for causing_dir in (RISE, FALL):
        causing_initial = causing_dir == FALL  # high before falling
        blocking_initial = causing_dir == RISE  # blocker moves opposite
        stable = gate.sensitizing_levels([causing, blocking])
        before = dict(stable, **{causing: causing_initial, blocking: blocking_initial})
        after = dict(before, **{causing: not causing_initial})
        if gate.logic_output(before) != gate.logic_output(after):
            return causing_dir
    raise MeasurementError(
        f"no opposite-transition glitch scenario exists for inputs "
        f"({causing!r}, {blocking!r}) of {gate.name!r}"
    )


def pulse_response(gate: Gate, input_name: str, *, width: float | str,
                   tau_first: float | str, tau_second: float | str,
                   first_direction: str, thresholds: Thresholds,
                   load: Optional[float] = None) -> GlitchShot:
    """A pulse on a single input ("the same input first falls and then
    rises"): two opposite edges ``width`` seconds apart on one pin.

    Returns the output-extremum observables; the minimum width at which
    the output still completes its transition is the classic inertial
    delay of the pin (see :func:`repro.inertial.minsep.minimum_pulse_width`).
    """
    if input_name not in gate.inputs:
        raise MeasurementError(f"{input_name!r} is not an input of {gate.name!r}")
    width_s = parse_quantity(width, unit="s")
    if width_s <= 0.0:
        raise MeasurementError(f"pulse width must be positive, got {width_s}")
    tau1 = parse_quantity(tau_first, unit="s")
    tau2 = parse_quantity(tau_second, unit="s")
    first = Edge(first_direction, 0.0, tau1)
    second = Edge(opposite(first.direction), width_s, tau2)

    first_pwl = first.to_pwl(thresholds)
    second_pwl = second.to_pwl(thresholds)
    # Merge the two ramps into one PWL pulse; require them not to overlap.
    if second_pwl.t_start <= first_pwl.t_end:
        raise MeasurementError(
            "pulse edges overlap: width too small for the given transition times"
        )
    margin = 50e-12
    shift = max(0.0, margin - first_pwl.t_start)
    t1 = first_pwl.times + shift
    t2 = second_pwl.times + shift
    pulse = Pwl(np.concatenate([t1, t2]),
                np.concatenate([first_pwl.values, second_pwl.values]))

    cl = gate.load if load is None else parse_quantity(load, unit="F")
    out_dir = gate.output_direction(first.direction)
    settle = estimate_settle_time(gate, cl) + tau1 + tau2
    circuit = gate.build({input_name: pulse}, load=cl, switching=[input_name])
    result = transient(circuit, pulse.t_end + settle, record=[gate.output])
    output = result.node(gate.output)
    window = output.windowed(t1[0], output.t_end)
    if out_dir == FALL:
        extremum = window.min()
        completed = extremum <= thresholds.vil
    else:
        extremum = window.max()
        completed = extremum >= thresholds.vih
    return GlitchShot(
        causing=input_name,
        blocking=input_name,
        sep=width_s,
        extremum=extremum,
        completed=completed,
        output=output.shifted(-shift),
    )


# ----------------------------------------------------------------------
# Macromodels of the glitch extremum
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GlitchGrid:
    """Characterization grid for the glitch macromodel.

    ``tau_causings`` are physical causing-input transition times; ``a2``
    (blocking tau) and ``a3`` (separation) are normalized by the causing
    input's single-input delay, mirroring :class:`~repro.charlib.dual.DualInputGrid`.
    """

    tau_causings: Tuple[float, ...] = (100e-12, 500e-12, 2000e-12)
    a2: Tuple[float, ...] = (0.25, 1.0, 4.0)
    a3: Tuple[float, ...] = (-2.0, -1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.5)

    def key(self) -> dict:
        return {"tau_causings": list(self.tau_causings), "a2": list(self.a2),
                "a3": list(self.a3)}


class TableGlitchModel:
    """Normalized glitch extremum ``V_ext/Vdd`` on a 3-D grid."""

    def __init__(self, causing: str, blocking: str,
                 axes: Tuple[np.ndarray, np.ndarray, np.ndarray],
                 table: np.ndarray, *, vdd: float, output_direction: str) -> None:
        self.causing = causing
        self.blocking = blocking
        self.axes = tuple(np.asarray(a, dtype=float) for a in axes)
        self.table = np.asarray(table, dtype=float)
        self.vdd = float(vdd)
        self.output_direction = output_direction
        if self.table.shape != tuple(len(a) for a in self.axes):
            raise ModelError("glitch table shape does not match axes")
        self._interp = RegularGridInterpolator(
            self.axes, self.table, method="linear", bounds_error=False,
            fill_value=None,
        )
        self._lows = np.array([a[0] for a in self.axes])
        self._highs = np.array([a[-1] for a in self.axes])

    def extremum(self, tau_causing: float, tau_blocking: float, sep: float, *,
                 delta1: float) -> float:
        """Predicted extremum voltage (volts)."""
        if delta1 <= 0.0:
            raise ModelError(f"delta1 must be positive, got {delta1}")
        point = np.array([tau_causing / delta1, tau_blocking / delta1, sep / delta1])
        point = np.minimum(np.maximum(point, self._lows), self._highs)
        return float(self._interp(point[None, :])[0]) * self.vdd

    def to_payload(self) -> dict:
        return {
            "causing": self.causing,
            "blocking": self.blocking,
            "axes": [a.tolist() for a in self.axes],
            "table": self.table.tolist(),
            "vdd": self.vdd,
            "output_direction": self.output_direction,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TableGlitchModel":
        return cls(
            payload["causing"], payload["blocking"],
            tuple(np.asarray(a) for a in payload["axes"]),
            np.asarray(payload["table"]), vdd=payload["vdd"],
            output_direction=payload["output_direction"],
        )


class SimulatorGlitchModel:
    """Glitch extremum via direct (memoized) simulation."""

    def __init__(self, gate: Gate, causing: str, blocking: str,
                 thresholds: Thresholds) -> None:
        self.gate = gate
        self.causing = causing
        self.blocking = blocking
        self.thresholds = thresholds
        self.output_direction = gate.output_direction(
            _causing_direction(gate, causing, blocking)
        )
        self.vdd = gate.process.vdd
        self._memo: Dict[Tuple[int, int, int], float] = {}

    def extremum(self, tau_causing: float, tau_blocking: float, sep: float, *,
                 delta1: float | None = None) -> float:
        key = (round(tau_causing * 1e15), round(tau_blocking * 1e15),
               round(sep * 1e15))
        if key not in self._memo:
            shot = glitch_response(
                self.gate, self.causing, self.blocking,
                tau_causing=tau_causing, tau_blocking=tau_blocking,
                sep=sep, thresholds=self.thresholds,
            )
            self._memo[key] = shot.extremum
        return self._memo[key]


def characterize_glitch(gate: Gate, causing: str, blocking: str,
                        thresholds: Thresholds, *,
                        grid: Optional[GlitchGrid] = None,
                        cache: Optional[CharacterizationCache] = None) -> TableGlitchModel:
    """Build the Section-6 minimum/maximum-voltage table model."""
    grid = grid or GlitchGrid()
    cache = cache or default_cache()
    causing_dir = _causing_direction(gate, causing, blocking)
    key = {
        **gate.cache_key(),
        "causing": causing,
        "blocking": blocking,
        "vil": thresholds.vil,
        "vih": thresholds.vih,
        **grid.key(),
    }

    def compute() -> dict:
        a1_axis = []
        table = np.empty((len(grid.tau_causings), len(grid.a2), len(grid.a3)))
        for i, tau_c in enumerate(grid.tau_causings):
            single = single_input_response(gate, causing, causing_dir, tau_c, thresholds)
            delta1 = single.delay
            if delta1 <= 0.0:
                raise CharacterizationError(
                    f"non-positive single-input delay at tau={tau_c:g}s"
                )
            a1_axis.append(tau_c / delta1)
            for j, a2 in enumerate(grid.a2):
                for k, a3 in enumerate(grid.a3):
                    shot = glitch_response(
                        gate, causing, blocking,
                        tau_causing=tau_c, tau_blocking=a2 * delta1,
                        sep=a3 * delta1, thresholds=thresholds,
                    )
                    table[i, j, k] = shot.extremum / gate.process.vdd
        if np.any(np.diff(a1_axis) <= 0):
            raise CharacterizationError("tau/delta1 axis is not increasing")
        return {"a1": a1_axis, "a2": list(grid.a2), "a3": list(grid.a3),
                "table": table.tolist()}

    payload = cache.get_or_compute("glitch", key, compute)
    axes = (np.asarray(payload["a1"]), np.asarray(payload["a2"]),
            np.asarray(payload["a3"]))
    return TableGlitchModel(
        causing, blocking, axes, np.asarray(payload["table"]),
        vdd=gate.process.vdd,
        output_direction=gate.output_direction(causing_dir),
    )
