"""Minimum-separation solvers: inertial delay from the glitch model.

The paper: "From this equation, we find the minimum separation at which
the magnitude of voltage is equal to V_il.  This is the minimum
separation between two inputs of opposite transitions that will generate
a valid output."  The same bisection applied to a single-input pulse
yields the classic minimum pulse width (inertial delay) of a pin.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import MeasurementError
from ..gates import Gate
from ..units import parse_quantity
from ..waveform import FALL, Thresholds

__all__ = ["bisect_threshold", "minimum_separation", "minimum_pulse_width"]


def bisect_threshold(probe: Callable[[float], float], target: float, *,
                     lo: float, hi: float, increasing: bool,
                     tol: float = 1e-13, max_iterations: int = 60) -> float:
    """Find ``x`` with ``probe(x) == target`` by bisection on ``[lo, hi]``.

    ``increasing`` declares the monotonicity of ``probe`` (glitch depth
    grows with separation).  Raises when the target is not bracketed.
    """
    f_lo = probe(lo) - target
    f_hi = probe(hi) - target
    if not increasing:
        f_lo, f_hi = -f_lo, -f_hi
        sign = -1.0
    else:
        sign = 1.0
    if f_lo > 0.0:
        raise MeasurementError(
            f"target already exceeded at the lower bracket ({lo:g})"
        )
    if f_hi < 0.0:
        raise MeasurementError(
            f"target never reached within the bracket ([{lo:g}, {hi:g}])"
        )
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        if hi - lo < tol:
            return mid
        value = sign * (probe(mid) - target)
        if value < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def minimum_separation(model, tau_causing: float | str, tau_blocking: float | str,
                       thresholds: Thresholds, *, delta1: Optional[float] = None,
                       lo: float | str = -2e-9, hi: float | str = 5e-9) -> float:
    """The inertial-delay separation: smallest ``sep`` at which the
    output completes a valid transition.

    ``model`` is a glitch macromodel
    (:class:`~repro.inertial.glitch.TableGlitchModel` or
    :class:`~repro.inertial.glitch.SimulatorGlitchModel`); ``delta1`` is
    the causing input's single-input delay, required by table models for
    normalization.

    For a falling output the extremum (minimum voltage) *decreases* with
    separation toward 0 V and the validity target is ``V_il``; for a
    rising output it increases toward Vdd with target ``V_ih``.
    """
    tau_c = parse_quantity(tau_causing, unit="s")
    tau_b = parse_quantity(tau_blocking, unit="s")
    lo_s = parse_quantity(lo, unit="s")
    hi_s = parse_quantity(hi, unit="s")
    if model.output_direction == FALL:
        target = thresholds.vil
        increasing = False  # vmin falls as sep grows
    else:
        target = thresholds.vih
        increasing = True

    def probe(sep: float) -> float:
        return model.extremum(tau_c, tau_b, sep, delta1=delta1)

    return bisect_threshold(probe, target, lo=lo_s, hi=hi_s,
                            increasing=increasing)


def minimum_pulse_width(gate: Gate, input_name: str, *, tau_first: float | str,
                        tau_second: float | str, first_direction: str,
                        thresholds: Thresholds,
                        lo: float | str = None, hi: float | str = 5e-9) -> float:
    """Smallest single-input pulse width that still produces a valid
    output transition (the pin's inertial delay), found by bisection on
    direct simulations."""
    from .glitch import pulse_response

    tau1 = parse_quantity(tau_first, unit="s")
    tau2 = parse_quantity(tau_second, unit="s")
    # Edges must not overlap: the ramps consume a threshold-dependent
    # fraction of each tau; a full tau of spacing is always safe.
    lo_s = parse_quantity(lo, unit="s") if lo is not None else (tau1 + tau2)
    hi_s = parse_quantity(hi, unit="s")
    out_dir = gate.output_direction(first_direction)
    if out_dir == FALL:
        target = thresholds.vil
        increasing = False
    else:
        target = thresholds.vih
        increasing = True

    def probe(width: float) -> float:
        shot = pulse_response(
            gate, input_name, width=width, tau_first=tau1, tau_second=tau2,
            first_direction=first_direction, thresholds=thresholds,
        )
        return shot.extremum

    return bisect_threshold(probe, target, lo=lo_s, hi=hi_s,
                            increasing=increasing, tol=1e-12)
