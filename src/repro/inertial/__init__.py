"""Inertial delay as a proximity effect (paper Section 6).

When two inputs of a NAND-class gate switch in *opposite* directions in
close temporal proximity (``a`` falls while ``b`` rises), the output
emits a runt glitch instead of completing its transition.  The paper
models the **minimum output voltage** as a proximity macromodel and
defines the gate's inertial delay as the minimum separation at which the
glitch still reaches ``V_il`` -- i.e. at which the output completes a
valid transition.

This package provides the glitch measurement
(:func:`~repro.inertial.glitch.glitch_response`), table and simulator
macromodels of the glitch extremum, the minimum-separation solver, and
the single-input pulse variant ("for a NAND gate, we can have a rising
glitch at the output only when the same input first falls and then
rises").
"""

from .glitch import (
    GlitchShot,
    glitch_response,
    pulse_response,
    SimulatorGlitchModel,
    TableGlitchModel,
    characterize_glitch,
    GlitchGrid,
)
from .minsep import minimum_separation, minimum_pulse_width

__all__ = [
    "GlitchShot",
    "glitch_response",
    "pulse_response",
    "SimulatorGlitchModel",
    "TableGlitchModel",
    "characterize_glitch",
    "GlitchGrid",
    "minimum_separation",
    "minimum_pulse_width",
]
