"""Transistor-level flattening of a timing netlist.

Ground truth for the STA comparison benchmark: the whole gate network is
emitted into one :class:`~repro.spice.Circuit` (shared nets, per-instance
internal nodes), primary inputs become PWL sources, and every gate
output carries an explicit load capacitor equal to the load its library
was characterized at (characterized loads are assumed to include the
fanout they drive; the actual fanout gate capacitance is small against
the 100 fF default and is also present in the flat circuit).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..errors import TimingError
from ..interconnect import emit_wire
from ..spice import Circuit, transient
from ..spice.transient import TransientOptions
from ..spice.results import TransientResult
from ..units import parse_quantity
from ..waveform import Edge, Pwl, Thresholds
from .netlist import TimingNetlist

__all__ = ["flatten_to_circuit", "simulate_netlist"]


def _net_node(net: str) -> str:
    """Circuit node name for a timing net (namespaced to avoid clashes
    with per-instance internal nodes)."""
    return f"n.{net}"


def flatten_to_circuit(netlist: TimingNetlist,
                       input_waveforms: Mapping[str, Pwl]) -> Tuple[Circuit, Dict[str, str]]:
    """Emit every instance into one circuit.

    ``input_waveforms`` supplies a waveform (or DC level via a constant
    PWL) for *every* primary input.  Returns the circuit and the
    net -> node-name mapping.
    """
    instances = netlist.topological_order()
    if not instances:
        raise TimingError("cannot flatten an empty netlist")
    missing = [n for n in netlist.primary_inputs if n not in input_waveforms]
    if missing:
        raise TimingError(f"no waveform for primary inputs {missing!r}")

    process = instances[0].gate.process
    for inst in instances:
        if inst.gate.process is not process and inst.gate.process != process:
            raise TimingError("all instances must share one process (one Vdd rail)")

    circuit = Circuit(netlist.name)
    circuit.add_vsource("vvdd", "vdd", process.vdd)
    node_of = {net: _net_node(net) for net in netlist.nets()}
    for net, wf in input_waveforms.items():
        if net not in netlist.primary_inputs:
            raise TimingError(f"{net!r} is not a primary input")
        circuit.add_vsource(f"v.{net}", node_of[net], wf)

    # Nets with wire annotations get a distinct far-end node that the
    # receivers attach to; the driver and its characterized load stay at
    # the near end, mirroring what the STA's Elmore annotation assumes.
    receiver_node = dict(node_of)
    for net in netlist.nets():
        wire = netlist.wire(net)
        if wire is None:
            continue
        far = f"{node_of[net]}.far"
        emit_wire(circuit, f"wire.{net}", node_of[net], far, wire)
        receiver_node[net] = far

    for inst in instances:
        nets = {pin: receiver_node[net] for pin, net in inst.pin_nets.items()}
        nets[inst.gate.output] = node_of[inst.output_net]
        inst.gate.instantiate_into(circuit, inst.name, nets)
        circuit.add_capacitor(
            f"{inst.name}.cload", node_of[inst.output_net], "0", inst.gate.load,
        )
    return circuit, node_of


def simulate_netlist(netlist: TimingNetlist,
                     input_edges: Mapping[str, Edge],
                     thresholds: Thresholds, *,
                     static_levels: Optional[Mapping[str, bool]] = None,
                     t_stop: Optional[float | str] = None,
                     options: Optional[TransientOptions] = None,
                     ) -> Tuple[TransientResult, Dict[str, str]]:
    """Transient-simulate the flattened netlist.

    ``input_edges`` drives switching primary inputs; other primary
    inputs need a logic level in ``static_levels`` (``True`` = Vdd).
    ``t_stop`` defaults to the last input edge plus a per-stage settle
    allowance.
    """
    vdd = netlist.topological_order()[0].gate.process.vdd
    waveforms: Dict[str, Pwl] = {}
    margin = 100e-12
    shift = 0.0
    for net, edge in input_edges.items():
        pwl = edge.to_pwl(thresholds)
        shift = max(shift, margin - pwl.t_start)
    for net, edge in input_edges.items():
        waveforms[net] = edge.shifted(shift).to_pwl(thresholds)
    static_levels = dict(static_levels or {})
    for net in netlist.primary_inputs:
        if net in waveforms:
            continue
        if net not in static_levels:
            raise TimingError(
                f"primary input {net!r} needs an edge or a static level"
            )
        level = vdd if static_levels[net] else 0.0
        waveforms[net] = Pwl([0.0, 1e-12], [level, level])

    circuit, node_of = flatten_to_circuit(netlist, waveforms)
    if t_stop is None:
        last_edge_end = max(wf.t_end for wf in waveforms.values())
        depth = len(netlist.topological_order())
        stop = last_edge_end + 2e-9 * max(depth, 1)
    else:
        stop = parse_quantity(t_stop, unit="s") + shift
    result = transient(circuit, stop, options=options)
    return result, node_of
