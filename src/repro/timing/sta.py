"""Event-propagation timing analysis, proximity-aware and classic.

Both analyzers propagate one :class:`NetEvent` (a transition with
arrival and slew) per net through the gate DAG:

* :class:`ProximitySta` gives each gate the *full set* of switching
  inputs and asks the Section-4 algorithm for the output event, so
  temporally close inputs speed the gate up (or, per dominance, pick a
  different causing input);
* :class:`ClassicSta` is the conventional calculator the paper argues
  against: each switching input is evaluated alone through the
  single-input model and the worst (latest) arrival wins.

Both use the *same* characterized library, so any difference between
them is purely the proximity modeling.  When a gate sees opposite-
direction input events (a potential glitch), the proximity analyzer
evaluates each direction group separately, propagates the event that
yields the final settled transition (the latest output crossing), and
records a glitch warning naming the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.algorithm import ProximityResult
from ..errors import TimingError
from ..interconnect import elmore_delay, elmore_slew
from ..waveform import Edge
from .netlist import GateInstance, TimingNetlist

__all__ = ["NetEvent", "StaResult", "ProximitySta", "ClassicSta"]


@dataclass(frozen=True)
class NetEvent:
    """A transition on a net: direction, arrival (onset-threshold
    crossing) and full-swing slew -- i.e. an :class:`~repro.waveform.Edge`
    tagged with its net."""

    net: str
    edge: Edge

    @property
    def t_cross(self) -> float:
        return self.edge.t_cross

    @property
    def direction(self) -> str:
        return self.edge.direction


@dataclass
class StaResult:
    """Per-net events plus per-gate detail from one analysis run."""

    events: Dict[str, NetEvent] = field(default_factory=dict)
    gate_results: Dict[str, ProximityResult] = field(default_factory=dict)
    glitch_warnings: List[str] = field(default_factory=list)

    def arrival(self, net: str) -> float:
        try:
            return self.events[net].t_cross
        except KeyError:
            raise TimingError(f"no event propagated to net {net!r}") from None

    def slew(self, net: str) -> float:
        try:
            return self.events[net].edge.tau
        except KeyError:
            raise TimingError(f"no event propagated to net {net!r}") from None


class _StaBase:
    def __init__(self, netlist: TimingNetlist) -> None:
        self.netlist = netlist

    def analyze(self, input_events: Mapping[str, Edge]) -> StaResult:
        """Propagate events from primary inputs to every reachable net."""
        for net in input_events:
            if net not in self.netlist.primary_inputs:
                raise TimingError(f"{net!r} is not a primary input")
        result = StaResult()
        for net, edge in input_events.items():
            result.events[net] = NetEvent(net, edge)
        for instance in self.netlist.topological_order():
            self._evaluate(instance, result)
        return result

    # subclasses implement
    def _evaluate(self, instance: GateInstance, result: StaResult) -> None:
        raise NotImplementedError

    def _switching_pins(self, instance: GateInstance,
                        result: StaResult) -> Dict[str, Edge]:
        """Input pins of the instance that carry events, with any net
        wire's Elmore delay and slew degradation applied."""
        pins: Dict[str, Edge] = {}
        for pin, net in instance.pin_nets.items():
            event = result.events.get(net)
            if event is None:
                continue
            edge = event.edge
            wire = self.netlist.wire(net)
            if wire is not None:
                edge = Edge(
                    edge.direction,
                    edge.t_cross + elmore_delay(wire),
                    elmore_slew(wire, input_slew=edge.tau),
                )
            pins[pin] = edge
        return pins

    def _output_load(self, instance: GateInstance) -> Optional[float]:
        """Effective load of the instance's output net: the characterized
        load plus any annotated wire's capacitance (``None`` when there
        is no wire, so the models use their characterization load)."""
        wire = self.netlist.wire(instance.output_net)
        if wire is None:
            return None
        return instance.gate.load + wire.capacitance


class ProximitySta(_StaBase):
    """STA with the Section-4 proximity delay per gate."""

    def _evaluate(self, instance: GateInstance, result: StaResult) -> None:
        pins = self._switching_pins(instance, result)
        if not pins:
            return
        calc = instance.calculator
        groups: Dict[str, Dict[str, Edge]] = {}
        for pin, edge in pins.items():
            groups.setdefault(edge.direction, {})[pin] = edge
        if len(groups) > 1:
            result.glitch_warnings.append(
                f"{instance.name}: opposite-direction inputs "
                f"({', '.join(sorted(pins))}) -- potential glitch; "
                f"propagating the settling transition"
            )
        load = self._output_load(instance)
        best: Optional[Tuple[float, Edge, ProximityResult]] = None
        for direction, group in groups.items():
            res = calc.explain(group, load=load)
            t_out = group[res.reference].t_cross + res.delay
            out_edge = Edge(calc.gate.output_direction(direction), t_out, res.ttime)
            if best is None or t_out > best[0]:
                best = (t_out, out_edge, res)
        assert best is not None
        _, out_edge, res = best
        result.events[instance.output_net] = NetEvent(instance.output_net, out_edge)
        result.gate_results[instance.name] = res


class ClassicSta(_StaBase):
    """Conventional one-input-at-a-time STA over the same library."""

    def _evaluate(self, instance: GateInstance, result: StaResult) -> None:
        pins = self._switching_pins(instance, result)
        if not pins:
            return
        calc = instance.calculator
        load = self._output_load(instance)
        best: Optional[Tuple[float, Edge]] = None
        for pin, edge in pins.items():
            model = calc.library.single(pin, edge.direction)
            t_out = edge.t_cross + model.delay(edge.tau, load)
            out_edge = Edge(
                calc.gate.output_direction(edge.direction), t_out,
                model.ttime(edge.tau, load),
            )
            if best is None or t_out > best[0]:
                best = (t_out, out_edge)
        assert best is not None
        result.events[instance.output_net] = NetEvent(instance.output_net, best[1])
