"""Combinational gate-level netlists for timing analysis.

A :class:`TimingNetlist` is a DAG of :class:`GateInstance` objects over
named nets.  Each instance carries its own
:class:`~repro.core.DelayCalculator` (instances of the same cell type
normally share one, so characterization is reused).  Structural rules:

* every net has at most one driver (a gate output or a primary input),
* the gate graph must be acyclic (checked with :mod:`networkx`),
* primary outputs are any nets the caller asks about; no explicit
  declaration is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from ..core.api import DelayCalculator
from ..errors import TimingError
from ..interconnect import WireSpec

__all__ = ["GateInstance", "TimingNetlist"]


@dataclass(frozen=True)
class GateInstance:
    """One placed gate: a calculator plus pin-to-net connectivity."""

    name: str
    calculator: DelayCalculator
    pin_nets: Mapping[str, str]
    output_net: str

    @property
    def gate(self):
        return self.calculator.gate

    def net_of(self, pin: str) -> str:
        try:
            return self.pin_nets[pin]
        except KeyError:
            raise TimingError(f"instance {self.name!r} has no pin {pin!r}") from None

    def pins_on_net(self, net: str) -> List[str]:
        return [pin for pin, n in self.pin_nets.items() if n == net]


class TimingNetlist:
    """A combinational netlist: primary inputs + gate instances."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._instances: Dict[str, GateInstance] = {}
        self._driver_of: Dict[str, str] = {}
        self._primary_inputs: List[str] = []
        self._wires: Dict[str, WireSpec] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        """Declare a primary-input net."""
        if not net:
            raise TimingError("primary input net name must be non-empty")
        if net in self._driver_of:
            raise TimingError(f"net {net!r} is already driven by {self._driver_of[net]!r}")
        if net in self._primary_inputs:
            raise TimingError(f"primary input {net!r} declared twice")
        self._primary_inputs.append(net)
        self._driver_of[net] = f"input:{net}"

    def add_gate(self, name: str, calculator: DelayCalculator,
                 pins: Mapping[str, str], output: str) -> GateInstance:
        """Place a gate instance.

        ``pins`` maps every input pin of the cell to a net; ``output``
        is the net driven by the gate's output.
        """
        if name in self._instances:
            raise TimingError(f"duplicate instance name {name!r}")
        gate = calculator.gate
        missing = [p for p in gate.inputs if p not in pins]
        if missing:
            raise TimingError(f"instance {name!r} is missing pins {missing!r}")
        extra = [p for p in pins if p not in gate.inputs]
        if extra:
            raise TimingError(f"instance {name!r} has unknown pins {extra!r}")
        if output in self._driver_of:
            raise TimingError(
                f"net {output!r} already driven by {self._driver_of[output]!r}"
            )
        instance = GateInstance(name, calculator, dict(pins), output)
        self._instances[name] = instance
        self._driver_of[output] = name
        return instance

    def set_wire(self, net: str, wire: WireSpec) -> None:
        """Annotate ``net`` with an RC wire between its driver and its
        receivers.  The timing analyzers add the wire's Elmore delay and
        slew degradation; the flattener emits matching pi sections."""
        if not net:
            raise TimingError("wire net name must be non-empty")
        self._wires[net] = wire

    def wire(self, net: str) -> Optional[WireSpec]:
        """The wire annotation of ``net``, if any."""
        return self._wires.get(net)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def primary_inputs(self) -> Tuple[str, ...]:
        return tuple(self._primary_inputs)

    @property
    def instances(self) -> Tuple[GateInstance, ...]:
        return tuple(self._instances.values())

    def instance(self, name: str) -> GateInstance:
        try:
            return self._instances[name]
        except KeyError:
            raise TimingError(f"no instance named {name!r}") from None

    def nets(self) -> List[str]:
        """All nets, in deterministic order."""
        seen = dict.fromkeys(self._primary_inputs)
        for inst in self._instances.values():
            for net in inst.pin_nets.values():
                seen.setdefault(net)
            seen.setdefault(inst.output_net)
        return list(seen)

    def driver(self, net: str) -> Optional[GateInstance]:
        """The gate driving ``net`` (``None`` for primary inputs)."""
        owner = self._driver_of.get(net)
        if owner is None:
            raise TimingError(f"net {net!r} has no driver (floating)")
        if owner.startswith("input:"):
            return None
        return self._instances[owner]

    def loads(self, net: str) -> List[Tuple[GateInstance, str]]:
        """(instance, pin) pairs whose input connects to ``net``."""
        out = []
        for inst in self._instances.values():
            for pin, pin_net in inst.pin_nets.items():
                if pin_net == net:
                    out.append((inst, pin))
        return out

    def primary_outputs(self) -> List[str]:
        """Driven nets that no gate input consumes."""
        consumed = {
            net for inst in self._instances.values()
            for net in inst.pin_nets.values()
        }
        return [
            inst.output_net for inst in self._instances.values()
            if inst.output_net not in consumed
        ]

    def topological_order(self) -> List[GateInstance]:
        """Instances in evaluation order; raises on combinational cycles
        or floating input nets."""
        graph = nx.DiGraph()
        for inst in self._instances.values():
            graph.add_node(inst.name)
        for inst in self._instances.values():
            for net in inst.pin_nets.values():
                owner = self._driver_of.get(net)
                if owner is None:
                    raise TimingError(
                        f"net {net!r} (input of {inst.name!r}) has no driver; "
                        f"declare it with add_input()"
                    )
                if not owner.startswith("input:"):
                    graph.add_edge(owner, inst.name)
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(graph)
            raise TimingError(f"combinational cycle: {cycle}") from None
        return [self._instances[name] for name in order]
