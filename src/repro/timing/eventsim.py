"""Event-driven, waveform-level timing simulation with inertial filtering.

The STA in :mod:`repro.timing.sta` propagates a single transition per
net.  This module handles *trains* of transitions -- the regime where
the paper's Section 6 matters: opposite transitions arriving close
together produce runt pulses that a real gate swallows (inertial
delay), and a timing tool that propagates them anyway reports phantom
switching.

How a gate is evaluated
-----------------------
Input nets carry :class:`NetWaveform` objects (an initial logic level
plus time-ordered transitions).  Walking the merged input-event list in
time order, every time the gate's Boolean output flips, the simulator

1. forms a *cluster*: the causing input edge plus, for every other
   switching pin, its latest edge of the same direction (the Section-4
   algorithm's own proximity windows decide whether those actually
   contribute) -- **plus a look-ahead**: future same-direction edges
   that land before the predicted output crossing join the cluster,
   iterated to a fixpoint, because an input arriving mid-transition
   still reshapes the output (the proximity effect itself);
2. asks the :class:`~repro.core.DelayCalculator` for the cluster's
   proximity-aware delay and output slew;
3. emits the output edge at ``t_ref + delay``.

A final pass applies **inertial filtering**: consecutive
opposite-direction output edges closer than the gate's minimum pulse
width annihilate, and the dropped pulse is recorded in
:attr:`EventSimResult.filtered_glitches` (the Section-6 observable).
The default minimum-pulse threshold is ``pulse_fraction`` of the
leading edge's output slew -- a heuristic calibrated against
:func:`repro.inertial.minimum_pulse_width`; pass ``minimum_pulse`` for a
measured value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import TimingError
from ..interconnect import elmore_delay, elmore_slew
from ..waveform import Edge, FALL, RISE
from .netlist import GateInstance, TimingNetlist

__all__ = ["NetWaveform", "FilteredGlitch", "EventSimResult", "EventSimulator"]


@dataclass(frozen=True)
class NetWaveform:
    """A logic waveform: initial level plus time-ordered transitions.

    Edges must strictly increase in time and alternate in direction
    consistently with ``initial`` (a high net falls first).
    """

    initial: bool
    edges: Tuple[Edge, ...] = ()

    def __post_init__(self) -> None:
        level = self.initial
        last_t = float("-inf")
        for edge in self.edges:
            if edge.t_cross <= last_t:
                raise TimingError("net waveform edges must strictly increase in time")
            expected = FALL if level else RISE
            if edge.direction != expected:
                raise TimingError(
                    f"edge at {edge.t_cross:g}s goes {edge.direction} but the "
                    f"net is {'high' if level else 'low'}"
                )
            level = not level
            last_t = edge.t_cross
        object.__setattr__(self, "edges", tuple(self.edges))

    def level_at(self, t: float) -> bool:
        """Logic level just after time ``t``."""
        level = self.initial
        for edge in self.edges:
            if edge.t_cross <= t:
                level = not level
            else:
                break
        return level

    @property
    def final_level(self) -> bool:
        return self.initial ^ (len(self.edges) % 2 == 1)

    def describe(self) -> str:
        parts = ["1" if self.initial else "0"]
        parts.extend(e.describe() for e in self.edges)
        return " -> ".join(parts)


@dataclass(frozen=True)
class FilteredGlitch:
    """A runt pulse swallowed by inertial filtering."""

    instance: str
    net: str
    t_start: float
    width: float
    direction: str  # direction of the leading (dropped) edge


@dataclass
class EventSimResult:
    """Waveforms on every reached net plus the filtering report."""

    waveforms: Dict[str, NetWaveform] = field(default_factory=dict)
    filtered_glitches: List[FilteredGlitch] = field(default_factory=list)

    def waveform(self, net: str) -> NetWaveform:
        try:
            return self.waveforms[net]
        except KeyError:
            raise TimingError(f"no waveform computed for net {net!r}") from None

    def transition_count(self, net: str) -> int:
        return len(self.waveform(net).edges)


class EventSimulator:
    """Waveform-level event simulation over a :class:`TimingNetlist`.

    Parameters
    ----------
    netlist:
        The combinational design.
    minimum_pulse:
        Absolute inertial threshold in seconds, applied to every gate
        output.  ``None`` (default) uses ``pulse_fraction`` of the
        leading output edge's slew instead.
    pulse_fraction:
        Heuristic threshold factor (default 0.6: for the default
        process's NAND3 this lands within ~10% of the measured
        :func:`repro.inertial.minimum_pulse_width`).
    """

    def __init__(self, netlist: TimingNetlist, *,
                 minimum_pulse: Optional[float] = None,
                 pulse_fraction: float = 0.6) -> None:
        if pulse_fraction <= 0.0:
            raise TimingError("pulse_fraction must be positive")
        self.netlist = netlist
        self.minimum_pulse = minimum_pulse
        self.pulse_fraction = pulse_fraction

    # ------------------------------------------------------------------
    def run(self, inputs: Mapping[str, NetWaveform]) -> EventSimResult:
        """Propagate the input waveforms through the whole netlist."""
        for net in self.netlist.primary_inputs:
            if net not in inputs:
                raise TimingError(f"primary input {net!r} has no waveform")
        for net in inputs:
            if net not in self.netlist.primary_inputs:
                raise TimingError(f"{net!r} is not a primary input")

        result = EventSimResult(waveforms=dict(inputs))
        for instance in self.netlist.topological_order():
            self._evaluate(instance, result)
        return result

    # ------------------------------------------------------------------
    def _evaluate(self, instance: GateInstance, result: EventSimResult) -> None:
        gate = instance.gate
        calc = instance.calculator
        pin_waves: Dict[str, NetWaveform] = {}
        for pin, net in instance.pin_nets.items():
            wave = result.waveform(net)
            wire = self.netlist.wire(net)
            if wire is not None and wave.edges:
                # Wire-annotated net: Elmore delay + slew degradation at
                # the receiver, matching the STA's treatment.
                wave = NetWaveform(wave.initial, tuple(
                    Edge(e.direction, e.t_cross + elmore_delay(wire),
                         elmore_slew(wire, input_slew=e.tau))
                    for e in wave.edges
                ))
            pin_waves[pin] = wave
        out_wire = self.netlist.wire(instance.output_net)
        load = (gate.load + out_wire.capacitance
                if out_wire is not None else None)

        state = {pin: wf.initial for pin, wf in pin_waves.items()}
        out_level = gate.logic_output(state)
        initial_out = out_level

        # Merged input events in time order; per-pin edge history for
        # cluster formation.
        events: List[Tuple[float, str, Edge]] = []
        for pin, wf in pin_waves.items():
            for edge in wf.edges:
                events.append((edge.t_cross, pin, edge))
        events.sort(key=lambda item: (item[0], item[1]))

        last_edge_of: Dict[str, Edge] = {}
        out_edges: List[Edge] = []
        for index, (_, pin, edge) in enumerate(events):
            state[pin] = not state[pin]
            last_edge_of[pin] = edge
            new_out = gate.logic_output(state)
            if new_out == out_level:
                continue
            cluster = self._cluster(pin, edge, last_edge_of)
            explain = calc.explain(cluster, load=load)
            t_out = cluster[explain.reference].t_cross + explain.delay
            # Look-ahead: future same-direction edges arriving before the
            # predicted output crossing join the cluster (fixpoint).
            for _ in range(8):
                grew = False
                for _, pin2, edge2 in events[index + 1:]:
                    if edge2.t_cross >= t_out:
                        break
                    if pin2 in cluster or edge2.direction != edge.direction:
                        continue
                    cluster[pin2] = edge2
                    grew = True
                if not grew:
                    break
                explain = calc.explain(cluster, load=load)
                t_out = cluster[explain.reference].t_cross + explain.delay
            direction = RISE if new_out else FALL
            out_edges.append(Edge(direction, t_out, explain.ttime))
            out_level = new_out

        out_edges, glitches = self._filter(instance, out_edges)
        result.filtered_glitches.extend(glitches)
        result.waveforms[instance.output_net] = NetWaveform(
            initial=initial_out, edges=tuple(out_edges),
        )

    def _cluster(self, causing_pin: str, causing_edge: Edge,
                 last_edge_of: Dict[str, Edge]) -> Dict[str, Edge]:
        """The causing edge plus same-direction latest edges of other
        pins; the Section-4 windows prune non-contributors downstream."""
        cluster = {causing_pin: causing_edge}
        for pin, edge in last_edge_of.items():
            if pin == causing_pin:
                continue
            if edge.direction == causing_edge.direction:
                cluster[pin] = edge
        return cluster

    def _threshold(self, leading: Edge) -> float:
        if self.minimum_pulse is not None:
            return self.minimum_pulse
        return self.pulse_fraction * leading.tau

    def _filter(self, instance: GateInstance,
                edges: List[Edge]) -> Tuple[List[Edge], List[FilteredGlitch]]:
        """Drop runt pulses and enforce time ordering.

        Works like a SPICE-style inertial element: scan forward; when
        two consecutive (necessarily opposite) edges are closer than the
        minimum pulse width -- or out of order entirely -- they
        annihilate.  Removal can make the neighbours adjacent, so the
        scan backs up one step after each annihilation.
        """
        kept: List[Edge] = []
        glitches: List[FilteredGlitch] = []
        for edge in edges:
            kept.append(edge)
            while len(kept) >= 2:
                first, second = kept[-2], kept[-1]
                width = second.t_cross - first.t_cross
                if width >= self._threshold(first):
                    break
                glitches.append(FilteredGlitch(
                    instance=instance.name,
                    net=instance.output_net,
                    t_start=first.t_cross,
                    width=max(width, 0.0),
                    direction=first.direction,
                ))
                kept.pop()
                kept.pop()
        return kept, glitches
