"""Proximity-aware gate-level timing analysis.

This is the deployment path the paper motivates: a static timing
analyzer whose per-gate delay comes from the Section-4 proximity
algorithm instead of the classic one-switching-input-at-a-time model.

* :class:`~repro.timing.netlist.TimingNetlist` -- combinational gate
  graphs over named nets.
* :class:`~repro.timing.sta.ProximitySta` /
  :class:`~repro.timing.sta.ClassicSta` -- event propagation with
  proximity-aware or classic per-gate delays.
* :func:`~repro.timing.flatten.flatten_to_circuit` -- transistor-level
  flattening of a whole netlist for ground-truth transient simulation.
"""

from .netlist import GateInstance, TimingNetlist
from .sta import ClassicSta, ProximitySta, StaResult, NetEvent
from .flatten import flatten_to_circuit, simulate_netlist
from .eventsim import EventSimulator, EventSimResult, FilteredGlitch, NetWaveform

__all__ = [
    "GateInstance",
    "TimingNetlist",
    "ClassicSta",
    "ProximitySta",
    "StaResult",
    "NetEvent",
    "flatten_to_circuit",
    "simulate_netlist",
    "EventSimulator",
    "EventSimResult",
    "FilteredGlitch",
    "NetWaveform",
]
