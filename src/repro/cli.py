"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
``vtc``          -- print the VTC threshold table and selected thresholds.
``delay``        -- proximity-aware delay/ttime for one configuration.
``characterize`` -- build and save a table-mode gate library.
``validate``     -- run the Table 5-1 validation.
``experiment``   -- run any experiment by id (e1..e8, a1..a4).
``glitch``       -- Section-6 minimum-separation (inertial delay).
``stats``        -- summarize a metrics report or run manifest; with
                    ``--trend``, compare benchmark baselines.
``top``          -- tail the live metrics snapshot of a ``--live`` run.
``serve``        -- long-lived characterization daemon (JSON over HTTP
                    and unix sockets; see :mod:`repro.serve`).

Every command takes ``-v/-vv/--quiet`` (logging) and ``--trace`` /
``--metrics`` / ``--manifest`` / ``--live`` (telemetry artifacts; see
:mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .charlib import GateLibrary
from .charlib.library import cached_thresholds
from .core import DelayCalculator
from .errors import ReproError
from .gates import Gate
from .log import get_logger, setup_logging
from .obs.manifest import RunContext
from .tech.presets import PROCESSES
from .units import format_quantity, parse_quantity
from .waveform import Edge

_log = get_logger("cli")

__all__ = ["main", "build_parser"]


def _gate_from_args(args: argparse.Namespace) -> Gate:
    # The serve protocol speaks the CLI's cell-naming language; the one
    # parser lives there so daemon and CLI can never drift apart.
    from .serve.protocol import build_gate

    return build_gate(args.gate, args.process, args.load)


def _add_gate_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gate", default="nand3",
                        help="cell: nandN, norN, inv, aoi21, oai21, aoi22")
    parser.add_argument("--process", default="default", choices=sorted(PROCESSES),
                        help="technology preset")
    parser.add_argument("--load", default="100f", help="output load (e.g. 100f)")


def _add_workers_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for independent simulations "
             "(default: REPRO_WORKERS env var, else serial; -1 = all "
             "cores; results are identical for any worker count)")
    parser.add_argument(
        "--batch", type=int, default=None, metavar="B",
        help="simulations per task run together through the vectorized "
             "lockstep kernel (default: REPRO_BATCH env var, else "
             "scalar; composes with --workers; results are identical "
             "for any batch size)")


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log detail (-v info, -vv debug)")
    parser.add_argument(
        "--quiet", action="store_true", help="log errors only")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON of this run (open in "
             "chrome://tracing or Perfetto); also enables telemetry")
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write the run's metric registry (counters, histograms) "
             "as JSON; summarize later with `repro stats FILE`")
    parser.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write a run manifest (args, env knobs, git SHA, metric "
             "totals) next to the outputs")
    parser.add_argument(
        "--live", metavar="DIR", nargs="?", const="live", default=None,
        help="periodically snapshot live metrics into DIR (default "
             "'live') as metrics.json + OpenMetrics metrics.prom; tail "
             "with `repro top`; interval via REPRO_LIVE_INTERVAL")


def _add_resilience_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retry", type=int, default=None, metavar="N",
        help="solver retry-ladder attempts per solve (default: REPRO_RETRY "
             "env var, else 3; 1 disables escalation)")
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task timeout for parallel simulations (default: "
             "REPRO_TASK_TIMEOUT env var, else none); a timed-out grid "
             "point is recorded in the health report, not fatal")
    parser.add_argument(
        "--resume", action="store_true",
        help="resume interrupted/degraded sweeps from their progress "
             "journals, recomputing only missing points")
    parser.add_argument(
        "--fast-newton", action="store_true",
        help="opt-in modified-Newton mode (REPRO_FAST_NEWTON): reuse the "
             "LU factorization across iterations and same-step timesteps; "
             "faster, tolerance-gated rather than bit-identical")
    parser.add_argument(
        "--sparse", choices=["auto", "0", "1"], default=None,
        help="linear-solver backend (REPRO_SPARSE): auto dispatches "
             "dense vs sparse SuperLU by unknown-node count, 1 forces "
             "sparse, 0 forces dense (default: auto)")
    parser.add_argument(
        "--guard", action="store_true",
        help="opt-in solver guard monitors (REPRO_GUARD): divergence "
             "detection, per-solve watchdog and Jacobian condition "
             "warnings; tune with REPRO_GUARD_COND / REPRO_GUARD_DIVERGE "
             "/ REPRO_GUARD_WALL (results are unchanged on clean runs)")


def _apply_resilience_options(args: argparse.Namespace) -> None:
    """Publish the resilience flags as environment variables.

    The env route (rather than argument threading) is deliberate: worker
    processes inherit the environment, so ``--retry`` and
    ``--task-timeout`` reach every fanned-out simulation exactly like
    ``REPRO_WORKERS`` and ``REPRO_CACHE_DIR`` do.
    """
    import os

    from .parallel import BATCH_ENV_VAR, TIMEOUT_ENV_VAR
    from .resilience.retry import RETRY_ENV_VAR
    from .resilience.runtime import RESUME_ENV_VAR
    from .spice.engine import FAST_NEWTON_ENV_VAR
    from .spice.guard import GUARD_ENV_VAR
    from .spice.sparse import SPARSE_ENV_VAR

    if getattr(args, "retry", None) is not None:
        os.environ[RETRY_ENV_VAR] = str(args.retry)
    if getattr(args, "task_timeout", None) is not None:
        os.environ[TIMEOUT_ENV_VAR] = str(args.task_timeout)
    if getattr(args, "resume", False):
        os.environ[RESUME_ENV_VAR] = "1"
    if getattr(args, "batch", None) is not None:
        os.environ[BATCH_ENV_VAR] = str(args.batch)
    if getattr(args, "fast_newton", False):
        os.environ[FAST_NEWTON_ENV_VAR] = "1"
    if getattr(args, "sparse", None) is not None:
        os.environ[SPARSE_ENV_VAR] = args.sparse
    if getattr(args, "guard", False):
        os.environ[GUARD_ENV_VAR] = "1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal-proximity gate delay modeling (DAC 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_vtc = sub.add_parser("vtc", help="VTC family thresholds (paper Fig 2-1)")
    _add_gate_options(p_vtc)
    _add_obs_options(p_vtc)

    p_delay = sub.add_parser("delay", help="proximity-aware delay for one config")
    _add_gate_options(p_delay)
    _add_obs_options(p_delay)
    p_delay.add_argument(
        "--edge", action="append", required=True, metavar="PIN:DIR:TAU[:AT]",
        help="switching input, e.g. a:fall:500ps:0ps (repeatable)")
    p_delay.add_argument("--mode", default="oracle", choices=("oracle", "table"))
    p_delay.add_argument("--correction", default="paper",
                         choices=("paper", "scaled", "off"))

    p_char = sub.add_parser("characterize", help="build + save a table library")
    _add_gate_options(p_char)
    _add_workers_option(p_char)
    _add_resilience_options(p_char)
    _add_obs_options(p_char)
    p_char.add_argument("--output", required=True, help="JSON file to write")
    p_char.add_argument("--fast", action="store_true",
                        help="use the small demo grids")

    p_val = sub.add_parser("validate", help="Table 5-1 validation run")
    _add_gate_options(p_val)
    _add_workers_option(p_val)
    _add_resilience_options(p_val)
    _add_obs_options(p_val)
    p_val.add_argument("--configs", type=int, default=100)
    p_val.add_argument("--seed", type=int, default=1996)

    p_exp = sub.add_parser("experiment", help="run a paper experiment by id")
    p_exp.add_argument("id", choices=(
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8",
        "a1", "a2", "a3", "a4"))
    p_exp.add_argument("--quick", action="store_true",
                       help="reduced sweep sizes for a fast look")
    _add_workers_option(p_exp)
    _add_resilience_options(p_exp)
    _add_obs_options(p_exp)

    p_glitch = sub.add_parser("glitch", help="Section-6 inertial delay")
    _add_gate_options(p_glitch)
    _add_obs_options(p_glitch)
    p_glitch.add_argument("--causing", default="b")
    p_glitch.add_argument("--blocking", default="a")
    p_glitch.add_argument("--tau-causing", default="100ps")
    p_glitch.add_argument("--tau-blocking", default="500ps")

    p_stats = sub.add_parser(
        "stats", help="summarize a --metrics report or --manifest file")
    p_stats.add_argument("file", nargs="?", default=None,
                         help="metrics or manifest JSON to read")
    p_stats.add_argument(
        "--trend", action="store_true",
        help="compare committed BENCH_*.json baselines against a later "
             "run, flagging wall-time regressions with phase-histogram "
             "attribution")
    p_stats.add_argument(
        "--baseline", metavar="DIR", default="benchmarks/baseline",
        help="baseline BENCH_*.json directory for --trend "
             "(default: benchmarks/baseline)")
    p_stats.add_argument(
        "--current", metavar="DIR", default=None,
        help="directory holding the later run's BENCH_*.json records "
             "for --trend (e.g. the bench job's REPRO_BENCH_DIR)")
    p_stats.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="fractional wall-time slowdown flagged as a regression "
             "by --trend (default: 0.25)")
    _add_obs_options(p_stats)

    p_top = sub.add_parser(
        "top", help="tail the live metrics snapshot of a --live run")
    p_top.add_argument("dir", nargs="?", default="live",
                       help="live snapshot directory (or metrics.json "
                            "path) to tail; default 'live'")
    p_top.add_argument("--once", action="store_true",
                       help="render one frame and exit (exit 1 when no "
                            "snapshot exists yet)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="refresh cadence (default: 1.0)")
    _add_obs_options(p_top)

    p_serve = sub.add_parser(
        "serve", help="long-lived characterization daemon (HTTP + unix)")
    _add_obs_options(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="TCP bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8357,
                         help="TCP port; 0 picks an ephemeral port "
                              "(default: 8357)")
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="also serve on a unix-domain socket at PATH")
    p_serve.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                         help="response-cache TTL (default: REPRO_SERVE_TTL "
                              "env var, else 300; 0 never expires)")
    p_serve.add_argument("--cache-max", type=int, default=None, metavar="N",
                         help="response-cache entry cap (default: "
                              "REPRO_SERVE_CACHE_MAX env var, else 1024; "
                              "0 disables caching)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="disable request coalescing (each query "
                              "solves scalar; results are identical)")
    p_serve.add_argument("--ready-file", default=None, metavar="FILE",
                         help="write a JSON line with the bound endpoints "
                              "once listening (for scripts and CI)")
    return parser


def _parse_edge(spec: str) -> tuple[str, Edge]:
    from .serve.protocol import parse_edge_spec

    return parse_edge_spec(spec)


def _cmd_vtc(args: argparse.Namespace) -> int:
    from .experiments.report import format_table
    from .vtc import threshold_table, select_thresholds
    from .charlib.library import cached_vtc_family

    gate = _gate_from_args(args)
    family = cached_vtc_family(gate)
    print(format_table(threshold_table(family)))
    thr = select_thresholds(family, gate.process.vdd)
    print(f"\nselected: {thr.describe()}")
    return 0


def _cmd_delay(args: argparse.Namespace) -> int:
    from .serve.protocol import format_delay_report

    gate = _gate_from_args(args)
    edges = dict(_parse_edge(spec) for spec in args.edge)
    library = GateLibrary.characterize(gate, mode=args.mode)
    calc = DelayCalculator(library, correction=args.correction)
    result = calc.explain(edges)
    print(format_delay_report(result))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .charlib import DualInputGrid, SingleInputGrid

    _apply_resilience_options(args)
    gate = _gate_from_args(args)
    kwargs = {}
    if args.fast:
        kwargs["single_grid"] = SingleInputGrid.fast()
        kwargs["dual_grid"] = DualInputGrid.fast()
    library = GateLibrary.characterize(gate, mode="table",
                                       workers=args.workers, **kwargs)
    library.save(args.output)
    print(f"wrote {args.output}: thresholds {library.thresholds.describe()}, "
          f"{len(library.single_keys)} single + {len(library.dual_keys)} dual models")
    print(library.health_summary())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments import table5_1

    _apply_resilience_options(args)
    process = PROCESSES[args.process]()
    result = table5_1.run(process, n_configs=args.configs, seed=args.seed,
                          load=parse_quantity(args.load, unit="F"),
                          workers=args.workers)
    print(result.summary())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from . import experiments as ex

    _apply_resilience_options(args)
    quick = args.quick
    if args.id in ("e1", "e2"):
        direction = "fall" if args.id == "e1" else "rise"
        seps = [s * 1e-12 for s in range(-200, 701, 150)] if quick else None
        print(ex.fig1_2.run(direction=direction, separations=seps).summary())
    elif args.id == "e3":
        print(ex.fig2_1.run().summary())
    elif args.id == "e4":
        kwargs = {"points_per_curve": 7, "tau_bs": (100e-12, 1000e-12)} if quick else {}
        print(ex.fig3_3.run(**kwargs).summary())
    elif args.id == "e5":
        print(ex.fig4_2.run().summary())
    elif args.id in ("e6", "e7"):
        n = 15 if quick else 100
        validation = ex.table5_1.run(n_configs=n, workers=args.workers)
        if args.id == "e6":
            print(validation.summary())
        else:
            print(ex.fig5_1.run(validation=validation).summary())
    elif args.id == "e8":
        kwargs = {"tau_rises": (100e-12, 1000e-12),
                  "separations": [s * 1e-12 for s in range(-200, 1101, 260)]} if quick else {}
        print(ex.fig6_1.run(**kwargs).summary())
    elif args.id == "a1":
        print(ex.baselines_exp.run(n_configs=8 if quick else 30,
                                   workers=args.workers).summary())
    elif args.id == "a2":
        print(ex.ablations.run(n_configs=6 if quick else 25,
                               workers=args.workers).summary())
    elif args.id == "a3":
        print(ex.timing_exp.run(n_scenarios=2 if quick else 4).summary())
    elif args.id == "a4":
        print(ex.crossgate.run(n_configs=3 if quick else 10,
                               workers=args.workers).summary())
    return 0


def _cmd_glitch(args: argparse.Namespace) -> int:
    from .inertial import SimulatorGlitchModel, minimum_separation

    gate = _gate_from_args(args)
    thresholds = cached_thresholds(gate)
    model = SimulatorGlitchModel(gate, args.causing, args.blocking, thresholds)
    min_sep = minimum_separation(
        model,
        parse_quantity(args.tau_causing, unit="s"),
        parse_quantity(args.tau_blocking, unit="s"),
        thresholds,
    )
    print(f"minimum valid separation (inertial delay): "
          f"{format_quantity(min_sep, 's')}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .obs import bench_trend, format_bench, format_stats

    if args.trend:
        print(bench_trend(args.baseline, args.current,
                          threshold=args.threshold))
        return 0
    if args.file is None:
        raise ReproError(
            "stats needs a metrics/manifest FILE to summarize "
            "(or --trend for benchmark-trend analysis)")
    # A benchmark trajectory that has not accumulated anything yet is a
    # normal state, not an error: a missing file, an empty file, or an
    # empty JSON list/object all render as "no history".
    try:
        with open(args.file) as handle:
            text = handle.read()
    except OSError:
        print(f"no recorded stats: {args.file!r} does not exist yet")
        return 0
    if not text.strip():
        print(f"no recorded stats: {args.file!r} is empty")
        return 0
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"cannot read {args.file!r}: {exc}") from exc
    if isinstance(document, (list, dict)) and not document:
        print(f"no recorded stats: {args.file!r} holds an empty history")
        return 0
    if not isinstance(document, dict):
        raise ReproError(f"{args.file!r} is not a metrics/manifest document")
    if document.get("kind") == "repro-bench":
        print(format_bench(document))
        return 0
    title = None
    if document.get("kind") == "repro-manifest":
        sha = document.get("git_sha") or "unknown"
        wall = document.get("wall_seconds")
        title = (f"run manifest: command={document.get('command') or '?'} "
                 f"git={sha[:12]}"
                 + (f" wall={wall:.2f}s" if isinstance(wall, float) else ""))
    print(format_stats(document, title=title))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .obs import format_top, read_snapshot
    from .obs.live import SNAPSHOT_NAME

    path = args.dir
    if not path.endswith(".json"):
        path = os.path.join(path, SNAPSHOT_NAME)
    previous = None
    try:
        while True:
            document = read_snapshot(path)
            if document is None:
                text = (f"no live snapshot at {path} yet -- run a repro "
                        "command with --live (snapshots land atomically, "
                        "so a partial file never renders)")
            else:
                text = format_top(document, previous=previous)
                previous = document
            if args.once:
                print(text)
                return 0 if document is not None else 1
            # Clear + home, like top(1); the snapshot file is replaced
            # atomically so every frame reads a complete document.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            time.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:
        return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal
    import threading
    import time

    from .obs import Recorder, get_recorder, set_recorder
    from .serve import ReproServer, ServeState
    from .serve.coalesce import coalescing_enabled

    # /metrics needs a real registry even when no --trace/--metrics flag
    # armed one; pin an enabled recorder for the daemon's lifetime.
    pinned = None
    if not get_recorder().enabled:
        pinned = Recorder()
        set_recorder(pinned)

    coalesce = coalescing_enabled() and not args.no_coalesce
    state = ServeState(ttl=args.ttl, cache_max=args.cache_max)
    server = ReproServer(host=args.host, port=args.port,
                         socket_path=args.socket, state=state,
                         coalesce=coalesce)
    stop = threading.Event()

    def _request_shutdown(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_shutdown)

    server.start()
    endpoints = {"http": server.http_endpoint}
    if server.unix_endpoint:
        endpoints["unix"] = server.unix_endpoint
    if args.ready_file:
        with open(args.ready_file, "w") as handle:
            json.dump(endpoints, handle)
            handle.write("\n")
    print(f"repro serve listening on {server.http_endpoint}"
          + (f" and {server.unix_endpoint}" if server.unix_endpoint else "")
          + (" (coalescing)" if coalesce else " (coalescing off)"),
          flush=True)
    try:
        # A sleep loop rather than Event.wait(): the handler runs on
        # this thread, and setting an Event the thread is blocked on
        # would contend for the Event's own lock.
        while not stop.is_set():
            time.sleep(0.2)
    finally:
        drained = server.stop()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        if pinned is not None and get_recorder() is pinned:
            from .obs import reset_recorder

            reset_recorder()
    print(f"repro serve shut down cleanly (drained={drained})", flush=True)
    return 0


_COMMANDS = {
    "vtc": _cmd_vtc,
    "delay": _cmd_delay,
    "characterize": _cmd_characterize,
    "validate": _cmd_validate,
    "experiment": _cmd_experiment,
    "glitch": _cmd_glitch,
    "stats": _cmd_stats,
    "top": _cmd_top,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(getattr(args, "verbose", 0),
                  quiet=getattr(args, "quiet", False))
    context = RunContext.from_args(args)
    context.arm()
    try:
        with context.root_span(f"repro.{args.command}"):
            return _COMMANDS[args.command](args)
    except ReproError as exc:
        _log.error(str(exc))
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe (`repro stats ... | head`); point
        # stdout at devnull so interpreter shutdown doesn't re-raise on
        # the final flush, and exit quietly like other Unix tools.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:  # pragma: no cover - in-process callers
            pass
        return 0
    finally:
        for path in context.finalize():
            _log.info("wrote %s", path)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
