"""Result containers for DC sweeps and transient analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import MeasurementError
from ..waveform import Pwl

__all__ = ["SweepResult", "TransientResult"]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a DC sweep.

    ``sweep_values`` is the swept source voltage grid; ``voltages`` maps
    node name -> array of solved voltages over the grid.
    """

    sweep_source: str
    sweep_values: np.ndarray
    voltages: Dict[str, np.ndarray]

    def node(self, name: str) -> np.ndarray:
        try:
            return self.voltages[name]
        except KeyError:
            raise MeasurementError(f"sweep did not record node {name!r}") from None

    def transfer_curve(self, output: str) -> Pwl:
        """The output-vs-input curve as a PWL 'waveform' (x axis = Vin).

        A VTC can be non-monotonic in exotic circuits, but for the CMOS
        gates this library builds, Vout is a function of the swept input,
        so reusing :class:`Pwl` (which requires increasing x) is safe.
        """
        return Pwl(self.sweep_values, self.node(output))


class TransientResult:
    """Solved node waveforms of a transient analysis.

    Besides the waveforms, the result carries the analysis' solver
    accounting: ``rejected_steps`` and ``newton_iterations`` as before,
    plus ``newton_failures`` (non-converged Newton solves absorbed by
    step halving), ``solver_retries`` (retry-ladder escalations consumed,
    DC seed included) and ``retry_attempts`` (the per-attempt
    :class:`~repro.resilience.AttemptRecord` log; empty for a clean
    first-attempt run).
    """

    def __init__(self, times: np.ndarray, waveforms: Dict[str, np.ndarray],
                 *, rejected_steps: int = 0, newton_iterations: int = 0,
                 newton_failures: int = 0, solver_retries: int = 0,
                 retry_attempts: tuple = ()) -> None:
        self.times = np.asarray(times, dtype=float)
        self._samples = {name: np.asarray(v, dtype=float) for name, v in waveforms.items()}
        self.rejected_steps = rejected_steps
        self.newton_iterations = newton_iterations
        self.newton_failures = newton_failures
        self.solver_retries = solver_retries
        self.retry_attempts = tuple(retry_attempts)

    @property
    def node_names(self) -> List[str]:
        return sorted(self._samples)

    def samples(self, name: str) -> np.ndarray:
        try:
            return self._samples[name]
        except KeyError:
            raise MeasurementError(
                f"transient result has no node {name!r}; "
                f"recorded: {', '.join(self.node_names)}"
            ) from None

    def node(self, name: str) -> Pwl:
        """The waveform of one node as a :class:`Pwl`."""
        return Pwl(self.times, self.samples(name))

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransientResult({len(self.times)} points to "
            f"{self.t_stop:.3e}s, nodes={self.node_names})"
        )
