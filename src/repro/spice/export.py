"""SPICE-deck export of :class:`~repro.spice.Circuit` netlists.

Writes a standard ``.sp`` deck (HSPICE/ngspice-compatible syntax) so
users with access to a production simulator can cross-validate this
library's built-in engine on the exact same circuits -- the closest a
reproduction can get to the paper's original HSPICE runs.

Covered elements: Level-1 MOSFETs (with generated ``.MODEL`` cards),
resistors, capacitors, DC and PWL voltage sources, DC current sources,
and a ``.TRAN`` line when a stop time is given.  Alpha-power-law devices
have no standard-SPICE equivalent; they export as Level-1 cards with a
warning comment (set ``strict=True`` to raise instead).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import NetlistError
from ..tech import MosfetParams
from ..units import parse_quantity
from ..waveform import Pwl
from .netlist import Circuit

__all__ = ["to_spice", "write_spice"]


def _fmt(value: float) -> str:
    """SPICE-friendly number formatting (plain exponent notation)."""
    return f"{value:.6g}"


def _node(name: str) -> str:
    """SPICE node token: ground maps to 0; dots are legal in most
    dialects but we normalize to underscores for maximum portability."""
    if Circuit.is_ground(name):
        return "0"
    return name.replace(".", "_")


def _source_card(name: str, node: str, spec, *, strict: bool) -> str:
    if isinstance(spec, Pwl):
        pairs = " ".join(
            f"{_fmt(float(t))} {_fmt(float(v))}"
            for t, v in zip(spec.times, spec.values)
        )
        return f"V{name} {_node(node)} 0 PWL({pairs})"
    if callable(spec):
        if strict:
            raise NetlistError(
                f"source {name!r} is a Python callable; it has no SPICE form"
            )
        return f"* V{name}: python-callable source omitted"
    level = parse_quantity(spec, unit="V")
    return f"V{name} {_node(node)} 0 DC {_fmt(level)}"


def _model_cards(circuit: Circuit, *, strict: bool) -> Dict[MosfetParams, str]:
    """One ``.MODEL`` card name per distinct device-parameter set."""
    models: Dict[MosfetParams, str] = {}
    counters = {"nmos": 0, "pmos": 0}
    for mosfet in circuit.mosfets:
        params = mosfet.params
        if params in models:
            continue
        if params.model == "alpha" and strict:
            raise NetlistError(
                "alpha-power-law devices have no standard SPICE model; "
                "export with strict=False to approximate with LEVEL=1"
            )
        counters[params.polarity] += 1
        models[params] = f"{params.polarity}{counters[params.polarity]}"
    return models


def to_spice(circuit: Circuit, *, t_stop: Optional[float | str] = None,
             t_step: Optional[float | str] = None,
             strict: bool = False) -> str:
    """Render the circuit as a SPICE deck string."""
    lines: List[str] = [f"* {circuit.name} -- exported by repro"]

    models = _model_cards(circuit, strict=strict)
    for params, model_name in models.items():
        if params.model == "alpha":
            lines.append(
                f"* WARNING: {model_name} approximates an alpha-power "
                f"device (alpha={params.alpha}) with LEVEL=1"
            )
        lines.append(
            f".MODEL {model_name} {params.polarity.upper()} (LEVEL=1 "
            f"VTO={_fmt(params.vt0)} KP={_fmt(params.kp)} "
            f"LAMBDA={_fmt(params.lam)})"
        )

    for mosfet in circuit.mosfets:
        lines.append(
            f"M{mosfet.name.replace('.', '_')} "
            f"{_node(mosfet.drain)} {_node(mosfet.gate)} "
            f"{_node(mosfet.source)} {_node(mosfet.bulk)} "
            f"{models[mosfet.params]} W={_fmt(mosfet.width)} "
            f"L={_fmt(mosfet.length)}"
        )
    for r in circuit._resistors:
        lines.append(
            f"R{r.name.replace('.', '_')} {_node(r.a)} {_node(r.b)} "
            f"{_fmt(r.resistance)}"
        )
    for c in circuit._capacitors:
        lines.append(
            f"C{c.name.replace('.', '_')} {_node(c.a)} {_node(c.b)} "
            f"{_fmt(c.capacitance)}"
        )
    for name in circuit.vsource_names:
        src = circuit._vsources[name]
        lines.append(_source_card(name.replace(".", "_"), src.node, src.spec,
                                  strict=strict))
    for i in circuit._isources:
        lines.append(
            f"I{i.name.replace('.', '_')} {_node(i.a)} {_node(i.b)} "
            f"DC {_fmt(i.value(0.0))}"
        )

    if t_stop is not None:
        stop = parse_quantity(t_stop, unit="s")
        step = (parse_quantity(t_step, unit="s") if t_step is not None
                else stop / 1000.0)
        lines.append(f".TRAN {_fmt(step)} {_fmt(stop)}")
    lines.append(".END")
    return "\n".join(lines) + "\n"


def write_spice(circuit: Circuit, path, **kwargs) -> None:
    """Write :func:`to_spice` output to ``path``."""
    deck = to_spice(circuit, **kwargs)
    with open(path, "w") as handle:
        handle.write(deck)
